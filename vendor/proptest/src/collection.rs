//! Collection strategies: `vec` and `hash_set`.

use crate::{Strategy, TestRng};
use rand::Rng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// Size specification for collection strategies: an exact `usize` or a
/// half-open `Range<usize>`.
pub trait SizeRange {
    /// Draws a size from the specification.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.rng().gen_range(self.clone())
    }
}

/// Strategy for `Vec`s with element strategy `S`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` of values from `element`, sized by `size`.
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// Strategy for `HashSet`s with element strategy `S`.
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S, Z> Strategy for HashSetStrategy<S, Z>
where
    S: Strategy,
    S::Value: Hash + Eq,
    Z: SizeRange,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        // Aim for the drawn size, tolerating duplicates: a bounded number
        // of extra attempts, then accept a smaller set (real proptest
        // also treats the size as a target, not a guarantee, when the
        // element domain is small).
        let target = self.size.pick(rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while out.len() < target && attempts < 10 * (target + 1) {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// A `HashSet` of values from `element`, sized by `size` (best-effort
/// when the element domain is small).
pub fn hash_set<S, Z>(element: S, size: Z) -> HashSetStrategy<S, Z>
where
    S: Strategy,
    S::Value: Hash + Eq,
    Z: SizeRange,
{
    HashSetStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_exact_and_ranged_sizes() {
        let mut rng = TestRng::for_case("vec_sizes", 0);
        let v = vec(0u16..256, 8usize).generate(&mut rng);
        assert_eq!(v.len(), 8);
        for _ in 0..50 {
            let v = vec(0usize..20, 0..200).generate(&mut rng);
            assert!(v.len() < 200);
            assert!(v.iter().all(|&x| x < 20));
        }
    }

    #[test]
    fn hash_set_respects_domain() {
        let mut rng = TestRng::for_case("hs", 1);
        for _ in 0..50 {
            let s = hash_set(0usize..32, 0..12).generate(&mut rng);
            assert!(s.len() < 12);
            assert!(s.iter().all(|&x| x < 32));
        }
    }
}
