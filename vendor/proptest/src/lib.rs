//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! This workspace must build with no network access (see
//! `vendor/README.md`), so the slice of proptest the test suites use is
//! re-implemented here: the [`proptest!`] macro, range/tuple/`Just`
//! strategies, `any::<T>()`, `prop_map`, and `collection::{vec,
//! hash_set}`. Swapping the real crate back in is a one-line
//! `Cargo.toml` change.
//!
//! Differences from real proptest, deliberate for offline use:
//!
//! * **No shrinking.** A failing case reports its case index and seed;
//!   inputs are reproducible (generation is deterministic per test name
//!   and case index) but not minimized.
//! * **No edge-case biasing.** Ranges sample uniformly.
//! * `PROPTEST_CASES` is honored as an environment override for the
//!   case count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The effective case count: `PROPTEST_CASES` env var, or the
    /// configured value.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed or rejected test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic generator used to produce test inputs.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index, so every
        // (test, case) pair gets an independent, reproducible stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of test inputs.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates values with `self`, then runs the returned strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing the predicate by regenerating
    /// (bounded retries, then panics).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// A strategy producing a single fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unconstrained values of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod prelude {
    //! The conventional `use proptest::prelude::*` surface.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// input reporting) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` != `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{:?}` == `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

/// Discards the current case when the assumption does not hold.
/// (This shim simply skips the case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Defines property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($cfg) $($rest)*);
    };
    (@block ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            for case in 0..cases {
                let mut test_rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $pat = $crate::Strategy::generate(&$strat, &mut test_rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case}/{cases} of `{}` failed: {e}\n\
                         (deterministic per test name and case index; rerun to reproduce)",
                        stringify!($name)
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 5usize..10, b in 0.25f64..0.5, c in 1u64..=3) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((0.25..0.5).contains(&b));
            prop_assert!((1..=3).contains(&c));
        }

        #[test]
        fn tuples_and_maps(pair in (0u32..4, 0u32..4).prop_map(|(x, y)| x + y)) {
            prop_assert!(pair <= 6);
        }

        #[test]
        fn any_generates(x in any::<u64>(), flags in any::<(u64, u64, u64)>()) {
            // Smoke: values exist and the tuple pattern binds.
            let (p, q, r) = flags;
            prop_assert_eq!(x ^ p ^ q ^ r, x ^ p ^ q ^ r);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (0usize..1000, 0f64..1.0);
        let mut r1 = crate::TestRng::for_case("det", 3);
        let mut r2 = crate::TestRng::for_case("det", 3);
        assert_eq!(
            crate::Strategy::generate(&s, &mut r1),
            crate::Strategy::generate(&s, &mut r2)
        );
    }
}
