//! Scoped threads in the crossbeam 0.8 call shape, on std scoped threads.

use std::any::Any;

/// Result of a scope: `Err` carries a child-panic payload in real
/// crossbeam; this shim always returns `Ok` (a child panic propagates as
/// a panic instead — see the crate docs).
pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

/// A scope in which threads borrowing from the environment can be
/// spawned.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a scope handle so it
    /// can spawn further threads (unused by this workspace, but part of
    /// the crossbeam signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            handle: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Handle to a scoped thread, joinable before the scope ends.
#[derive(Debug)]
pub struct ScopedJoinHandle<'scope, T> {
    handle: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish and returns its result.
    pub fn join(self) -> Result<T> {
        self.handle.join()
    }
}

/// Creates a scope: all threads spawned inside are joined before
/// `scope` returns.
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let r = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .unwrap();
        assert_eq!(r, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn join_handle_returns_value() {
        let r = scope(|s| s.spawn(|_| 41 + 1).join().unwrap()).unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
