//! Offline drop-in subset of the `crossbeam` 0.8 scoped-thread API.
//!
//! This workspace must build with no network access (see
//! `vendor/README.md`); the only `crossbeam` feature the crates use is
//! `crossbeam::scope`, which std has provided natively since 1.63
//! (`std::thread::scope`). This shim adapts the std API to the crossbeam
//! call shape — `scope(|s| { s.spawn(|_| ...); })` returning a `Result`
//! — so swapping the real crate back in is a one-line `Cargo.toml`
//! change.
//!
//! Divergence: if a spawned thread panics, `std::thread::scope`
//! re-raises the panic on the caller instead of returning `Err`. Every
//! call site in this workspace treats a worker panic as fatal, so the
//! observable behavior (a panic) is the same.

pub mod thread;

pub use thread::scope;
