//! Sequence helpers, mirroring `rand::seq::SliceRandom`.

use crate::{Rng, RngCore};

/// Shuffling and random selection on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the identity (astronomically unlikely)"
        );
    }

    #[test]
    fn choose_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
