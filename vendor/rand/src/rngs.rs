//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Small state, excellent statistical quality, and fully deterministic
/// across platforms. Not the ChaCha12 generator of the real `rand`
/// crate — streams are reproducible within this workspace only (see the
/// crate docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // A xoshiro state of all zeros is a fixed point; nudge it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        let v: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }

    #[test]
    fn next_u32_uses_high_bits() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
    }
}
