//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! This workspace must build with no network access (see
//! `vendor/README.md`), so the handful of `rand` items the crates use are
//! re-implemented here on top of a xoshiro256++ generator with SplitMix64
//! seeding. The API surface — `Rng`, `SeedableRng`, `rngs::StdRng`,
//! `seq::SliceRandom` — matches rand 0.8 closely enough that swapping the
//! real crate back in is a one-line `Cargo.toml` change.
//!
//! The generator is deterministic: the same seed yields the same stream on
//! every platform, which is all the experiments require. The streams are
//! **not** identical to the real `StdRng` (ChaCha12); seeds are reproducible
//! within this workspace only.

pub mod rngs;
pub mod seq;

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over all values for integers, `[0, 1)` for floats).
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// (the conventional rand 0.8 behavior).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state);
            let bytes = v.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod distributions {
    //! The distribution subset: `Standard` and uniform ranges.

    use crate::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over all values for integers
    /// and `bool`, uniform over `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty => $conv:expr),* $(,)?) => {$(
            impl Distribution<$t> for Standard {
                #[inline]
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    #[allow(clippy::redundant_closure_call)]
                    ($conv)(rng)
                }
            }
        )*};
    }

    impl_standard_int! {
        u8 => |r: &mut R| r.next_u64() as u8,
        u16 => |r: &mut R| r.next_u64() as u16,
        u32 => |r: &mut R| r.next_u32(),
        u64 => |r: &mut R| r.next_u64(),
        u128 => |r: &mut R| ((r.next_u64() as u128) << 64) | r.next_u64() as u128,
        usize => |r: &mut R| r.next_u64() as usize,
        i8 => |r: &mut R| r.next_u64() as i8,
        i16 => |r: &mut R| r.next_u64() as i16,
        i32 => |r: &mut R| r.next_u32() as i32,
        i64 => |r: &mut R| r.next_u64() as i64,
        isize => |r: &mut R| r.next_u64() as isize,
    }

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        /// Uniform on `[0, 1)` with 53 bits of precision.
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        /// Uniform on `[0, 1)` with 24 bits of precision.
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    pub mod uniform {
        //! Uniform sampling from ranges.

        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that can be sampled uniformly, mirroring
        /// `rand::distributions::uniform::SampleRange`.
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            ///
            /// # Panics
            ///
            /// Panics if the range is empty.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Widening-multiply bounded sampling: maps a full-width `u64`
        /// into `[0, span)`. The modulo bias is below `span / 2^64`,
        /// far beneath Monte-Carlo resolution at experiment scales.
        #[inline]
        fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
        }

        macro_rules! impl_int_range {
            ($($t:ty),* $(,)?) => {$(
                impl SampleRange<$t> for Range<$t> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        self.start.wrapping_add(bounded_u64(rng, span) as $t)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        if span > u64::MAX as u128 {
                            // Full-width range: every value is valid.
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
                    }
                }
            )*};
        }

        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_float_range {
            ($($t:ty),* $(,)?) => {$(
                impl SampleRange<$t> for Range<$t> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let unit: $t = crate::distributions::Distribution::sample(
                            &crate::distributions::Standard,
                            rng,
                        );
                        self.start + (self.end - self.start) * unit
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    #[inline]
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let unit: $t = crate::distributions::Distribution::sample(
                            &crate::distributions::Standard,
                            rng,
                        );
                        lo + (hi - lo) * unit
                    }
                }
            )*};
        }

        impl_float_range!(f32, f64);
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }
}
