//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! This workspace must build with no network access (see
//! `vendor/README.md`), so the benchmark entry points the bench crate
//! uses are re-implemented here over a straightforward wall-clock
//! harness: warm up until the per-iteration cost stabilizes, then take
//! `sample_size` samples and report min / median / max. Results are
//! printed in the familiar `name  time: [low mid high]` shape and also
//! appended as JSON lines to `target/criterion-stub/results.jsonl` so
//! scripts can consume them.
//!
//! Statistical machinery (outlier classification, regression detection,
//! HTML reports) is intentionally absent; swapping the real crate back
//! in is a one-line `Cargo.toml` change.

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    results: Vec<SampleStats>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            results: Vec::new(),
        }
    }
}

/// Measured statistics for one benchmark.
#[derive(Debug, Clone)]
pub struct SampleStats {
    /// Benchmark identifier (`group/function/param`).
    pub id: String,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Median sample, nanoseconds per iteration.
    pub median_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Number of samples.
    pub samples: usize,
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

impl Criterion {
    /// Parses CLI-style configuration. This shim accepts and ignores
    /// arguments (filters, `--bench`), matching how `cargo bench`
    /// invokes the harness.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs `f` as a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let stats = run_benchmark(id, self.sample_size, self.measurement_time, f);
        report(&stats);
        self.results.push(stats);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Writes the accumulated results to
    /// `target/criterion-stub/results.jsonl` (best-effort) and prints a
    /// one-line summary. Called by `criterion_main!`.
    pub fn final_summary(&self) {
        if self.results.is_empty() {
            return;
        }
        let dir = std::path::Path::new("target").join("criterion-stub");
        if std::fs::create_dir_all(&dir).is_ok() {
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join("results.jsonl"))
            {
                for s in &self.results {
                    let _ = writeln!(
                        f,
                        "{{\"id\":\"{}\",\"min_ns\":{},\"median_ns\":{},\"max_ns\":{},\"iters_per_sample\":{},\"samples\":{}}}",
                        s.id.replace('"', "'"),
                        s.min_ns,
                        s.median_ns,
                        s.max_ns,
                        s.iters_per_sample,
                        s.samples
                    );
                }
            }
        }
        println!("benchmarks complete: {} result(s)", self.results.len());
    }
}

/// A benchmark group, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    /// Runs `f` as a benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let stats = run_benchmark(
            &full,
            self.sample_size.unwrap_or(self.parent.sample_size),
            self.measurement_time
                .unwrap_or(self.parent.measurement_time),
            f,
        );
        report(&stats);
        self.parent.results.push(stats);
        self
    }

    /// Runs `f` with an input value as a benchmark in this group.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting happens eagerly; this exists for API
    /// compatibility).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id of the form `function/parameter`.
    pub fn new(function: &str, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Conversion into the display text of a benchmark id.
pub trait IntoBenchmarkId {
    /// The display text.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) -> SampleStats
where
    F: FnMut(&mut Bencher),
{
    // Calibration: run single iterations until we know roughly how long
    // one takes (bounded so very slow benchmarks still terminate).
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let calibration_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    for _ in 0..5 {
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1));
        if calibration_start.elapsed() > measurement_time / 4 {
            break;
        }
    }

    // Choose iterations per sample so all samples fit the budget.
    let budget_per_sample = measurement_time / (sample_size.max(1) as u32);
    let iters =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000_000) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    SampleStats {
        id: id.to_string(),
        min_ns: samples_ns[0],
        median_ns: samples_ns[samples_ns.len() / 2],
        max_ns: *samples_ns.last().expect("at least one sample"),
        iters_per_sample: iters,
        samples: samples_ns.len(),
    }
}

fn report(s: &SampleStats) {
    println!(
        "{:<48} time:   [{} {} {}]",
        s.id,
        fmt_ns(s.min_ns),
        fmt_ns(s.median_ns),
        fmt_ns(s.max_ns)
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_something() {
        let mut c = Criterion {
            sample_size: 5,
            measurement_time: Duration::from_millis(20),
            results: Vec::new(),
        };
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        assert_eq!(c.results.len(), 1);
        let s = &c.results[0];
        assert!(s.min_ns > 0.0 && s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(10),
            results: Vec::new(),
        };
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
                b.iter(|| black_box(x) * black_box(x))
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].id, "g/square/7");
    }
}
