//! The paper's opening scenario: routers detecting a denial-of-service
//! attack.
//!
//! Several routers each sample source addresses from the traffic they
//! route. Under normal load the sampled address distribution is
//! (modelled as) uniform; during a DDoS attack a single victim address
//! absorbs a constant fraction of all traffic — a point-mass mixture
//! that is ε-far from uniform. No router sees enough traffic to decide
//! alone; together, with zero communication, they raise the alarm.
//!
//! ```text
//! cargo run --release -p dut-bench --example ddos_detection
//! ```

use dut_core::decision::Decision;
use dut_core::zero_round::ThresholdNetworkTester;
use dut_distributions::families::point_mass_mixture;
use dut_distributions::DiscreteDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let address_space = 1 << 16; // hashed /16 of the address space
    let routers = 60_000;
    let epsilon = 0.8; // attack concentration: victim gets ~40% of traffic
    let p = 1.0 / 3.0;

    let tester = ThresholdNetworkTester::plan(address_space, routers, epsilon, p)?;
    println!(
        "{} routers, each sampling {} packets; alarm threshold {} routers",
        routers,
        tester.samples_per_node(),
        tester.threshold()
    );

    let mut rng = StdRng::seed_from_u64(7);

    // Normal traffic.
    let normal = DiscreteDistribution::uniform(address_space);
    let quiet_days = 5;
    let mut false_alarms = 0;
    for day in 0..quiet_days {
        let outcome = tester.run(&normal, &mut rng);
        println!(
            "day {day}: normal traffic -> {} ({} alarms)",
            outcome.decision, outcome.rejecting_nodes
        );
        false_alarms += usize::from(outcome.decision == Decision::Reject);
    }

    // Attack: victim address 0xBEEF concentrates traffic.
    let attack = point_mass_mixture(address_space, epsilon, 0xBEEF)?;
    let outcome = tester.run(&attack, &mut rng);
    println!(
        "ATTACK: victim 0xBEEF -> {} ({} alarms, threshold {})",
        outcome.decision,
        outcome.rejecting_nodes,
        tester.threshold()
    );

    assert!(false_alarms <= quiet_days / 2, "too many false alarms");
    assert_eq!(outcome.decision, Decision::Reject, "attack missed");
    println!("\nattack detected; {false_alarms}/{quiet_days} false alarms on quiet days.");
    Ok(())
}
