//! Asymmetric sampling costs (§4): battery-powered vs mains-powered
//! sensors.
//!
//! Half the nodes run on batteries, where drawing a sample costs 4x
//! as much energy. The asymmetric planner assigns every node the same
//! *energy* budget `C = max_i s_i·c_i`, so cheap nodes draw 4x more
//! samples — and the network still tests uniformity with error 1/3, at
//! max cost `Θ(√n/ε²)/‖T‖₂` (the paper's §4.2 law).
//!
//! ```text
//! cargo run --release -p dut-bench --example asymmetric_budget
//! ```

use dut_core::asymmetric::{theory_max_cost_threshold, AsymmetricThresholdTester, CostVector};
use dut_core::decision::Decision;
use dut_distributions::families::paninski_far;
use dut_distributions::DiscreteDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1 << 20;
    let k = 150_000;
    let epsilon = 0.5;
    let p = 1.0 / 3.0;

    // Half battery-powered (cost 4/sample), half mains-powered (cost 1).
    let costs: Vec<f64> = (0..k).map(|i| if i < k / 2 { 4.0 } else { 1.0 }).collect();
    let costs = CostVector::new(costs)?;

    let tester = AsymmetricThresholdTester::plan(n, &costs, epsilon, p)?;
    let samples = tester.sample_counts();
    println!("asymmetric plan (battery = 4x per-sample cost):");
    println!("  battery node samples : {}", samples[0]);
    println!("  mains node samples   : {}", samples[k - 1]);
    println!(
        "  max individual cost  : {:.1} (theory √n/ε²/‖T‖₂ = {:.1})",
        tester.max_cost(),
        theory_max_cost_threshold(n, &costs, epsilon)
    );
    println!("  alarm threshold      : {}", tester.threshold());

    let mut rng = StdRng::seed_from_u64(2);
    let uniform = DiscreteDistribution::uniform(n);
    let far = paninski_far(n, epsilon)?;

    let ok = tester.run(&uniform, &mut rng);
    println!(
        "\nuniform -> {} ({} alarms, expected ≈ {:.0})",
        ok.decision,
        ok.rejecting_nodes,
        tester.expected_alarms_uniform()
    );
    let alarm = tester.run(&far, &mut rng);
    println!(
        "ε-far   -> {} ({} alarms, expected ≥ {:.0})",
        alarm.decision,
        alarm.rejecting_nodes,
        tester.expected_alarms_far()
    );

    assert_eq!(ok.decision, Decision::Accept);
    assert_eq!(alarm.decision, Decision::Reject);
    println!(
        "\nevery node paid at most {:.1} energy units.",
        tester.max_cost()
    );
    Ok(())
}
