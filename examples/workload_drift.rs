//! Identity testing via the filter reduction (§1): detecting workload
//! drift against a known non-uniform baseline.
//!
//! A service's request-type distribution η is known (a Zipf law —
//! nothing like uniform). Each monitoring node filters its own samples
//! through the identity filter, which maps "μ = η" to "filtered output
//! uniform" *exactly*, and preserves L1 distance. The same 0-round
//! network then monitors for drift.
//!
//! ```text
//! cargo run --release -p dut-bench --example workload_drift
//! ```

use dut_core::decision::Decision;
use dut_core::identity::{FilteredOracle, IdentityFilter};
use dut_core::zero_round::ThresholdNetworkTester;
use dut_distributions::distance::l1_distance;
use dut_distributions::DiscreteDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let request_types = 1 << 10;
    // Baseline: Zipf-distributed request mix.
    let eta =
        DiscreteDistribution::from_weights((1..=request_types).map(|i| 1.0 / i as f64).collect())?;

    // Build the filter: η is rounded onto a 1/g grid; samples map to
    // slots so that "μ = η" becomes "slots uniform".
    let filter = IdentityFilter::new(&eta, 64)?;
    println!(
        "identity filter: {} request types -> {} slots (rounding L1 error {:.4})",
        request_types,
        filter.output_domain_size(),
        filter.rounding_l1_error()
    );

    // Drift: 30% of traffic shifts to the rarest request types.
    let reversed = eta.permute(&(0..request_types).rev().collect::<Vec<_>>());
    let drifted = eta.mix(&reversed, 0.35)?;
    let drift_distance = l1_distance(&drifted, &eta)?;
    println!("drifted workload is at L1 distance {drift_distance:.3} from baseline");

    // The drift distance (minus filter rounding) is the ε we test at.
    let epsilon = drift_distance - filter.rounding_l1_error() - 0.05;
    let k = 120_000;
    let tester = ThresholdNetworkTester::plan(filter.output_domain_size(), k, epsilon, 1.0 / 3.0)?;
    println!(
        "{k} monitors, {} filtered samples each, threshold {}",
        tester.samples_per_node(),
        tester.threshold()
    );

    let mut rng = StdRng::seed_from_u64(5);

    let baseline_oracle = FilteredOracle::new(&filter, &eta);
    let outcome = tester.run(&baseline_oracle, &mut rng);
    println!(
        "\nbaseline traffic -> {} ({} alarms)",
        outcome.decision, outcome.rejecting_nodes
    );
    assert_eq!(outcome.decision, Decision::Accept);

    let drifted_oracle = FilteredOracle::new(&filter, &drifted);
    let outcome = tester.run(&drifted_oracle, &mut rng);
    println!(
        "drifted traffic  -> {} ({} alarms)",
        outcome.decision, outcome.rejecting_nodes
    );
    assert_eq!(outcome.decision, Decision::Reject);

    println!("\ndrift detected through the local filter reduction — no node ever saw η's pmf at runtime.");
    Ok(())
}
