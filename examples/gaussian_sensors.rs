//! The paper's second motivating scenario, end to end: temperature
//! sensors with Gaussian noise.
//!
//! Readings are `N(mean, σ²)` quantized into buckets. The commissioned
//! reference distribution is known, so the network runs *identity*
//! testing — which §1 reduces to uniformity testing through the local
//! filter. We detect two failure modes: calibration drift (mean shift)
//! and noise growth (σ inflation).
//!
//! ```text
//! cargo run --release -p dut-bench --example gaussian_sensors
//! ```

use dut_core::decision::Decision;
use dut_core::identity::{FilteredOracle, IdentityFilter};
use dut_core::zero_round::ThresholdNetworkTester;
use dut_distributions::distance::l1_distance;
use dut_distributions::quantized::QuantizedGaussian;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Commissioned sensor model: 20°C ± 2°C noise, 10-30°C range,
    // quantized to 256 buckets.
    let model = QuantizedGaussian::new(256, 20.0, 2.0, 10.0, 30.0)?;
    let reference = model.to_distribution();

    // The identity filter maps "readings match the reference" to
    // "filtered stream uniform", locally at each sensor.
    let filter = IdentityFilter::new(&reference, 256)?;
    println!(
        "reference: N(20, 2²) over 256 buckets -> {} filter slots \
         (rounding error {:.4})",
        filter.output_domain_size(),
        filter.rounding_l1_error()
    );

    // Failure modes to detect.
    let drifted = model.with_mean(21.5).to_distribution(); // +1.5°C drift
    let noisy = model.with_sigma(3.5).to_distribution(); // noise growth
    let d_drift = l1_distance(&drifted, &reference)?;
    let d_noise = l1_distance(&noisy, &reference)?;
    println!("mean drift +1.5°C  -> L1 distance {d_drift:.3}");
    println!("noise 2.0 -> 3.5°C -> L1 distance {d_noise:.3}");

    // Plan one network for the smaller of the two distances.
    let eps = d_drift.min(d_noise) - filter.rounding_l1_error() - 0.05;
    let sensors = 150_000;
    let tester =
        ThresholdNetworkTester::plan(filter.output_domain_size(), sensors, eps, 1.0 / 3.0)?;
    println!(
        "\n{sensors} sensors, {} filtered readings each, alarm threshold {}",
        tester.samples_per_node(),
        tester.threshold()
    );

    let mut rng = StdRng::seed_from_u64(20);
    let verdict = |dist, label: &str, rng: &mut StdRng| {
        let oracle = FilteredOracle::new(&filter, dist);
        let rejects = (0..5)
            .filter(|_| tester.run(&oracle, rng).decision == Decision::Reject)
            .count();
        println!("{label}: {rejects}/5 alarms");
        rejects
    };

    let healthy = verdict(&reference, "healthy plant   ", &mut rng);
    let drift = verdict(&drifted, "calibration drift", &mut rng);
    let noise = verdict(&noisy, "noise growth     ", &mut rng);

    assert!(healthy <= 2, "false alarms on the healthy plant");
    assert!(drift >= 3, "missed the calibration drift");
    assert!(noise >= 3, "missed the noise growth");
    println!("\nboth failure modes detected; healthy plant stayed quiet.");
    Ok(())
}
