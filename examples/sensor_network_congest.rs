//! The paper's second scenario: a sensor network monitoring a
//! manufacturing plant, on a real (bandwidth-limited) network.
//!
//! Sensors are laid out in a grid; each holds a single quantized
//! reading. The CONGEST protocol (Theorem 1.4) concentrates readings
//! into packages via token packaging, lets each package vote, and
//! aggregates the votes up a BFS tree — in `O(D + n/(kε⁴))` rounds with
//! `O(log n)`-bit messages (enforced by the simulator).
//!
//! ```text
//! cargo run --release -p dut-bench --example sensor_network_congest
//! ```

use dut_congest::CongestUniformityTester;
use dut_core::decision::Decision;
use dut_distributions::families::step_far;
use dut_distributions::DiscreteDistribution;
use dut_netsim::topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1 << 12; // 4096 quantized temperature readings
    let (rows, cols) = (100, 120);
    let k = rows * cols;
    let epsilon = 1.0;
    let p = 1.0 / 3.0;

    let grid = topology::grid(rows, cols);
    let diameter = rows + cols - 2;
    let tester = CongestUniformityTester::plan(n, k, epsilon, p, 1)?;
    println!(
        "{rows}x{cols} sensor grid (D = {diameter}), package size τ = {}, \
         virtual threshold T = {}",
        tester.tau(),
        tester.virtual_plan().threshold
    );

    let mut rng = StdRng::seed_from_u64(1);

    // The per-run error is only bounded by 1/3, so a monitoring system
    // would decide by majority over a few independent rounds — as we do
    // here (5 rounds each).
    let rounds_of = |tester: &CongestUniformityTester,
                     dist: &DiscreteDistribution,
                     rng: &mut StdRng|
     -> Result<(usize, usize, usize), Box<dyn std::error::Error>> {
        let mut rejects = 0;
        let mut rounds = 0;
        let mut packages = 0;
        for _ in 0..5 {
            let r = tester.run(&grid, dist, rng)?;
            rejects += usize::from(r.decision == Decision::Reject);
            rounds += r.rounds;
            packages = r.packages;
        }
        Ok((rejects, rounds / 5, packages))
    };

    // Healthy plant: readings uniform over the quantization buckets.
    let healthy = DiscreteDistribution::uniform(n);
    let (rejects, mean_rounds, packages) = rounds_of(&tester, &healthy, &mut rng)?;
    println!(
        "healthy  : {rejects}/5 alarms — {mean_rounds} rounds/run \
         (theory D + n/(kε⁴) ≈ {:.0}), {packages} packages",
        tester.theory_rounds(diameter, epsilon),
    );
    assert!(rejects <= 2, "majority false alarm");

    // Faulty calibration: half the buckets systematically over-reported.
    let faulty = step_far(n, epsilon)?;
    let (rejects, _, _) = rounds_of(&tester, &faulty, &mut rng)?;
    println!("faulty   : {rejects}/5 alarms");
    assert!(rejects >= 3, "majority missed the fault");

    println!("\nCONGEST budget was enforced throughout (runs would error on violation).");
    Ok(())
}
