//! Quickstart: distributed uniformity testing in five minutes.
//!
//! A network of `k` nodes each draws a handful of samples from an
//! unknown distribution on `{0, .., n-1}` and must decide — with no
//! communication at all (the 0-round model) — whether the distribution
//! is uniform or ε-far from it.
//!
//! ```text
//! cargo run --release -p dut-bench --example quickstart
//! ```

use dut_core::decision::Decision;
use dut_core::zero_round::ThresholdNetworkTester;
use dut_distributions::families::paninski_far;
use dut_distributions::DiscreteDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1 << 18; // domain size: 262144 possible values
    let k = 120_000; // network size
    let epsilon = 0.5; // distance parameter
    let p = 1.0 / 3.0; // target error probability

    // Plan the 0-round threshold tester (Theorem 1.2): every node runs
    // the single-collision gap tester; the network rejects iff at least
    // T nodes raise an alarm.
    let tester = ThresholdNetworkTester::plan(n, k, epsilon, p)?;
    let plan = tester.plan_details();
    println!("planned 0-round threshold tester:");
    println!("  samples per node     : {}", plan.samples_per_node);
    println!(
        "  (vs √n/ε² = {:.0} for a single node working alone)",
        (n as f64).sqrt() / (epsilon * epsilon)
    );
    println!("  alarm threshold T    : {}", plan.threshold);
    println!(
        "  predicted errors     : {:.3} (uniform) / {:.3} (far)",
        plan.predicted_completeness_error, plan.predicted_soundness_error
    );

    let mut rng = StdRng::seed_from_u64(1);

    // Case 1: the distribution really is uniform.
    let uniform = DiscreteDistribution::uniform(n);
    let outcome = tester.run(&uniform, &mut rng);
    println!(
        "\nuniform input  : {} ({} of {} nodes alarmed, T = {})",
        outcome.decision, outcome.rejecting_nodes, outcome.nodes, plan.threshold
    );
    assert_eq!(outcome.decision, Decision::Accept);

    // Case 2: the hardest ε-far distribution (Paninski pairing).
    let far = paninski_far(n, epsilon)?;
    let outcome = tester.run(&far, &mut rng);
    println!(
        "ε-far input    : {} ({} of {} nodes alarmed, T = {})",
        outcome.decision, outcome.rejecting_nodes, outcome.nodes, plan.threshold
    );
    assert_eq!(outcome.decision, Decision::Reject);

    println!(
        "\nthe network distinguished them with ~{} samples per node.",
        plan.samples_per_node
    );
    Ok(())
}
