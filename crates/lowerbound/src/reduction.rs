//! The Theorem 7.1 reduction, made executable.
//!
//! Blais–Canonne–Gur: a `q`-sample uniformity tester with error
//! `(δ₀, δ₁)` yields a private-coin SMP protocol for Equality of cost
//! `q·log n`. The construction implemented here:
//!
//! 1. Both players encode their `n`-bit input with a shared
//!    constant-relative-distance code `C` (so distinct inputs differ in
//!    a β ≥ 1/6 fraction of the `m` codeword positions).
//! 2. Alice defines the distribution `P_X = uniform over
//!    {(i, C(X)_i) : i ∈ [m]}` on the domain `[2m]`, draws `q` iid
//!    samples from it with her private coins, and sends them —
//!    `q·⌈log 2m⌉` bits. Bob does the same for `P_Y`.
//! 3. The referee interleaves the two sample streams with fresh coins,
//!    producing iid samples from the mixture `μ = ½P_X + ½P_Y`, and
//!    feeds them to the collision gap tester.
//!
//! Collision accounting: if `X = Y`, μ is uniform on an `m`-subset and
//! has collision probability exactly `1/m`; if `X ≠ Y` with differing
//! fraction β, `χ(μ) = (1 − β/2)/m < 1/m`. The gap tester's rejection
//! probability therefore *separates* the two cases by the factor
//! `(1 − β/2)` — the same `Θ(ε²δ)`-sliver regime as the uniformity
//! problem itself, which is exactly why the SMP lower bound transfers.
//!
//! The referee outputs "equal" iff the tester saw a collision among its
//! `q` mixture samples: `Pr[output equal | X=Y] ≈ C(q,2)/m` and
//! `Pr[output equal | X≠Y] ≤ (1−β/2)·C(q,2)/m` — an asymmetric-error
//! Equality protocol in the paper's `(1−τδ, δ)` regime with
//! `δ = C(q,2)/m`.

use dut_ecc::{BinaryCode, RandomLinearCode};
use dut_smp::framework::SmpProtocol;
use rand::Rng;

/// The Equality protocol obtained from the collision gap tester via
/// Theorem 7.1.
#[derive(Debug, Clone)]
pub struct EqFromCollisionTester {
    m: usize,
    q: usize,
    code: RandomLinearCode,
}

impl EqFromCollisionTester {
    /// Builds the reduction for `n_bits`-bit inputs, a rate-1/3 shared
    /// code, and `q` samples per player.
    ///
    /// # Panics
    ///
    /// Panics if `n_bits == 0` or `q < 2` (fewer than two samples can
    /// never collide).
    pub fn new(n_bits: usize, q: usize, seed: u64) -> Self {
        assert!(n_bits > 0, "need at least one input bit");
        assert!(q >= 2, "need at least two samples to observe a collision");
        let code = RandomLinearCode::rate_one_third(n_bits, seed);
        EqFromCollisionTester {
            m: code.output_bits(),
            q,
            code,
        }
    }

    /// Samples drawn (and sent) per player.
    pub fn samples(&self) -> usize {
        self.q
    }

    /// The codeword length `m` (support size of each player's
    /// distribution; the mixture domain is `2m`).
    pub fn codeword_bits(&self) -> usize {
        self.m
    }

    /// The protocol's `δ` parameter: the probability of seeing a
    /// collision on equal inputs, `≈ C(q,2)/m` (the "equal" output
    /// rate).
    pub fn delta(&self) -> f64 {
        let q = self.q as f64;
        q * (q - 1.0) / 2.0 / self.m as f64
    }

    /// Communication per player in bits: `q·⌈log₂ 2m⌉`.
    pub fn message_bits_bound(&self) -> usize {
        self.q * ((2 * self.m) as f64).log2().ceil() as usize
    }

    /// Draws `q` iid samples from `P_input` = uniform over
    /// `{(i, C(input)_i)}`, encoded as `2i + bit ∈ [2m]`.
    fn draw_samples<R: Rng + ?Sized>(&self, input: &[u64], rng: &mut R) -> Vec<u64> {
        let cw = self.code.encode(input);
        (0..self.q)
            .map(|_| {
                let i = rng.gen_range(0..self.m);
                let bit = (cw[i / 64] >> (i % 64)) & 1;
                (2 * i) as u64 + bit
            })
            .collect()
    }
}

impl SmpProtocol for EqFromCollisionTester {
    type Input = [u64];
    type Msg = Vec<u64>;

    fn alice<R: Rng + ?Sized>(&self, x: &[u64], rng: &mut R) -> Vec<u64> {
        self.draw_samples(x, rng)
    }

    fn bob<R: Rng + ?Sized>(&self, y: &[u64], rng: &mut R) -> Vec<u64> {
        self.draw_samples(y, rng)
    }

    /// Outputs `true` ("equal") iff the mixture stream contains a
    /// collision. The referee's interleaving coins are derived from the
    /// messages (the referee is deterministic given its own coin
    /// stream; using a message-seeded stream keeps the trait signature
    /// coin-free without correlating with either player's private
    /// randomness).
    fn referee(&self, alice: &Vec<u64>, bob: &Vec<u64>) -> bool {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Seed the referee's interleaving coins from both transcripts.
        let seed = alice
            .iter()
            .chain(bob.iter())
            .fold(0x9E37_79B9_7F4A_7C15u64, |acc, &s| {
                acc.rotate_left(7) ^ s.wrapping_mul(0xBF58_476D_1CE4_E5B9)
            });
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mixture = Vec::with_capacity(self.q);
        let mut ai = alice.iter();
        let mut bi = bob.iter();
        for _ in 0..self.q {
            let pick_alice = rng.gen::<bool>();
            let sample = if pick_alice { ai.next() } else { bi.next() };
            match sample {
                Some(&s) => mixture.push(s),
                None => break, // one stream exhausted; use what we have
            }
        }
        let mut sorted = mixture;
        sorted.sort_unstable();
        sorted.windows(2).any(|w| w[0] == w[1])
    }

    fn message_bits(&self, msg: &Vec<u64>) -> usize {
        msg.len() * ((2 * self.m) as f64).log2().ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rate_equal_output(
        p: &EqFromCollisionTester,
        x: &[u64],
        y: &[u64],
        trials: usize,
        seed: u64,
    ) -> f64 {
        let mut ra = StdRng::seed_from_u64(seed);
        let mut rb = StdRng::seed_from_u64(seed ^ 0xFFFF);
        let hits = (0..trials)
            .filter(|_| p.run(x, y, &mut ra, &mut rb).0)
            .count();
        hits as f64 / trials as f64
    }

    #[test]
    fn construction_and_cost() {
        let p = EqFromCollisionTester::new(256, 16, 1);
        assert_eq!(p.samples(), 16);
        assert_eq!(p.codeword_bits(), 768);
        // q * ceil(log2(1536)) = 16 * 11
        assert_eq!(p.message_bits_bound(), 176);
        assert!(p.delta() > 0.0 && p.delta() < 1.0);
    }

    #[test]
    fn equal_inputs_collide_at_rate_delta() {
        let p = EqFromCollisionTester::new(128, 12, 2);
        let x = [0xABCD_EF01_2345_6789u64, 0x1111_2222_3333_4444];
        let rate = rate_equal_output(&p, &x, &x, 60_000, 7);
        let delta = p.delta();
        // The birthday collision rate is slightly below C(q,2)/m
        // (union bound); allow 25% relative slack plus MC noise.
        assert!(
            rate > 0.6 * delta && rate < 1.1 * delta,
            "collision rate {rate} vs delta {delta}"
        );
    }

    #[test]
    fn distinct_inputs_collide_less() {
        let p = EqFromCollisionTester::new(128, 24, 3);
        let x = [0u64, 0];
        let y = [u64::MAX, u64::MAX]; // max distance after linear code
        let trials = 200_000;
        let rate_eq = rate_equal_output(&p, &x, &x, trials, 8);
        let rate_neq = rate_equal_output(&p, &x, &y, trials, 9);
        assert!(
            rate_neq < rate_eq,
            "no separation: neq {rate_neq} vs eq {rate_eq}"
        );
        // χ ratio is (1 − β/2) with β ≈ 1/2 for a random pair: ~0.75.
        let ratio = rate_neq / rate_eq;
        assert!(
            ratio > 0.5 && ratio < 0.95,
            "collision ratio {ratio} outside the (1 − β/2) band"
        );
    }

    #[test]
    fn one_bit_flip_still_separates() {
        // Worst-case pair: inputs differing in one bit; the code's
        // distance keeps codewords ≥ 1/6 apart.
        let p = EqFromCollisionTester::new(64, 32, 4);
        let x = [0x0123_4567_89AB_CDEFu64];
        let mut y = x;
        y[0] ^= 1;
        let trials = 200_000;
        let rate_eq = rate_equal_output(&p, &x, &x, trials, 10);
        let rate_neq = rate_equal_output(&p, &x, &y, trials, 11);
        assert!(
            rate_neq < rate_eq * 0.98,
            "one-bit flip not separated: {rate_neq} vs {rate_eq}"
        );
    }

    #[test]
    #[should_panic(expected = "two samples")]
    fn rejects_single_sample() {
        let _ = EqFromCollisionTester::new(64, 1, 0);
    }
}
