//! Empirical lower-bound probes (Experiment E12).
//!
//! Theorem 1.3 says anonymous 0-round testers need `Ω(√(n/k))` samples
//! per node. These helpers sweep the per-node sample count `s` around
//! `√(n/k)` and measure the distinguishing power of the *threshold*
//! 0-round network (the strongest 0-round tester we have): below the
//! threshold, no choice of alarm threshold `T` separates uniform from
//! Paninski-far; above it, the separation appears.

use dut_core::decision::Decision;
use dut_core::gap::GapTester;
use dut_distributions::families::paninski_far;
use dut_distributions::DiscreteDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The result of probing one per-node sample count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSweepPoint {
    /// Samples per node probed.
    pub samples_per_node: usize,
    /// Best achievable network error over all thresholds `T`
    /// (max of the two error sides, estimated by Monte Carlo).
    pub best_error: f64,
    /// The threshold achieving it.
    pub best_threshold: usize,
}

/// Probes the best-achievable error of a `k`-node 0-round threshold
/// network at a given per-node sample count, against the Paninski-far
/// family at distance `epsilon`.
///
/// For each trial, all `k` nodes run the single-collision tester; the
/// per-trial alarm counts under uniform and under far inputs are
/// collected, and the best threshold is chosen *in hindsight* — an
/// upper bound on what any fixed threshold can achieve, which makes the
/// "below √(n/k) nothing works" conclusion robust.
///
/// # Panics
///
/// Panics if parameters are degenerate (see [`GapTester::with_samples`]).
pub fn probe_sample_count(
    n: usize,
    k: usize,
    epsilon: f64,
    samples_per_node: usize,
    trials: usize,
    seed: u64,
) -> SampleSweepPoint {
    let tester = GapTester::with_samples(n, samples_per_node).expect("valid tester");
    let uniform = DiscreteDistribution::uniform(n);
    let far = paninski_far(n, epsilon).expect("valid far instance");
    let mut rng = StdRng::seed_from_u64(seed);

    let alarms = |d: &DiscreteDistribution, rng: &mut StdRng| -> Vec<usize> {
        (0..trials)
            .map(|_| {
                (0..k)
                    .filter(|_| tester.run(d, rng) == Decision::Reject)
                    .count()
            })
            .collect()
    };
    let uni_alarms = alarms(&uniform, &mut rng);
    let far_alarms = alarms(&far, &mut rng);

    // Best hindsight threshold: sweep T over the observed range.
    let max_alarm = uni_alarms
        .iter()
        .chain(far_alarms.iter())
        .copied()
        .max()
        .unwrap_or(0);
    let mut best_error = 1.0f64;
    let mut best_threshold = 1usize;
    for t in 1..=max_alarm + 1 {
        let comp = uni_alarms.iter().filter(|&&a| a >= t).count() as f64 / trials as f64;
        let sound = far_alarms.iter().filter(|&&a| a < t).count() as f64 / trials as f64;
        let err = comp.max(sound);
        if err < best_error {
            best_error = err;
            best_threshold = t;
        }
    }
    SampleSweepPoint {
        samples_per_node,
        best_error,
        best_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn far_below_bound_is_useless() {
        // s = 2 on a large domain: collisions are vanishing; no
        // threshold separates anything.
        let p = probe_sample_count(1 << 16, 2000, 1.0, 2, 40, 1);
        assert!(
            p.best_error > 0.25,
            "2 samples should not separate, error {}",
            p.best_error
        );
    }

    #[test]
    fn above_bound_separates() {
        // s well above √(n/k)·(1/ε²): separation appears.
        let n = 1 << 12;
        let k = 12_000;
        let s = 10; // ≈ 17·√(n/k) at these parameters
        let p = probe_sample_count(n, k, 1.0, s, 40, 2);
        assert!(
            p.best_error < 0.25,
            "s={s} should separate, error {}",
            p.best_error
        );
    }

    #[test]
    fn error_decreases_with_samples() {
        let n = 1 << 12;
        let k = 4_000;
        let few = probe_sample_count(n, k, 1.0, 2, 40, 3);
        let many = probe_sample_count(n, k, 1.0, 12, 40, 3);
        assert!(
            many.best_error <= few.best_error,
            "more samples should not hurt: {} vs {}",
            many.best_error,
            few.best_error
        );
    }
}
