//! Closed-form lower-bound functions from §7 of the paper.

use dut_distributions::info::f_tau;

/// Theorem 7.2: `SMP_{(1−τ′δ), δ}(EQ) = Ω(√(f(τ)δn))` with
/// `f(τ) = τ − 1 − ln τ`. Returns the bound with the Ω-constant set
/// to 1.
///
/// # Panics
///
/// Panics unless `τ > 1` and `δ ∈ (0, min(1/τ, 1/4))` (the theorem's
/// hypotheses).
pub fn theorem_7_2_bound(n: usize, tau: f64, delta: f64) -> f64 {
    assert!(tau > 1.0, "theorem 7.2 requires tau > 1");
    assert!(
        delta > 0.0 && delta < (1.0 / tau).min(0.25),
        "theorem 7.2 requires delta < min(1/tau, 1/4)"
    );
    (f_tau(tau) * delta * n as f64).sqrt()
}

/// Corollary 7.4: the query complexity of a `(δ, α)`-gap ε-uniformity
/// tester is `Ω(√(f(α)δn)/log n)`. Returns the bound with the
/// Ω-constant set to 1 (natural log, as everywhere in this repo).
///
/// # Panics
///
/// Panics unless `α > 1`, `δ ∈ (0, 1)`, and `n ≥ 2`.
pub fn corollary_7_4_bound(n: usize, delta: f64, alpha: f64) -> f64 {
    assert!(alpha > 1.0, "corollary 7.4 requires alpha > 1");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    assert!(n >= 2, "domain too small");
    (f_tau(alpha) * delta * n as f64).sqrt() / (n as f64).ln()
}

/// Theorem 1.3: any anonymous 0-round ε-uniformity tester with error
/// ≤ 1/3 on `k` nodes needs `Ω(√(n/k)/log n)` samples per node.
/// Returns the bound with the Ω-constant set to 1.
///
/// # Panics
///
/// Panics unless `n ≥ 2` and `k ≥ 1`.
pub fn theorem_1_3_bound(n: usize, k: usize) -> f64 {
    assert!(n >= 2, "domain too small");
    assert!(k >= 1, "network must be non-empty");
    (n as f64 / k as f64).sqrt() / (n as f64).ln()
}

/// The per-node (δ, α) regime Theorem 1.3's proof forces on an
/// anonymous tester with network error 1/3: returns `(δ_max, α_min)`
/// where `δ ≤ 1 − (2/3)^{1/k}` and `α·δ ≥ 1 − (1/3)^{1/k}`.
pub fn forced_gap_regime(k: usize) -> (f64, f64) {
    assert!(k >= 1, "network must be non-empty");
    let delta_max = 1.0 - (2.0f64 / 3.0).powf(1.0 / k as f64);
    let alpha_min = (1.0 - (1.0f64 / 3.0).powf(1.0 / k as f64)) / delta_max;
    (delta_max, alpha_min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_7_2_scales_with_sqrt_n() {
        let a = theorem_7_2_bound(1 << 10, 2.0, 0.1);
        let b = theorem_7_2_bound(1 << 14, 2.0, 0.1);
        assert!((b / a - 4.0).abs() < 0.01);
    }

    #[test]
    fn theorem_7_2_grows_with_tau() {
        assert!(theorem_7_2_bound(1 << 10, 3.0, 0.1) > theorem_7_2_bound(1 << 10, 1.5, 0.1));
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn theorem_7_2_rejects_large_delta() {
        let _ = theorem_7_2_bound(1024, 2.0, 0.6);
    }

    #[test]
    fn corollary_7_4_below_upper_bound() {
        // Lower bound must sit below the gap tester's √(2δn) upper bound.
        let n = 1 << 16;
        let delta = 0.01;
        let lower = corollary_7_4_bound(n, delta, 1.25);
        let upper = (2.0 * delta * n as f64).sqrt();
        assert!(lower < upper, "lower {lower} above upper {upper}");
        assert!(lower > 0.0);
    }

    #[test]
    fn theorem_1_3_matches_theorem_1_2_shape() {
        // Lower bound √(n/k)/ln n vs upper bound √(n/k)/ε²: same
        // √(n/k) scaling.
        let n = 1 << 16;
        let lower_1 = theorem_1_3_bound(n, 100);
        let lower_4 = theorem_1_3_bound(n, 400);
        assert!((lower_1 / lower_4 - 2.0).abs() < 0.01);
    }

    #[test]
    fn forced_regime_matches_paper_constants() {
        // The paper derives α > 5/4 for any k.
        for k in [1usize, 2, 10, 1000, 1_000_000] {
            let (delta, alpha) = forced_gap_regime(k);
            assert!(delta > 0.0 && delta < 1.0);
            assert!(alpha > 1.25, "k={k}: alpha = {alpha}");
            // ln(3)/ln(3/2) is the k→∞ limit ≈ 2.7095
            assert!(alpha < 2.8);
        }
    }

    #[test]
    fn forced_regime_alpha_approaches_c_p() {
        let (_, alpha) = forced_gap_regime(10_000_000);
        assert!((alpha - 2.7095).abs() < 0.01);
    }
}
