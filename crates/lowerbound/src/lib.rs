//! Lower-bound machinery for distributed uniformity testing (§7).
//!
//! The paper's lower bound (Theorem 1.3) routes through simultaneous
//! communication complexity: a `q`-sample uniformity tester with error
//! `(δ₀, δ₁)` yields an SMP Equality protocol of cost `q·log n`
//! (Theorem 7.1, from Blais–Canonne–Gur), and Equality in the
//! asymmetric-error regime needs `Ω(√(f(τ)δn))` bits (Theorem 7.2), so
//! gap uniformity testers need `Ω(√(f(α)δn)/log n)` samples
//! (Corollary 7.4) and anonymous 0-round testers need `Ω(√(n/k))`
//! samples per node.
//!
//! This crate provides:
//!
//! * [`bounds`] — the closed-form bound functions of §7.
//! * [`reduction`] — the Theorem 7.1 reduction made executable: an SMP
//!   Equality protocol built from the collision gap tester, whose
//!   acceptance gap is exactly the tester's (δ, α) gap.
//! * [`experiments`] — empirical lower-bound probes: sweeping the
//!   per-node sample count `s` around `√(n/k)` and watching the 0-round
//!   testers lose their distinguishing power (Experiment E12).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounds;
pub mod experiments;
pub mod reduction;

pub use bounds::{corollary_7_4_bound, theorem_1_3_bound, theorem_7_2_bound};
pub use reduction::EqFromCollisionTester;
