//! Property checks on the netsim primitives, driven by the shared
//! `dut-testkit` strategies: every generated topology must be a
//! simple, connected, undirected graph, and fault plans must classify
//! themselves consistently.

use dut_testkit::strategies::{fault_plan, topology_graph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_topologies_are_connected_simple_and_symmetric(g in topology_graph(2, 24)) {
        prop_assert!(g.node_count() >= 1);
        prop_assert!(g.is_connected());
        for v in 0..g.node_count() {
            for &u in g.neighbors(v) {
                prop_assert_ne!(u, v, "self-loop at {}", v);
                prop_assert!(
                    g.neighbors(u).contains(&v),
                    "edge {}->{} missing its reverse", v, u
                );
            }
        }
    }

    #[test]
    fn fault_plans_classify_themselves_consistently(plan in fault_plan(8, 16, 0.3, 0.3)) {
        let quiet = plan.drop_prob == 0.0
            && plan.flip_prob == 0.0
            && plan.crashes.is_empty();
        prop_assert_eq!(plan.is_none(), quiet);
        for &(node, round) in &plan.crashes {
            prop_assert!(plan.crashed(node, round), "crash entry not visible at its own round");
            prop_assert!(plan.crashed(node, round + 1), "crashes must be permanent");
        }
    }
}
