//! Differential tests: the flat-buffer round engine (serial and
//! parallel) against the retained naive reference engine
//! ([`dut_netsim::reference::run_reference`]).
//!
//! For every protocol × topology pair we assert the engines produce
//! *identical* `RunReport`s — rounds, message and bit totals, the
//! per-edge maximum — and identical final node states. Error paths
//! (CONGEST budget violations, round-limit exhaustion) must also agree
//! exactly, including the offending edge and bit counts.

use dut_netsim::engine::{
    BandwidthModel, EngineError, EngineScratch, Network, NodeProtocol, Outbox, RunOptions,
    RunReport,
};
use dut_netsim::fault::{FaultInjectable, FaultPlan};
use dut_netsim::graph::{Graph, NodeId};
use dut_netsim::reference::{run_reference, run_reference_faulted};
use dut_netsim::topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------
// Protocols
// ---------------------------------------------------------------------

/// Token flooding from node 0 (unit messages).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Flood {
    seen: bool,
}

impl NodeProtocol for Flood {
    type Msg = ();
    fn on_round(
        &mut self,
        node: NodeId,
        round: usize,
        inbox: &[(NodeId, ())],
        out: &mut Outbox<'_, ()>,
    ) {
        let newly = (node == 0 && round == 0) || (!self.seen && !inbox.is_empty());
        if newly {
            self.seen = true;
            out.broadcast(());
        }
    }
    fn is_done(&self) -> bool {
        self.seen
    }
}

/// BFS distance computation from node 0 (u64 distance messages).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Bfs {
    dist: Option<u64>,
}

impl NodeProtocol for Bfs {
    type Msg = u64;
    fn on_round(
        &mut self,
        node: NodeId,
        round: usize,
        inbox: &[(NodeId, u64)],
        out: &mut Outbox<'_, u64>,
    ) {
        if self.dist.is_some() {
            return;
        }
        if node == 0 && round == 0 {
            self.dist = Some(0);
            out.broadcast(1);
        } else if let Some(&d) = inbox.iter().map(|(_, d)| d).min() {
            self.dist = Some(d);
            out.broadcast(d + 1);
        }
    }
    fn is_done(&self) -> bool {
        self.dist.is_some()
    }
}

/// Max-id leader election by gossip (u64 id messages).
#[derive(Debug, Clone, PartialEq, Eq)]
struct MaxId {
    id: u64,
    best: u64,
}

impl MaxId {
    fn new(id: u64) -> Self {
        MaxId { id, best: id }
    }
}

impl NodeProtocol for MaxId {
    type Msg = u64;
    fn on_round(
        &mut self,
        _node: NodeId,
        round: usize,
        inbox: &[(NodeId, u64)],
        out: &mut Outbox<'_, u64>,
    ) {
        let incoming = inbox.iter().map(|&(_, id)| id).max().unwrap_or(0);
        if round == 0 {
            out.broadcast(self.best);
        } else if incoming > self.best {
            self.best = incoming;
            out.broadcast(self.best);
        }
    }
    fn is_done(&self) -> bool {
        true
    }
}

/// Sends an over-budget message from a chosen node at a chosen round —
/// used to check error-path equality under CONGEST.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FatSender {
    trigger_node: NodeId,
    trigger_round: usize,
}

impl NodeProtocol for FatSender {
    type Msg = Vec<u64>;
    fn on_round(
        &mut self,
        node: NodeId,
        round: usize,
        _inbox: &[(NodeId, Vec<u64>)],
        out: &mut Outbox<'_, Vec<u64>>,
    ) {
        if node == self.trigger_node && round == self.trigger_round {
            out.broadcast(vec![0u64; 16]); // 1024 bits per edge
        } else if round == 0 {
            out.broadcast(vec![node as u64]); // keep the run alive
        }
    }
    fn is_done(&self) -> bool {
        true
    }
}

/// Never quiesces — used to check round-limit error equality.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Chatter;

impl NodeProtocol for Chatter {
    type Msg = ();
    fn on_round(
        &mut self,
        _node: NodeId,
        _round: usize,
        _inbox: &[(NodeId, ())],
        out: &mut Outbox<'_, ()>,
    ) {
        out.broadcast(());
    }
    fn is_done(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

fn topologies() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    vec![
        ("line", topology::line(9)),
        ("star", topology::star(10)),
        ("clique", topology::complete(8)),
        ("grid", topology::grid(3, 4)),
        (
            "erdos-renyi",
            topology::connected_erdos_renyi(16, 0.25, &mut rng),
        ),
    ]
}

fn assert_reports_equal<P: PartialEq + std::fmt::Debug>(
    label: &str,
    reference: &RunReport<P>,
    candidate: &RunReport<P>,
) {
    assert_eq!(reference.rounds, candidate.rounds, "{label}: rounds");
    assert_eq!(
        reference.total_messages, candidate.total_messages,
        "{label}: total_messages"
    );
    assert_eq!(
        reference.total_bits, candidate.total_bits,
        "{label}: total_bits"
    );
    assert_eq!(
        reference.max_edge_bits_per_round, candidate.max_edge_bits_per_round,
        "{label}: max_edge_bits_per_round"
    );
    assert_eq!(reference.nodes, candidate.nodes, "{label}: final states");
}

/// Runs `states` on `g` three ways — reference, flat serial, flat
/// parallel (3 threads, threshold forced off) — and asserts all three
/// reports and final states are identical.
fn differential<P>(label: &str, g: &Graph, model: BandwidthModel, states: Vec<P>, max_rounds: usize)
where
    P: NodeProtocol + Clone + PartialEq + std::fmt::Debug + Send,
    P::Msg: Send + Sync + FaultInjectable,
{
    let reference = run_reference(g, model, states.clone(), max_rounds)
        .unwrap_or_else(|e| panic!("{label}: reference failed: {e}"));

    let mut net = Network::new(g, model);
    let serial = net
        .run(states.clone(), max_rounds)
        .unwrap_or_else(|e| panic!("{label}: serial flat engine failed: {e}"));
    assert_reports_equal(&format!("{label} (serial)"), &reference, &serial);

    let mut scratch = EngineScratch::new();
    let parallel = net
        .run_with_options(states, max_rounds, &mut scratch, &RunOptions::parallel(3))
        .unwrap_or_else(|e| panic!("{label}: parallel flat engine failed: {e}"));
    assert_reports_equal(&format!("{label} (parallel)"), &reference, &parallel);
}

// ---------------------------------------------------------------------
// Success-path equivalence
// ---------------------------------------------------------------------

#[test]
fn flood_matches_reference_on_all_topologies() {
    for (name, g) in topologies() {
        let k = g.node_count();
        differential(
            &format!("flood/{name}"),
            &g,
            BandwidthModel::Local,
            vec![Flood { seen: false }; k],
            4 * k,
        );
    }
}

#[test]
fn bfs_matches_reference_on_all_topologies() {
    for (name, g) in topologies() {
        let k = g.node_count();
        differential(
            &format!("bfs/{name}"),
            &g,
            BandwidthModel::Local,
            vec![Bfs { dist: None }; k],
            4 * k,
        );
    }
}

#[test]
fn max_id_matches_reference_on_all_topologies() {
    for (name, g) in topologies() {
        let k = g.node_count();
        // Scrambled ids so the max travels a non-trivial path.
        let states: Vec<MaxId> = (0..k)
            .map(|v| MaxId::new(((v as u64).wrapping_mul(0x9E37) % 251) + 1))
            .collect();
        differential(
            &format!("max-id/{name}"),
            &g,
            BandwidthModel::Local,
            states,
            4 * k,
        );
    }
}

#[test]
fn congest_metering_matches_reference() {
    // Under a CONGEST budget wide enough for the 64-bit BFS messages,
    // the metered bit totals must agree exactly on every topology.
    for (name, g) in topologies() {
        let k = g.node_count();
        differential(
            &format!("bfs-congest/{name}"),
            &g,
            BandwidthModel::Congest { bits_per_edge: 64 },
            vec![Bfs { dist: None }; k],
            4 * k,
        );
    }
}

// ---------------------------------------------------------------------
// Error-path equivalence
// ---------------------------------------------------------------------

#[test]
fn bandwidth_errors_match_reference() {
    // The violation fires at round 1 on node 3 (round 0's keep-alive
    // broadcasts hold the run open); all engines must report the same
    // offending edge, round, bit count, and budget.
    for (name, g) in topologies() {
        let k = g.node_count();
        let states: Vec<FatSender> = (0..k)
            .map(|_| FatSender {
                trigger_node: 3,
                trigger_round: 1,
            })
            .collect();
        let model = BandwidthModel::Congest { bits_per_edge: 512 };

        let ref_err = run_reference(&g, model, states.clone(), 16).unwrap_err();
        assert!(
            matches!(ref_err, EngineError::BandwidthExceeded { .. }),
            "{name}: reference produced {ref_err:?}"
        );

        let mut net = Network::new(&g, model);
        let serial_err = net.run(states.clone(), 16).unwrap_err();
        assert_eq!(ref_err, serial_err, "{name}: serial error");

        let mut scratch = EngineScratch::new();
        let parallel_err = net
            .run_with_options(states, 16, &mut scratch, &RunOptions::parallel(3))
            .unwrap_err();
        assert_eq!(ref_err, parallel_err, "{name}: parallel error");
    }
}

#[test]
fn round_limit_errors_match_reference() {
    for (name, g) in topologies() {
        let k = g.node_count();
        let states = vec![Chatter; k];

        let ref_err = run_reference(&g, BandwidthModel::Local, states.clone(), 7).unwrap_err();
        assert_eq!(ref_err, EngineError::RoundLimit { max_rounds: 7 });

        let mut net = Network::new(&g, BandwidthModel::Local);
        let serial_err = net.run(states.clone(), 7).unwrap_err();
        assert_eq!(ref_err, serial_err, "{name}: serial error");

        let mut scratch = EngineScratch::new();
        let parallel_err = net
            .run_with_options(states, 7, &mut scratch, &RunOptions::parallel(3))
            .unwrap_err();
        assert_eq!(ref_err, parallel_err, "{name}: parallel error");
    }
}

// ---------------------------------------------------------------------
// Fault-injection equivalence
// ---------------------------------------------------------------------

/// The fault plans the matrix runs under: drops only, flips only, a
/// crash schedule, crash/rejoin cycles, and everything together.
fn fault_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("drops", FaultPlan::seeded(0xFA01).with_drops(0.15)),
        ("flips", FaultPlan::seeded(0xFA02).with_flips(0.01)),
        ("crash", FaultPlan::seeded(0xFA03).with_crash(1, 2)),
        (
            "mixed",
            FaultPlan::seeded(0xFA04)
                .with_drops(0.1)
                .with_flips(0.005)
                .with_crash(2, 3),
        ),
        (
            "crash-rejoin",
            FaultPlan::seeded(0xFA05).with_crash(1, 2).with_rejoin(1, 7),
        ),
        (
            "mixed-rejoin",
            FaultPlan::seeded(0xFA06)
                .with_drops(0.1)
                .with_flips(0.005)
                .with_crash(2, 3)
                .with_rejoin(2, 8)
                .with_crash(2, 11)
                .with_rejoin(2, 13),
        ),
    ]
}

fn assert_outcomes_equal<P: PartialEq + std::fmt::Debug>(
    label: &str,
    reference: &Result<RunReport<P>, EngineError>,
    candidate: &Result<RunReport<P>, EngineError>,
) {
    match (reference, candidate) {
        (Ok(r), Ok(c)) => assert_reports_equal(label, r, c),
        (Err(r), Err(c)) => assert_eq!(r, c, "{label}: error values"),
        (r, c) => panic!(
            "{label}: outcomes diverge: reference ok={} vs candidate ok={}",
            r.is_ok(),
            c.is_ok()
        ),
    }
}

/// Runs `states` under `plan` three ways — faulted reference, flat
/// serial, flat parallel (3 threads) — and asserts the three outcomes
/// are bit-identical: same reports and final states on success, same
/// error values on failure. Faults can legitimately push a protocol
/// into an error (an unreached flood hits the round limit), so both
/// paths are compared.
fn fault_differential<P>(
    label: &str,
    g: &Graph,
    model: BandwidthModel,
    states: Vec<P>,
    max_rounds: usize,
    plan: &FaultPlan,
) where
    P: NodeProtocol + Clone + PartialEq + std::fmt::Debug + Send,
    P::Msg: Send + Sync + FaultInjectable,
{
    let reference = run_reference_faulted(g, model, states.clone(), max_rounds, plan);

    let mut net = Network::new(g, model);
    let mut scratch = EngineScratch::new();
    let serial_options = RunOptions::default().with_faults(plan.clone());
    let serial = net.run_with_options(states.clone(), max_rounds, &mut scratch, &serial_options);
    assert_outcomes_equal(&format!("{label} (serial)"), &reference, &serial);

    let parallel_options = RunOptions::parallel(3).with_faults(plan.clone());
    let parallel = net.run_with_options(states, max_rounds, &mut scratch, &parallel_options);
    assert_outcomes_equal(&format!("{label} (parallel)"), &reference, &parallel);
}

#[test]
fn faulted_flood_matches_reference_on_full_matrix() {
    for (plan_name, plan) in fault_plans() {
        for (name, g) in topologies() {
            let k = g.node_count();
            fault_differential(
                &format!("flood/{plan_name}/{name}"),
                &g,
                BandwidthModel::Local,
                vec![Flood { seen: false }; k],
                4 * k,
                &plan,
            );
        }
    }
}

#[test]
fn faulted_bfs_matches_reference_on_full_matrix() {
    for (plan_name, plan) in fault_plans() {
        for (name, g) in topologies() {
            let k = g.node_count();
            fault_differential(
                &format!("bfs/{plan_name}/{name}"),
                &g,
                BandwidthModel::Congest { bits_per_edge: 64 },
                vec![Bfs { dist: None }; k],
                4 * k,
                &plan,
            );
        }
    }
}

#[test]
fn faulted_max_id_matches_reference_on_full_matrix() {
    for (plan_name, plan) in fault_plans() {
        for (name, g) in topologies() {
            let k = g.node_count();
            let states: Vec<MaxId> = (0..k)
                .map(|v| MaxId::new(((v as u64).wrapping_mul(0x9E37) % 251) + 1))
                .collect();
            fault_differential(
                &format!("max-id/{plan_name}/{name}"),
                &g,
                BandwidthModel::Local,
                states,
                4 * k,
                &plan,
            );
        }
    }
}

#[test]
fn faulted_bandwidth_errors_match_reference_on_full_matrix() {
    // Senders pay for dropped messages, so the metering — and the exact
    // offending edge/round/bits of the violation — must agree under
    // faults too.
    for (plan_name, plan) in fault_plans() {
        for (name, g) in topologies() {
            let k = g.node_count();
            let states: Vec<FatSender> = (0..k)
                .map(|_| FatSender {
                    trigger_node: 3,
                    trigger_round: 1,
                })
                .collect();
            fault_differential(
                &format!("fat-sender/{plan_name}/{name}"),
                &g,
                BandwidthModel::Congest { bits_per_edge: 512 },
                states,
                16,
                &plan,
            );
        }
    }
}

#[test]
fn faulted_round_limit_errors_match_reference_on_full_matrix() {
    for (plan_name, plan) in fault_plans() {
        for (name, g) in topologies() {
            let k = g.node_count();
            fault_differential(
                &format!("chatter/{plan_name}/{name}"),
                &g,
                BandwidthModel::Local,
                vec![Chatter; k],
                7,
                &plan,
            );
        }
    }
}

#[test]
fn zero_fault_plan_matches_unfaulted_run() {
    // FaultPlan::none() and a seeded-but-all-zero plan must both take
    // the plain path: identical reports to a run without any options.
    for plan in [FaultPlan::none(), FaultPlan::seeded(0x5EED)] {
        for (name, g) in topologies() {
            let k = g.node_count();
            let plain = {
                let mut net = Network::new(&g, BandwidthModel::Local);
                net.run(vec![Bfs { dist: None }; k], 4 * k).unwrap()
            };
            let mut net = Network::new(&g, BandwidthModel::Local);
            let mut scratch = EngineScratch::new();
            let options = RunOptions::default().with_faults(plan.clone());
            let faulted = net
                .run_with_options(vec![Bfs { dist: None }; k], 4 * k, &mut scratch, &options)
                .unwrap();
            assert_reports_equal(&format!("bfs-zero-fault/{name}"), &plain, &faulted);
        }
    }
}

// ---------------------------------------------------------------------
// Scratch-reuse equivalence across heterogeneous runs
// ---------------------------------------------------------------------

#[test]
fn one_scratch_reused_across_topologies_matches_reference() {
    // A single scratch serving every topology in sequence (the
    // Monte-Carlo usage pattern) must not leak state between runs.
    let mut scratch = EngineScratch::new();
    for (name, g) in topologies() {
        let k = g.node_count();
        let reference = run_reference(
            &g,
            BandwidthModel::Local,
            vec![Bfs { dist: None }; k],
            4 * k,
        )
        .unwrap();
        let mut net = Network::new(&g, BandwidthModel::Local);
        let report = net
            .run_with_scratch(vec![Bfs { dist: None }; k], 4 * k, &mut scratch)
            .unwrap();
        assert_reports_equal(&format!("bfs-reused-scratch/{name}"), &reference, &report);
    }
}
