//! Differential tests for the million-node scaling features:
//!
//! * implicit topologies vs their materialized [`Graph`]s —
//!   neighbor-for-neighbor equivalence (proptest over `k ≤ 512`, all
//!   families) and bit-identical engine runs;
//! * sparse-activity stepping vs dense stepping;
//! * sharded intra-run delivery vs serial delivery at 1/2/8 threads,
//!   with and without fault plans.

use dut_netsim::engine::{
    BandwidthModel, EngineError, EngineScratch, Network, NodeProtocol, Outbox, RunOptions,
    RunReport,
};
use dut_netsim::fault::FaultPlan;
use dut_netsim::graph::{Graph, ImplicitTopology, NodeId};
use dut_netsim::topology::{
    Hypercube, ImplicitLine, ImplicitRing, ImplicitTree, MargulisExpander, Torus2d,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Protocols (same shapes as tests/differential.rs)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
struct Flood {
    seen: bool,
}

impl NodeProtocol for Flood {
    type Msg = ();
    fn on_round(
        &mut self,
        node: NodeId,
        round: usize,
        inbox: &[(NodeId, ())],
        out: &mut Outbox<'_, ()>,
    ) {
        let newly = (node == 0 && round == 0) || (!self.seen && !inbox.is_empty());
        if newly {
            self.seen = true;
            out.broadcast(());
        }
    }
    fn is_done(&self) -> bool {
        self.seen
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Bfs {
    dist: Option<u64>,
}

impl NodeProtocol for Bfs {
    type Msg = u64;
    fn on_round(
        &mut self,
        node: NodeId,
        round: usize,
        inbox: &[(NodeId, u64)],
        out: &mut Outbox<'_, u64>,
    ) {
        if self.dist.is_some() {
            return;
        }
        if node == 0 && round == 0 {
            self.dist = Some(0);
            out.broadcast(1);
        } else if let Some(&d) = inbox.iter().map(|(_, d)| d).min() {
            self.dist = Some(d);
            out.broadcast(d + 1);
        }
    }
    fn is_done(&self) -> bool {
        self.dist.is_some()
    }
}

/// Gossip that keeps every node sending for a fixed number of rounds —
/// a delivery-heavy load that exercises the sharded path hard.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Gossip {
    rounds_left: u64,
    acc: u64,
}

impl NodeProtocol for Gossip {
    type Msg = u64;
    fn on_round(
        &mut self,
        node: NodeId,
        _round: usize,
        inbox: &[(NodeId, u64)],
        out: &mut Outbox<'_, u64>,
    ) {
        for &(from, v) in inbox {
            self.acc = self.acc.wrapping_mul(31).wrapping_add(v ^ from as u64);
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            out.broadcast(self.acc.wrapping_add(node as u64));
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

fn assert_reports_equal<P: PartialEq + std::fmt::Debug>(
    label: &str,
    reference: &RunReport<P>,
    candidate: &RunReport<P>,
) {
    assert_eq!(reference.rounds, candidate.rounds, "{label}: rounds");
    assert_eq!(
        reference.total_messages, candidate.total_messages,
        "{label}: total_messages"
    );
    assert_eq!(
        reference.total_bits, candidate.total_bits,
        "{label}: total_bits"
    );
    assert_eq!(
        reference.max_edge_bits_per_round, candidate.max_edge_bits_per_round,
        "{label}: max_edge_bits_per_round"
    );
    assert_eq!(
        reference.dropped_messages, candidate.dropped_messages,
        "{label}: dropped_messages"
    );
    assert_eq!(
        reference.flipped_bits, candidate.flipped_bits,
        "{label}: flipped_bits"
    );
    assert_eq!(reference.nodes, candidate.nodes, "{label}: final states");
}

fn assert_outcomes_equal<P: PartialEq + std::fmt::Debug>(
    label: &str,
    reference: &Result<RunReport<P>, EngineError>,
    candidate: &Result<RunReport<P>, EngineError>,
) {
    match (reference, candidate) {
        (Ok(r), Ok(c)) => assert_reports_equal(label, r, c),
        (Err(r), Err(c)) => assert_eq!(r, c, "{label}: error values"),
        (r, c) => panic!(
            "{label}: outcomes diverge: reference ok={} vs candidate ok={}",
            r.is_ok(),
            c.is_ok()
        ),
    }
}

/// Asserts every node's implicit neighbor list equals the materialized
/// graph's, in order, and that the degree bound holds.
fn assert_neighbors_match<T: ImplicitTopology>(label: &str, topo: &T) {
    let g = topo.materialize();
    assert_eq!(g.node_count(), topo.node_count(), "{label}: node_count");
    let mut buf = Vec::new();
    for v in 0..topo.node_count() {
        assert_eq!(
            topo.neighbors(v, &mut buf),
            g.neighbors(v),
            "{label}: neighbors of {v}"
        );
        assert!(
            g.degree(v) <= topo.max_degree(),
            "{label}: degree bound at {v}"
        );
    }
}

/// Runs BFS + Flood on the implicit topology and on its materialized
/// graph, serial and parallel, asserting bit-identical reports.
fn assert_runs_match<T: ImplicitTopology>(label: &str, topo: &T) {
    let g = topo.materialize();
    let k = g.node_count();
    if k == 0 {
        return;
    }
    let model = BandwidthModel::Local;
    let max_rounds = 4 * k + 8;

    let mut mat_net = Network::new(&g, model);
    let mut imp_net = Network::new(topo, model);

    let mat = mat_net
        .run(vec![Bfs { dist: None }; k], max_rounds)
        .unwrap();
    let imp = imp_net
        .run(vec![Bfs { dist: None }; k], max_rounds)
        .unwrap();
    assert_reports_equal(&format!("{label}/bfs"), &mat, &imp);

    let mut scratch = EngineScratch::new();
    let imp_par = imp_net
        .run_with_options(
            vec![Bfs { dist: None }; k],
            max_rounds,
            &mut scratch,
            &RunOptions::parallel(3),
        )
        .unwrap();
    assert_reports_equal(&format!("{label}/bfs-parallel"), &mat, &imp_par);

    let mat = mat_net
        .run(vec![Flood { seen: false }; k], max_rounds)
        .unwrap();
    let imp = imp_net
        .run(vec![Flood { seen: false }; k], max_rounds)
        .unwrap();
    assert_reports_equal(&format!("{label}/flood"), &mat, &imp);
}

// ---------------------------------------------------------------------
// Implicit-vs-materialized equivalence (proptest, k ≤ 512, all families)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn torus_matches_materialized(rows in 1usize..23, cols in 1usize..23) {
        let t = Torus2d::new(rows, cols);
        assert_neighbors_match("torus", &t);
    }

    #[test]
    fn hypercube_matches_materialized(dim in 0u32..10) {
        let h = Hypercube::new(dim);
        assert_neighbors_match("hypercube", &h);
    }

    #[test]
    fn expander_matches_materialized(side in 1usize..23) {
        let e = MargulisExpander::new(side);
        assert_neighbors_match("expander", &e);
    }

    #[test]
    fn line_matches_materialized(k in 0usize..513) {
        assert_neighbors_match("line", &ImplicitLine { k });
    }

    #[test]
    fn ring_matches_materialized(k in 3usize..513) {
        assert_neighbors_match("ring", &ImplicitRing::new(k));
    }

    #[test]
    fn tree_matches_materialized(k in 0usize..513) {
        assert_neighbors_match("tree", &ImplicitTree { k });
    }

    #[test]
    fn engine_runs_match_on_implicit_torus(rows in 2usize..9, cols in 2usize..9) {
        assert_runs_match("torus", &Torus2d::new(rows, cols));
    }

    #[test]
    fn engine_runs_match_on_implicit_expander(side in 2usize..8) {
        assert_runs_match("expander", &MargulisExpander::new(side));
    }
}

#[test]
fn engine_runs_match_on_fixed_families() {
    assert_runs_match("torus-4x4", &Torus2d::new(4, 4));
    assert_runs_match("hypercube-5", &Hypercube::new(5));
    assert_runs_match("expander-5", &MargulisExpander::new(5));
    assert_runs_match("line-33", &ImplicitLine { k: 33 });
    assert_runs_match("ring-32", &ImplicitRing::new(32));
    assert_runs_match("tree-31", &ImplicitTree { k: 31 });
}

// ---------------------------------------------------------------------
// Sparse-activity stepping
// ---------------------------------------------------------------------

#[test]
fn sparse_matches_dense_on_wavefront_protocols() {
    let torus = Torus2d::new(8, 8).materialize();
    let graphs: Vec<(&str, Graph)> = vec![
        ("line", dut_netsim::topology::line(40)),
        ("torus", torus),
        ("tree", dut_netsim::topology::balanced_binary_tree(31)),
    ];
    for (name, g) in &graphs {
        let k = g.node_count();
        let mut net = Network::new(g, BandwidthModel::Local);
        let dense = net.run(vec![Bfs { dist: None }; k], 4 * k).unwrap();
        let mut scratch = EngineScratch::new();
        let sparse = net
            .run_with_options(
                vec![Bfs { dist: None }; k],
                4 * k,
                &mut scratch,
                &RunOptions::serial().with_sparse(),
            )
            .unwrap();
        assert_reports_equal(&format!("sparse-bfs/{name}"), &dense, &sparse);

        let dense = net.run(vec![Flood { seen: false }; k], 4 * k).unwrap();
        let mut flood_scratch = EngineScratch::new();
        let sparse = net
            .run_with_options(
                vec![Flood { seen: false }; k],
                4 * k,
                &mut flood_scratch,
                &RunOptions::serial().with_sparse(),
            )
            .unwrap();
        assert_reports_equal(&format!("sparse-flood/{name}"), &dense, &sparse);
    }
}

#[test]
fn sparse_matches_dense_under_faults() {
    let g = dut_netsim::topology::grid(6, 7);
    let k = g.node_count();
    let plans = [
        FaultPlan::seeded(0xAB01).with_drops(0.12),
        FaultPlan::seeded(0xAB02).with_flips(0.01).with_crash(1, 2),
        // Crash-only plans: the sparse path must keep the run alive
        // while a silent network waits out a crash schedule (it used to
        // misreport RoundLimit as soon as the arena went quiet).
        FaultPlan::seeded(0xAB03).with_crash(1, 2).with_crash(7, 0),
        FaultPlan::seeded(0xAB04)
            .with_crash(1, 2)
            .with_rejoin(1, 10)
            .with_crash(9, 1),
    ];
    for (i, plan) in plans.iter().enumerate() {
        let mut net = Network::new(&g, BandwidthModel::Congest { bits_per_edge: 64 });
        let mut scratch = EngineScratch::new();
        let dense = net.run_with_options(
            vec![Bfs { dist: None }; k],
            4 * k,
            &mut scratch,
            &RunOptions::serial().with_faults(plan.clone()),
        );
        let sparse = net.run_with_options(
            vec![Bfs { dist: None }; k],
            4 * k,
            &mut scratch,
            &RunOptions::serial().with_faults(plan.clone()).with_sparse(),
        );
        assert_outcomes_equal(&format!("sparse-faulted/{i}"), &dense, &sparse);
    }
}

#[test]
fn sparse_round_limit_error_matches_dense() {
    // A flood that can never reach quiescence because node 0 never
    // starts: every inbox stays empty, nodes stay not-done, and both
    // modes must report the same RoundLimit error.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct NeverDone;
    impl NodeProtocol for NeverDone {
        type Msg = ();
        fn on_round(
            &mut self,
            _node: NodeId,
            _round: usize,
            _inbox: &[(NodeId, ())],
            _out: &mut Outbox<'_, ()>,
        ) {
        }
        fn is_done(&self) -> bool {
            false
        }
    }
    let g = dut_netsim::topology::line(6);
    let mut net = Network::new(&g, BandwidthModel::Local);
    let dense = net.run(vec![NeverDone; 6], 12).unwrap_err();
    let mut scratch = EngineScratch::new();
    let sparse = net
        .run_with_options(
            vec![NeverDone; 6],
            12,
            &mut scratch,
            &RunOptions::serial().with_sparse(),
        )
        .unwrap_err();
    assert_eq!(dense, sparse);
    assert_eq!(dense, EngineError::RoundLimit { max_rounds: 12 });
}

/// A flood whose rejoined nodes ask their neighbors for the value they
/// slept through: `on_rejoin` schedules a request broadcast, any seen
/// neighbor answers a request with the data, and the flood resumes into
/// the subtree the outage had cut off. Silent-stable: a node with an
/// empty inbox and no pending announce does nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RecoverFlood {
    seen: bool,
    announce: bool,
}

impl NodeProtocol for RecoverFlood {
    type Msg = u32; // 0 = data, 1 = request
    fn on_round(
        &mut self,
        node: NodeId,
        round: usize,
        inbox: &[(NodeId, u32)],
        out: &mut Outbox<'_, u32>,
    ) {
        if self.announce {
            self.announce = false;
            out.broadcast(1);
        }
        let got_data = inbox.iter().any(|&(_, m)| m == 0);
        if !self.seen && ((node == 0 && round == 0) || got_data) {
            self.seen = true;
            out.broadcast(0);
        }
        if self.seen && inbox.iter().any(|&(_, m)| m == 1) {
            out.broadcast(0);
        }
    }
    fn is_done(&self) -> bool {
        self.seen && !self.announce
    }
    fn on_rejoin(&mut self, _node: NodeId, _round: usize) {
        self.announce = true;
    }
}

#[test]
fn sparse_fast_forwards_over_quiet_outages() {
    // Node 3 goes down at round 1, cutting the line's flood off from
    // nodes 4..7; the network then goes completely quiet with a rejoin
    // still pending at round 40. Dense spins the silent rounds; sparse
    // jumps straight to the rejoin event. Both must wake node 3 (its
    // rejoin announcement re-triggers the flood into the cut-off tail)
    // and report bit-identical results, including the round count.
    let g = dut_netsim::topology::line(8);
    let k = g.node_count();
    let fresh = || {
        vec![
            RecoverFlood {
                seen: false,
                announce: false
            };
            k
        ]
    };
    let plan = FaultPlan::seeded(0xFF01)
        .with_crash(3, 1)
        .with_rejoin(3, 40);
    let mut net = Network::new(&g, BandwidthModel::Local);
    let mut scratch = EngineScratch::new();
    let dense = net
        .run_with_options(
            fresh(),
            128,
            &mut scratch,
            &RunOptions::serial().with_faults(plan.clone()),
        )
        .unwrap();
    let sparse = net
        .run_with_options(
            fresh(),
            128,
            &mut scratch,
            &RunOptions::serial().with_faults(plan.clone()).with_sparse(),
        )
        .unwrap();
    assert_reports_equal("sparse-rejoin-wakeup", &dense, &sparse);
    assert!(
        dense.rounds > 40,
        "run must extend past the rejoin: {}",
        dense.rounds
    );
    assert!(
        dense.nodes.iter().all(|n| n.seen),
        "flood must recover into the cut-off tail: {:?}",
        dense.nodes
    );

    // Same shape, but the node never rejoins: both modes must report
    // the identical RoundLimit (sparse fast-forwards to it).
    let stuck = FaultPlan::seeded(0xFF02).with_crash(3, 1);
    let dense = net
        .run_with_options(
            fresh(),
            64,
            &mut scratch,
            &RunOptions::serial().with_faults(stuck.clone()),
        )
        .map(|_| ());
    let sparse = net
        .run_with_options(
            fresh(),
            64,
            &mut scratch,
            &RunOptions::serial().with_faults(stuck).with_sparse(),
        )
        .map(|_| ());
    assert_eq!(dense, sparse);
}

// ---------------------------------------------------------------------
// Sharded delivery bit-identity
// ---------------------------------------------------------------------

fn gossip_states(k: usize) -> Vec<Gossip> {
    (0..k)
        .map(|v| Gossip {
            rounds_left: 5 + (v as u64 % 3),
            acc: v as u64,
        })
        .collect()
}

#[test]
fn sharded_delivery_matches_serial_at_all_thread_counts() {
    let torus = Torus2d::new(16, 16);
    let k = torus.node_count();
    let mut net = Network::new(&torus, BandwidthModel::Local);
    let serial = net.run(gossip_states(k), 64).unwrap();
    for threads in [1usize, 2, 8] {
        let mut scratch = EngineScratch::new();
        let opts = RunOptions::parallel(threads).with_shard_delivery(0);
        let sharded = net
            .run_with_options(gossip_states(k), 64, &mut scratch, &opts)
            .unwrap();
        assert_reports_equal(&format!("sharded/{threads}"), &serial, &sharded);
    }
}

#[test]
fn sharded_delivery_matches_serial_under_fault_plans() {
    let torus = Torus2d::new(12, 12);
    let k = torus.node_count();
    let plans = [
        FaultPlan::seeded(0xC001).with_drops(0.1),
        FaultPlan::seeded(0xC002).with_flips(0.02),
        FaultPlan::seeded(0xC003)
            .with_drops(0.05)
            .with_flips(0.01)
            .with_crash(3, 2),
        FaultPlan::seeded(0xC004)
            .with_drops(0.05)
            .with_crash(3, 2)
            .with_rejoin(3, 6),
    ];
    for (i, plan) in plans.iter().enumerate() {
        let mut net = Network::new(&torus, BandwidthModel::Local);
        let mut scratch = EngineScratch::new();
        let serial = net.run_with_options(
            gossip_states(k),
            64,
            &mut scratch,
            &RunOptions::serial().with_faults(plan.clone()),
        );
        for threads in [2usize, 8] {
            let opts = RunOptions::parallel(threads)
                .with_faults(plan.clone())
                .with_shard_delivery(0);
            let sharded = net.run_with_options(gossip_states(k), 64, &mut scratch, &opts);
            assert_outcomes_equal(&format!("sharded-faulted/{i}/{threads}"), &serial, &sharded);
        }
    }
}

#[test]
fn shard_threshold_gates_per_round() {
    // With a threshold higher than any round's message count, sharding
    // never engages; results must still match (it is the same serial
    // path).
    let torus = Torus2d::new(10, 10);
    let k = torus.node_count();
    let mut net = Network::new(&torus, BandwidthModel::Local);
    let serial = net.run(gossip_states(k), 64).unwrap();
    let mut scratch = EngineScratch::new();
    let opts = RunOptions::parallel(4).with_shard_delivery(usize::MAX);
    let gated = net
        .run_with_options(gossip_states(k), 64, &mut scratch, &opts)
        .unwrap();
    assert_reports_equal("shard-gated", &serial, &gated);
}

// ---------------------------------------------------------------------
// Degenerate inputs
// ---------------------------------------------------------------------

#[test]
fn empty_network_is_a_typed_error() {
    let g = dut_netsim::topology::line(0);
    let mut net = Network::new(&g, BandwidthModel::Local);
    assert_eq!(
        net.run(Vec::<Flood>::new(), 8).unwrap_err(),
        EngineError::EmptyNetwork
    );
    let mut scratch = EngineScratch::new();
    assert_eq!(
        net.run_with_options(
            Vec::<Flood>::new(),
            8,
            &mut scratch,
            &RunOptions::parallel(4)
        )
        .unwrap_err(),
        EngineError::EmptyNetwork
    );
    assert_eq!(
        dut_netsim::reference::run_reference(&g, BandwidthModel::Local, Vec::<Flood>::new(), 8)
            .unwrap_err(),
        EngineError::EmptyNetwork
    );
}

#[test]
fn singleton_networks_run() {
    for g in [
        dut_netsim::topology::line(1),
        dut_netsim::topology::star(1),
        dut_netsim::topology::complete(1),
        Torus2d::new(1, 1).materialize(),
    ] {
        let mut net = Network::new(&g, BandwidthModel::Local);
        let report = net.run(vec![Flood { seen: false }; 1], 8).unwrap();
        // Node 0 marks itself seen in round 0 and has no one to tell.
        assert!(report.nodes[0].seen);
        assert_eq!(report.total_messages, 0);
    }
}
