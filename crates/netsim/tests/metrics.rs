//! Metrics-layer consistency: what a [`Sink`] accumulates must agree
//! with the engine's own [`RunReport`], and observing a run must never
//! change its outcome.

use dut_netsim::algorithms::{broadcast_value_observed, build_bfs_tree, convergecast_sum_observed};
use dut_netsim::engine::{BandwidthModel, Network, NodeProtocol, Outbox};
use dut_netsim::graph::{Graph, NodeId};
use dut_netsim::reference::{run_reference, run_reference_observed};
use dut_netsim::{topology, EngineScratch, RunOptions};
use dut_obs::{keys, MemorySink, NoopSink};

/// Flood with a 32-bit payload so bit totals are non-trivial.
#[derive(Clone, Debug)]
struct Flood {
    seen: bool,
}

impl NodeProtocol for Flood {
    type Msg = u32;
    fn on_round(
        &mut self,
        node: NodeId,
        round: usize,
        inbox: &[(NodeId, u32)],
        out: &mut Outbox<'_, u32>,
    ) {
        let newly = (node == 0 && round == 0) || (!self.seen && !inbox.is_empty());
        if newly {
            self.seen = true;
            out.broadcast(7);
        }
    }
    fn is_done(&self) -> bool {
        self.seen
    }
}

fn flood_states(n: usize) -> Vec<Flood> {
    vec![Flood { seen: false }; n]
}

fn topologies() -> Vec<(&'static str, Graph)> {
    vec![
        ("clique", topology::complete(16)),
        ("line", topology::line(16)),
        ("tree", topology::balanced_binary_tree(15)),
    ]
}

#[test]
fn sink_bits_match_report_on_clique_line_tree() {
    for (name, g) in topologies() {
        let n = g.node_count();
        let mut net = Network::new(&g, BandwidthModel::Local);
        let mut sink = MemorySink::new();
        let report = net.run_observed(flood_states(n), 64, &mut sink).unwrap();

        assert_eq!(
            sink.counter(keys::NETSIM_BITS),
            report.total_bits as u64,
            "{name}: sink bits != report bits"
        );
        assert_eq!(
            sink.counter(keys::NETSIM_MESSAGES),
            report.total_messages as u64
        );
        assert_eq!(sink.counter(keys::NETSIM_ROUNDS), report.rounds as u64);
        assert_eq!(sink.counter(keys::NETSIM_RUNS), 1);

        // Per-round histograms must sum back to the run totals, with
        // one observation per executed round.
        let round_bits = sink.histogram(keys::NETSIM_ROUND_BITS).unwrap();
        assert_eq!(round_bits.sum(), report.total_bits as u64, "{name}");
        assert_eq!(round_bits.count(), report.rounds as u64, "{name}");
        let round_msgs = sink.histogram(keys::NETSIM_ROUND_MESSAGES).unwrap();
        assert_eq!(round_msgs.sum(), report.total_messages as u64, "{name}");

        // The per-run edge max is the max over per-round edge maxima.
        let run_max = sink.histogram(keys::NETSIM_RUN_MAX_EDGE_BITS).unwrap();
        assert_eq!(
            run_max.max(),
            report.max_edge_bits_per_round as u64,
            "{name}"
        );
        let round_max = sink.histogram(keys::NETSIM_ROUND_MAX_EDGE_BITS).unwrap();
        assert_eq!(
            round_max.max(),
            report.max_edge_bits_per_round as u64,
            "{name}"
        );
    }
}

#[test]
fn noop_sink_is_bit_identical_to_unobserved_runs() {
    for (name, g) in topologies() {
        let n = g.node_count();
        let mut net = Network::new(&g, BandwidthModel::Congest { bits_per_edge: 64 });
        let plain = net.run(flood_states(n), 64).unwrap();
        let mut scratch = EngineScratch::new();
        let noop = net
            .run_with_scratch_observed(flood_states(n), 64, &mut scratch, &mut NoopSink)
            .unwrap();
        let mut mem = MemorySink::new();
        let observed = net.run_observed(flood_states(n), 64, &mut mem).unwrap();

        for (label, r) in [("noop", &noop), ("memory", &observed)] {
            assert_eq!(r.rounds, plain.rounds, "{name}/{label}");
            assert_eq!(r.total_messages, plain.total_messages, "{name}/{label}");
            assert_eq!(r.total_bits, plain.total_bits, "{name}/{label}");
            assert_eq!(
                r.max_edge_bits_per_round, plain.max_edge_bits_per_round,
                "{name}/{label}"
            );
        }

        // Differential check against the reference engine, both ways.
        let reference = run_reference(&g, net.model(), flood_states(n), 64).unwrap();
        let mut ref_sink = MemorySink::new();
        let reference_obs =
            run_reference_observed(&g, net.model(), flood_states(n), 64, &mut ref_sink).unwrap();
        assert_eq!(reference.rounds, plain.rounds, "{name}");
        assert_eq!(reference.total_bits, plain.total_bits, "{name}");
        assert_eq!(reference_obs.total_bits, plain.total_bits, "{name}");
        assert_eq!(
            ref_sink.counter(keys::REFERENCE_BITS),
            mem.counter(keys::NETSIM_BITS),
            "{name}: the two engines' sinks disagree"
        );
    }
}

#[test]
fn parallel_observed_metrics_match_serial() {
    let g = topology::complete(24);
    let n = g.node_count();
    let mut net = Network::new(&g, BandwidthModel::Local);
    let mut serial_sink = MemorySink::new();
    net.run_observed(flood_states(n), 64, &mut serial_sink)
        .unwrap();
    for threads in [2, 4] {
        let mut scratch = EngineScratch::new();
        let mut par_sink = MemorySink::new();
        net.run_with_options_observed(
            flood_states(n),
            64,
            &mut scratch,
            &RunOptions::parallel(threads),
            &mut par_sink,
        )
        .unwrap();
        for key in [
            keys::NETSIM_RUNS,
            keys::NETSIM_ROUNDS,
            keys::NETSIM_MESSAGES,
            keys::NETSIM_BITS,
        ] {
            assert_eq!(
                par_sink.counter(key),
                serial_sink.counter(key),
                "{threads} threads: {key}"
            );
        }
        assert_eq!(
            par_sink
                .histogram(keys::NETSIM_ROUND_BITS)
                .unwrap()
                .buckets(),
            serial_sink
                .histogram(keys::NETSIM_ROUND_BITS)
                .unwrap()
                .buckets(),
        );
    }
}

#[test]
fn tree_primitives_report_their_wire_cost() {
    let g = topology::balanced_binary_tree(15);
    let model = BandwidthModel::congest_for(64);
    let (tree, _) = build_bfs_tree(&g, 0, model).unwrap();
    let mut sink = MemorySink::new();

    let values = vec![1u64; g.node_count()];
    let (total, conv_cost) =
        convergecast_sum_observed(&g, &tree, &values, model, &mut sink).unwrap();
    assert_eq!(total, 15);
    assert_eq!(sink.counter(keys::CONVERGECAST_RUNS), 1);
    assert_eq!(sink.counter(keys::CONVERGECAST_BITS), conv_cost.bits as u64);
    assert_eq!(
        sink.counter(keys::CONVERGECAST_ROUNDS),
        conv_cost.rounds as u64
    );
    // Every non-root node sends exactly one message up the tree.
    assert_eq!(conv_cost.messages, g.node_count() - 1);

    let (vals, bcast_cost) = broadcast_value_observed(&g, &tree, 9, model, &mut sink).unwrap();
    assert!(vals.iter().all(|&v| v == 9));
    assert_eq!(sink.counter(keys::BROADCAST_BITS), bcast_cost.bits as u64);
    assert_eq!(bcast_cost.messages, g.node_count() - 1);

    // The engine-layer counters saw both runs.
    assert_eq!(
        sink.counter(keys::NETSIM_BITS),
        (conv_cost.bits + bcast_cost.bits) as u64
    );
    assert_eq!(sink.counter(keys::NETSIM_RUNS), 2);
}
