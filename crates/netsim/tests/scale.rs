//! Million-node smoke tests for the implicit-topology + sharded-delivery
//! scaling work.
//!
//! These run on 10⁶-node graphs and are `#[ignore]`d so the ordinary
//! debug test lane stays fast; the `netsim-scale` CI lane runs them in
//! release mode with `-- --ignored`.

use dut_netsim::engine::{
    BandwidthModel, EngineScratch, Network, NodeProtocol, Outbox, RunOptions, RunReport,
};
use dut_netsim::graph::{ImplicitTopology, NodeId};
use dut_netsim::topology::Torus2d;

/// 1000×1000 torus: one million nodes, two million edges, never
/// materialized.
fn million_node_torus() -> Torus2d {
    Torus2d::new(1000, 1000)
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Bfs {
    dist: Option<u64>,
}

impl NodeProtocol for Bfs {
    type Msg = u64;
    fn on_round(
        &mut self,
        node: NodeId,
        round: usize,
        inbox: &[(NodeId, u64)],
        out: &mut Outbox<'_, u64>,
    ) {
        if self.dist.is_some() {
            return;
        }
        if node == 0 && round == 0 {
            self.dist = Some(0);
            out.broadcast(1);
        } else if let Some(&d) = inbox.iter().map(|(_, d)| d).min() {
            self.dist = Some(d);
            out.broadcast(d + 1);
        }
    }
    fn is_done(&self) -> bool {
        self.dist.is_some()
    }
}

/// Bounded gossip: every node broadcasts for a few rounds, folding its
/// inbox into an accumulator — a delivery-heavy load whose final state
/// is sensitive to delivery order, so it pins bit-identity hard.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Gossip {
    rounds_left: u64,
    acc: u64,
}

impl NodeProtocol for Gossip {
    type Msg = u64;
    fn on_round(
        &mut self,
        node: NodeId,
        _round: usize,
        inbox: &[(NodeId, u64)],
        out: &mut Outbox<'_, u64>,
    ) {
        for &(from, v) in inbox {
            self.acc = self.acc.wrapping_mul(31).wrapping_add(v ^ from as u64);
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            out.broadcast(self.acc.wrapping_add(node as u64));
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
}

fn assert_reports_equal<P: PartialEq + std::fmt::Debug>(
    label: &str,
    a: &RunReport<P>,
    b: &RunReport<P>,
) {
    assert_eq!(a.rounds, b.rounds, "{label}: rounds");
    assert_eq!(a.total_messages, b.total_messages, "{label}: messages");
    assert_eq!(a.total_bits, b.total_bits, "{label}: bits");
    assert_eq!(
        a.max_edge_bits_per_round, b.max_edge_bits_per_round,
        "{label}: max_edge_bits_per_round"
    );
    assert_eq!(a.dropped_messages, b.dropped_messages, "{label}: drops");
    assert_eq!(a.flipped_bits, b.flipped_bits, "{label}: flips");
    assert!(a.nodes == b.nodes, "{label}: final states diverge");
}

/// The headline smoke: BFS over a 10⁶-node implicit torus completes
/// within the round budget and visits every node. Sparse stepping keeps
/// the settled interior off the per-round hot path.
#[test]
#[ignore = "million-node smoke; run via the netsim-scale lane (release, --ignored)"]
fn million_node_torus_bfs_completes() {
    let torus = million_node_torus();
    let k = torus.node_count();
    let mut net = Network::new(&torus, BandwidthModel::Local);
    let mut scratch = EngineScratch::new();
    let report = net
        .run_with_options(
            vec![Bfs { dist: None }; k],
            1100,
            &mut scratch,
            &RunOptions::serial().with_sparse(),
        )
        .expect("BFS on the 1000x1000 torus must quiesce");
    // Torus eccentricity of node 0 is 500 + 500; one extra round drains
    // the frontier's last broadcasts, one more observes quiescence.
    assert_eq!(report.rounds, 1002);
    assert!(report.nodes.iter().all(|n| n.dist.is_some()));
    let far = report.nodes.iter().filter_map(|n| n.dist).max().unwrap();
    assert_eq!(far, 1000);
}

/// Serial vs 8-thread sharded delivery on a million-node gossip burst:
/// reports and all 10⁶ final states must be bit-identical.
#[test]
#[ignore = "million-node smoke; run via the netsim-scale lane (release, --ignored)"]
fn million_node_sharded_delivery_is_bit_identical() {
    let torus = million_node_torus();
    let k = torus.node_count();
    let states = || {
        (0..k)
            .map(|v| Gossip {
                rounds_left: 3,
                acc: v as u64,
            })
            .collect::<Vec<_>>()
    };
    let mut net = Network::new(&torus, BandwidthModel::Local);
    let mut scratch = EngineScratch::new();
    let serial = net
        .run_with_options(states(), 16, &mut scratch, &RunOptions::serial())
        .unwrap();
    let sharded = net
        .run_with_options(
            states(),
            16,
            &mut scratch,
            &RunOptions::parallel(8).with_shard_delivery(4096),
        )
        .unwrap();
    assert_reports_equal("million-gossip", &serial, &sharded);
}

/// Same bit-identity demand with a nonzero fault plan: drops, flips,
/// and a crash schedule all run through the sharded path.
#[test]
#[ignore = "million-node smoke; run via the netsim-scale lane (release, --ignored)"]
fn million_node_sharded_delivery_is_bit_identical_under_faults() {
    use dut_netsim::fault::FaultPlan;
    let torus = million_node_torus();
    let k = torus.node_count();
    let plan = FaultPlan::seeded(0x5CA1E)
        .with_drops(0.02)
        .with_flips(0.0005)
        .with_crash(7, 1);
    let states = || {
        (0..k)
            .map(|v| Gossip {
                rounds_left: 2,
                acc: v as u64,
            })
            .collect::<Vec<_>>()
    };
    let mut net = Network::new(&torus, BandwidthModel::Local);
    let mut scratch = EngineScratch::new();
    let serial = net
        .run_with_options(
            states(),
            16,
            &mut scratch,
            &RunOptions::serial().with_faults(plan.clone()),
        )
        .unwrap();
    let sharded = net
        .run_with_options(
            states(),
            16,
            &mut scratch,
            &RunOptions::parallel(8)
                .with_faults(plan)
                .with_shard_delivery(4096),
        )
        .unwrap();
    assert_reports_equal("million-gossip-faulted", &serial, &sharded);
}
