//! Property-based tests for the network simulator.

use dut_netsim::algorithms::bfs::build_bfs_tree;
use dut_netsim::algorithms::convergecast::{broadcast_value, convergecast_sum};
use dut_netsim::algorithms::leader::elect_leader;
use dut_netsim::algorithms::mis::{luby_mis, verify_mis};
use dut_netsim::engine::BandwidthModel;
use dut_netsim::power::{neighborhood, power_graph};
use dut_netsim::topology::{connected_erdos_renyi, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_connected_graph() -> impl Strategy<Value = dut_netsim::Graph> {
    (4usize..60, 0.05f64..0.5, any::<u64>()).prop_map(|(k, p, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        connected_erdos_renyi(k, p, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bfs_depths_equal_graph_distances(g in arb_connected_graph(), root_frac in 0.0f64..1.0) {
        let root = ((g.node_count() - 1) as f64 * root_frac) as usize;
        let (tree, _) = build_bfs_tree(&g, root, BandwidthModel::Local).unwrap();
        let dist = g.bfs_distances(root);
        for (v, d) in dist.iter().enumerate() {
            prop_assert_eq!(tree.depth[v], d.unwrap());
        }
    }

    #[test]
    fn bfs_parents_form_a_tree(g in arb_connected_graph()) {
        let (tree, _) = build_bfs_tree(&g, 0, BandwidthModel::Local).unwrap();
        // Every non-root reaches the root by parent pointers, acyclically.
        for mut v in 0..g.node_count() {
            let mut hops = 0;
            while let Some(p) = tree.parent[v] {
                v = p;
                hops += 1;
                prop_assert!(hops <= g.node_count(), "parent cycle");
            }
            prop_assert_eq!(v, 0);
        }
    }

    #[test]
    fn convergecast_computes_the_sum(g in arb_connected_graph(), seed in any::<u64>()) {
        let (tree, _) = build_bfs_tree(&g, 0, BandwidthModel::Local).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<u64> = (0..g.node_count())
            .map(|_| rand::Rng::gen_range(&mut rng, 0..100u64))
            .collect();
        let (total, _) = convergecast_sum(&g, &tree, &values, BandwidthModel::Local).unwrap();
        prop_assert_eq!(total, values.iter().sum::<u64>());
    }

    #[test]
    fn broadcast_delivers_everywhere(g in arb_connected_graph(), value in any::<u32>()) {
        let (tree, _) = build_bfs_tree(&g, 0, BandwidthModel::Local).unwrap();
        let (values, rounds) =
            broadcast_value(&g, &tree, value as u64, BandwidthModel::Local).unwrap();
        prop_assert!(values.iter().all(|&v| v == value as u64));
        prop_assert!(rounds <= tree.height + 3);
    }

    #[test]
    fn leader_is_global_max(g in arb_connected_graph(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = g.node_count();
        // distinct ids via shuffled range
        let mut ids: Vec<u64> = (0..k as u64).collect();
        for i in (1..k).rev() {
            let j = rand::Rng::gen_range(&mut rng, 0..=i);
            ids.swap(i, j);
        }
        let (leader, rounds) = elect_leader(&g, &ids, BandwidthModel::Local).unwrap();
        prop_assert_eq!(ids[leader], (k - 1) as u64);
        prop_assert!(rounds <= 2 * k + 2);
    }

    #[test]
    fn luby_mis_always_valid(g in arb_connected_graph(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mis = luby_mis(&g, &mut rng);
        prop_assert!(verify_mis(&g, &mis.in_mis));
        prop_assert!(mis.phases >= 1);
    }

    #[test]
    fn power_graph_edges_match_distances(g in arb_connected_graph(), r in 1usize..5) {
        let p = power_graph(&g, r);
        for u in 0..g.node_count() {
            let dist = g.bfs_distances(u);
            #[allow(clippy::needless_range_loop)]
            for v in 0..g.node_count() {
                if u == v { continue; }
                let within = dist[v].map(|d| d <= r).unwrap_or(false);
                prop_assert_eq!(p.has_edge(u, v), within, "edge ({}, {}) r={}", u, v, r);
            }
        }
    }

    #[test]
    fn neighborhood_grows_at_least_linearly(g in arb_connected_graph(), t in 0usize..10) {
        // Connected graph: |N^t(v)| >= min(t+1, k) — the §6 argument.
        let k = g.node_count();
        for v in 0..k.min(5) {
            let nb = neighborhood(&g, v, t);
            prop_assert!(nb.len() >= (t + 1).min(k));
        }
    }

    #[test]
    fn catalogue_topologies_connected(k in 4usize..80, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for t in Topology::ALL {
            let g = t.instantiate(k, &mut rng);
            prop_assert!(g.is_connected(), "{} on {k}", t.name());
        }
    }
}
