//! Power graphs `G^r`.
//!
//! The LOCAL uniformity tester (§6 of the paper) computes a maximal
//! independent set on `G^r` — the graph connecting every pair of nodes at
//! distance at most `r` in `G` — so that MIS nodes are pairwise far apart
//! in `G` and each can gather the samples of its `r/2`-neighborhood
//! without competition.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Builds `G^r`: nodes of `g`, with an edge `{u, v}` iff
/// `0 < dist_G(u, v) ≤ r`.
///
/// Runs a depth-bounded BFS from every node — O(k·(k+m)) worst case,
/// fine at experiment scale.
///
/// # Panics
///
/// Panics if `r == 0` (the power graph would be edgeless and the MIS
/// construction meaningless).
#[allow(clippy::needless_range_loop)]
pub fn power_graph(g: &Graph, r: usize) -> Graph {
    assert!(r > 0, "power graph exponent must be positive");
    let k = g.node_count();
    let mut out = Graph::new(k);
    let mut dist: Vec<usize> = vec![usize::MAX; k];
    let mut touched: Vec<NodeId> = Vec::new();
    let mut queue = VecDeque::new();
    for u in 0..k {
        // Depth-bounded BFS from u.
        dist[u] = 0;
        touched.push(u);
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            if dist[x] == r {
                continue;
            }
            for &w in g.neighbors(x) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[x] + 1;
                    touched.push(w);
                    queue.push_back(w);
                }
            }
        }
        for &w in &touched {
            if w > u {
                out.add_edge(u, w);
            }
        }
        for &w in &touched {
            dist[w] = usize::MAX;
        }
        touched.clear();
    }
    out
}

/// The `t`-neighborhood of `v`: all nodes at distance ≤ `t` (including
/// `v` itself), in BFS order.
pub fn neighborhood(g: &Graph, v: NodeId, t: usize) -> Vec<NodeId> {
    let mut dist: Vec<usize> = vec![usize::MAX; g.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    dist[v] = 0;
    order.push(v);
    queue.push_back(v);
    while let Some(x) = queue.pop_front() {
        if dist[x] == t {
            continue;
        }
        for &w in g.neighbors(x) {
            if dist[w] == usize::MAX {
                dist[w] = dist[x] + 1;
                order.push(w);
                queue.push_back(w);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn power_one_is_identity() {
        let g = topology::ring(8);
        let p = power_graph(&g, 1);
        assert_eq!(p.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            assert!(p.has_edge(u, v));
        }
    }

    #[test]
    fn power_two_of_line() {
        let g = topology::line(5);
        let p = power_graph(&g, 2);
        // Distances <= 2 on a path of 5: (0,1),(1,2),(2,3),(3,4) plus
        // (0,2),(1,3),(2,4).
        assert_eq!(p.edge_count(), 7);
        assert!(p.has_edge(0, 2));
        assert!(!p.has_edge(0, 3));
    }

    #[test]
    fn power_diameter_covers_all() {
        let g = topology::line(6);
        let p = power_graph(&g, 5);
        // r = diameter connects everything.
        assert_eq!(p.edge_count(), 6 * 5 / 2);
    }

    #[test]
    fn neighborhood_sizes_on_line() {
        let g = topology::line(10);
        assert_eq!(neighborhood(&g, 0, 0), vec![0]);
        assert_eq!(neighborhood(&g, 0, 2).len(), 3);
        assert_eq!(neighborhood(&g, 5, 2).len(), 5);
        // Connected graph: |N^t(v)| >= t+1 (the paper's §6 argument).
        for t in 0..5 {
            assert!(neighborhood(&g, 3, t).len() > t);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn power_zero_rejected() {
        let g = topology::line(3);
        let _ = power_graph(&g, 0);
    }
}
