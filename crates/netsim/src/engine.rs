//! The synchronous round engine.
//!
//! Executes a [`NodeProtocol`] at every node of a [`Graph`] in lockstep
//! rounds: messages sent in round `r` are delivered at the start of round
//! `r+1`. Under [`BandwidthModel::Congest`] the engine *enforces* the
//! per-edge-per-round bit budget — a protocol that violates CONGEST fails
//! loudly instead of silently cheating — and every run returns a
//! [`RunReport`] with rounds, message and bit counts.
//!
//! # Performance architecture
//!
//! The engine is built for Monte-Carlo workloads where the same (or a
//! same-shaped) network is run thousands of times. All per-round and
//! per-run buffers live in an [`EngineScratch`] that callers can reuse
//! across runs, so the steady state performs **no heap allocation**:
//!
//! * The graph is flattened into a [`Csr`] (flat neighbor + offset
//!   arrays) once per run, reusing capacity.
//! * Instead of per-node `Vec<Vec<..>>` inboxes, all messages of a round
//!   live in one flat arena. Delivery is a count-then-fill stable
//!   counting sort: count per-destination messages, prefix-sum into
//!   per-node offsets, then permute the staged sends in place. A node's
//!   inbox is a slice of the arena.
//! * `Outbox::send` validates neighbor-ship and finds the CONGEST
//!   accounting slot in O(1) through a dense per-node neighbor-position
//!   index, instead of scanning the neighbor list per send.
//!
//! [`Network::run`] is a thin wrapper that allocates a fresh scratch;
//! hot callers use [`Network::run_with_scratch`] or, for large graphs,
//! [`Network::run_with_options`] which can step independent nodes on
//! multiple threads with bit-identical results. The pre-existing
//! nested-`Vec` engine is retained as [`crate::reference`] for
//! differential testing and benchmarking.
//!
//! # Invariants
//!
//! The flat representation rests on four invariants (DESIGN.md §7 gives
//! the performance rationale; this is the normative statement):
//!
//! 1. **CSR layout.** The graph view is a compressed-sparse-row pair
//!    `(offsets, neighbors)`: node `v`'s neighbor list is
//!    `neighbors[offsets[v]..offsets[v+1]]`, in the same order as
//!    [`Graph::neighbors`]. The CSR is rebuilt (reusing capacity) at
//!    the start of every run, so mid-run graph mutation is unsupported
//!    by construction. The same `offsets`-slicing scheme indexes the
//!    message arena: `arena[inbox_offsets[v]..inbox_offsets[v+1]]` is
//!    `v`'s inbox for the current round.
//!
//! 2. **Double-buffer handoff.** Each round reads inboxes from the
//!    `arena` filled by the *previous* round while staging new sends
//!    into `staged`; `deliver` then turns `staged` into the next
//!    round's `arena` in place. Messages sent in round `r` are
//!    therefore visible exactly in round `r+1`, never earlier, and the
//!    parallel path can share the arena immutably across workers.
//!
//! 3. **Counting-sort stability.** Delivery groups `staged` (global
//!    send order: node order, then send order within a node) by
//!    destination with a *stable* counting sort, so each inbox sees
//!    messages in the exact order naive per-inbox pushes would produce.
//!    Differential tests against [`crate::reference`] and the
//!    serial/parallel bit-identity guarantee both depend on this.
//!
//! 4. **EngineScratch reuse contract.** Between runs a scratch holds
//!    only capacity, never state: every run begins by re-sizing and
//!    re-zeroing (see `EngineScratch::prepare`), and the transient
//!    buffers `neighbor_pos`/`edge_bits` are all-zero outside the
//!    windows in which a single node is stepped or metered — restored
//!    even on early error returns by `prepare` of the *next* run.
//!    Hence a scratch may be reused across different graphs, protocols,
//!    and bandwidth models, and a run's results never depend on what
//!    the scratch was previously used for.

use crate::fault::{FaultInjectable, FaultPlan};
use crate::graph::{Csr, Graph, ImplicitTopology, NodeId};
use dut_obs::{keys, NoopSink, Sink, Span};
use std::error::Error;
use std::fmt;

/// Bit-size accounting for protocol messages.
///
/// CONGEST budgets are measured in bits; every message type must say how
/// many bits it occupies on the wire. Implementations for the common
/// payload types are provided.
pub trait MessageSize {
    /// Size of this message in bits. Every message costs at least 1 bit.
    fn size_bits(&self) -> usize;
}

impl MessageSize for () {
    fn size_bits(&self) -> usize {
        1
    }
}

impl MessageSize for bool {
    fn size_bits(&self) -> usize {
        1
    }
}

impl MessageSize for u32 {
    fn size_bits(&self) -> usize {
        32
    }
}

impl MessageSize for u64 {
    fn size_bits(&self) -> usize {
        64
    }
}

impl<T: MessageSize> MessageSize for Vec<T> {
    fn size_bits(&self) -> usize {
        self.iter()
            .map(MessageSize::size_bits)
            .sum::<usize>()
            .max(1)
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn size_bits(&self) -> usize {
        self.0.size_bits() + self.1.size_bits()
    }
}

/// A bounded counter metered at its actual bit length
/// (`⌈log₂(v+1)⌉`, minimum 1) — the natural CONGEST cost of sending a
/// value known to lie in a small range, such as a BFS depth or a
/// partial count. A fixed-width `u64` would be charged 64 bits even
/// when the protocol only ever sends values below `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Compact(pub u64);

impl MessageSize for Compact {
    fn size_bits(&self) -> usize {
        (64 - self.0.leading_zeros() as usize).max(1)
    }
}

/// The bandwidth model a run is executed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandwidthModel {
    /// LOCAL: unbounded message sizes; only rounds are counted.
    Local,
    /// CONGEST: at most `bits_per_edge` bits per *directed* edge per
    /// round.
    Congest {
        /// The per-edge-per-round budget in bits.
        bits_per_edge: usize,
    },
}

impl BandwidthModel {
    /// The standard CONGEST budget for a parameter space of size `n`
    /// (domain size or network size, whichever is larger):
    /// `c · ⌈log₂(n+1)⌉` bits with the conventional `c = 2` (one value
    /// plus header room).
    pub fn congest_for(n: usize) -> Self {
        // ⌈log₂(n+1)⌉ is exactly the bit length of n; integer
        // arithmetic avoids f64 rounding for n near 2^53 and above.
        let bits = 2 * (usize::BITS - n.leading_zeros()) as usize;
        BandwidthModel::Congest {
            bits_per_edge: bits.max(2),
        }
    }
}

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A node exceeded the CONGEST per-edge-per-round budget.
    BandwidthExceeded {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Round in which the violation occurred.
        round: usize,
        /// Bits the sender tried to push over the edge this round.
        bits: usize,
        /// The enforced budget.
        budget: usize,
    },
    /// The protocol did not terminate within the round limit.
    RoundLimit {
        /// The limit that was hit.
        max_rounds: usize,
    },
    /// The number of protocol states did not match the node count.
    NodeCountMismatch {
        /// Nodes in the graph.
        graph_nodes: usize,
        /// Protocol states supplied.
        states: usize,
    },
    /// The operation requires at least one node.
    EmptyNetwork,
    /// A protocol that must reach every node failed to reach `node` —
    /// a disconnected input, or (under fault injection) a retry budget
    /// exhausted before the node was reached.
    Unreached {
        /// The node that was never reached.
        node: NodeId,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BandwidthExceeded {
                from,
                to,
                round,
                bits,
                budget,
            } => write!(
                f,
                "congest violation on edge {from}->{to} in round {round}: {bits} bits > budget {budget}"
            ),
            EngineError::RoundLimit { max_rounds } => {
                write!(f, "protocol did not terminate within {max_rounds} rounds")
            }
            EngineError::NodeCountMismatch {
                graph_nodes,
                states,
            } => write!(
                f,
                "graph has {graph_nodes} nodes but {states} protocol states were supplied"
            ),
            EngineError::EmptyNetwork => {
                write!(f, "operation requires a non-empty network")
            }
            EngineError::Unreached { node } => {
                write!(f, "protocol failed to reach node {node}")
            }
        }
    }
}

impl Error for EngineError {}

/// The interface a distributed algorithm implements to run on the
/// engine. One value of the implementing type is the local state of one
/// node.
pub trait NodeProtocol {
    /// The message type exchanged by the protocol.
    type Msg: Clone + MessageSize;

    /// Called once per round at every node. `inbox` holds the messages
    /// delivered this round (sent by neighbors last round), each tagged
    /// with its sender. Messages for the next round are queued through
    /// `out`.
    fn on_round(
        &mut self,
        node: NodeId,
        round: usize,
        inbox: &[(NodeId, Self::Msg)],
        out: &mut Outbox<'_, Self::Msg>,
    );

    /// Whether this node has produced its final output. The run ends
    /// when all nodes are done and no messages are in flight.
    fn is_done(&self) -> bool;

    /// Called once when this node rejoins after a crash
    /// ([`FaultPlan::rejoins_at`]), at the rejoin round, before that
    /// round's [`on_round`](NodeProtocol::on_round). The node's state is
    /// exactly what it was when it crashed (stable storage); messages
    /// delivered while it was down are gone. Protocols that keep
    /// round-derived timers (retry deadlines, backoff) should reset
    /// them here so recovery does not stall; the default does nothing,
    /// which is correct for stateless-in-time protocols.
    fn on_rejoin(&mut self, _node: NodeId, _round: usize) {}
}

/// Queues outgoing messages for one node during one round.
///
/// Sends are staged into a shared flat buffer as `(to, from, msg)`
/// triples; neighbor validation is O(1) through a dense
/// neighbor-position index maintained by the engine.
#[derive(Debug)]
pub struct Outbox<'a, M> {
    node: NodeId,
    neighbors: &'a [NodeId],
    neighbor_pos: &'a mut [u32],
    staged: &'a mut Vec<(NodeId, NodeId, M)>,
    /// Whether this node's entries are present in `neighbor_pos`. The
    /// index fills lazily on the first staged message, so silent nodes
    /// (the common case in wavefront-style protocols) never touch it —
    /// and the engine only needs to clear it when this is set.
    filled: bool,
}

impl<'a, M> Outbox<'a, M> {
    pub(crate) fn new(
        node: NodeId,
        neighbors: &'a [NodeId],
        neighbor_pos: &'a mut [u32],
        staged: &'a mut Vec<(NodeId, NodeId, M)>,
    ) -> Self {
        Outbox {
            node,
            neighbors,
            neighbor_pos,
            staged,
            filled: false,
        }
    }

    /// Whether any message was staged (and `neighbor_pos` written).
    pub(crate) fn index_filled(&self) -> bool {
        self.filled
    }

    fn fill_index(&mut self) {
        for (p, &nb) in self.neighbors.iter().enumerate() {
            self.neighbor_pos[nb] = p as u32 + 1;
        }
        self.filled = true;
    }

    /// Sends `msg` to neighbor `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbor of the sending node — protocols
    /// may only talk over edges.
    pub fn send(&mut self, to: NodeId, msg: M) {
        if !self.filled {
            self.fill_index();
        }
        assert!(
            to < self.neighbor_pos.len() && self.neighbor_pos[to] != 0,
            "node {} tried to send to non-neighbor {}",
            self.node,
            to
        );
        self.staged.push((to, self.node, msg));
    }

    /// Sends a copy of `msg` to every neighbor.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        if !self.filled {
            // Targets are neighbors by construction, but the metering
            // pass needs the position index for any staged message.
            self.fill_index();
        }
        for &to in self.neighbors {
            self.staged.push((to, self.node, msg.clone()));
        }
    }

    /// Neighbors of the sending node (so protocols need not carry the
    /// graph around). The slice borrows from the engine, not from the
    /// outbox, so it can be held across [`Outbox::send`] calls.
    pub fn neighbors(&self) -> &'a [NodeId] {
        self.neighbors
    }
}

/// Metrics and final node states from a completed run.
#[derive(Debug, Clone)]
pub struct RunReport<P> {
    /// Rounds executed (including the final quiescent round, if any
    /// messages were still in flight when all nodes finished).
    pub rounds: usize,
    /// Total messages delivered.
    pub total_messages: usize,
    /// Total bits delivered.
    pub total_bits: usize,
    /// The maximum bits pushed over any directed edge in any single
    /// round — must be ≤ the CONGEST budget when one is enforced.
    pub max_edge_bits_per_round: usize,
    /// Messages lost in transit under fault injection (always 0 in an
    /// unfaulted run). Dropped messages are still metered: the sender
    /// paid for them, so `total_messages`/`total_bits` include them.
    pub dropped_messages: usize,
    /// Wire bits flipped in transit under fault injection (always 0 in
    /// an unfaulted run).
    pub flipped_bits: usize,
    /// Final per-node protocol states (outputs live here).
    pub nodes: Vec<P>,
}

/// Per-thread staging buffers for parallel node stepping, parallel
/// metering, and sharded delivery.
#[derive(Debug)]
struct WorkerScratch<M> {
    staged: Vec<(NodeId, NodeId, M)>,
    neighbor_pos: Vec<u32>,
    /// Neighbor scratch for implicit topologies (one per worker so
    /// workers never contend).
    nbr_buf: Vec<NodeId>,
    /// Per-neighbor-position bit accounting for parallel metering.
    edge_bits: Vec<usize>,
    /// Per-neighbor-position message indices for parallel faulted
    /// metering.
    edge_msgs: Vec<usize>,
    /// This worker's shard of the delivered arena (sharded delivery
    /// phase B output, concatenated serially in shard order).
    delivered: Vec<(NodeId, M)>,
    /// Local permutation scratch for the shard-local stable counting
    /// sort.
    perm: Vec<usize>,
}

impl<M> Default for WorkerScratch<M> {
    fn default() -> Self {
        WorkerScratch {
            staged: Vec::new(),
            neighbor_pos: Vec::new(),
            nbr_buf: Vec::new(),
            edge_bits: Vec::new(),
            edge_msgs: Vec::new(),
            delivered: Vec::new(),
            perm: Vec::new(),
        }
    }
}

/// Reusable buffers for [`Network::run_with_scratch`].
///
/// Holds every allocation the round engine needs: the CSR graph view,
/// the double-buffered flat message arena, per-destination counts and
/// offsets, the dense neighbor-position index, and per-neighbor CONGEST
/// bit accounting. After the first run on a given graph size, subsequent
/// runs perform no heap allocation (message payloads that themselves
/// allocate, e.g. `Vec<u64>`, are the protocol's business).
///
/// A scratch is keyed by nothing: it adapts to whatever graph the next
/// run uses, growing buffers as needed and reusing them otherwise.
#[derive(Debug)]
pub struct EngineScratch<M> {
    csr: Csr,
    /// Messages delivered this round, grouped by destination:
    /// `arena[inbox_offsets[v]..inbox_offsets[v+1]]` is node `v`'s inbox.
    arena: Vec<(NodeId, M)>,
    inbox_offsets: Vec<usize>,
    /// Messages sent this round, in global send order, as
    /// `(to, from, msg)`.
    staged: Vec<(NodeId, NodeId, M)>,
    /// Per-destination message counts / fill cursors for delivery.
    counts: Vec<usize>,
    /// Permutation scratch for the in-place stable counting sort.
    perm: Vec<usize>,
    /// Dense index: `neighbor_pos[u] == p+1` iff `u` is the `p`-th
    /// neighbor of the node currently stepping, 0 otherwise. Zeroed
    /// outside each fill/clear window.
    neighbor_pos: Vec<u32>,
    /// Cumulative bits sent to each neighbor position this round by the
    /// node currently being metered. Zeroed outside each window.
    edge_bits: Vec<usize>,
    /// Per-neighbor-position message counters used by the fault paths
    /// to number a node's messages per directed edge (the fault
    /// stream's message index). Zeroed outside each window, like
    /// `edge_bits`.
    edge_msgs: Vec<usize>,
    /// Neighbor scratch for implicit topologies on the serial paths
    /// (unused — empty — when the topology primes the CSR).
    nbr_buf: Vec<NodeId>,
    /// Sparse-activity work list: `(node, inbox_lo, inbox_hi)` for every
    /// node that received at least one message last round, sorted by
    /// node id so sparse stepping preserves dense stepping order.
    active: Vec<(NodeId, usize, usize)>,
    workers: Vec<WorkerScratch<M>>,
}

impl<M> Default for EngineScratch<M> {
    fn default() -> Self {
        EngineScratch {
            csr: Csr::new(),
            arena: Vec::new(),
            inbox_offsets: Vec::new(),
            staged: Vec::new(),
            counts: Vec::new(),
            perm: Vec::new(),
            neighbor_pos: Vec::new(),
            edge_bits: Vec::new(),
            edge_msgs: Vec::new(),
            nbr_buf: Vec::new(),
            active: Vec::new(),
            workers: Vec::new(),
        }
    }
}

impl<M> EngineScratch<M> {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        EngineScratch::default()
    }

    /// Sizes every buffer for `topo` and resets per-run state. Reuses
    /// existing capacity; also re-establishes the all-zero invariants of
    /// `neighbor_pos` / `edge_bits` that an error return may have left
    /// dirty.
    ///
    /// Returns whether the topology primed the CSR ([`Graph`] does;
    /// implicit families do not) — the engine reads neighbors from the
    /// CSR when it did and calls [`ImplicitTopology::neighbors`]
    /// otherwise.
    fn prepare_for<T: ImplicitTopology>(&mut self, topo: &T) -> bool {
        let use_csr = topo.prime_csr(&mut self.csr);
        let k = topo.node_count();
        let max_degree = if use_csr {
            self.csr.max_degree()
        } else {
            topo.max_degree()
        };
        self.arena.clear();
        self.staged.clear();
        self.inbox_offsets.clear();
        self.inbox_offsets.resize(k + 1, 0);
        self.counts.clear();
        self.counts.resize(k, 0);
        self.perm.clear();
        self.neighbor_pos.clear();
        self.neighbor_pos.resize(k, 0);
        self.edge_bits.clear();
        self.edge_bits.resize(max_degree, 0);
        self.edge_msgs.clear();
        self.edge_msgs.resize(max_degree, 0);
        self.nbr_buf.clear();
        self.active.clear();
        use_csr
    }
}

/// Execution options for [`Network::run_with_options`].
///
/// The parallel path steps independent nodes on multiple threads and is
/// **bit-identical** to the serial engine: per-worker staging buffers
/// are merged in node order before metering and delivery, so decisions,
/// metrics, and error values do not depend on the thread count. Small
/// graphs stay serial via `parallel_threshold`, where thread start-up
/// would dominate.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads to use. `0` means auto-detect from
    /// `std::thread::available_parallelism`.
    pub threads: usize,
    /// Minimum node count before the parallel path engages; below it the
    /// run is serial regardless of `threads`.
    pub parallel_threshold: usize,
    /// The fault model applied to the run. [`FaultPlan::none`] (the
    /// default) routes to the plain, unfaulted code paths, so results
    /// are bit-identical to runs without options. Any active plan is
    /// applied identically by the serial and parallel paths (and by
    /// [`crate::reference::run_reference_faulted`]); see
    /// [`crate::fault`].
    pub faults: FaultPlan,
    /// Sparse-activity stepping: visit only nodes with pending messages
    /// after round 0, making wavefront phases (BFS, convergecast)
    /// O(active) per round instead of O(nodes). Requires the protocol
    /// to be **silent-stable**: a node whose inbox is empty must not
    /// send, must not change observable state, and must report the same
    /// `is_done()` — every protocol in this repo except deliberately
    /// chatty test stubs qualifies. Sparse runs step serially (the
    /// work list is the parallelism bottleneck) and are bit-identical
    /// to dense runs for silent-stable protocols; a run that can never
    /// quiesce fails with the same [`EngineError::RoundLimit`] value as
    /// the dense engine, just without spinning the remaining rounds.
    pub sparse: bool,
    /// Sharded intra-run delivery: on the parallel path, rounds whose
    /// staged-message count reaches [`RunOptions::shard_threshold`]
    /// partition the destination range into one contiguous shard per
    /// worker, count/sort/permute shard-locally, and concatenate in
    /// shard order — bit-identical to the serial counting sort by
    /// construction. Metering also fans out (split at sender-run
    /// boundaries) on those rounds. No effect on serial runs.
    pub shard_delivery: bool,
    /// Minimum staged messages in a round before [`Self::shard_delivery`]
    /// engages; below it the serial counting sort wins.
    pub shard_threshold: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            threads: 0,
            parallel_threshold: 512,
            faults: FaultPlan::none(),
            sparse: false,
            shard_delivery: false,
            shard_threshold: 4096,
        }
    }
}

impl RunOptions {
    /// Forces serial execution.
    pub fn serial() -> Self {
        RunOptions {
            threads: 1,
            ..RunOptions::default()
        }
    }

    /// Requests `threads` workers with no size gate (mainly for tests).
    pub fn parallel(threads: usize) -> Self {
        RunOptions {
            threads,
            parallel_threshold: 0,
            ..RunOptions::default()
        }
    }

    /// Attaches a fault plan; see [`crate::fault::FaultPlan`].
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables sparse-activity stepping (see [`RunOptions::sparse`]).
    pub fn with_sparse(mut self) -> Self {
        self.sparse = true;
        self
    }

    /// Enables sharded delivery on the parallel path (see
    /// [`RunOptions::shard_delivery`]); `threshold` is the minimum
    /// staged-message count per round (0 = always shard).
    pub fn with_shard_delivery(mut self, threshold: usize) -> Self {
        self.shard_delivery = true;
        self.shard_threshold = threshold;
        self
    }

    fn effective_threads(&self, nodes: usize) -> usize {
        if nodes < self.parallel_threshold.max(2) {
            return 1;
        }
        let t = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        t.clamp(1, nodes)
    }
}

/// Running message/bit totals, shared by the serial and parallel paths.
struct Metrics {
    total_messages: usize,
    total_bits: usize,
    /// Max single-edge bits over all *completed* rounds.
    max_edge_bits: usize,
    /// Max single-edge bits within the round currently being metered;
    /// folded into `max_edge_bits` by [`Metrics::end_round`]. Keeping
    /// the in-round max separate costs nothing per message and lets an
    /// observed run report per-round slot congestion.
    round_max_edge_bits: usize,
    /// Messages lost to fault injection (0 on the unfaulted paths).
    dropped_messages: usize,
    /// Wire bits flipped by fault injection (0 on the unfaulted paths).
    flipped_bits: usize,
}

impl Metrics {
    fn new() -> Self {
        Metrics {
            total_messages: 0,
            total_bits: 0,
            max_edge_bits: 0,
            round_max_edge_bits: 0,
            dropped_messages: 0,
            flipped_bits: 0,
        }
    }

    /// Closes the current round: folds the in-round edge max into the
    /// run-wide max and returns it.
    fn end_round(&mut self) -> usize {
        let round_max = self.round_max_edge_bits;
        self.round_max_edge_bits = 0;
        self.max_edge_bits = self.max_edge_bits.max(round_max);
        round_max
    }

    /// Meters one node's staged sends. `neighbor_pos` must be filled for
    /// `from`; `edge_bits` must be zero on entry and is re-zeroed for
    /// `from`'s degree before returning `Ok`.
    fn meter_node<M: MessageSize>(
        &mut self,
        model: BandwidthModel,
        round: usize,
        sends: &[(NodeId, NodeId, M)],
        neighbor_pos: &[u32],
        edge_bits: &mut [usize],
        degree: usize,
    ) -> Result<(), EngineError> {
        // A silent node left `edge_bits` untouched — nothing to meter
        // and nothing to re-zero.
        if sends.is_empty() {
            return Ok(());
        }
        for (to, from, msg) in sends {
            let bits = msg.size_bits();
            let pos = (neighbor_pos[*to] - 1) as usize;
            edge_bits[pos] += bits;
            let entry = edge_bits[pos];
            if let BandwidthModel::Congest { bits_per_edge } = model {
                if entry > bits_per_edge {
                    return Err(EngineError::BandwidthExceeded {
                        from: *from,
                        to: *to,
                        round,
                        bits: entry,
                        budget: bits_per_edge,
                    });
                }
            }
            self.round_max_edge_bits = self.round_max_edge_bits.max(entry);
            self.total_messages += 1;
            self.total_bits += bits;
        }
        for b in edge_bits.iter_mut().take(degree) {
            *b = 0;
        }
        Ok(())
    }
}

/// Per-round observation state for an instrumented run.
///
/// One `enabled()` check per round is the whole cost against a
/// disabled sink: the message/bit deltas, the edge-max fold, and the
/// clock reads are all skipped (the fold still happens, but it is two
/// integer ops). No per-message work is ever added.
struct RoundObs {
    prev_messages: usize,
    prev_bits: usize,
}

impl RoundObs {
    fn new() -> Self {
        RoundObs {
            prev_messages: 0,
            prev_bits: 0,
        }
    }

    /// Closes one round: folds the in-round edge max into the run max
    /// and, when the sink is enabled, records the round's message and
    /// bit deltas, its max single-edge bits, and its wall time.
    fn end_round(&mut self, sink: &mut dyn Sink, metrics: &mut Metrics, span: Span) {
        let round_max = metrics.end_round();
        if sink.enabled() {
            sink.observe(
                keys::NETSIM_ROUND_MESSAGES,
                (metrics.total_messages - self.prev_messages) as u64,
            );
            sink.observe(
                keys::NETSIM_ROUND_BITS,
                (metrics.total_bits - self.prev_bits) as u64,
            );
            sink.observe(keys::NETSIM_ROUND_MAX_EDGE_BITS, round_max as u64);
            self.prev_messages = metrics.total_messages;
            self.prev_bits = metrics.total_bits;
            span.finish(sink, keys::NETSIM_ROUND_NANOS);
        }
    }
}

/// Records the run-total counters of a successfully completed run.
fn record_run(sink: &mut dyn Sink, rounds: usize, metrics: &Metrics) {
    if sink.enabled() {
        sink.add(keys::NETSIM_RUNS, 1);
        sink.add(keys::NETSIM_ROUNDS, rounds as u64);
        sink.add(keys::NETSIM_MESSAGES, metrics.total_messages as u64);
        sink.add(keys::NETSIM_BITS, metrics.total_bits as u64);
        sink.observe(keys::NETSIM_RUN_MAX_EDGE_BITS, metrics.max_edge_bits as u64);
    }
}

/// Records fault-injection totals. Called only on the faulted code
/// paths, so unfaulted observed runs emit byte-identical metric streams
/// to what they emitted before fault injection existed.
fn record_faults(sink: &mut dyn Sink, rounds: usize, metrics: &Metrics, plan: &FaultPlan) {
    if sink.enabled() {
        sink.add(
            keys::NETSIM_FAULT_DROPPED_MESSAGES,
            metrics.dropped_messages as u64,
        );
        sink.add(keys::NETSIM_FAULT_FLIPPED_BITS, metrics.flipped_bits as u64);
        sink.add(
            keys::NETSIM_FAULT_CRASHED_NODES,
            plan.effective_crashes(rounds) as u64,
        );
        let rejoins = plan.effective_rejoins(rounds);
        if rejoins > 0 {
            sink.add(keys::NETSIM_REJOIN_NODES, rejoins as u64);
            sink.add(
                keys::NETSIM_REJOIN_DOWNTIME_ROUNDS,
                plan.downtime_rounds(rounds) as u64,
            );
        }
    }
}

/// Delivers this round's staged sends into the arena: counts per
/// destination, prefix-sums offsets, then permutes the staged buffer in
/// place (stable counting sort via cycle-chasing) and moves it into the
/// arena. Allocation-free once capacities have grown, and a single
/// O(nodes) pass per round (the prefix sum) — everything else is
/// O(sends), which keeps sparse rounds (e.g. a BFS wavefront on a long
/// line) from paying dense-round bookkeeping.
fn deliver<M>(
    staged: &mut Vec<(NodeId, NodeId, M)>,
    arena: &mut Vec<(NodeId, M)>,
    inbox_offsets: &mut [usize],
    counts: &mut [usize],
    perm: &mut Vec<usize>,
) {
    let k = counts.len();
    // `counts` is all-zero on entry (the invariant is restored below),
    // so counting touches only destinations that received messages.
    for &(to, _, _) in staged.iter() {
        counts[to] += 1;
    }
    inbox_offsets[0] = 0;
    for v in 0..k {
        inbox_offsets[v + 1] = inbox_offsets[v] + counts[v];
    }
    // perm[i] is the arena slot of staged[i]: with c messages for `to`
    // still unplaced, the next lands at end(to) − c, so global send
    // order is preserved within each destination and inbox ordering
    // matches naive per-inbox pushes. Draining `counts` back to zero
    // here restores the all-zero invariant with no extra pass.
    perm.clear();
    for &(to, _, _) in staged.iter() {
        perm.push(inbox_offsets[to + 1] - counts[to]);
        counts[to] -= 1;
    }
    for i in 0..staged.len() {
        while perm[i] != i {
            let j = perm[i];
            staged.swap(i, j);
            perm.swap(i, j);
        }
    }
    arena.clear();
    arena.extend(staged.drain(..).map(|(_, from, msg)| (from, msg)));
}

/// Sparse-mode delivery: the same stable counting sort as [`deliver`],
/// but the prefix pass runs over *active destinations only* (O(a log a)
/// for `a` receiving nodes, not O(nodes)), and the inbox bounds of each
/// active node are recorded in `active` so sparse stepping never reads
/// the — now partially stale — `inbox_offsets` entries of silent nodes.
fn deliver_sparse<M>(
    staged: &mut Vec<(NodeId, NodeId, M)>,
    arena: &mut Vec<(NodeId, M)>,
    inbox_offsets: &mut [usize],
    counts: &mut [usize],
    perm: &mut Vec<usize>,
    active: &mut Vec<(NodeId, usize, usize)>,
) {
    active.clear();
    for &(to, _, _) in staged.iter() {
        if counts[to] == 0 {
            active.push((to, 0, 0));
        }
        counts[to] += 1;
    }
    // Sorted by node id so sparse stepping visits receivers in the same
    // relative order dense stepping would — the staged order (and hence
    // all downstream RNG/fault streams) stays bit-identical.
    active.sort_unstable_by_key(|e| e.0);
    let mut off = 0;
    for e in active.iter_mut() {
        e.1 = off;
        off += counts[e.0];
        e.2 = off;
        // Per-destination end cursor for the perm pass below; entries of
        // silent nodes are left stale and never read in sparse mode.
        inbox_offsets[e.0 + 1] = off;
    }
    // Identical slot rule to `deliver`; draining `counts` restores the
    // all-zero invariant.
    perm.clear();
    for &(to, _, _) in staged.iter() {
        perm.push(inbox_offsets[to + 1] - counts[to]);
        counts[to] -= 1;
    }
    for i in 0..staged.len() {
        while perm[i] != i {
            let j = perm[i];
            staged.swap(i, j);
            perm.swap(i, j);
        }
    }
    arena.clear();
    arena.extend(staged.drain(..).map(|(_, from, msg)| (from, msg)));
}

/// Meters one contiguous chunk of the merged staged buffer (whole
/// sender runs) with worker-local buffers, applying channel faults and
/// compacting survivors to the chunk front. Returns the chunk's
/// metrics, its survivor count, and the first error within it; the
/// caller merges chunks in order, so totals, survivor order, and the
/// first-error value are exactly what the serial metering pass
/// produces.
#[allow(clippy::too_many_arguments)]
fn meter_chunk<T, M>(
    model: BandwidthModel,
    round: usize,
    chunk: &mut [(NodeId, NodeId, M)],
    worker: &mut WorkerScratch<M>,
    csr: &Csr,
    topo: &T,
    use_csr: bool,
    faults: Option<&FaultPlan>,
) -> (Metrics, usize, Option<EngineError>)
where
    T: ImplicitTopology,
    M: MessageSize + FaultInjectable,
{
    let WorkerScratch {
        neighbor_pos,
        nbr_buf,
        edge_bits,
        edge_msgs,
        ..
    } = worker;
    let mut metrics = Metrics::new();
    let mut i = 0;
    let mut w = 0;
    while i < chunk.len() {
        let from = chunk[i].1;
        let nbrs: &[NodeId] = if use_csr {
            csr.neighbors(from)
        } else {
            topo.neighbors(from, nbr_buf)
        };
        for (p, &nb) in nbrs.iter().enumerate() {
            neighbor_pos[nb] = p as u32 + 1;
        }
        let mut j = i;
        while j < chunk.len() && chunk[j].1 == from {
            j += 1;
        }
        let res = metrics.meter_node(
            model,
            round,
            &chunk[i..j],
            neighbor_pos,
            edge_bits,
            nbrs.len(),
        );
        if res.is_ok() {
            if let Some(plan) = faults {
                for r in i..j {
                    let to = chunk[r].0;
                    let pos = (neighbor_pos[to] - 1) as usize;
                    let idx = edge_msgs[pos];
                    edge_msgs[pos] += 1;
                    match plan.apply(round, from, to, idx, &mut chunk[r].2) {
                        None => metrics.dropped_messages += 1,
                        Some(flips) => {
                            metrics.flipped_bits += flips as usize;
                            chunk.swap(w, r);
                            w += 1;
                        }
                    }
                }
                for b in edge_msgs.iter_mut().take(nbrs.len()) {
                    *b = 0;
                }
            }
        }
        for &nb in nbrs {
            neighbor_pos[nb] = 0;
        }
        if let Err(e) = res {
            return (metrics, w, Some(e));
        }
        i = j;
    }
    (metrics, w, None)
}

/// Sharded delivery: partitions the destination range into one
/// contiguous shard per worker; each worker counts, prefix-sums, and
/// stable-sorts its shard locally, and the shards concatenate in order
/// — producing exactly the arena and offsets the serial [`deliver`]
/// would, because each destination's slot assignment follows the same
/// stable rule with a shard-wide base added.
fn deliver_sharded<M: Clone + Send + Sync>(
    staged: &mut Vec<(NodeId, NodeId, M)>,
    arena: &mut Vec<(NodeId, M)>,
    inbox_offsets: &mut [usize],
    counts: &mut [usize],
    workers: &mut [WorkerScratch<M>],
    threads: usize,
) {
    let k = counts.len();
    let shard_len = k.div_ceil(threads);
    let staged_ref: &[(NodeId, NodeId, M)] = staged;

    // Phase A: per-shard counting. Every worker scans the whole staged
    // buffer read-only and counts its own destination range.
    let totals = crossbeam::scope(|s| {
        let mut handles = Vec::new();
        for (shard_idx, counts_chunk) in counts.chunks_mut(shard_len).enumerate() {
            let lo = shard_idx * shard_len;
            handles.push(s.spawn(move |_| {
                let hi = lo + counts_chunk.len();
                let mut total = 0usize;
                for &(to, _, _) in staged_ref {
                    if to >= lo && to < hi {
                        counts_chunk[to - lo] += 1;
                        total += 1;
                    }
                }
                total
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect::<Vec<usize>>()
    })
    .unwrap_or_else(|p| std::panic::resume_unwind(p));

    // Shard bases: a serial prefix over at most `threads` entries.
    let mut bases = Vec::with_capacity(totals.len());
    let mut acc = 0;
    for &t in &totals {
        bases.push(acc);
        acc += t;
    }
    inbox_offsets[0] = 0;

    // Phase B: shard-local prefix sums (into disjoint `inbox_offsets`
    // ranges) and the stable counting sort into each worker's
    // `delivered`, draining the shard's counts back to zero.
    crossbeam::scope(|s| {
        let offs_tail = &mut inbox_offsets[1..];
        for (((shard_idx, counts_chunk), offs_chunk), worker) in counts
            .chunks_mut(shard_len)
            .enumerate()
            .zip(offs_tail.chunks_mut(shard_len))
            .zip(workers.iter_mut())
        {
            let lo = shard_idx * shard_len;
            let base = bases[shard_idx];
            s.spawn(move |_| {
                let hi = lo + counts_chunk.len();
                let mut off = base;
                for (i, c) in counts_chunk.iter().enumerate() {
                    off += c;
                    offs_chunk[i] = off;
                }
                let delivered = &mut worker.delivered;
                let perm = &mut worker.perm;
                delivered.clear();
                perm.clear();
                for (to, from, msg) in staged_ref {
                    let to = *to;
                    if to < lo || to >= hi {
                        continue;
                    }
                    perm.push(offs_chunk[to - lo] - counts_chunk[to - lo] - base);
                    counts_chunk[to - lo] -= 1;
                    delivered.push((*from, msg.clone()));
                }
                for i in 0..delivered.len() {
                    while perm[i] != i {
                        let j = perm[i];
                        delivered.swap(i, j);
                        perm.swap(i, j);
                    }
                }
            });
        }
    })
    .unwrap_or_else(|p| std::panic::resume_unwind(p));

    // Phase C: concatenate the shards in order.
    arena.clear();
    for w in workers.iter_mut() {
        arena.append(&mut w.delivered);
    }
    staged.clear();
}

/// A synchronous network: a topology plus a bandwidth model.
///
/// The topology parameter defaults to [`Graph`] (stored adjacency,
/// flattened into a CSR per run). Implicit families
/// ([`crate::topology::Torus2d`] and friends) plug in through the same
/// parameter and compute neighbors on the fly, so a 10⁷-node run never
/// materializes an edge list; engine results are bit-identical to a run
/// on `topology.materialize()`.
#[derive(Debug)]
pub struct Network<'g, T: ImplicitTopology = Graph> {
    graph: &'g T,
    model: BandwidthModel,
}

impl<'g, T: ImplicitTopology> Network<'g, T> {
    /// Creates a network over `graph` with the given bandwidth model.
    pub fn new(graph: &'g T, model: BandwidthModel) -> Self {
        Network { graph, model }
    }

    /// The underlying topology.
    pub fn graph(&self) -> &T {
        self.graph
    }

    /// The bandwidth model.
    pub fn model(&self) -> BandwidthModel {
        self.model
    }

    /// Runs the protocol to quiescence (all nodes done, no messages in
    /// flight) or up to `max_rounds`.
    ///
    /// Allocates a fresh [`EngineScratch`] per call; loops running many
    /// trials should hold a scratch and call
    /// [`Network::run_with_scratch`] instead.
    ///
    /// # Errors
    ///
    /// * [`EngineError::NodeCountMismatch`] if `states` has the wrong
    ///   length.
    /// * [`EngineError::BandwidthExceeded`] on a CONGEST violation.
    /// * [`EngineError::RoundLimit`] if quiescence is not reached.
    pub fn run<P: NodeProtocol>(
        &mut self,
        states: Vec<P>,
        max_rounds: usize,
    ) -> Result<RunReport<P>, EngineError> {
        let mut scratch = EngineScratch::new();
        self.run_with_scratch(states, max_rounds, &mut scratch)
    }

    /// Like [`Network::run`], but reuses `scratch` so repeated runs do
    /// not allocate. The scratch adapts to any graph/protocol pairing;
    /// results are identical to [`Network::run`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::run`].
    pub fn run_with_scratch<P: NodeProtocol>(
        &mut self,
        states: Vec<P>,
        max_rounds: usize,
        scratch: &mut EngineScratch<P::Msg>,
    ) -> Result<RunReport<P>, EngineError> {
        self.run_with_scratch_observed(states, max_rounds, scratch, &mut NoopSink)
    }

    /// Like [`Network::run`], recording metrics into `sink` (see
    /// [`dut_obs::keys`], `netsim.*`): run-total counters plus per-round
    /// histograms of messages, bits, max single-edge bits, and
    /// wall-clock nanoseconds. Allocates a fresh scratch per call.
    ///
    /// Sinks never influence execution — an observed run makes the same
    /// decisions, metrics, and errors as an unobserved one, and a
    /// [`NoopSink`] reduces this to exactly [`Network::run`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::run`].
    pub fn run_observed<P: NodeProtocol>(
        &mut self,
        states: Vec<P>,
        max_rounds: usize,
        sink: &mut dyn Sink,
    ) -> Result<RunReport<P>, EngineError> {
        let mut scratch = EngineScratch::new();
        self.run_with_scratch_observed(states, max_rounds, &mut scratch, sink)
    }

    /// [`Network::run_observed`] with a caller-held [`EngineScratch`];
    /// the allocation-free path for instrumented Monte-Carlo loops.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::run`].
    pub fn run_with_scratch_observed<P: NodeProtocol>(
        &mut self,
        states: Vec<P>,
        max_rounds: usize,
        scratch: &mut EngineScratch<P::Msg>,
        sink: &mut dyn Sink,
    ) -> Result<RunReport<P>, EngineError> {
        let mut states = self.check_states(states)?;
        let use_csr = scratch.prepare_for(self.graph);
        let EngineScratch {
            csr,
            arena,
            inbox_offsets,
            staged,
            counts,
            perm,
            neighbor_pos,
            edge_bits,
            nbr_buf,
            ..
        } = scratch;
        let mut metrics = Metrics::new();
        let mut obs = RoundObs::new();

        for round in 0..max_rounds {
            if round > 0 && arena.is_empty() && states.iter().all(NodeProtocol::is_done) {
                record_run(sink, round, &metrics);
                return Ok(finish(round, metrics, states));
            }
            let span = Span::start(&*sink);

            for (node, state) in states.iter_mut().enumerate() {
                let nbrs: &[NodeId] = if use_csr {
                    csr.neighbors(node)
                } else {
                    self.graph.neighbors(node, nbr_buf)
                };
                let start = staged.len();
                let inbox = &arena[inbox_offsets[node]..inbox_offsets[node + 1]];
                let mut out = Outbox::new(node, nbrs, neighbor_pos, staged);
                state.on_round(node, round, inbox, &mut out);
                // A silent node never filled the position index — there
                // is nothing to meter and nothing to clear.
                if out.index_filled() {
                    // Meter immediately so a violation surfaces before
                    // any later node steps, exactly as the naive engine
                    // did.
                    metrics.meter_node(
                        self.model,
                        round,
                        &staged[start..],
                        neighbor_pos,
                        edge_bits,
                        nbrs.len(),
                    )?;
                    for &nb in nbrs {
                        neighbor_pos[nb] = 0;
                    }
                }
            }

            deliver(staged, arena, inbox_offsets, counts, perm);
            obs.end_round(sink, &mut metrics, span);
        }
        Err(EngineError::RoundLimit { max_rounds })
    }

    /// The serial loop with optional fault injection and optional
    /// sparse-activity stepping. With a plan, crashed nodes are skipped
    /// (and count as done), every staged message is metered at its
    /// original size, and then the plan drops or corrupts it before
    /// delivery. In sparse mode, rounds after the first visit only the
    /// nodes recorded by [`deliver_sparse`] — bit-identical to the
    /// dense loop for silent-stable protocols (see
    /// [`RunOptions::sparse`]). Kept separate from
    /// [`Network::run_with_scratch_observed`] so the plain path carries
    /// neither the extra branches nor the [`FaultInjectable`] bound.
    fn run_serial_core<P>(
        &mut self,
        states: Vec<P>,
        max_rounds: usize,
        scratch: &mut EngineScratch<P::Msg>,
        plan: Option<&FaultPlan>,
        sparse: bool,
        sink: &mut dyn Sink,
    ) -> Result<RunReport<P>, EngineError>
    where
        P: NodeProtocol,
        P::Msg: FaultInjectable,
    {
        let mut states = self.check_states(states)?;
        let use_csr = scratch.prepare_for(self.graph);
        let EngineScratch {
            csr,
            arena,
            inbox_offsets,
            staged,
            counts,
            perm,
            neighbor_pos,
            edge_bits,
            edge_msgs,
            nbr_buf,
            active,
            ..
        } = scratch;
        let mut metrics = Metrics::new();
        let mut obs = RoundObs::new();

        let mut round = 0;
        while round < max_rounds {
            if round > 0 && arena.is_empty() {
                // A down node with a pending rejoin is a future
                // wake-up, never a terminated one.
                let quiescent = states.iter().enumerate().all(|(v, s)| {
                    s.is_done()
                        || plan.is_some_and(|p| p.crashed(v, round) && !p.will_rejoin(v, round))
                });
                if quiescent {
                    record_run(sink, round, &metrics);
                    if let Some(p) = plan {
                        record_faults(sink, round, &metrics, p);
                    }
                    return Ok(finish(round, metrics, states));
                }
                // A rejoin firing *this* round is handled below (the
                // wake-up push) — only fast-forward on rounds with no
                // event of their own.
                let wakes_now = plan.is_some_and(|p| {
                    p.rejoins
                        .iter()
                        .any(|&(v, j)| j == round && p.rejoins_at(v, round))
                });
                if sparse && active.is_empty() && !wakes_now {
                    // Nothing in flight and silent-stable nodes cannot
                    // wake up on their own: the only future done-set
                    // changes are crash/rejoin schedule events. Jump
                    // straight to the next one (the skipped rounds are
                    // observationally empty), or fail with the exact
                    // error value the dense loop would reach by
                    // spinning out the remaining rounds.
                    match plan.and_then(|p| p.next_event_after(round)) {
                        Some(next) if next < max_rounds => {
                            round = next;
                            continue;
                        }
                        _ => return Err(EngineError::RoundLimit { max_rounds }),
                    }
                }
            }
            let span = Span::start(&*sink);
            let sparse_round = sparse && round > 0;
            if sparse_round {
                if let Some(p) = plan {
                    // Rejoining nodes wake up with an empty inbox; they
                    // must still be visited (on_rejoin + on_round), in
                    // node-id order like every other sparse visit.
                    let mut woke = false;
                    for &(v, j) in &p.rejoins {
                        if j == round
                            && p.rejoins_at(v, round)
                            && !active.iter().any(|&(a, _, _)| a == v)
                        {
                            active.push((v, 0, 0));
                            woke = true;
                        }
                    }
                    if woke {
                        active.sort_unstable_by_key(|e| e.0);
                    }
                }
            }
            if sparse_round && sink.enabled() {
                sink.add(keys::NETSIM_SPARSE_ROUNDS, 1);
                sink.observe(keys::NETSIM_SPARSE_ACTIVE_NODES, active.len() as u64);
            }

            let visits = if sparse_round {
                active.len()
            } else {
                states.len()
            };
            for i in 0..visits {
                let (node, lo, hi) = if sparse_round {
                    active[i]
                } else {
                    (i, inbox_offsets[i], inbox_offsets[i + 1])
                };
                if plan.is_some_and(|p| p.crashed(node, round)) {
                    continue;
                }
                if plan.is_some_and(|p| p.rejoins_at(node, round)) {
                    states[node].on_rejoin(node, round);
                }
                let nbrs: &[NodeId] = if use_csr {
                    csr.neighbors(node)
                } else {
                    self.graph.neighbors(node, nbr_buf)
                };
                let start = staged.len();
                let inbox = &arena[lo..hi];
                let mut out = Outbox::new(node, nbrs, neighbor_pos, staged);
                states[node].on_round(node, round, inbox, &mut out);
                if out.index_filled() {
                    metrics.meter_node(
                        self.model,
                        round,
                        &staged[start..],
                        neighbor_pos,
                        edge_bits,
                        nbrs.len(),
                    )?;
                    if let Some(p) = plan {
                        // Channel faults, after metering: the sender
                        // paid for the original message. Surviving
                        // messages are compacted in place, preserving
                        // send order.
                        let mut w = start;
                        for r in start..staged.len() {
                            let to = staged[r].0;
                            let pos = (neighbor_pos[to] - 1) as usize;
                            let idx = edge_msgs[pos];
                            edge_msgs[pos] += 1;
                            match p.apply(round, node, to, idx, &mut staged[r].2) {
                                None => metrics.dropped_messages += 1,
                                Some(flips) => {
                                    metrics.flipped_bits += flips as usize;
                                    staged.swap(w, r);
                                    w += 1;
                                }
                            }
                        }
                        staged.truncate(w);
                        for b in edge_msgs.iter_mut().take(nbrs.len()) {
                            *b = 0;
                        }
                    }
                    for &nb in nbrs {
                        neighbor_pos[nb] = 0;
                    }
                }
            }

            if sparse {
                deliver_sparse(staged, arena, inbox_offsets, counts, perm, active);
            } else {
                deliver(staged, arena, inbox_offsets, counts, perm);
            }
            obs.end_round(sink, &mut metrics, span);
            round += 1;
        }
        Err(EngineError::RoundLimit { max_rounds })
    }

    /// Like [`Network::run_with_scratch`], with optional multi-threaded
    /// node stepping for large graphs and optional fault injection
    /// ([`RunOptions::faults`]). Successful runs (and error values) are
    /// bit-identical to the serial engine regardless of thread count;
    /// see [`RunOptions`]. With [`FaultPlan::none`] the run is
    /// bit-identical to [`Network::run_with_scratch`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::run`].
    pub fn run_with_options<P>(
        &mut self,
        states: Vec<P>,
        max_rounds: usize,
        scratch: &mut EngineScratch<P::Msg>,
        options: &RunOptions,
    ) -> Result<RunReport<P>, EngineError>
    where
        P: NodeProtocol + Send,
        P::Msg: Send + Sync + FaultInjectable,
    {
        self.run_with_options_observed(states, max_rounds, scratch, options, &mut NoopSink)
    }

    /// [`Network::run_with_options`] recording metrics into `sink`.
    /// Metering and observation stay serial on the merged send buffer,
    /// so the recorded metrics are bit-identical regardless of thread
    /// count, exactly like the run results themselves. Fault totals
    /// (`netsim.fault.*`) are recorded only when a plan is active, so
    /// unfaulted observed runs emit exactly the streams they always
    /// did.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::run`].
    pub fn run_with_options_observed<P>(
        &mut self,
        states: Vec<P>,
        max_rounds: usize,
        scratch: &mut EngineScratch<P::Msg>,
        options: &RunOptions,
        sink: &mut dyn Sink,
    ) -> Result<RunReport<P>, EngineError>
    where
        P: NodeProtocol + Send,
        P::Msg: Send + Sync + FaultInjectable,
    {
        let threads = options.effective_threads(self.graph.node_count());
        let faults = if options.faults.is_none() {
            None
        } else {
            Some(&options.faults)
        };
        if options.sparse {
            // Sparse stepping is a serial mode: the active list, not
            // node stepping, is the bottleneck it optimizes.
            return self.run_serial_core(states, max_rounds, scratch, faults, true, sink);
        }
        if threads <= 1 {
            return match faults {
                // The fault-free plan routes to the plain serial path:
                // bit-identical to a run without options, by
                // construction rather than by argument.
                None => self.run_with_scratch_observed(states, max_rounds, scratch, sink),
                Some(plan) => {
                    self.run_serial_core(states, max_rounds, scratch, Some(plan), false, sink)
                }
            };
        }
        let shard = if options.shard_delivery {
            Some(options.shard_threshold)
        } else {
            None
        };
        self.run_parallel(states, max_rounds, scratch, threads, faults, shard, sink)
    }

    fn check_states<P>(&self, states: Vec<P>) -> Result<Vec<P>, EngineError> {
        if self.graph.node_count() == 0 {
            // A 0-node run used to "succeed" vacuously in 1 round; at
            // scale that silently masks sizing bugs (e.g. grid(r, 0)),
            // so it is now a typed error, mirrored by the reference
            // engine.
            return Err(EngineError::EmptyNetwork);
        }
        if states.len() != self.graph.node_count() {
            return Err(EngineError::NodeCountMismatch {
                graph_nodes: self.graph.node_count(),
                states: states.len(),
            });
        }
        Ok(states)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_parallel<P>(
        &mut self,
        states: Vec<P>,
        max_rounds: usize,
        scratch: &mut EngineScratch<P::Msg>,
        threads: usize,
        faults: Option<&FaultPlan>,
        shard: Option<usize>,
        sink: &mut dyn Sink,
    ) -> Result<RunReport<P>, EngineError>
    where
        P: NodeProtocol + Send,
        P::Msg: Send + Sync + FaultInjectable,
    {
        let mut states = self.check_states(states)?;
        let k = self.graph.node_count();
        let use_csr = scratch.prepare_for(self.graph);
        let max_degree = scratch.edge_bits.len();
        while scratch.workers.len() < threads {
            scratch.workers.push(WorkerScratch::default());
        }
        for w in &mut scratch.workers {
            w.staged.clear();
            w.neighbor_pos.clear();
            w.neighbor_pos.resize(k, 0);
            w.nbr_buf.clear();
            w.edge_bits.clear();
            w.edge_bits.resize(max_degree, 0);
            w.edge_msgs.clear();
            w.edge_msgs.resize(max_degree, 0);
            w.delivered.clear();
            w.perm.clear();
        }
        let EngineScratch {
            csr,
            arena,
            inbox_offsets,
            staged,
            counts,
            perm,
            neighbor_pos,
            edge_bits,
            edge_msgs,
            nbr_buf,
            workers,
            ..
        } = scratch;
        let topo = self.graph;
        let model = self.model;
        let mut metrics = Metrics::new();
        let mut obs = RoundObs::new();
        let chunk_len = k.div_ceil(threads);

        for round in 0..max_rounds {
            let quiescent = round > 0
                && arena.is_empty()
                && states.iter().enumerate().all(|(v, s)| {
                    s.is_done()
                        || faults.is_some_and(|plan| {
                            plan.crashed(v, round) && !plan.will_rejoin(v, round)
                        })
                });
            if quiescent {
                record_run(sink, round, &metrics);
                if let Some(plan) = faults {
                    record_faults(sink, round, &metrics, plan);
                }
                return Ok(finish(round, metrics, states));
            }
            let span = Span::start(&*sink);

            // Step nodes in contiguous chunks, one per worker. Workers
            // only read the arena and write their own staging buffers.
            {
                let csr = &*csr;
                let arena = &*arena;
                let inbox_offsets = &*inbox_offsets;
                crossbeam::scope(|s| {
                    let mut handles = Vec::with_capacity(threads);
                    for ((chunk_idx, chunk), worker) in states
                        .chunks_mut(chunk_len)
                        .enumerate()
                        .zip(workers.iter_mut())
                    {
                        let base = chunk_idx * chunk_len;
                        handles.push(s.spawn(move |_| {
                            let WorkerScratch {
                                staged,
                                neighbor_pos,
                                nbr_buf,
                                ..
                            } = worker;
                            for (off, state) in chunk.iter_mut().enumerate() {
                                let node = base + off;
                                if faults.is_some_and(|plan| plan.crashed(node, round)) {
                                    continue;
                                }
                                if faults.is_some_and(|plan| plan.rejoins_at(node, round)) {
                                    state.on_rejoin(node, round);
                                }
                                let nbrs: &[NodeId] = if use_csr {
                                    csr.neighbors(node)
                                } else {
                                    topo.neighbors(node, nbr_buf)
                                };
                                let inbox = &arena[inbox_offsets[node]..inbox_offsets[node + 1]];
                                let mut out = Outbox::new(node, nbrs, neighbor_pos, staged);
                                state.on_round(node, round, inbox, &mut out);
                                if out.index_filled() {
                                    for &nb in nbrs {
                                        neighbor_pos[nb] = 0;
                                    }
                                }
                            }
                        }));
                    }
                    for h in handles {
                        if let Err(p) = h.join() {
                            std::panic::resume_unwind(p);
                        }
                    }
                })
                .unwrap_or_else(|p| std::panic::resume_unwind(p));
            }

            // Merge in worker (== node) order: the merged buffer is in
            // the exact global send order the serial engine produces.
            for w in workers.iter_mut() {
                staged.append(&mut w.staged);
            }

            let sharded = shard.is_some_and(|t| staged.len() >= t);
            if sharded {
                if sink.enabled() {
                    sink.add(keys::NETSIM_SHARD_ROUNDS, 1);
                    sink.add(keys::NETSIM_SHARD_MESSAGES, staged.len() as u64);
                }
                // Parallel metering: split the merged buffer at
                // sender-run boundaries (sends of one node are
                // contiguous), meter each chunk with worker-local
                // buffers, and merge totals in chunk order — the same
                // per-edge message indices, survivor order, and first
                // error the serial pass produces.
                perm.clear();
                perm.push(0);
                let target = staged.len().div_ceil(threads);
                let mut b = 0;
                for _ in 1..threads {
                    b = (b + target).min(staged.len());
                    while b < staged.len() && staged[b].1 == staged[b - 1].1 {
                        b += 1;
                    }
                    perm.push(b);
                }
                perm.push(staged.len());
                let results = {
                    let mut slices: Vec<&mut [(NodeId, NodeId, P::Msg)]> =
                        Vec::with_capacity(threads);
                    let mut rest: &mut [(NodeId, NodeId, P::Msg)] = staged;
                    let mut prev = 0;
                    for &bnd in &perm[1..] {
                        let (head, tail) = rest.split_at_mut(bnd - prev);
                        slices.push(head);
                        rest = tail;
                        prev = bnd;
                    }
                    let csr: &Csr = csr;
                    crossbeam::scope(|s| {
                        let mut handles = Vec::with_capacity(threads);
                        for (slice, worker) in slices.into_iter().zip(workers.iter_mut()) {
                            handles.push(s.spawn(move |_| {
                                meter_chunk(model, round, slice, worker, csr, topo, use_csr, faults)
                            }));
                        }
                        handles
                            .into_iter()
                            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                            .collect::<Vec<_>>()
                    })
                    .unwrap_or_else(|p| std::panic::resume_unwind(p))
                };
                let mut first_err = None;
                let mut chunk_survivors = Vec::with_capacity(results.len());
                for (m, w_local, err) in results {
                    metrics.total_messages += m.total_messages;
                    metrics.total_bits += m.total_bits;
                    metrics.round_max_edge_bits =
                        metrics.round_max_edge_bits.max(m.round_max_edge_bits);
                    metrics.dropped_messages += m.dropped_messages;
                    metrics.flipped_bits += m.flipped_bits;
                    chunk_survivors.push(w_local);
                    if first_err.is_none() {
                        first_err = err;
                    }
                }
                if let Some(e) = first_err {
                    return Err(e);
                }
                if faults.is_some() {
                    // Survivors sit at the front of each chunk; compact
                    // them across chunks, preserving order.
                    let mut gw = 0;
                    for (c, &survivors) in chunk_survivors.iter().enumerate() {
                        let chunk_start = perm[c];
                        for j in 0..survivors {
                            staged.swap(gw, chunk_start + j);
                            gw += 1;
                        }
                    }
                    staged.truncate(gw);
                }

                deliver_sharded(staged, arena, inbox_offsets, counts, workers, threads);
            } else {
                // Meter serially over the merged buffer. Sends of one
                // node are contiguous, so runs of equal `from` share
                // one neighbor_pos fill. With faults active, each run
                // is metered at original size and then
                // filtered/corrupted into the compaction cursor `w` —
                // the same per-edge message indices and survivor order
                // the serial faulted path produces, hence bit-identical
                // results.
                let mut i = 0;
                let mut w = 0;
                while i < staged.len() {
                    let from = staged[i].1;
                    let nbrs: &[NodeId] = if use_csr {
                        csr.neighbors(from)
                    } else {
                        topo.neighbors(from, nbr_buf)
                    };
                    for (p, &nb) in nbrs.iter().enumerate() {
                        neighbor_pos[nb] = p as u32 + 1;
                    }
                    let mut j = i;
                    while j < staged.len() && staged[j].1 == from {
                        j += 1;
                    }
                    let res = metrics.meter_node(
                        model,
                        round,
                        &staged[i..j],
                        neighbor_pos,
                        edge_bits,
                        nbrs.len(),
                    );
                    if res.is_ok() {
                        if let Some(plan) = faults {
                            for r in i..j {
                                let to = staged[r].0;
                                let pos = (neighbor_pos[to] - 1) as usize;
                                let idx = edge_msgs[pos];
                                edge_msgs[pos] += 1;
                                match plan.apply(round, from, to, idx, &mut staged[r].2) {
                                    None => metrics.dropped_messages += 1,
                                    Some(flips) => {
                                        metrics.flipped_bits += flips as usize;
                                        staged.swap(w, r);
                                        w += 1;
                                    }
                                }
                            }
                            for b in edge_msgs.iter_mut().take(nbrs.len()) {
                                *b = 0;
                            }
                        }
                    }
                    for &nb in nbrs {
                        neighbor_pos[nb] = 0;
                    }
                    res?;
                    i = j;
                }
                if faults.is_some() {
                    staged.truncate(w);
                }

                deliver(staged, arena, inbox_offsets, counts, perm);
            }
            obs.end_round(sink, &mut metrics, span);
        }
        Err(EngineError::RoundLimit { max_rounds })
    }
}

fn finish<P>(rounds: usize, metrics: Metrics, states: Vec<P>) -> RunReport<P> {
    RunReport {
        rounds,
        total_messages: metrics.total_messages,
        total_bits: metrics.total_bits,
        max_edge_bits_per_round: metrics.max_edge_bits,
        dropped_messages: metrics.dropped_messages,
        flipped_bits: metrics.flipped_bits,
        nodes: states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    /// Flood protocol used across the tests.
    #[derive(Clone, Debug)]
    struct Flood {
        seen: bool,
    }

    impl NodeProtocol for Flood {
        type Msg = ();
        fn on_round(
            &mut self,
            node: NodeId,
            round: usize,
            inbox: &[(NodeId, ())],
            out: &mut Outbox<'_, ()>,
        ) {
            let newly = (node == 0 && round == 0) || (!self.seen && !inbox.is_empty());
            if newly {
                self.seen = true;
                out.broadcast(());
            }
        }
        fn is_done(&self) -> bool {
            self.seen
        }
    }

    #[test]
    fn flood_reaches_everyone_on_a_line() {
        let g = topology::line(8);
        let mut net = Network::new(&g, BandwidthModel::Local);
        let report = net.run(vec![Flood { seen: false }; 8], 32).unwrap();
        assert!(report.nodes.iter().all(|n| n.seen));
        // 0 announces in round 0; node 7 hears in round 7 and re-broadcasts;
        // round 8 drains node 7's broadcast; round 9 detects quiescence.
        assert_eq!(report.rounds, 9);
    }

    #[test]
    fn flood_rounds_scale_with_diameter() {
        let g_star = topology::star(16);
        let mut net = Network::new(&g_star, BandwidthModel::Local);
        let report = net.run(vec![Flood { seen: false }; 16], 32).unwrap();
        assert!(
            report.rounds <= 4,
            "star flood took {} rounds",
            report.rounds
        );
    }

    #[test]
    fn message_metrics_are_counted() {
        let g = topology::line(3);
        let mut net = Network::new(&g, BandwidthModel::Local);
        let report = net.run(vec![Flood { seen: false }; 3], 32).unwrap();
        // round 0: 0->1. round 1: 1->0, 1->2. round 2: 2->1.
        assert_eq!(report.total_messages, 4);
        assert_eq!(report.total_bits, 4); // unit messages cost 1 bit each
        assert_eq!(report.max_edge_bits_per_round, 1);
    }

    #[test]
    fn scratch_reuse_gives_identical_reports() {
        let g = topology::line(8);
        let mut net = Network::new(&g, BandwidthModel::Local);
        let mut scratch = EngineScratch::new();
        let first = net
            .run_with_scratch(vec![Flood { seen: false }; 8], 32, &mut scratch)
            .unwrap();
        for _ in 0..3 {
            let again = net
                .run_with_scratch(vec![Flood { seen: false }; 8], 32, &mut scratch)
                .unwrap();
            assert_eq!(again.rounds, first.rounds);
            assert_eq!(again.total_messages, first.total_messages);
            assert_eq!(again.total_bits, first.total_bits);
            assert_eq!(again.max_edge_bits_per_round, first.max_edge_bits_per_round);
        }
    }

    #[test]
    fn scratch_adapts_across_graphs() {
        let mut scratch = EngineScratch::new();
        let g1 = topology::complete(12);
        let g2 = topology::line(5);
        let mut net1 = Network::new(&g1, BandwidthModel::Local);
        let r1 = net1
            .run_with_scratch(vec![Flood { seen: false }; 12], 32, &mut scratch)
            .unwrap();
        assert!(r1.nodes.iter().all(|n| n.seen));
        let mut net2 = Network::new(&g2, BandwidthModel::Local);
        let r2 = net2
            .run_with_scratch(vec![Flood { seen: false }; 5], 32, &mut scratch)
            .unwrap();
        assert!(r2.nodes.iter().all(|n| n.seen));
        assert_eq!(r2.rounds, 6);
    }

    #[test]
    fn parallel_run_matches_serial() {
        let g = topology::complete(24);
        let mut net = Network::new(&g, BandwidthModel::Local);
        let serial = net.run(vec![Flood { seen: false }; 24], 32).unwrap();
        for threads in [2, 3, 8] {
            let mut scratch = EngineScratch::new();
            let par = net
                .run_with_options(
                    vec![Flood { seen: false }; 24],
                    32,
                    &mut scratch,
                    &RunOptions::parallel(threads),
                )
                .unwrap();
            assert_eq!(par.rounds, serial.rounds);
            assert_eq!(par.total_messages, serial.total_messages);
            assert_eq!(par.total_bits, serial.total_bits);
            assert_eq!(par.max_edge_bits_per_round, serial.max_edge_bits_per_round);
            assert!(par.nodes.iter().all(|n| n.seen));
        }
    }

    #[test]
    fn parallel_threshold_keeps_small_graphs_serial() {
        let opts = RunOptions::default();
        assert_eq!(opts.effective_threads(8), 1);
        assert_eq!(RunOptions::serial().effective_threads(100_000), 1);
        assert_eq!(RunOptions::parallel(4).effective_threads(8), 4);
    }

    #[test]
    fn congest_budget_violation_detected() {
        /// Sends a fat message over one edge in round 0.
        #[derive(Debug)]
        struct Fat;
        impl NodeProtocol for Fat {
            type Msg = Vec<u64>;
            fn on_round(
                &mut self,
                node: NodeId,
                round: usize,
                _inbox: &[(NodeId, Vec<u64>)],
                out: &mut Outbox<'_, Vec<u64>>,
            ) {
                if node == 0 && round == 0 {
                    out.send(1, vec![0u64; 100]); // 6400 bits
                }
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = topology::line(2);
        let mut net = Network::new(&g, BandwidthModel::Congest { bits_per_edge: 64 });
        let err = net.run(vec![Fat, Fat], 8).unwrap_err();
        assert!(matches!(err, EngineError::BandwidthExceeded { .. }));
    }

    #[test]
    fn congest_budget_split_across_messages() {
        /// Sends two messages over one edge whose *sum* exceeds the budget.
        #[derive(Debug)]
        struct TwoMsgs;
        impl NodeProtocol for TwoMsgs {
            type Msg = u64;
            fn on_round(
                &mut self,
                node: NodeId,
                round: usize,
                _inbox: &[(NodeId, u64)],
                out: &mut Outbox<'_, u64>,
            ) {
                if node == 0 && round == 0 {
                    out.send(1, 1);
                    out.send(1, 2);
                }
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = topology::line(2);
        let mut net = Network::new(&g, BandwidthModel::Congest { bits_per_edge: 100 });
        let err = net.run(vec![TwoMsgs, TwoMsgs], 8).unwrap_err();
        assert!(matches!(
            err,
            EngineError::BandwidthExceeded { bits: 128, .. }
        ));
    }

    #[test]
    fn congest_within_budget_succeeds() {
        let g = topology::line(4);
        let mut net = Network::new(&g, BandwidthModel::Congest { bits_per_edge: 8 });
        let report = net.run(vec![Flood { seen: false }; 4], 32).unwrap();
        assert!(report.nodes.iter().all(|n| n.seen));
    }

    #[test]
    fn scratch_usable_after_engine_error() {
        /// Over budget in round 0 when armed; silent otherwise.
        #[derive(Debug, Clone)]
        struct MaybeFat {
            armed: bool,
        }
        impl NodeProtocol for MaybeFat {
            type Msg = u64;
            fn on_round(
                &mut self,
                node: NodeId,
                round: usize,
                _inbox: &[(NodeId, u64)],
                out: &mut Outbox<'_, u64>,
            ) {
                if self.armed && node == 0 && round == 0 {
                    out.send(1, 7);
                }
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = topology::line(2);
        let mut net = Network::new(&g, BandwidthModel::Congest { bits_per_edge: 8 });
        let mut scratch = EngineScratch::new();
        let err = net
            .run_with_scratch(vec![MaybeFat { armed: true }; 2], 8, &mut scratch)
            .unwrap_err();
        assert!(matches!(err, EngineError::BandwidthExceeded { .. }));
        // The same scratch must run clean afterwards.
        let ok = net
            .run_with_scratch(vec![MaybeFat { armed: false }; 2], 8, &mut scratch)
            .unwrap();
        assert_eq!(ok.total_messages, 0);
        assert_eq!(ok.rounds, 1);
    }

    #[test]
    fn round_limit_enforced() {
        /// Never terminates: ping-pongs forever.
        #[derive(Debug)]
        struct Chatter;
        impl NodeProtocol for Chatter {
            type Msg = ();
            fn on_round(
                &mut self,
                _node: NodeId,
                _round: usize,
                _inbox: &[(NodeId, ())],
                out: &mut Outbox<'_, ()>,
            ) {
                out.broadcast(());
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = topology::line(2);
        let mut net = Network::new(&g, BandwidthModel::Local);
        let err = net.run(vec![Chatter, Chatter], 10).unwrap_err();
        assert_eq!(err, EngineError::RoundLimit { max_rounds: 10 });
    }

    #[test]
    fn node_count_mismatch_detected() {
        let g = topology::line(3);
        let mut net = Network::new(&g, BandwidthModel::Local);
        let err = net.run(vec![Flood { seen: false }; 2], 8).unwrap_err();
        assert!(matches!(err, EngineError::NodeCountMismatch { .. }));
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn send_to_non_neighbor_panics() {
        #[derive(Debug)]
        struct Bad;
        impl NodeProtocol for Bad {
            type Msg = ();
            fn on_round(
                &mut self,
                node: NodeId,
                _round: usize,
                _inbox: &[(NodeId, ())],
                out: &mut Outbox<'_, ()>,
            ) {
                if node == 0 {
                    out.send(2, ());
                }
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = topology::line(3); // 0-1-2: node 2 not adjacent to 0
        let mut net = Network::new(&g, BandwidthModel::Local);
        let _ = net.run(vec![Bad, Bad, Bad], 8);
    }

    #[test]
    fn congest_for_scales_logarithmically() {
        let m1 = BandwidthModel::congest_for(1 << 10);
        let m2 = BandwidthModel::congest_for(1 << 20);
        match (m1, m2) {
            (
                BandwidthModel::Congest { bits_per_edge: b1 },
                BandwidthModel::Congest { bits_per_edge: b2 },
            ) => {
                assert_eq!(b1, 22);
                assert_eq!(b2, 42);
            }
            _ => panic!("expected congest models"),
        }
    }

    #[test]
    fn congest_for_exact_bit_lengths() {
        let budget = |n: usize| match BandwidthModel::congest_for(n) {
            BandwidthModel::Congest { bits_per_edge } => bits_per_edge,
            BandwidthModel::Local => unreachable!(),
        };
        assert_eq!(budget(0), 2);
        assert_eq!(budget(1), 2);
        assert_eq!(budget(2), 4); // ⌈log₂ 3⌉ = 2
        assert_eq!(budget(3), 4);
        assert_eq!(budget(4), 6);
        assert_eq!(budget((1 << 10) - 1), 20);
        assert_eq!(budget(1 << 10), 22);
        // f64 log2 rounding must not perturb large powers of two; the
        // integer form is exact everywhere.
        assert_eq!(budget(1 << 52), 106);
        assert_eq!(budget((1 << 53) + 1), 108);
    }

    #[test]
    fn message_size_impls() {
        assert_eq!(().size_bits(), 1);
        assert_eq!(true.size_bits(), 1);
        assert_eq!(7u32.size_bits(), 32);
        assert_eq!(7u64.size_bits(), 64);
        assert_eq!(vec![1u64, 2, 3].size_bits(), 192);
        assert_eq!(Vec::<u64>::new().size_bits(), 1);
        assert_eq!((1u32, 2u64).size_bits(), 96);
    }
}
