//! The synchronous round engine.
//!
//! Executes a [`NodeProtocol`] at every node of a [`Graph`] in lockstep
//! rounds: messages sent in round `r` are delivered at the start of round
//! `r+1`. Under [`BandwidthModel::Congest`] the engine *enforces* the
//! per-edge-per-round bit budget — a protocol that violates CONGEST fails
//! loudly instead of silently cheating — and every run returns a
//! [`RunReport`] with rounds, message and bit counts.

use crate::graph::{Graph, NodeId};
use std::error::Error;
use std::fmt;

/// Bit-size accounting for protocol messages.
///
/// CONGEST budgets are measured in bits; every message type must say how
/// many bits it occupies on the wire. Implementations for the common
/// payload types are provided.
pub trait MessageSize {
    /// Size of this message in bits. Every message costs at least 1 bit.
    fn size_bits(&self) -> usize;
}

impl MessageSize for () {
    fn size_bits(&self) -> usize {
        1
    }
}

impl MessageSize for bool {
    fn size_bits(&self) -> usize {
        1
    }
}

impl MessageSize for u32 {
    fn size_bits(&self) -> usize {
        32
    }
}

impl MessageSize for u64 {
    fn size_bits(&self) -> usize {
        64
    }
}

impl<T: MessageSize> MessageSize for Vec<T> {
    fn size_bits(&self) -> usize {
        self.iter().map(MessageSize::size_bits).sum::<usize>().max(1)
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn size_bits(&self) -> usize {
        self.0.size_bits() + self.1.size_bits()
    }
}

/// A bounded counter metered at its actual bit length
/// (`⌈log₂(v+1)⌉`, minimum 1) — the natural CONGEST cost of sending a
/// value known to lie in a small range, such as a BFS depth or a
/// partial count. A fixed-width `u64` would be charged 64 bits even
/// when the protocol only ever sends values below `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Compact(pub u64);

impl MessageSize for Compact {
    fn size_bits(&self) -> usize {
        (64 - self.0.leading_zeros() as usize).max(1)
    }
}

/// The bandwidth model a run is executed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandwidthModel {
    /// LOCAL: unbounded message sizes; only rounds are counted.
    Local,
    /// CONGEST: at most `bits_per_edge` bits per *directed* edge per
    /// round.
    Congest {
        /// The per-edge-per-round budget in bits.
        bits_per_edge: usize,
    },
}

impl BandwidthModel {
    /// The standard CONGEST budget for a parameter space of size `n`
    /// (domain size or network size, whichever is larger):
    /// `c · ⌈log₂(n+1)⌉` bits with the conventional `c = 2` (one value
    /// plus header room).
    pub fn congest_for(n: usize) -> Self {
        let bits = 2 * ((n + 1) as f64).log2().ceil() as usize;
        BandwidthModel::Congest {
            bits_per_edge: bits.max(2),
        }
    }
}

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A node exceeded the CONGEST per-edge-per-round budget.
    BandwidthExceeded {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Round in which the violation occurred.
        round: usize,
        /// Bits the sender tried to push over the edge this round.
        bits: usize,
        /// The enforced budget.
        budget: usize,
    },
    /// The protocol did not terminate within the round limit.
    RoundLimit {
        /// The limit that was hit.
        max_rounds: usize,
    },
    /// The number of protocol states did not match the node count.
    NodeCountMismatch {
        /// Nodes in the graph.
        graph_nodes: usize,
        /// Protocol states supplied.
        states: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BandwidthExceeded {
                from,
                to,
                round,
                bits,
                budget,
            } => write!(
                f,
                "congest violation on edge {from}->{to} in round {round}: {bits} bits > budget {budget}"
            ),
            EngineError::RoundLimit { max_rounds } => {
                write!(f, "protocol did not terminate within {max_rounds} rounds")
            }
            EngineError::NodeCountMismatch {
                graph_nodes,
                states,
            } => write!(
                f,
                "graph has {graph_nodes} nodes but {states} protocol states were supplied"
            ),
        }
    }
}

impl Error for EngineError {}

/// The interface a distributed algorithm implements to run on the
/// engine. One value of the implementing type is the local state of one
/// node.
pub trait NodeProtocol {
    /// The message type exchanged by the protocol.
    type Msg: Clone + MessageSize;

    /// Called once per round at every node. `inbox` holds the messages
    /// delivered this round (sent by neighbors last round), each tagged
    /// with its sender. Messages for the next round are queued through
    /// `out`.
    fn on_round(
        &mut self,
        node: NodeId,
        round: usize,
        inbox: &[(NodeId, Self::Msg)],
        out: &mut Outbox<'_, Self::Msg>,
    );

    /// Whether this node has produced its final output. The run ends
    /// when all nodes are done and no messages are in flight.
    fn is_done(&self) -> bool;
}

/// Queues outgoing messages for one node during one round.
#[derive(Debug)]
pub struct Outbox<'a, M> {
    node: NodeId,
    neighbors: &'a [NodeId],
    sends: Vec<(NodeId, M)>,
}

impl<M> Outbox<'_, M> {
    /// Sends `msg` to neighbor `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbor of the sending node — protocols
    /// may only talk over edges.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.contains(&to),
            "node {} tried to send to non-neighbor {}",
            self.node,
            to
        );
        self.sends.push((to, msg));
    }

    /// Sends a copy of `msg` to every neighbor.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for &to in self.neighbors {
            self.sends.push((to, msg.clone()));
        }
    }

    /// Neighbors of the sending node (so protocols need not carry the
    /// graph around).
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }
}

/// Metrics and final node states from a completed run.
#[derive(Debug, Clone)]
pub struct RunReport<P> {
    /// Rounds executed (including the final quiescent round, if any
    /// messages were still in flight when all nodes finished).
    pub rounds: usize,
    /// Total messages delivered.
    pub total_messages: usize,
    /// Total bits delivered.
    pub total_bits: usize,
    /// The maximum bits pushed over any directed edge in any single
    /// round — must be ≤ the CONGEST budget when one is enforced.
    pub max_edge_bits_per_round: usize,
    /// Final per-node protocol states (outputs live here).
    pub nodes: Vec<P>,
}

/// A synchronous network: a graph plus a bandwidth model.
#[derive(Debug)]
pub struct Network<'g> {
    graph: &'g Graph,
    model: BandwidthModel,
}

impl<'g> Network<'g> {
    /// Creates a network over `graph` with the given bandwidth model.
    pub fn new(graph: &'g Graph, model: BandwidthModel) -> Self {
        Network { graph, model }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The bandwidth model.
    pub fn model(&self) -> BandwidthModel {
        self.model
    }

    /// Runs the protocol to quiescence (all nodes done, no messages in
    /// flight) or up to `max_rounds`.
    ///
    /// # Errors
    ///
    /// * [`EngineError::NodeCountMismatch`] if `states` has the wrong
    ///   length.
    /// * [`EngineError::BandwidthExceeded`] on a CONGEST violation.
    /// * [`EngineError::RoundLimit`] if quiescence is not reached.
    pub fn run<P: NodeProtocol>(
        &mut self,
        states: Vec<P>,
        max_rounds: usize,
    ) -> Result<RunReport<P>, EngineError> {
        let k = self.graph.node_count();
        if states.len() != k {
            return Err(EngineError::NodeCountMismatch {
                graph_nodes: k,
                states: states.len(),
            });
        }
        let mut states = states;
        let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); k];
        let mut next_inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); k];
        let mut total_messages = 0usize;
        let mut total_bits = 0usize;
        let mut max_edge_bits = 0usize;

        for round in 0..max_rounds {
            // Quiescence check: nothing in flight and everyone done.
            let in_flight = inboxes.iter().any(|b| !b.is_empty());
            if round > 0 && !in_flight && states.iter().all(NodeProtocol::is_done) {
                return Ok(RunReport {
                    rounds: round,
                    total_messages,
                    total_bits,
                    max_edge_bits_per_round: max_edge_bits,
                    nodes: states,
                });
            }

            for (node, state) in states.iter_mut().enumerate() {
                let mut out = Outbox {
                    node,
                    neighbors: self.graph.neighbors(node),
                    sends: Vec::new(),
                };
                state.on_round(node, round, &inboxes[node], &mut out);

                // Deliver (and meter) this node's sends.
                // Per-destination bit accounting for CONGEST.
                let mut sent_bits_to: Vec<(NodeId, usize)> = Vec::new();
                for (to, msg) in out.sends {
                    let bits = msg.size_bits();
                    let entry = match sent_bits_to.iter_mut().find(|(d, _)| *d == to) {
                        Some(e) => {
                            e.1 += bits;
                            e.1
                        }
                        None => {
                            sent_bits_to.push((to, bits));
                            bits
                        }
                    };
                    if let BandwidthModel::Congest { bits_per_edge } = self.model {
                        if entry > bits_per_edge {
                            return Err(EngineError::BandwidthExceeded {
                                from: node,
                                to,
                                round,
                                bits: entry,
                                budget: bits_per_edge,
                            });
                        }
                    }
                    max_edge_bits = max_edge_bits.max(entry);
                    total_messages += 1;
                    total_bits += bits;
                    next_inboxes[to].push((node, msg));
                }
            }

            for b in inboxes.iter_mut() {
                b.clear();
            }
            std::mem::swap(&mut inboxes, &mut next_inboxes);
        }
        Err(EngineError::RoundLimit { max_rounds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    /// Flood protocol used across the tests.
    #[derive(Clone, Debug)]
    struct Flood {
        seen: bool,
    }

    impl NodeProtocol for Flood {
        type Msg = ();
        fn on_round(
            &mut self,
            node: NodeId,
            round: usize,
            inbox: &[(NodeId, ())],
            out: &mut Outbox<'_, ()>,
        ) {
            let newly = (node == 0 && round == 0) || (!self.seen && !inbox.is_empty());
            if newly {
                self.seen = true;
                out.broadcast(());
            }
        }
        fn is_done(&self) -> bool {
            self.seen
        }
    }

    #[test]
    fn flood_reaches_everyone_on_a_line() {
        let g = topology::line(8);
        let mut net = Network::new(&g, BandwidthModel::Local);
        let report = net.run(vec![Flood { seen: false }; 8], 32).unwrap();
        assert!(report.nodes.iter().all(|n| n.seen));
        // 0 announces in round 0; node 7 hears in round 7 and re-broadcasts;
        // round 8 drains node 7's broadcast; round 9 detects quiescence.
        assert_eq!(report.rounds, 9);
    }

    #[test]
    fn flood_rounds_scale_with_diameter() {
        let g_star = topology::star(16);
        let mut net = Network::new(&g_star, BandwidthModel::Local);
        let report = net.run(vec![Flood { seen: false }; 16], 32).unwrap();
        assert!(report.rounds <= 4, "star flood took {} rounds", report.rounds);
    }

    #[test]
    fn message_metrics_are_counted() {
        let g = topology::line(3);
        let mut net = Network::new(&g, BandwidthModel::Local);
        let report = net.run(vec![Flood { seen: false }; 3], 32).unwrap();
        // round 0: 0->1. round 1: 1->0, 1->2. round 2: 2->1.
        assert_eq!(report.total_messages, 4);
        assert_eq!(report.total_bits, 4); // unit messages cost 1 bit each
        assert_eq!(report.max_edge_bits_per_round, 1);
    }

    #[test]
    fn congest_budget_violation_detected() {
        /// Sends a fat message over one edge in round 0.
        #[derive(Debug)]
        struct Fat;
        impl NodeProtocol for Fat {
            type Msg = Vec<u64>;
            fn on_round(
                &mut self,
                node: NodeId,
                round: usize,
                _inbox: &[(NodeId, Vec<u64>)],
                out: &mut Outbox<'_, Vec<u64>>,
            ) {
                if node == 0 && round == 0 {
                    out.send(1, vec![0u64; 100]); // 6400 bits
                }
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = topology::line(2);
        let mut net = Network::new(&g, BandwidthModel::Congest { bits_per_edge: 64 });
        let err = net.run(vec![Fat, Fat], 8).unwrap_err();
        assert!(matches!(err, EngineError::BandwidthExceeded { .. }));
    }

    #[test]
    fn congest_budget_split_across_messages() {
        /// Sends two messages over one edge whose *sum* exceeds the budget.
        #[derive(Debug)]
        struct TwoMsgs;
        impl NodeProtocol for TwoMsgs {
            type Msg = u64;
            fn on_round(
                &mut self,
                node: NodeId,
                round: usize,
                _inbox: &[(NodeId, u64)],
                out: &mut Outbox<'_, u64>,
            ) {
                if node == 0 && round == 0 {
                    out.send(1, 1);
                    out.send(1, 2);
                }
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = topology::line(2);
        let mut net = Network::new(&g, BandwidthModel::Congest { bits_per_edge: 100 });
        let err = net.run(vec![TwoMsgs, TwoMsgs], 8).unwrap_err();
        assert!(matches!(
            err,
            EngineError::BandwidthExceeded { bits: 128, .. }
        ));
    }

    #[test]
    fn congest_within_budget_succeeds() {
        let g = topology::line(4);
        let mut net = Network::new(&g, BandwidthModel::Congest { bits_per_edge: 8 });
        let report = net.run(vec![Flood { seen: false }; 4], 32).unwrap();
        assert!(report.nodes.iter().all(|n| n.seen));
    }

    #[test]
    fn round_limit_enforced() {
        /// Never terminates: ping-pongs forever.
        #[derive(Debug)]
        struct Chatter;
        impl NodeProtocol for Chatter {
            type Msg = ();
            fn on_round(
                &mut self,
                _node: NodeId,
                _round: usize,
                _inbox: &[(NodeId, ())],
                out: &mut Outbox<'_, ()>,
            ) {
                out.broadcast(());
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = topology::line(2);
        let mut net = Network::new(&g, BandwidthModel::Local);
        let err = net.run(vec![Chatter, Chatter], 10).unwrap_err();
        assert_eq!(err, EngineError::RoundLimit { max_rounds: 10 });
    }

    #[test]
    fn node_count_mismatch_detected() {
        let g = topology::line(3);
        let mut net = Network::new(&g, BandwidthModel::Local);
        let err = net.run(vec![Flood { seen: false }; 2], 8).unwrap_err();
        assert!(matches!(err, EngineError::NodeCountMismatch { .. }));
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn send_to_non_neighbor_panics() {
        #[derive(Debug)]
        struct Bad;
        impl NodeProtocol for Bad {
            type Msg = ();
            fn on_round(
                &mut self,
                node: NodeId,
                _round: usize,
                _inbox: &[(NodeId, ())],
                out: &mut Outbox<'_, ()>,
            ) {
                if node == 0 {
                    out.send(2, ());
                }
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = topology::line(3); // 0-1-2: node 2 not adjacent to 0
        let mut net = Network::new(&g, BandwidthModel::Local);
        let _ = net.run(vec![Bad, Bad, Bad], 8);
    }

    #[test]
    fn congest_for_scales_logarithmically() {
        let m1 = BandwidthModel::congest_for(1 << 10);
        let m2 = BandwidthModel::congest_for(1 << 20);
        match (m1, m2) {
            (
                BandwidthModel::Congest { bits_per_edge: b1 },
                BandwidthModel::Congest { bits_per_edge: b2 },
            ) => {
                assert_eq!(b1, 22);
                assert_eq!(b2, 42);
            }
            _ => panic!("expected congest models"),
        }
    }

    #[test]
    fn message_size_impls() {
        assert_eq!(().size_bits(), 1);
        assert_eq!(true.size_bits(), 1);
        assert_eq!(7u32.size_bits(), 32);
        assert_eq!(7u64.size_bits(), 64);
        assert_eq!(vec![1u64, 2, 3].size_bits(), 192);
        assert_eq!(Vec::<u64>::new().size_bits(), 1);
        assert_eq!((1u32, 2u64).size_bits(), 96);
    }
}
