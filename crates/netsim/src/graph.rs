//! Undirected graphs and basic graph algorithms.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// A node identifier: nodes are numbered `0 .. k`.
pub type NodeId = usize;

/// Typed rejection reasons for [`Graph::try_add_edge`].
///
/// The panicking [`Graph::add_edge`] keeps its historical contract;
/// callers assembling graphs from untrusted or machine-generated edge
/// lists (fuzzers, file loaders, degenerate-size sweeps) use
/// [`Graph::try_add_edge`] and get these instead of a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint is `>= node_count()`.
    OutOfRange {
        /// The offending endpoint.
        node: NodeId,
        /// The number of nodes in the graph.
        nodes: usize,
    },
    /// Both endpoints are the same node. A self-loop would make the
    /// round engine deliver a node its own message, which no CONGEST
    /// protocol in this repo is written to expect.
    SelfLoop {
        /// The node.
        node: NodeId,
    },
    /// The edge is already present. A parallel edge would double-deliver
    /// every message sent over it in the flat engine.
    Duplicate {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::OutOfRange { node, nodes } => {
                write!(f, "endpoint {node} out of range for {nodes} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::Duplicate { u, v } => write!(f, "duplicate edge {{{u}, {v}}}"),
        }
    }
}

impl Error for GraphError {}

/// An undirected simple graph with adjacency lists.
///
/// Node identifiers are dense (`0 .. node_count()`). Self-loops and
/// parallel edges are rejected at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an edgeless graph with `k` nodes.
    pub fn new(k: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); k],
            edge_count: 0,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, self-loops, or duplicate edges.
    pub fn from_edges(k: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut g = Graph::new(k);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Builds a graph from an edge list, silently skipping self-loops
    /// and duplicate edges (in either orientation) instead of panicking.
    /// Out-of-range endpoints are still a hard error: they indicate a
    /// sizing bug, not a redundant edge.
    ///
    /// The result runs identically on the flat and reference engines to
    /// a graph built from the deduplicated list with [`Graph::from_edges`]
    /// — without dedup a parallel edge would double-deliver messages.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints.
    pub fn from_edges_dedup(k: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut g = Graph::new(k);
        for &(u, v) in edges {
            match g.try_add_edge(u, v) {
                Ok(()) | Err(GraphError::SelfLoop { .. }) | Err(GraphError::Duplicate { .. }) => {}
                Err(e @ GraphError::OutOfRange { .. }) => panic!("{e}"),
            }
        }
        g
    }

    /// Builds a graph directly from adjacency lists, preserving the
    /// neighbor *order* of every list. The round engine's message
    /// staging and inbox ordering follow neighbor order, so this is the
    /// constructor that lets an implicit topology materialize into a
    /// [`Graph`] whose engine runs are bit-identical to its on-the-fly
    /// runs (see [`ImplicitTopology::materialize`]).
    ///
    /// # Panics
    ///
    /// Panics if any list contains an out-of-range node, a self-loop, a
    /// duplicate neighbor, or if the lists are not symmetric (`u` lists
    /// `v` but `v` does not list `u`).
    pub fn from_adjacency(adj: Vec<Vec<NodeId>>) -> Self {
        let k = adj.len();
        let mut stamp = vec![usize::MAX; k];
        let mut half_edges = 0usize;
        for (u, nbrs) in adj.iter().enumerate() {
            for &v in nbrs {
                assert!(v < k, "endpoint {v} out of range for {k} nodes");
                assert_ne!(u, v, "self-loops are not allowed");
                assert!(stamp[v] != u, "duplicate edge {{{u}, {v}}}");
                stamp[v] = u;
                assert!(
                    adj[v].contains(&u),
                    "asymmetric adjacency: {u} lists {v} but not vice versa"
                );
                half_edges += 1;
            }
        }
        debug_assert!(half_edges.is_multiple_of(2));
        Graph {
            adj,
            edge_count: half_edges / 2,
        }
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, self-loops, or duplicate edges.
    /// Fallible callers use [`Graph::try_add_edge`].
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "endpoint out of range"
        );
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(!self.adj[u].contains(&v), "duplicate edge {{{u}, {v}}}");
        self.adj[u].push(v);
        self.adj[v].push(u);
        self.edge_count += 1;
    }

    /// Adds the undirected edge `{u, v}`, returning a typed
    /// [`GraphError`] instead of panicking on out-of-range endpoints,
    /// self-loops, or duplicate edges. On `Err` the graph is unchanged.
    ///
    /// # Errors
    ///
    /// [`GraphError::OutOfRange`], [`GraphError::SelfLoop`], or
    /// [`GraphError::Duplicate`].
    pub fn try_add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let k = self.adj.len();
        for node in [u, v] {
            if node >= k {
                return Err(GraphError::OutOfRange { node, nodes: k });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.adj[u].contains(&v) {
            return Err(GraphError::Duplicate { u, v });
        }
        self.adj[u].push(v);
        self.adj[v].push(u);
        self.edge_count += 1;
        Ok(())
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// Whether `{u, v}` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u].contains(&v)
    }

    /// BFS distances from `source`; unreachable nodes get `None`.
    pub fn bfs_distances(&self, source: NodeId) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.node_count()];
        let mut queue = VecDeque::new();
        dist[source] = Some(0);
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued nodes have distances");
            for &w in &self.adj[u] {
                if dist[w].is_none() {
                    dist[w] = Some(du + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Whether the graph is connected (true for the empty and 1-node
    /// graphs).
    pub fn is_connected(&self) -> bool {
        if self.node_count() <= 1 {
            return true;
        }
        self.bfs_distances(0).iter().all(|d| d.is_some())
    }

    /// The eccentricity of `v`: max distance to any node.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    pub fn eccentricity(&self, v: NodeId) -> usize {
        self.bfs_distances(v)
            .iter()
            .map(|d| d.expect("eccentricity requires a connected graph"))
            .max()
            .unwrap_or(0)
    }

    /// The exact diameter, via BFS from every node — O(k·m). Fine for
    /// experiment-scale graphs (k up to a few tens of thousands).
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    pub fn diameter(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.eccentricity(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterates over all undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Connected components: returns `component[v]` labels in
    /// `0..component_count`, numbered by discovery order.
    pub fn connected_components(&self) -> (Vec<usize>, usize) {
        let k = self.node_count();
        let mut comp = vec![usize::MAX; k];
        let mut count = 0usize;
        for start in 0..k {
            if comp[start] != usize::MAX {
                continue;
            }
            let id = count;
            count += 1;
            let mut stack = vec![start];
            comp[start] = id;
            while let Some(u) = stack.pop() {
                for &w in &self.adj[u] {
                    if comp[w] == usize::MAX {
                        comp[w] = id;
                        stack.push(w);
                    }
                }
            }
        }
        (comp, count)
    }

    /// Minimum, mean, and maximum degree — the quantities that drive
    /// Luby-phase counts and congestion hot spots.
    ///
    /// # Panics
    ///
    /// Panics on an empty graph.
    pub fn degree_stats(&self) -> DegreeStats {
        assert!(self.node_count() > 0, "degree stats need a non-empty graph");
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        for v in 0..self.node_count() {
            let d = self.degree(v);
            min = min.min(d);
            max = max.max(d);
            sum += d;
        }
        DegreeStats {
            min,
            max,
            mean: sum as f64 / self.node_count() as f64,
        }
    }

    /// The induced subgraph on `nodes` (which must be distinct). Node
    /// `i` of the result corresponds to `nodes[i]`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or duplicate entries.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> Graph {
        let mut index_of = vec![usize::MAX; self.node_count()];
        for (i, &v) in nodes.iter().enumerate() {
            assert!(v < self.node_count(), "node {v} out of range");
            assert_eq!(index_of[v], usize::MAX, "node {v} listed twice");
            index_of[v] = i;
        }
        let mut g = Graph::new(nodes.len());
        for (i, &v) in nodes.iter().enumerate() {
            for &w in &self.adj[v] {
                let j = index_of[w];
                if j != usize::MAX && i < j {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    /// Renders the graph in Graphviz DOT format, optionally highlighting
    /// a set of nodes (e.g. MIS centers) with a `fillcolor`.
    pub fn to_dot(&self, name: &str, highlight: Option<&[NodeId]>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "graph {name} {{");
        if let Some(hl) = highlight {
            for &v in hl {
                let _ = writeln!(out, "  {v} [style=filled, fillcolor=lightblue];");
            }
        }
        for (u, v) in self.edges() {
            let _ = writeln!(out, "  {u} -- {v};");
        }
        out.push_str("}\n");
        out
    }
}

/// A compressed-sparse-row view of a [`Graph`].
///
/// The per-node `Vec<NodeId>` adjacency lists of [`Graph`] are flattened
/// into one `neighbors` array indexed by an `offsets` array, so the hot
/// path of the round engine walks a single contiguous allocation instead
/// of chasing one heap pointer per node. Neighbor order is preserved
/// exactly, so anything iterating `neighbors(v)` sees the same sequence
/// as [`Graph::neighbors`].
///
/// A `Csr` is a reusable buffer: [`Csr::rebuild_from`] refills it from a
/// graph without allocating once its capacity has grown, which is what
/// lets [`crate::engine::EngineScratch`] run Monte-Carlo trial after
/// trial allocation-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
    max_degree: usize,
}

impl Csr {
    /// Creates an empty CSR (zero nodes) to be filled by
    /// [`Csr::rebuild_from`].
    pub fn new() -> Self {
        Csr::default()
    }

    /// Builds a CSR from a graph.
    pub fn from_graph(g: &Graph) -> Self {
        let mut csr = Csr::new();
        csr.rebuild_from(g);
        csr
    }

    /// Refills this CSR from `g`, reusing the existing buffers. Does not
    /// allocate once the buffers have grown to the graph's size.
    pub fn rebuild_from(&mut self, g: &Graph) {
        self.offsets.clear();
        self.neighbors.clear();
        self.max_degree = 0;
        self.offsets.reserve(g.node_count() + 1);
        self.neighbors.reserve(2 * g.edge_count());
        self.offsets.push(0);
        for v in 0..g.node_count() {
            let nbrs = g.neighbors(v);
            self.max_degree = self.max_degree.max(nbrs.len());
            self.neighbors.extend_from_slice(nbrs);
            self.offsets.push(self.neighbors.len());
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Neighbors of `v`, in the same order as [`Graph::neighbors`].
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The largest degree in the graph (0 for an empty graph).
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }
}

/// A topology whose neighbor lists are computed on the fly instead of
/// being stored.
///
/// An explicit [`Graph`] on 10⁷ nodes costs gigabytes of adjacency
/// lists; a torus or hypercube on the same node count is fully
/// described by its dimensions. Implementors yield each node's
/// neighbors into a caller-provided buffer in a **fixed canonical
/// order** — the round engine's message staging and inbox ordering
/// follow neighbor order, so the order is part of the topology's
/// identity: a run on the implicit form and a run on
/// [`ImplicitTopology::materialize`]'s output are bit-identical.
///
/// [`Graph`] itself implements the trait (borrowing its stored lists
/// and ignoring the buffer), so engine and protocol entry points
/// generic over `ImplicitTopology` accept both materialized and
/// implicit networks; [`crate::engine::Network`] keeps its CSR fast
/// path for `Graph` through [`ImplicitTopology::prime_csr`].
pub trait ImplicitTopology: Sync {
    /// Number of nodes; ids are dense `0..node_count()`.
    fn node_count(&self) -> usize;

    /// An upper bound on the degree of any node, used to size the
    /// engine's per-neighbor accounting buffers. Must be `>=` every
    /// actual degree; a slack bound only costs a few unused slots.
    fn max_degree(&self) -> usize;

    /// Writes `v`'s neighbors into `buf` (clearing it first) and
    /// returns them. The order must be identical on every call — it is
    /// observable through engine runs. Implementations backed by stored
    /// adjacency (like [`Graph`]) may ignore `buf` and return their own
    /// slice.
    fn neighbors<'a>(&'a self, v: NodeId, buf: &'a mut Vec<NodeId>) -> &'a [NodeId];

    /// Materializes the topology into an explicit [`Graph`] with the
    /// same neighbor order, validating symmetry and simplicity on the
    /// way. Engine runs on the result are bit-identical to runs on
    /// `self` — the property the implicit-vs-materialized differential
    /// tests pin. Intended for small instances (tests, diameter
    /// calculations); at 10⁷ nodes this is exactly the allocation the
    /// trait exists to avoid.
    fn materialize(&self) -> Graph {
        let k = self.node_count();
        let mut buf = Vec::new();
        let mut adj = Vec::with_capacity(k);
        for v in 0..k {
            adj.push(self.neighbors(v, &mut buf).to_vec());
        }
        Graph::from_adjacency(adj)
    }

    /// Engine hook: refresh `csr` if this topology has stored adjacency
    /// worth flattening into a packed scan view, and return whether the
    /// engine should read neighbors from the CSR instead of calling
    /// [`ImplicitTopology::neighbors`]. The default (implicit families)
    /// leaves the CSR untouched and returns `false`; [`Graph`] rebuilds
    /// it and returns `true`.
    fn prime_csr(&self, _csr: &mut Csr) -> bool {
        false
    }
}

impl ImplicitTopology for Graph {
    fn node_count(&self) -> usize {
        self.adj.len()
    }

    fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    fn neighbors<'a>(&'a self, v: NodeId, _buf: &'a mut Vec<NodeId>) -> &'a [NodeId] {
        &self.adj[v]
    }

    fn materialize(&self) -> Graph {
        self.clone()
    }

    fn prime_csr(&self, csr: &mut Csr) -> bool {
        csr.rebuild_from(self);
        true
    }
}

/// Degree summary returned by [`Graph::degree_stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree (`2m/k`).
    pub mean: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
    }

    #[test]
    fn add_edges_and_query() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        g.add_edge(0, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edge() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn bfs_distances_on_line() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_detects_unreachable() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let d = g.bfs_distances(0);
        assert_eq!(d[2], None);
        assert!(!g.is_connected());
    }

    #[test]
    fn diameter_of_line_and_cycle() {
        let line = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(line.diameter(), 4);
        let cycle = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(cycle.diameter(), 3);
    }

    #[test]
    fn eccentricity_center_vs_leaf() {
        let line = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(line.eccentricity(2), 2);
        assert_eq!(line.eccentricity(0), 4);
    }

    #[test]
    fn edges_iterator_unique() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn connected_components_counts() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (comp, count) = g.connected_components();
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[3], comp[5]);
    }

    #[test]
    fn connected_graph_has_one_component() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let (_, count) = g.connected_components();
        assert_eq!(count, 1);
    }

    #[test]
    fn degree_stats_on_star() {
        let mut g = Graph::new(5);
        for i in 1..5 {
            g.add_edge(0, i);
        }
        let s = g.degree_stats();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let sub = g.induced_subgraph(&[0, 1, 2]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2); // (0,1) and (1,2); (0,4)/(2,3) cut
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn induced_subgraph_rejects_duplicates() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let _ = g.induced_subgraph(&[0, 0]);
    }

    #[test]
    fn csr_matches_adjacency_lists() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 4)]);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.node_count(), 5);
        assert_eq!(csr.max_degree(), 3);
        for v in 0..5 {
            assert_eq!(csr.neighbors(v), g.neighbors(v));
            assert_eq!(csr.degree(v), g.degree(v));
        }
    }

    #[test]
    fn csr_rebuild_reuses_buffers() {
        let g1 = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let g2 = Graph::from_edges(2, &[(0, 1)]);
        let mut csr = Csr::from_graph(&g1);
        csr.rebuild_from(&g2);
        assert_eq!(csr.node_count(), 2);
        assert_eq!(csr.neighbors(0), &[1]);
        assert_eq!(csr.max_degree(), 1);
        assert_eq!(csr, Csr::from_graph(&g2));
    }

    #[test]
    fn csr_empty_graph() {
        let csr = Csr::from_graph(&Graph::new(0));
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.max_degree(), 0);
        assert_eq!(Csr::new().node_count(), 0);
    }

    #[test]
    fn try_add_edge_reports_typed_errors() {
        let mut g = Graph::new(3);
        assert_eq!(
            g.try_add_edge(0, 5),
            Err(GraphError::OutOfRange { node: 5, nodes: 3 })
        );
        assert_eq!(g.try_add_edge(1, 1), Err(GraphError::SelfLoop { node: 1 }));
        assert_eq!(g.try_add_edge(0, 1), Ok(()));
        assert_eq!(
            g.try_add_edge(1, 0),
            Err(GraphError::Duplicate { u: 1, v: 0 })
        );
        // Errors leave the graph unchanged.
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn from_edges_dedup_skips_redundant_edges() {
        let g = Graph::from_edges_dedup(3, &[(0, 1), (1, 0), (0, 0), (0, 1), (1, 2)]);
        assert_eq!(g, Graph::from_edges(3, &[(0, 1), (1, 2)]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_dedup_still_rejects_out_of_range() {
        let _ = Graph::from_edges_dedup(2, &[(0, 7)]);
    }

    #[test]
    fn from_adjacency_round_trips_and_counts_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let adj: Vec<Vec<NodeId>> = (0..4).map(|v| g.neighbors(v).to_vec()).collect();
        let g2 = Graph::from_adjacency(adj);
        assert_eq!(g2, g);
    }

    #[test]
    #[should_panic(expected = "asymmetric")]
    fn from_adjacency_rejects_asymmetry() {
        let _ = Graph::from_adjacency(vec![vec![1], vec![]]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn from_adjacency_rejects_duplicates() {
        let _ = Graph::from_adjacency(vec![vec![1, 1], vec![0, 0]]);
    }

    #[test]
    fn graph_implements_implicit_topology() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 3)]);
        let mut buf = Vec::new();
        assert_eq!(ImplicitTopology::node_count(&g), 4);
        assert_eq!(ImplicitTopology::max_degree(&g), 2);
        for v in 0..4 {
            assert_eq!(ImplicitTopology::neighbors(&g, v, &mut buf), g.neighbors(v));
        }
        assert_eq!(ImplicitTopology::materialize(&g), g);
        let mut csr = Csr::new();
        assert!(g.prime_csr(&mut csr));
        assert_eq!(csr, Csr::from_graph(&g));
    }

    #[test]
    fn dot_export_contains_edges_and_highlights() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let dot = g.to_dot("demo", Some(&[1]));
        assert!(dot.starts_with("graph demo {"));
        assert!(dot.contains("0 -- 1;"));
        assert!(dot.contains("1 -- 2;"));
        assert!(dot.contains("1 [style=filled"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
