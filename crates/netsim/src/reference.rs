//! The retained naive round engine, for differential testing and
//! benchmarking.
//!
//! This is the engine the crate shipped with before the flat-buffer
//! rewrite in [`crate::engine`]: per-node `Vec<Vec<(NodeId, Msg)>>`
//! inboxes reallocated every round, a fresh outbox per node per round,
//! and per-send linear scans for CONGEST accounting. It is kept —
//! semantics frozen — as the executable specification the optimized
//! engine is differentially tested against (`tests/differential.rs`)
//! and as the "before" side of the `netsim` benchmarks.
//!
//! Use [`crate::engine::Network`] for real work.

use crate::engine::{BandwidthModel, EngineError, MessageSize, NodeProtocol, Outbox, RunReport};
use crate::fault::{FaultInjectable, FaultPlan};
use crate::graph::{Graph, NodeId};
use dut_obs::{keys, NoopSink, Sink, Span};

/// Runs `states` on `graph` under `model` with the naive engine.
///
/// Semantics (decisions, metrics, error values, panic messages) match
/// [`crate::engine::Network::run`] exactly; only the implementation
/// strategy — and therefore the allocation profile — differs.
///
/// # Errors
///
/// Same conditions as [`crate::engine::Network::run`].
pub fn run_reference<P: NodeProtocol>(
    graph: &Graph,
    model: BandwidthModel,
    states: Vec<P>,
    max_rounds: usize,
) -> Result<RunReport<P>, EngineError> {
    run_reference_observed(graph, model, states, max_rounds, &mut NoopSink)
}

/// [`run_reference`] recording metrics into `sink` under the
/// `reference.*` keys (see [`dut_obs::keys`]) — the same shape the flat
/// engine records under `netsim.*`, so a differential harness can
/// compare the two engines' per-round cost profiles, not just their
/// final reports.
///
/// # Errors
///
/// Same conditions as [`crate::engine::Network::run`].
pub fn run_reference_observed<P: NodeProtocol>(
    graph: &Graph,
    model: BandwidthModel,
    states: Vec<P>,
    max_rounds: usize,
    sink: &mut dyn Sink,
) -> Result<RunReport<P>, EngineError> {
    let k = graph.node_count();
    if k == 0 {
        // Mirrors the flat engine: an empty network is a typed error,
        // not a vacuous 1-round success.
        return Err(EngineError::EmptyNetwork);
    }
    if states.len() != k {
        return Err(EngineError::NodeCountMismatch {
            graph_nodes: k,
            states: states.len(),
        });
    }
    let mut states = states;
    let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); k];
    let mut next_inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); k];
    // Dense neighbor-position index required by the shared `Outbox`;
    // filled and cleared per node, all-zero in between.
    let mut neighbor_pos: Vec<u32> = vec![0; k];
    let mut total_messages = 0usize;
    let mut total_bits = 0usize;
    let mut max_edge_bits = 0usize;

    for round in 0..max_rounds {
        // Quiescence check: nothing in flight and everyone done.
        let in_flight = inboxes.iter().any(|b| !b.is_empty());
        if round > 0 && !in_flight && states.iter().all(NodeProtocol::is_done) {
            if sink.enabled() {
                sink.add(keys::REFERENCE_RUNS, 1);
                sink.add(keys::REFERENCE_ROUNDS, round as u64);
                sink.add(keys::REFERENCE_MESSAGES, total_messages as u64);
                sink.add(keys::REFERENCE_BITS, total_bits as u64);
            }
            return Ok(RunReport {
                rounds: round,
                total_messages,
                total_bits,
                max_edge_bits_per_round: max_edge_bits,
                dropped_messages: 0,
                flipped_bits: 0,
                nodes: states,
            });
        }
        let span = Span::start(&*sink);
        let (prev_messages, prev_bits) = (total_messages, total_bits);
        let mut round_max = 0usize;

        for (node, state) in states.iter_mut().enumerate() {
            let neighbors = graph.neighbors(node);
            let mut sends: Vec<(NodeId, NodeId, P::Msg)> = Vec::new();
            let mut out = Outbox::new(node, neighbors, &mut neighbor_pos, &mut sends);
            state.on_round(node, round, &inboxes[node], &mut out);
            for &nb in neighbors {
                neighbor_pos[nb] = 0;
            }

            // Deliver (and meter) this node's sends.
            // Per-destination bit accounting for CONGEST.
            let mut sent_bits_to: Vec<(NodeId, usize)> = Vec::new();
            for (to, _, msg) in sends {
                let bits = msg.size_bits();
                let entry = match sent_bits_to.iter_mut().find(|(d, _)| *d == to) {
                    Some(e) => {
                        e.1 += bits;
                        e.1
                    }
                    None => {
                        sent_bits_to.push((to, bits));
                        bits
                    }
                };
                if let BandwidthModel::Congest { bits_per_edge } = model {
                    if entry > bits_per_edge {
                        return Err(EngineError::BandwidthExceeded {
                            from: node,
                            to,
                            round,
                            bits: entry,
                            budget: bits_per_edge,
                        });
                    }
                }
                round_max = round_max.max(entry);
                total_messages += 1;
                total_bits += bits;
                next_inboxes[to].push((node, msg));
            }
        }

        for b in inboxes.iter_mut() {
            b.clear();
        }
        std::mem::swap(&mut inboxes, &mut next_inboxes);
        max_edge_bits = max_edge_bits.max(round_max);
        if sink.enabled() {
            sink.observe(
                keys::REFERENCE_ROUND_MESSAGES,
                (total_messages - prev_messages) as u64,
            );
            sink.observe(keys::REFERENCE_ROUND_BITS, (total_bits - prev_bits) as u64);
            sink.observe(keys::REFERENCE_ROUND_MAX_EDGE_BITS, round_max as u64);
            span.finish(sink, keys::REFERENCE_ROUND_NANOS);
        }
    }
    Err(EngineError::RoundLimit { max_rounds })
}

/// [`run_reference`] under an active [`FaultPlan`], in the naive style:
/// per-send linear scans for CONGEST accounting *and* for the per-edge
/// message index that keys the fault stream. This is the executable
/// specification of faulted execution the flat engine's serial and
/// parallel fault paths are differentially tested against.
///
/// Semantics mirror the flat engine exactly: crashed nodes are skipped
/// and count as done for quiescence; every send is metered at its
/// original size (the sender pays even for dropped messages); the plan
/// then drops or bit-flips the message before delivery.
///
/// # Errors
///
/// Same conditions as [`crate::engine::Network::run`].
pub fn run_reference_faulted<P>(
    graph: &Graph,
    model: BandwidthModel,
    states: Vec<P>,
    max_rounds: usize,
    plan: &FaultPlan,
) -> Result<RunReport<P>, EngineError>
where
    P: NodeProtocol,
    P::Msg: FaultInjectable,
{
    run_reference_faulted_observed(graph, model, states, max_rounds, plan, &mut NoopSink)
}

/// [`run_reference_faulted`] recording metrics into `sink` under the
/// `reference.*` keys, plus the `reference.fault.*` fault totals.
///
/// # Errors
///
/// Same conditions as [`crate::engine::Network::run`].
pub fn run_reference_faulted_observed<P>(
    graph: &Graph,
    model: BandwidthModel,
    states: Vec<P>,
    max_rounds: usize,
    plan: &FaultPlan,
    sink: &mut dyn Sink,
) -> Result<RunReport<P>, EngineError>
where
    P: NodeProtocol,
    P::Msg: FaultInjectable,
{
    let k = graph.node_count();
    if k == 0 {
        // Mirrors the flat engine: an empty network is a typed error,
        // not a vacuous 1-round success.
        return Err(EngineError::EmptyNetwork);
    }
    if states.len() != k {
        return Err(EngineError::NodeCountMismatch {
            graph_nodes: k,
            states: states.len(),
        });
    }
    let mut states = states;
    let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); k];
    let mut next_inboxes: Vec<Vec<(NodeId, P::Msg)>> = vec![Vec::new(); k];
    let mut neighbor_pos: Vec<u32> = vec![0; k];
    let mut total_messages = 0usize;
    let mut total_bits = 0usize;
    let mut max_edge_bits = 0usize;
    let mut dropped_messages = 0usize;
    let mut flipped_bits = 0usize;

    for round in 0..max_rounds {
        let in_flight = inboxes.iter().any(|b| !b.is_empty());
        let quiescent = round > 0
            && !in_flight
            && states.iter().enumerate().all(|(v, s)| {
                s.is_done() || (plan.crashed(v, round) && !plan.will_rejoin(v, round))
            });
        if quiescent {
            if sink.enabled() {
                sink.add(keys::REFERENCE_RUNS, 1);
                sink.add(keys::REFERENCE_ROUNDS, round as u64);
                sink.add(keys::REFERENCE_MESSAGES, total_messages as u64);
                sink.add(keys::REFERENCE_BITS, total_bits as u64);
                sink.add(
                    keys::REFERENCE_FAULT_DROPPED_MESSAGES,
                    dropped_messages as u64,
                );
                sink.add(keys::REFERENCE_FAULT_FLIPPED_BITS, flipped_bits as u64);
            }
            return Ok(RunReport {
                rounds: round,
                total_messages,
                total_bits,
                max_edge_bits_per_round: max_edge_bits,
                dropped_messages,
                flipped_bits,
                nodes: states,
            });
        }
        let span = Span::start(&*sink);
        let (prev_messages, prev_bits) = (total_messages, total_bits);
        let mut round_max = 0usize;

        for (node, state) in states.iter_mut().enumerate() {
            if plan.crashed(node, round) {
                continue;
            }
            if plan.rejoins_at(node, round) {
                state.on_rejoin(node, round);
            }
            let neighbors = graph.neighbors(node);
            let mut sends: Vec<(NodeId, NodeId, P::Msg)> = Vec::new();
            let mut out = Outbox::new(node, neighbors, &mut neighbor_pos, &mut sends);
            state.on_round(node, round, &inboxes[node], &mut out);
            for &nb in neighbors {
                neighbor_pos[nb] = 0;
            }

            // Per-destination bit totals and message counts; the count
            // is the fault stream's per-edge message index.
            let mut sent_to: Vec<(NodeId, usize, usize)> = Vec::new();
            for (to, _, mut msg) in sends {
                let bits = msg.size_bits();
                let (entry, idx) = match sent_to.iter_mut().find(|(d, _, _)| *d == to) {
                    Some(e) => {
                        e.1 += bits;
                        e.2 += 1;
                        (e.1, e.2 - 1)
                    }
                    None => {
                        sent_to.push((to, bits, 1));
                        (bits, 0)
                    }
                };
                if let BandwidthModel::Congest { bits_per_edge } = model {
                    if entry > bits_per_edge {
                        return Err(EngineError::BandwidthExceeded {
                            from: node,
                            to,
                            round,
                            bits: entry,
                            budget: bits_per_edge,
                        });
                    }
                }
                round_max = round_max.max(entry);
                total_messages += 1;
                total_bits += bits;
                match plan.apply(round, node, to, idx, &mut msg) {
                    None => dropped_messages += 1,
                    Some(flips) => {
                        flipped_bits += flips as usize;
                        next_inboxes[to].push((node, msg));
                    }
                }
            }
        }

        for b in inboxes.iter_mut() {
            b.clear();
        }
        std::mem::swap(&mut inboxes, &mut next_inboxes);
        max_edge_bits = max_edge_bits.max(round_max);
        if sink.enabled() {
            sink.observe(
                keys::REFERENCE_ROUND_MESSAGES,
                (total_messages - prev_messages) as u64,
            );
            sink.observe(keys::REFERENCE_ROUND_BITS, (total_bits - prev_bits) as u64);
            sink.observe(keys::REFERENCE_ROUND_MAX_EDGE_BITS, round_max as u64);
            span.finish(sink, keys::REFERENCE_ROUND_NANOS);
        }
    }
    Err(EngineError::RoundLimit { max_rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[derive(Clone, Debug)]
    struct Flood {
        seen: bool,
    }

    impl NodeProtocol for Flood {
        type Msg = ();
        fn on_round(
            &mut self,
            node: NodeId,
            round: usize,
            inbox: &[(NodeId, ())],
            out: &mut Outbox<'_, ()>,
        ) {
            let newly = (node == 0 && round == 0) || (!self.seen && !inbox.is_empty());
            if newly {
                self.seen = true;
                out.broadcast(());
            }
        }
        fn is_done(&self) -> bool {
            self.seen
        }
    }

    #[test]
    fn reference_preserves_seed_behavior() {
        let g = topology::line(8);
        let report = run_reference(
            &g,
            BandwidthModel::Local,
            vec![Flood { seen: false }; 8],
            32,
        )
        .unwrap();
        assert!(report.nodes.iter().all(|n| n.seen));
        assert_eq!(report.rounds, 9);

        let g3 = topology::line(3);
        let r3 = run_reference(
            &g3,
            BandwidthModel::Local,
            vec![Flood { seen: false }; 3],
            32,
        )
        .unwrap();
        assert_eq!(r3.total_messages, 4);
        assert_eq!(r3.total_bits, 4);
        assert_eq!(r3.max_edge_bits_per_round, 1);
    }

    #[test]
    fn reference_detects_node_count_mismatch() {
        let g = topology::line(3);
        let err = run_reference(&g, BandwidthModel::Local, vec![Flood { seen: false }; 2], 8)
            .unwrap_err();
        assert!(matches!(err, EngineError::NodeCountMismatch { .. }));
    }
}
