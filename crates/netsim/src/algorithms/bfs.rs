//! Distributed BFS-tree construction.
//!
//! The classic flooding algorithm: the root announces depth 0; every
//! other node adopts the first (lowest-depth, then lowest-id) announcer
//! as its parent and re-announces. Terminates in `ecc(root) + O(1)`
//! rounds and fits CONGEST (messages are one depth value of
//! `O(log k)` bits).

use crate::algorithms::coded::{codec_stats, CodecStats, CodedProtocol, MessageCodec};
use crate::engine::{
    BandwidthModel, Compact, EngineError, EngineScratch, Network, NodeProtocol, Outbox, RunOptions,
};
use crate::fault::FaultPlan;
use crate::graph::{ImplicitTopology, NodeId};

/// Per-node state of the BFS protocol.
#[derive(Debug, Clone)]
struct BfsNode {
    root: NodeId,
    parent: Option<NodeId>,
    depth: Option<u64>,
}

impl NodeProtocol for BfsNode {
    type Msg = Compact;

    fn on_round(
        &mut self,
        node: NodeId,
        round: usize,
        inbox: &[(NodeId, Compact)],
        out: &mut Outbox<'_, Compact>,
    ) {
        if self.depth.is_some() {
            return;
        }
        if node == self.root && round == 0 {
            self.depth = Some(0);
            out.broadcast(Compact(0));
            return;
        }
        if let Some(&(from, Compact(d))) = inbox.iter().min_by_key(|&&(from, Compact(d))| (d, from))
        {
            self.parent = Some(from);
            self.depth = Some(d + 1);
            out.broadcast(Compact(d + 1));
        }
    }

    fn is_done(&self) -> bool {
        // Always done: quiescence then means "the flood stabilized", not
        // "every node was reached". On a connected graph this ends at the
        // same round as waiting for all depths (the last adopters'
        // broadcasts are still in flight); on a disconnected graph it
        // ends promptly instead of spinning to the round limit, and the
        // unreached component is reported as a typed error below.
        true
    }
}

/// A rooted BFS tree over a connected graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsTree {
    /// The root node.
    pub root: NodeId,
    /// Parent of each node (`None` for the root).
    pub parent: Vec<Option<NodeId>>,
    /// Depth of each node (root = 0).
    pub depth: Vec<usize>,
    /// Children lists.
    pub children: Vec<Vec<NodeId>>,
    /// Height of the tree (max depth).
    pub height: usize,
}

impl BfsTree {
    /// Nodes in leaves-first (deepest-first) order — the order
    /// convergecast completes in.
    pub fn bottom_up_order(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.parent.len()).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(self.depth[v]));
        order
    }

    /// Number of nodes in the subtree rooted at each node.
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let mut size = vec![1usize; self.parent.len()];
        for v in self.bottom_up_order() {
            if let Some(p) = self.parent[v] {
                size[p] += size[v];
            }
        }
        size
    }
}

/// Builds a BFS tree rooted at `root` by running the distributed flooding
/// protocol, returning the tree and the number of rounds used.
///
/// # Errors
///
/// Returns [`EngineError::EmptyNetwork`] on a zero-node graph,
/// [`EngineError::Unreached`] if the graph is disconnected (the flood
/// stabilizes without reaching the far component), or a bandwidth
/// violation under an unreasonably tight CONGEST budget.
#[allow(clippy::needless_range_loop)]
pub fn build_bfs_tree<T: ImplicitTopology>(
    g: &T,
    root: NodeId,
    model: BandwidthModel,
) -> Result<(BfsTree, usize), EngineError> {
    let k = g.node_count();
    if k == 0 {
        return Err(EngineError::EmptyNetwork);
    }
    let states = (0..k)
        .map(|_| BfsNode {
            root,
            parent: None,
            depth: None,
        })
        .collect();
    let mut net = Network::new(g, model);
    let report = net.run(states, 2 * k + 4)?;

    let mut parent = vec![None; k];
    let mut depth = vec![0usize; k];
    let mut children = vec![Vec::new(); k];
    let mut height = 0usize;
    for (v, st) in report.nodes.iter().enumerate() {
        parent[v] = st.parent;
        depth[v] = st.depth.ok_or(EngineError::Unreached { node: v })? as usize;
        height = height.max(depth[v]);
        if let Some(p) = st.parent {
            children[p].push(v);
        }
    }
    Ok((
        BfsTree {
            root,
            parent,
            depth,
            children,
            height,
        },
        report.rounds,
    ))
}

/// [`build_bfs_tree`] with messages travelling through `codec` under a
/// [`FaultPlan`]. Flips below the codec's correction radius are fixed
/// transparently, so the tree is identical to the fault-free one;
/// dropped or undecodable announcements can make a node adopt a
/// non-shortest parent (the result is still a valid rooted tree with
/// consistent depths) or, if a node never hears any announcement,
/// surface as [`EngineError::Unreached`].
///
/// # Errors
///
/// Same conditions as [`build_bfs_tree`].
#[allow(clippy::needless_range_loop)]
pub fn build_bfs_tree_coded<T, C>(
    g: &T,
    root: NodeId,
    model: BandwidthModel,
    plan: &FaultPlan,
    codec: C,
) -> Result<(BfsTree, usize, CodecStats), EngineError>
where
    T: ImplicitTopology,
    C: MessageCodec<Plain = Compact> + Clone + Send,
    C::Wire: Send + Sync,
{
    let k = g.node_count();
    if k == 0 {
        return Err(EngineError::EmptyNetwork);
    }
    let states: Vec<CodedProtocol<BfsNode, C>> = (0..k)
        .map(|_| {
            CodedProtocol::new(
                BfsNode {
                    root,
                    parent: None,
                    depth: None,
                },
                codec.clone(),
            )
        })
        .collect();
    let mut net = Network::new(g, model);
    let mut scratch = EngineScratch::new();
    let options = RunOptions::default().with_faults(plan.clone());
    let report = net.run_with_options(states, 2 * k + 4, &mut scratch, &options)?;
    let stats = codec_stats(&report.nodes);

    let mut parent = vec![None; k];
    let mut depth = vec![0usize; k];
    let mut children = vec![Vec::new(); k];
    let mut height = 0usize;
    for (v, st) in report.nodes.iter().enumerate() {
        let st = st.inner();
        parent[v] = st.parent;
        depth[v] = st.depth.ok_or(EngineError::Unreached { node: v })? as usize;
        height = height.max(depth[v]);
        if let Some(p) = st.parent {
            children[p].push(v);
        }
    }
    Ok((
        BfsTree {
            root,
            parent,
            depth,
            children,
            height,
        },
        report.rounds,
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::topology;

    #[test]
    fn bfs_tree_on_line() {
        let g = topology::line(6);
        let (tree, rounds) = build_bfs_tree(&g, 0, BandwidthModel::Local).unwrap();
        assert_eq!(tree.root, 0);
        assert_eq!(tree.depth, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(tree.parent[3], Some(2));
        assert_eq!(tree.height, 5);
        assert!(rounds <= 2 * 6 + 2);
    }

    #[test]
    fn bfs_tree_depths_match_graph_distances() {
        let g = topology::grid(5, 7);
        let (tree, _) = build_bfs_tree(&g, 12, BandwidthModel::Local).unwrap();
        let dist = g.bfs_distances(12);
        for (v, d) in dist.iter().enumerate() {
            assert_eq!(tree.depth[v], d.unwrap(), "node {v}");
        }
    }

    #[test]
    fn bfs_parent_is_one_closer() {
        let g = topology::ring(9);
        let (tree, _) = build_bfs_tree(&g, 4, BandwidthModel::Local).unwrap();
        for v in 0..9 {
            if let Some(p) = tree.parent[v] {
                assert_eq!(tree.depth[p] + 1, tree.depth[v]);
                assert!(g.has_edge(p, v));
            } else {
                assert_eq!(v, 4);
            }
        }
    }

    #[test]
    fn bfs_fits_congest() {
        let g = topology::grid(8, 8);
        let model = BandwidthModel::congest_for(64);
        let (tree, _) = build_bfs_tree(&g, 0, model).unwrap();
        assert_eq!(tree.depth[63], 14);
    }

    #[test]
    fn children_lists_are_consistent() {
        let g = topology::balanced_binary_tree(15);
        let (tree, _) = build_bfs_tree(&g, 0, BandwidthModel::Local).unwrap();
        let mut count = 0;
        for (p, kids) in tree.children.iter().enumerate() {
            for &c in kids {
                assert_eq!(tree.parent[c], Some(p));
                count += 1;
            }
        }
        assert_eq!(count, 14); // every non-root has exactly one parent
    }

    #[test]
    fn subtree_sizes_sum_correctly() {
        let g = topology::balanced_binary_tree(7);
        let (tree, _) = build_bfs_tree(&g, 0, BandwidthModel::Local).unwrap();
        let sizes = tree.subtree_sizes();
        assert_eq!(sizes[0], 7);
        assert_eq!(sizes[1], 3);
        assert_eq!(sizes[2], 3);
        assert_eq!(sizes[3], 1);
    }

    #[test]
    fn disconnected_graph_errors() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let err = build_bfs_tree(&g, 0, BandwidthModel::Local).unwrap_err();
        assert_eq!(err, EngineError::Unreached { node: 2 });
    }

    #[test]
    fn empty_graph_errors() {
        let g = Graph::from_edges(0, &[]);
        let err = build_bfs_tree(&g, 0, BandwidthModel::Local).unwrap_err();
        assert_eq!(err, EngineError::EmptyNetwork);
    }

    #[test]
    fn single_node_graph_is_a_trivial_tree() {
        let g = Graph::from_edges(1, &[]);
        let (tree, _) = build_bfs_tree(&g, 0, BandwidthModel::Local).unwrap();
        assert_eq!(tree.depth, vec![0]);
        assert_eq!(tree.parent, vec![None]);
        assert_eq!(tree.height, 0);
    }
}
