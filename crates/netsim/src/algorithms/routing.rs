//! Multi-hop payload routing to assigned centers.
//!
//! The LOCAL tester's gathering step — "node u selects some MIS node
//! v ∈ S ∩ N^r(u), and routes its sample to v, by asking the nodes in
//! its r-neighborhood to forward the sample" (§6) — is a real
//! message-passing protocol, implemented here on the round engine:
//!
//! 1. Per-center BFS computes each node's next hop toward its assigned
//!    center (shortest paths in `G`).
//! 2. Every round, each node forwards all payloads it holds one hop
//!    closer; payloads arriving at their destination are collected.
//!
//! Total rounds = the maximum assignment distance (≤ r for MIS
//! assignments within `N^r`), plus quiescence detection.

use crate::engine::{BandwidthModel, EngineError, MessageSize, Network, NodeProtocol, Outbox};
use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// A payload in flight: destination plus an opaque value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parcel {
    /// Final destination node.
    pub dest: NodeId,
    /// Payload value (e.g. a sample).
    pub value: u64,
}

impl MessageSize for Parcel {
    fn size_bits(&self) -> usize {
        // destination id + value, both at their natural bit lengths
        let id_bits = (64 - (self.dest as u64).leading_zeros() as usize).max(1);
        let val_bits = (64 - self.value.leading_zeros() as usize).max(1);
        id_bits + val_bits
    }
}

/// Per-node routing state.
#[derive(Debug, Clone)]
struct RouteNode {
    /// Next hop toward each node's own center (None at the center).
    next_hop: Option<NodeId>,
    /// Parcels waiting to be forwarded.
    queue: VecDeque<Parcel>,
    /// Parcels that terminated here.
    delivered: Vec<u64>,
    /// This node's id (to detect deliveries).
    me: NodeId,
    /// Parcels forwarded per round (usize::MAX in LOCAL).
    batch: usize,
}

impl NodeProtocol for RouteNode {
    type Msg = Parcel;

    fn on_round(
        &mut self,
        _node: NodeId,
        _round: usize,
        inbox: &[(NodeId, Parcel)],
        out: &mut Outbox<'_, Parcel>,
    ) {
        for &(_, parcel) in inbox {
            if parcel.dest == self.me {
                self.delivered.push(parcel.value);
            } else {
                self.queue.push_back(parcel);
            }
        }
        let forward = self.queue.len().min(self.batch);
        for _ in 0..forward {
            // Unreachable expect: `forward <= queue.len()` by construction.
            let parcel = self.queue.pop_front().expect("checked length");
            // Reachable only by violating the documented precondition that
            // center assignments are path-consistent (every node on a
            // shortest path to a center shares that center); see # Panics
            // on `route_to_centers`.
            let hop = self
                .next_hop
                .expect("non-center nodes have a next hop while parcels remain");
            out.send(hop, parcel);
        }
    }

    fn is_done(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Routes `payloads[v]` from every node `v` to `center_of[v]`, over
/// shortest paths, using the round engine. Returns per-node delivered
/// values and the number of rounds used.
///
/// All parcels from `v` travel toward the *same* center, so one
/// next-hop pointer per node suffices; next hops are derived from a BFS
/// per distinct center.
///
/// `batch` limits parcels forwarded per node per round (use
/// `usize::MAX` under LOCAL; small values model CONGEST-style
/// pipelining).
///
/// # Errors
///
/// Returns [`EngineError::Unreached`] when a node's assigned center is
/// in another component, and propagates engine errors from the routing
/// run itself.
///
/// # Panics
///
/// Panics on input length mismatches, an out-of-range center, or a
/// path-inconsistent center assignment (a node on a shortest path to a
/// center must itself be assigned to that center).
#[allow(clippy::needless_range_loop)]
pub fn route_to_centers(
    g: &Graph,
    center_of: &[NodeId],
    payloads: &[Vec<u64>],
    model: BandwidthModel,
    batch: usize,
) -> Result<(Vec<Vec<u64>>, usize), EngineError> {
    let k = g.node_count();
    assert_eq!(center_of.len(), k, "one center per node");
    assert_eq!(payloads.len(), k, "one payload list per node");
    assert!(batch >= 1, "batch must be positive");

    // BFS from each distinct center; next_hop[v] = neighbor one step
    // closer to center_of[v].
    let mut centers: Vec<NodeId> = center_of.to_vec();
    centers.sort_unstable();
    centers.dedup();
    let mut next_hop: Vec<Option<NodeId>> = vec![None; k];
    for &c in &centers {
        assert!(c < k, "center {c} out of range");
        let dist = g.bfs_distances(c);
        for v in 0..k {
            if center_of[v] != c || v == c {
                continue;
            }
            let dv = dist[v].ok_or(EngineError::Unreached { node: v })?;
            // Unreachable expect: `dv >= 1` here (v != c), so BFS
            // guarantees a neighbor at distance `dv - 1`.
            let hop = g
                .neighbors(v)
                .iter()
                .copied()
                .find(|&w| dist[w] == Some(dv - 1))
                .expect("some neighbor is closer on a shortest path");
            next_hop[v] = Some(hop);
        }
    }

    let states: Vec<RouteNode> = (0..k)
        .map(|v| {
            let mut queue = VecDeque::new();
            let mut delivered = Vec::new();
            for &value in &payloads[v] {
                if center_of[v] == v {
                    delivered.push(value);
                } else {
                    queue.push_back(Parcel {
                        dest: center_of[v],
                        value,
                    });
                }
            }
            RouteNode {
                next_hop: next_hop[v],
                queue,
                delivered,
                me: v,
                batch,
            }
        })
        .collect();

    let max_payloads: usize = payloads.iter().map(Vec::len).sum::<usize>().max(1);
    let mut net = Network::new(g, model);
    let report = net.run(states, 2 * (k + max_payloads) + 8)?;
    let delivered = report.nodes.into_iter().map(|n| n.delivered).collect();
    Ok((delivered, report.rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn routes_to_single_center_on_line() {
        let g = topology::line(6);
        let center_of = vec![0; 6];
        let payloads: Vec<Vec<u64>> = (0..6).map(|v| vec![v as u64 + 10]).collect();
        let (delivered, rounds) =
            route_to_centers(&g, &center_of, &payloads, BandwidthModel::Local, usize::MAX).unwrap();
        let mut at_center = delivered[0].clone();
        at_center.sort_unstable();
        assert_eq!(at_center, vec![10, 11, 12, 13, 14, 15]);
        assert!(delivered[1..].iter().all(Vec::is_empty));
        // farthest node is 5 hops away
        assert!((5..=8).contains(&rounds), "rounds = {rounds}");
    }

    #[test]
    fn routes_to_two_centers() {
        let g = topology::line(8);
        // left half -> 0, right half -> 7
        let center_of = vec![0, 0, 0, 0, 7, 7, 7, 7];
        let payloads: Vec<Vec<u64>> = (0..8).map(|v| vec![v as u64]).collect();
        let (delivered, _) =
            route_to_centers(&g, &center_of, &payloads, BandwidthModel::Local, usize::MAX).unwrap();
        let mut left = delivered[0].clone();
        left.sort_unstable();
        let mut right = delivered[7].clone();
        right.sort_unstable();
        assert_eq!(left, vec![0, 1, 2, 3]);
        assert_eq!(right, vec![4, 5, 6, 7]);
    }

    #[test]
    fn multiple_payloads_per_node() {
        let g = topology::star(5);
        let center_of = vec![0; 5];
        let payloads: Vec<Vec<u64>> = (0..5).map(|v| vec![v as u64, v as u64 + 100]).collect();
        let (delivered, rounds) =
            route_to_centers(&g, &center_of, &payloads, BandwidthModel::Local, usize::MAX).unwrap();
        assert_eq!(delivered[0].len(), 10);
        assert!(rounds <= 4);
    }

    #[test]
    fn batched_forwarding_pipelines() {
        // batch = 1 on a line: parcels flow one per round per node, so a
        // stream of 4 from the end of a 4-line takes ~hops + queue time.
        let g = topology::line(4);
        let center_of = vec![0; 4];
        let payloads = vec![vec![], vec![], vec![], vec![1, 2, 3, 4]];
        let (delivered, rounds) =
            route_to_centers(&g, &center_of, &payloads, BandwidthModel::Local, 1).unwrap();
        assert_eq!(delivered[0].len(), 4);
        // 3 hops for the first + 3 more behind it + quiescence
        assert!((6..=10).contains(&rounds), "rounds = {rounds}");
    }

    #[test]
    fn batched_congest_fits_budget() {
        let g = topology::grid(4, 4);
        let center_of = vec![0; 16];
        let payloads: Vec<Vec<u64>> = (0..16).map(|v| vec![v as u64]).collect();
        // one parcel per edge per round: ids < 16 (4+ bits), values < 16
        let model = BandwidthModel::Congest { bits_per_edge: 16 };
        let (delivered, _) = route_to_centers(&g, &center_of, &payloads, model, 1).unwrap();
        assert_eq!(delivered[0].len(), 16);
    }

    #[test]
    fn unreachable_center_is_a_typed_error() {
        // Node 2 (in the far component) is assigned to center 0.
        let g = crate::graph::Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let center_of = vec![0, 0, 0, 2];
        let payloads: Vec<Vec<u64>> = (0..4).map(|v| vec![v as u64]).collect();
        let err = route_to_centers(&g, &center_of, &payloads, BandwidthModel::Local, usize::MAX)
            .unwrap_err();
        assert_eq!(err, EngineError::Unreached { node: 2 });
    }

    #[test]
    fn self_assigned_nodes_keep_payloads() {
        let g = topology::ring(4);
        let center_of = vec![0, 1, 2, 3]; // everyone is their own center
        let payloads: Vec<Vec<u64>> = (0..4).map(|v| vec![v as u64 * 7]).collect();
        let (delivered, rounds) =
            route_to_centers(&g, &center_of, &payloads, BandwidthModel::Local, usize::MAX).unwrap();
        for (v, d) in delivered.iter().enumerate() {
            assert_eq!(d, &vec![v as u64 * 7]);
        }
        assert!(rounds <= 2);
    }

    #[test]
    fn parcel_size_accounting() {
        let p = Parcel { dest: 5, value: 1 };
        assert_eq!(p.size_bits(), 3 + 1);
        let p = Parcel {
            dest: 0,
            value: u64::MAX,
        };
        assert_eq!(p.size_bits(), 1 + 64);
    }
}
