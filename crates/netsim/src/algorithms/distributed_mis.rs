//! Luby's MIS as a message-passing protocol on the round engine.
//!
//! [`super::mis::luby_mis`] computes the MIS with direct access to the
//! graph — the right tool when simulating an MIS on the power graph
//! `G^r` (where one logical phase costs `O(r)` rounds of `G`). This
//! module implements the *fully distributed* version on the
//! communication graph itself, paying its real rounds on the engine:
//!
//! Each phase takes three rounds — (1) undecided nodes broadcast a
//! random priority, (2) local maxima join the MIS and announce it,
//! (3) their neighbors retire and announce that. Messages are
//! `O(log k)` bits, so the protocol runs in CONGEST.

use crate::engine::{BandwidthModel, EngineError, Network, NodeProtocol, Outbox};
use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Node status in the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Undecided,
    InMis,
    Retired,
}

/// Per-node state of the distributed Luby protocol.
#[derive(Debug, Clone)]
struct LubyNode {
    status: Status,
    rng: StdRng,
    my_priority: u64,
    /// Priorities heard from undecided neighbors this phase.
    best_neighbor: u64,
    /// Neighbors known to still be undecided.
    undecided_neighbors: usize,
    phases: usize,
}

/// Message: tagged value. Low bit encodes the kind, the rest the
/// payload — priorities are drawn from 2^48 so the packing stays within
/// the CONGEST budget for any realistic k.
#[derive(Debug, Clone, Copy)]
enum LubyMsg {
    Priority(u64),
    JoinedMis,
    Retired,
}

impl crate::engine::MessageSize for LubyMsg {
    fn size_bits(&self) -> usize {
        match self {
            // kind tag + 48-bit priority
            LubyMsg::Priority(_) => 2 + 48,
            LubyMsg::JoinedMis | LubyMsg::Retired => 2,
        }
    }
}

impl NodeProtocol for LubyNode {
    type Msg = LubyMsg;

    fn on_round(
        &mut self,
        _node: NodeId,
        round: usize,
        inbox: &[(NodeId, LubyMsg)],
        out: &mut Outbox<'_, LubyMsg>,
    ) {
        // Process announcements first (phase step 2/3 of the senders).
        for &(_, msg) in inbox {
            match msg {
                LubyMsg::JoinedMis => {
                    if self.status == Status::Undecided {
                        self.status = Status::Retired;
                        out.broadcast(LubyMsg::Retired);
                    }
                    self.undecided_neighbors = self.undecided_neighbors.saturating_sub(1);
                }
                LubyMsg::Retired => {
                    self.undecided_neighbors = self.undecided_neighbors.saturating_sub(1);
                }
                LubyMsg::Priority(p) => {
                    self.best_neighbor = self.best_neighbor.max(p);
                }
            }
        }
        if self.status != Status::Undecided {
            return;
        }
        // Three-round phase schedule, offset by round % 3.
        match round % 3 {
            0 => {
                // Draw and broadcast a fresh priority.
                self.my_priority = self.rng.gen_range(0..(1u64 << 48));
                self.best_neighbor = 0;
                self.phases += 1;
                out.broadcast(LubyMsg::Priority(self.my_priority));
            }
            1
                // Local maximum (strict, by priority then implicit since
                // collisions at 48 bits are negligible and resolved next
                // phase) joins the MIS.
                if (self.undecided_neighbors == 0 || self.my_priority > self.best_neighbor) => {
                    self.status = Status::InMis;
                    out.broadcast(LubyMsg::JoinedMis);
                }
            _ => {
                // Round 2 of the phase: retirement notices propagate
                // (handled in the inbox loop above).
            }
        }
    }

    fn is_done(&self) -> bool {
        self.status != Status::Undecided
    }
}

/// The result of a distributed MIS run.
#[derive(Debug, Clone)]
pub struct DistributedMisResult {
    /// MIS membership per node.
    pub in_mis: Vec<bool>,
    /// Engine rounds consumed.
    pub rounds: usize,
    /// Total bits sent.
    pub bits: usize,
}

/// Runs the distributed Luby protocol on `g` under `model`; `seed`
/// derives each node's private randomness.
///
/// # Errors
///
/// Propagates engine errors ([`EngineError::RoundLimit`] is
/// astronomically unlikely before `O(log k)` phases complete).
pub fn distributed_luby_mis(
    g: &Graph,
    model: BandwidthModel,
    seed: u64,
) -> Result<DistributedMisResult, EngineError> {
    let k = g.node_count();
    let states: Vec<LubyNode> = (0..k)
        .map(|v| LubyNode {
            status: Status::Undecided,
            rng: StdRng::seed_from_u64(seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            my_priority: 0,
            best_neighbor: 0,
            undecided_neighbors: g.degree(v),
            phases: 0,
        })
        .collect();
    let mut net = Network::new(g, model);
    let report = net.run(states, 90 * (k.max(2).ilog2() as usize + 2))?;
    let in_mis = report
        .nodes
        .iter()
        .map(|n| n.status == Status::InMis)
        .collect();
    Ok(DistributedMisResult {
        in_mis,
        rounds: report.rounds,
        bits: report.total_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::mis::verify_mis;
    use crate::topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn valid_mis_on_line() {
        let g = topology::line(20);
        let r = distributed_luby_mis(&g, BandwidthModel::Local, 1).unwrap();
        assert!(verify_mis(&g, &r.in_mis));
    }

    #[test]
    fn valid_mis_on_all_topologies_and_seeds() {
        let mut rng = StdRng::seed_from_u64(2);
        for t in topology::Topology::ALL {
            let g = t.instantiate(48, &mut rng);
            for seed in 0..5u64 {
                let r = distributed_luby_mis(&g, BandwidthModel::Local, seed).unwrap();
                assert!(
                    verify_mis(&g, &r.in_mis),
                    "invalid MIS on {} seed {seed}",
                    t.name()
                );
            }
        }
    }

    #[test]
    fn runs_in_congest() {
        let g = topology::grid(8, 8);
        let model = BandwidthModel::Congest { bits_per_edge: 64 };
        let r = distributed_luby_mis(&g, model, 3).unwrap();
        assert!(verify_mis(&g, &r.in_mis));
    }

    #[test]
    fn rounds_are_logarithmic() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = topology::connected_erdos_renyi(400, 0.02, &mut rng);
        let r = distributed_luby_mis(&g, BandwidthModel::Local, 5).unwrap();
        // 3 rounds/phase, O(log k) phases w.h.p.
        assert!(
            r.rounds <= 3 * 40,
            "distributed Luby took {} rounds on 400 nodes",
            r.rounds
        );
    }

    #[test]
    fn agrees_with_centralized_on_edgeless_graph() {
        let g = Graph::new(9);
        let r = distributed_luby_mis(&g, BandwidthModel::Local, 6).unwrap();
        assert!(r.in_mis.iter().all(|&m| m), "all isolated nodes join");
    }

    #[test]
    fn complete_graph_elects_exactly_one() {
        let g = topology::complete(15);
        let r = distributed_luby_mis(&g, BandwidthModel::Local, 7).unwrap();
        assert_eq!(r.in_mis.iter().filter(|&&m| m).count(), 1);
    }
}
