//! Reliable (ack/retry) tree primitives for faulty channels.
//!
//! The plain [`super::convergecast`] primitives assume every message
//! arrives; one dropped message deadlocks the aggregation (a parent
//! waits forever for a child that already reported). These variants run
//! the same tree patterns over a stop-and-wait ARQ: every data message
//! is acknowledged by its receiver, senders retransmit unacknowledged
//! messages on a fixed two-round timeout (send at `r` → delivery at
//! `r+1` → ack delivery at `r+2`) up to a bounded retry budget, and
//! receivers stop waiting for missing senders at a deadline round. Both
//! bounds live in [`RetryPolicy`].
//!
//! Degradation is graceful and *accounted*: a sender that exhausts its
//! retries, or a receiver that hits its deadline with children still
//! unreported, increments the failure count in [`ReliableCost`] (and
//! the `netsim.reliable.failures` metric) instead of hanging the run.
//! Retransmissions beyond each message's first send are counted too.
//! With no faults injected, the primitives compute exactly what their
//! unreliable counterparts compute.
//!
//! Messages are [`RelMsg`] values. Protection against *bit flips* (as
//! opposed to drops) is layered separately: the `_coded` variants wrap
//! the protocol in a [`super::coded::CodedProtocol`], so an
//! error-correcting [`MessageCodec`] (e.g. the Justesen codec in
//! `dut-congest`) can fix in-flight corruption transparently, and a
//! word corrupted beyond the code's radius degrades into a drop that
//! the ARQ recovers.

use super::bfs::BfsTree;
use super::coded::{
    codec_stats, CodecMessage, CodecStats, CodedProtocol, IdentityCodec, MessageCodec,
};
use crate::engine::{
    BandwidthModel, EngineError, EngineScratch, MessageSize, Network, NodeProtocol, Outbox,
    RunOptions,
};
use crate::fault::{FaultInjectable, FaultPlan};
use crate::graph::{ImplicitTopology, NodeId};
use crate::recover::{opt_word, RecoverError, Recoverable, WordReader};
use dut_obs::{keys, NoopSink, Sink};

/// One message of the reliable tree protocols.
///
/// Wire layout (the [`CodecMessage`] packing, and the bit positions
/// [`FaultInjectable::flip_bit`] corrupts): bit 0 is the kind (1 =
/// `Data`), bits 1..33 the sequence number, bits 33..97 the payload
/// (`Data` only — an `Ack` is 33 wire bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelMsg {
    /// A payload transmission (or retransmission) with a sequence
    /// number for duplicate suppression.
    Data {
        /// Sequence number of this payload on its directed edge.
        seq: u32,
        /// The payload.
        value: u64,
    },
    /// Acknowledges receipt of the `Data` with the same sequence
    /// number.
    Ack {
        /// Sequence number being acknowledged.
        seq: u32,
    },
}

impl MessageSize for RelMsg {
    fn size_bits(&self) -> usize {
        match self {
            RelMsg::Data { .. } => 97,
            RelMsg::Ack { .. } => 33,
        }
    }
}

impl CodecMessage for RelMsg {
    const PACKED_BITS: usize = 97;

    fn to_bits(&self) -> u128 {
        match *self {
            RelMsg::Data { seq, value } => {
                1u128 | (u128::from(seq) << 1) | (u128::from(value) << 33)
            }
            RelMsg::Ack { seq } => u128::from(seq) << 1,
        }
    }

    fn from_bits(bits: u128) -> Self {
        let seq = ((bits >> 1) & 0xFFFF_FFFF) as u32;
        if bits & 1 == 1 {
            RelMsg::Data {
                seq,
                value: ((bits >> 33) & u128::from(u64::MAX)) as u64,
            }
        } else {
            RelMsg::Ack { seq }
        }
    }
}

impl FaultInjectable for RelMsg {
    fn flip_bit(&mut self, bit: usize) {
        // Flip in the packed domain so every wire bit (kind, seq,
        // payload) is corruptible; a flipped kind bit deterministically
        // reinterprets the word as the other variant.
        *self = RelMsg::from_bits(self.to_bits() ^ (1u128 << (bit % Self::PACKED_BITS)));
    }
}

/// Retry/deadline bounds for the reliable primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retransmissions allowed per data message beyond its first send.
    /// A sender that spends the whole budget unacknowledged gives up
    /// (one failure).
    pub max_retries: usize,
    /// Round at which receivers stop waiting: a node still missing
    /// child reports (convergecast) finalizes with what it has, and a
    /// node still without a value (broadcast) terminates empty. One
    /// failure per child still unreported at the deadline.
    pub deadline: usize,
}

impl RetryPolicy {
    /// A policy sized for `tree`: generous enough that a fault-free run
    /// never hits either bound, and every hop can spend its full retry
    /// budget before any deadline fires.
    pub fn for_tree(tree: &BfsTree, max_retries: usize) -> Self {
        RetryPolicy {
            max_retries,
            deadline: (tree.height + 1) * 2 * (max_retries + 1) + 8,
        }
    }

    /// Widens the policy so one contiguous outage of `rounds` rounds
    /// (a crash followed by a rejoin — see
    /// [`FaultPlan::max_outage_rounds`]) cannot by itself defeat the
    /// protocol: senders retrying into the down node get enough extra
    /// budget to outlast the outage (one retry per two-round ARQ
    /// cycle), and every deadline slips past the outage window.
    #[must_use]
    pub fn allowing_outage(self, rounds: usize) -> Self {
        RetryPolicy {
            max_retries: self.max_retries + rounds.div_ceil(2),
            deadline: self.deadline + rounds + 2,
        }
    }

    /// Rounds one hop's full ARQ cycle can take: `max_retries + 1`
    /// transmissions, two rounds apart, plus the final ack flight.
    fn stride(&self) -> usize {
        2 * (self.max_retries + 1) + 2
    }

    /// The give-up round for a node at `depth` in a tree of `height`
    /// when data flows *up* (convergecast): deeper nodes give up
    /// earlier, leaving each level a full ARQ stride to forward its
    /// (possibly partial) sum before the level above stops listening.
    fn up_deadline(&self, depth: usize, height: usize) -> usize {
        self.deadline + self.stride() * (height - depth)
    }

    /// The give-up round when data flows *down* (broadcast): deeper
    /// nodes wait longer, because the value cannot reach depth `d`
    /// before `d` ARQ strides have passed.
    fn down_deadline(&self, depth: usize) -> usize {
        self.deadline + self.stride() * depth
    }

    /// Round budget a run under this policy needs on `tree` before the
    /// engine's round limit could only indicate a bug (every node is
    /// done by its staggered deadline plus one final retry window).
    fn max_rounds(&self, tree: &BfsTree) -> usize {
        self.deadline + self.stride() * (tree.height + 2) + 8
    }
}

/// Cost and fault accounting of one reliable tree operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReliableCost {
    /// Rounds used.
    pub rounds: usize,
    /// Messages sent (data + acks, including dropped ones — senders are
    /// metered before the channel).
    pub messages: usize,
    /// Payload bits sent.
    pub bits: usize,
    /// Retransmissions beyond each message's first send.
    pub retransmits: u64,
    /// Delivery failures: retry budgets exhausted plus children still
    /// unreported (or unacknowledged) at the deadline.
    pub failures: u64,
}

/// Shared stop-and-wait sender state for one directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ArqSend {
    acked: bool,
    gave_up: bool,
    sends: usize,
    last_send: Option<usize>,
}

impl ArqSend {
    fn new() -> Self {
        ArqSend {
            acked: false,
            gave_up: false,
            sends: 0,
            last_send: None,
        }
    }

    fn settled(&self) -> bool {
        self.acked || self.gave_up
    }

    /// Advances the ARQ one round; returns `Some(retransmit)` when a
    /// send is due this round (`retransmit` = not the first), `None`
    /// otherwise. Flips to `gave_up` when the budget is spent.
    fn due(&mut self, round: usize, max_retries: usize) -> Option<bool> {
        if self.settled() {
            return None;
        }
        match self.last_send {
            Some(r) if round < r + 2 => None, // ack still in flight
            _ => {
                if self.sends > max_retries {
                    self.gave_up = true;
                    None
                } else {
                    self.sends += 1;
                    self.last_send = Some(round);
                    Some(self.sends > 1)
                }
            }
        }
    }

    /// Resets the retransmit timer after a crash/rejoin cycle: any
    /// in-flight transmission (and its ack) died with the outage, so an
    /// unsettled edge resends on the next `due` poll instead of waiting
    /// out a timeout anchored to a pre-crash round. Spent budget and a
    /// prior give-up are *not* forgiven — failure accounting stays
    /// monotone across reboots.
    fn reset_timer(&mut self) {
        if !self.settled() {
            self.last_send = None;
        }
    }

    fn snapshot_into(&self, words: &mut Vec<u64>) {
        words.push(u64::from(self.acked));
        words.push(u64::from(self.gave_up));
        words.push(self.sends as u64);
        words.push(crate::recover::opt_word(self.last_send));
    }

    fn restore_from(r: &mut crate::recover::WordReader<'_>) -> Result<Self, RecoverError> {
        Ok(ArqSend {
            acked: r.flag("arq.acked")?,
            gave_up: r.flag("arq.gave_up")?,
            sends: r.len("arq.sends")?,
            last_send: r.opt("arq.last_send")?,
        })
    }
}

/// Per-node state of the reliable convergecast.
#[derive(Debug, Clone, PartialEq)]
struct RConvNode {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    reported: Vec<bool>,
    acc: u64,
    ready: bool,
    up: ArqSend,
    max_retries: usize,
    /// This node's own give-up round: the policy deadline staggered by
    /// tree depth (deeper nodes give up earlier), so a node that
    /// finalizes a partial sum still has a full ARQ window to push it
    /// up before its parent stops listening.
    deadline: usize,
    retransmits: u64,
    failures: u64,
}

impl NodeProtocol for RConvNode {
    type Msg = RelMsg;

    fn on_round(
        &mut self,
        _node: NodeId,
        round: usize,
        inbox: &[(NodeId, RelMsg)],
        out: &mut Outbox<'_, RelMsg>,
    ) {
        for &(from, msg) in inbox {
            match msg {
                RelMsg::Data { seq, value } => {
                    if let Some(i) = self.children.iter().position(|&c| c == from) {
                        // Accept a child's subtree sum once, and only
                        // while this node's own sum is still open — a
                        // report arriving after the deadline finalized
                        // the sum was already counted as a failure.
                        // Ack regardless, so no child retries forever.
                        if !self.ready && !self.reported[i] {
                            self.reported[i] = true;
                            self.acc = self.acc.wrapping_add(value);
                        }
                        out.send(from, RelMsg::Ack { seq });
                    }
                }
                RelMsg::Ack { .. } => {
                    if self.parent == Some(from) {
                        self.up.acked = true;
                    }
                }
            }
        }
        if !self.ready {
            let missing = self.reported.iter().filter(|r| !**r).count();
            if missing == 0 {
                self.ready = true;
            } else if round >= self.deadline {
                self.failures += missing as u64;
                self.ready = true;
            }
        }
        if self.ready && !self.up.settled() {
            if let Some(p) = self.parent {
                if let Some(retransmit) = self.up.due(round, self.max_retries) {
                    if retransmit {
                        self.retransmits += 1;
                    }
                    out.send(
                        p,
                        RelMsg::Data {
                            seq: 0,
                            value: self.acc,
                        },
                    );
                }
                if self.up.gave_up {
                    self.failures += 1;
                }
            } else {
                self.up.acked = true; // root has nowhere to send
            }
        }
    }

    fn is_done(&self) -> bool {
        self.ready && self.up.settled()
    }

    fn on_rejoin(&mut self, _node: NodeId, _round: usize) {
        // Stable-storage reboot: sums, reports, and failure counts all
        // survive; only the in-flight ARQ transmission is lost with the
        // outage, so restart its timer for a prompt resend.
        self.up.reset_timer();
    }
}

impl Recoverable for RConvNode {
    fn snapshot(&self) -> Vec<u64> {
        let mut w = vec![opt_word(self.parent), self.children.len() as u64];
        w.extend(self.children.iter().map(|&c| c as u64));
        w.extend(self.reported.iter().map(|&r| u64::from(r)));
        w.push(self.acc);
        w.push(u64::from(self.ready));
        self.up.snapshot_into(&mut w);
        w.push(self.max_retries as u64);
        w.push(self.deadline as u64);
        w.push(self.retransmits);
        w.push(self.failures);
        w
    }

    fn restore(&mut self, words: &[u64]) -> Result<(), RecoverError> {
        let mut r = WordReader::new(words);
        self.parent = r.opt("rconv.parent")?;
        let n = r.len("rconv.children")?;
        self.children.clear();
        for _ in 0..n {
            self.children.push(r.len("rconv.child")?);
        }
        self.reported.clear();
        for _ in 0..n {
            self.reported.push(r.flag("rconv.reported")?);
        }
        self.acc = r.word()?;
        self.ready = r.flag("rconv.ready")?;
        self.up = ArqSend::restore_from(&mut r)?;
        self.max_retries = r.len("rconv.max_retries")?;
        self.deadline = r.len("rconv.deadline")?;
        self.retransmits = r.word()?;
        self.failures = r.word()?;
        if !r.exhausted() {
            return Err(RecoverError::Malformed {
                field: "rconv.trailer",
            });
        }
        Ok(())
    }
}

/// Per-node state of the reliable broadcast.
#[derive(Debug, Clone, PartialEq)]
struct RBcastNode {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    value: Option<u64>,
    down: Vec<ArqSend>,
    expired: bool,
    max_retries: usize,
    /// Give-up round, staggered by depth (deeper nodes wait longer —
    /// the value reaches them later).
    deadline: usize,
    retransmits: u64,
    failures: u64,
}

impl NodeProtocol for RBcastNode {
    type Msg = RelMsg;

    fn on_round(
        &mut self,
        _node: NodeId,
        round: usize,
        inbox: &[(NodeId, RelMsg)],
        out: &mut Outbox<'_, RelMsg>,
    ) {
        for &(from, msg) in inbox {
            match msg {
                RelMsg::Data { seq, value } => {
                    if self.parent == Some(from) {
                        if self.value.is_none() {
                            self.value = Some(value);
                        }
                        out.send(from, RelMsg::Ack { seq });
                    }
                }
                RelMsg::Ack { .. } => {
                    if let Some(i) = self.children.iter().position(|&c| c == from) {
                        self.down[i].acked = true;
                    }
                }
            }
        }
        if let Some(v) = self.value {
            for (i, &child) in self.children.iter().enumerate() {
                let was_settled = self.down[i].settled();
                if let Some(retransmit) = self.down[i].due(round, self.max_retries) {
                    if retransmit {
                        self.retransmits += 1;
                    }
                    out.send(child, RelMsg::Data { seq: 0, value: v });
                }
                // `due` flips to gave-up at most once per edge; count
                // the transition exactly then.
                if !was_settled && self.down[i].gave_up {
                    self.failures += 1;
                }
            }
        } else if round >= self.deadline {
            // Never reached: the parent's retry budget accounted the
            // edge failure; just stop waiting.
            self.expired = true;
        }
    }

    fn is_done(&self) -> bool {
        self.expired || (self.value.is_some() && self.down.iter().all(ArqSend::settled))
    }

    fn on_rejoin(&mut self, _node: NodeId, _round: usize) {
        // Stable storage: the received value and per-edge accounting
        // persist; only in-flight transmissions died, so restart every
        // unsettled child edge's timer.
        for arq in &mut self.down {
            arq.reset_timer();
        }
    }
}

impl Recoverable for RBcastNode {
    fn snapshot(&self) -> Vec<u64> {
        let mut w = vec![opt_word(self.parent), self.children.len() as u64];
        w.extend(self.children.iter().map(|&c| c as u64));
        match self.value {
            None => w.push(0),
            Some(v) => {
                w.push(1);
                w.push(v);
            }
        }
        for arq in &self.down {
            arq.snapshot_into(&mut w);
        }
        w.push(u64::from(self.expired));
        w.push(self.max_retries as u64);
        w.push(self.deadline as u64);
        w.push(self.retransmits);
        w.push(self.failures);
        w
    }

    fn restore(&mut self, words: &[u64]) -> Result<(), RecoverError> {
        let mut r = WordReader::new(words);
        self.parent = r.opt("rbcast.parent")?;
        let n = r.len("rbcast.children")?;
        self.children.clear();
        for _ in 0..n {
            self.children.push(r.len("rbcast.child")?);
        }
        self.value = if r.flag("rbcast.has_value")? {
            Some(r.word()?)
        } else {
            None
        };
        self.down.clear();
        for _ in 0..n {
            self.down.push(ArqSend::restore_from(&mut r)?);
        }
        self.expired = r.flag("rbcast.expired")?;
        self.max_retries = r.len("rbcast.max_retries")?;
        self.deadline = r.len("rbcast.deadline")?;
        self.retransmits = r.word()?;
        self.failures = r.word()?;
        if !r.exhausted() {
            return Err(RecoverError::Malformed {
                field: "rbcast.trailer",
            });
        }
        Ok(())
    }
}

/// Reliable convergecast with messages travelling through `codec`:
/// computes, at every node, the sum of `values` over its subtree
/// (`result[tree.root]` is the grand total), tolerating message drops
/// via ack/retry and — with an error-correcting codec — bit flips up to
/// the code's correction radius. Returns the per-node subtree sums, the
/// operation's cost, and the codec's correction totals.
///
/// Under fault injection the sums are exact whenever no failure was
/// recorded; with `cost.failures > 0` the affected subtrees are
/// partial.
///
/// # Errors
///
/// Propagates engine errors (CONGEST budget violations; round-limit
/// exhaustion cannot occur under the policy's own deadline unless the
/// graph/tree are malformed).
///
/// # Panics
///
/// Panics if `values` length does not match the graph.
#[allow(clippy::too_many_arguments)]
pub fn reliable_convergecast_sums_coded<T, C>(
    g: &T,
    tree: &BfsTree,
    values: &[u64],
    model: BandwidthModel,
    plan: &FaultPlan,
    policy: RetryPolicy,
    codec: C,
    sink: &mut dyn Sink,
) -> Result<(Vec<u64>, ReliableCost, CodecStats), EngineError>
where
    T: ImplicitTopology,
    C: MessageCodec<Plain = RelMsg> + Clone + Send,
    C::Wire: Send + Sync,
{
    assert_eq!(values.len(), g.node_count(), "one value per node");
    let states: Vec<CodedProtocol<RConvNode, C>> = (0..g.node_count())
        .map(|v| {
            CodedProtocol::new(
                RConvNode {
                    parent: tree.parent[v],
                    children: tree.children[v].clone(),
                    reported: vec![false; tree.children[v].len()],
                    acc: values[v],
                    ready: false,
                    up: ArqSend::new(),
                    max_retries: policy.max_retries,
                    deadline: policy.up_deadline(tree.depth[v], tree.height),
                    retransmits: 0,
                    failures: 0,
                },
                codec.clone(),
            )
        })
        .collect();
    let mut net = Network::new(g, model);
    let mut scratch = EngineScratch::new();
    let options = RunOptions::default().with_faults(plan.clone());
    let report = net.run_with_options_observed(
        states,
        policy.max_rounds(tree),
        &mut scratch,
        &options,
        sink,
    )?;
    let stats = codec_stats(&report.nodes);
    let (mut retransmits, mut failures) = (0u64, 0u64);
    let sums: Vec<u64> = report
        .nodes
        .iter()
        .map(|n| {
            retransmits += n.inner().retransmits;
            failures += n.inner().failures;
            n.inner().acc
        })
        .collect();
    let cost = ReliableCost {
        rounds: report.rounds,
        messages: report.total_messages,
        bits: report.total_bits,
        retransmits,
        failures,
    };
    record_reliable(sink, &cost);
    Ok((sums, cost, stats))
}

/// Reliable broadcast with messages travelling through `codec`: pushes
/// `value` from the root down the tree under ack/retry. Returns each
/// node's received value (`None` where delivery failed for good), the
/// operation's cost, and the codec's correction totals.
///
/// # Errors
///
/// Same conditions as [`reliable_convergecast_sums_coded`].
#[allow(clippy::too_many_arguments)]
pub fn reliable_broadcast_value_coded<T, C>(
    g: &T,
    tree: &BfsTree,
    value: u64,
    model: BandwidthModel,
    plan: &FaultPlan,
    policy: RetryPolicy,
    codec: C,
    sink: &mut dyn Sink,
) -> Result<(Vec<Option<u64>>, ReliableCost, CodecStats), EngineError>
where
    T: ImplicitTopology,
    C: MessageCodec<Plain = RelMsg> + Clone + Send,
    C::Wire: Send + Sync,
{
    let states: Vec<CodedProtocol<RBcastNode, C>> = (0..g.node_count())
        .map(|v| {
            CodedProtocol::new(
                RBcastNode {
                    parent: tree.parent[v],
                    children: tree.children[v].clone(),
                    value: if v == tree.root { Some(value) } else { None },
                    down: vec![ArqSend::new(); tree.children[v].len()],
                    expired: false,
                    max_retries: policy.max_retries,
                    deadline: policy.down_deadline(tree.depth[v]),
                    retransmits: 0,
                    failures: 0,
                },
                codec.clone(),
            )
        })
        .collect();
    let mut net = Network::new(g, model);
    let mut scratch = EngineScratch::new();
    let options = RunOptions::default().with_faults(plan.clone());
    let report = net.run_with_options_observed(
        states,
        policy.max_rounds(tree),
        &mut scratch,
        &options,
        sink,
    )?;
    let stats = codec_stats(&report.nodes);
    let (mut retransmits, mut failures) = (0u64, 0u64);
    let received: Vec<Option<u64>> = report
        .nodes
        .iter()
        .map(|n| {
            retransmits += n.inner().retransmits;
            failures += n.inner().failures;
            n.inner().value
        })
        .collect();
    let cost = ReliableCost {
        rounds: report.rounds,
        messages: report.total_messages,
        bits: report.total_bits,
        retransmits,
        failures,
    };
    record_reliable(sink, &cost);
    Ok((received, cost, stats))
}

fn record_reliable(sink: &mut dyn Sink, cost: &ReliableCost) {
    if sink.enabled() {
        sink.add(keys::NETSIM_RELIABLE_RETRANSMITS, cost.retransmits);
        sink.add(keys::NETSIM_RELIABLE_FAILURES, cost.failures);
    }
}

/// [`reliable_convergecast_sums_coded`] with the identity codec (ARQ
/// only, no flip correction).
///
/// # Errors
///
/// Same conditions as [`reliable_convergecast_sums_coded`].
///
/// # Panics
///
/// Panics if `values` length does not match the graph.
pub fn reliable_convergecast_sums<T: ImplicitTopology>(
    g: &T,
    tree: &BfsTree,
    values: &[u64],
    model: BandwidthModel,
    plan: &FaultPlan,
    policy: RetryPolicy,
) -> Result<(Vec<u64>, ReliableCost), EngineError> {
    reliable_convergecast_sums_observed(g, tree, values, model, plan, policy, &mut NoopSink)
}

/// [`reliable_convergecast_sums`] recording `netsim.reliable.*` metrics
/// into `sink`.
///
/// # Errors
///
/// Same conditions as [`reliable_convergecast_sums_coded`].
///
/// # Panics
///
/// Panics if `values` length does not match the graph.
pub fn reliable_convergecast_sums_observed<T: ImplicitTopology>(
    g: &T,
    tree: &BfsTree,
    values: &[u64],
    model: BandwidthModel,
    plan: &FaultPlan,
    policy: RetryPolicy,
    sink: &mut dyn Sink,
) -> Result<(Vec<u64>, ReliableCost), EngineError> {
    let (sums, cost, _) = reliable_convergecast_sums_coded(
        g,
        tree,
        values,
        model,
        plan,
        policy,
        IdentityCodec::<RelMsg>::new(),
        sink,
    )?;
    Ok((sums, cost))
}

/// [`reliable_broadcast_value_coded`] with the identity codec (ARQ
/// only, no flip correction).
///
/// # Errors
///
/// Same conditions as [`reliable_convergecast_sums_coded`].
pub fn reliable_broadcast_value<T: ImplicitTopology>(
    g: &T,
    tree: &BfsTree,
    value: u64,
    model: BandwidthModel,
    plan: &FaultPlan,
    policy: RetryPolicy,
) -> Result<(Vec<Option<u64>>, ReliableCost), EngineError> {
    reliable_broadcast_value_observed(g, tree, value, model, plan, policy, &mut NoopSink)
}

/// [`reliable_broadcast_value`] recording `netsim.reliable.*` metrics
/// into `sink`.
///
/// # Errors
///
/// Same conditions as [`reliable_convergecast_sums_coded`].
pub fn reliable_broadcast_value_observed<T: ImplicitTopology>(
    g: &T,
    tree: &BfsTree,
    value: u64,
    model: BandwidthModel,
    plan: &FaultPlan,
    policy: RetryPolicy,
    sink: &mut dyn Sink,
) -> Result<(Vec<Option<u64>>, ReliableCost), EngineError> {
    let (received, cost, _) = reliable_broadcast_value_coded(
        g,
        tree,
        value,
        model,
        plan,
        policy,
        IdentityCodec::<RelMsg>::new(),
        sink,
    )?;
    Ok((received, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::bfs::build_bfs_tree;
    use crate::algorithms::convergecast::convergecast_sum;
    use crate::topology;

    fn tree_of(g: &crate::graph::Graph, root: NodeId) -> BfsTree {
        build_bfs_tree(g, root, BandwidthModel::Local).unwrap().0
    }

    #[test]
    fn relmsg_packing_round_trips() {
        for msg in [
            RelMsg::Data { seq: 0, value: 0 },
            RelMsg::Data {
                seq: 17,
                value: u64::MAX,
            },
            RelMsg::Data {
                seq: u32::MAX,
                value: 0xDEAD_BEEF,
            },
            RelMsg::Ack { seq: 0 },
            RelMsg::Ack { seq: u32::MAX },
        ] {
            assert_eq!(RelMsg::from_bits(msg.to_bits()), msg);
        }
        // An ack packs no payload bits.
        assert_eq!(RelMsg::Ack { seq: 3 }.to_bits() >> 33, 0);
    }

    #[test]
    fn relmsg_flips_act_on_packed_bits() {
        let mut m = RelMsg::Data { seq: 1, value: 8 };
        m.flip_bit(0); // kind bit: Data -> Ack
        assert_eq!(m, RelMsg::Ack { seq: 1 });
        // Flipping back yields a Data again, but the payload bits were
        // genuinely lost in the Ack representation — zero, not 8.
        m.flip_bit(0);
        assert_eq!(m, RelMsg::Data { seq: 1, value: 0 });
        m.flip_bit(1); // low seq bit
        assert_eq!(m, RelMsg::Data { seq: 0, value: 0 });
        m.flip_bit(33); // low payload bit
        assert_eq!(m, RelMsg::Data { seq: 0, value: 1 });
    }

    #[test]
    fn fault_free_matches_plain_convergecast() {
        for g in [topology::line(12), topology::star(16), topology::grid(4, 5)] {
            let tree = tree_of(&g, 0);
            let values: Vec<u64> = (0..g.node_count() as u64).map(|v| v * 3 + 1).collect();
            let (plain_total, _) =
                convergecast_sum(&g, &tree, &values, BandwidthModel::Local).unwrap();
            let policy = RetryPolicy::for_tree(&tree, 4);
            let (sums, cost) = reliable_convergecast_sums(
                &g,
                &tree,
                &values,
                BandwidthModel::Local,
                &FaultPlan::none(),
                policy,
            )
            .unwrap();
            assert_eq!(sums[tree.root], plain_total);
            assert_eq!(cost.retransmits, 0, "no faults, no retries");
            assert_eq!(cost.failures, 0);
            // Per-node sums are subtree sums.
            let sizes = tree.subtree_sizes();
            for v in 0..g.node_count() {
                if sizes[v] == 1 {
                    assert_eq!(sums[v], values[v], "leaf {v}");
                }
            }
        }
    }

    #[test]
    fn drops_are_recovered_by_retries() {
        let g = topology::line(10);
        let tree = tree_of(&g, 0);
        let values: Vec<u64> = (1..=10).collect();
        let policy = RetryPolicy::for_tree(&tree, 8);
        let plan = FaultPlan::seeded(42).with_drops(0.3);
        let (sums, cost) =
            reliable_convergecast_sums(&g, &tree, &values, BandwidthModel::Local, &plan, policy)
                .unwrap();
        assert_eq!(cost.failures, 0, "retry budget should absorb 30% drops");
        assert_eq!(sums[tree.root], 55, "total must be exact despite drops");
        assert!(cost.retransmits > 0, "a 30% drop rate must force retries");
    }

    #[test]
    fn overwhelming_drops_fail_gracefully() {
        let g = topology::line(8);
        let tree = tree_of(&g, 0);
        let values = vec![1u64; 8];
        let policy = RetryPolicy {
            max_retries: 1,
            deadline: 24,
        };
        let plan = FaultPlan::seeded(7).with_drops(0.97);
        let (sums, cost) =
            reliable_convergecast_sums(&g, &tree, &values, BandwidthModel::Local, &plan, policy)
                .unwrap();
        assert!(cost.failures > 0, "97% drops must defeat a 1-retry budget");
        assert!(sums[tree.root] < 8, "partial total under failures");
    }

    #[test]
    fn broadcast_fault_free_reaches_everyone() {
        let g = topology::balanced_binary_tree(31);
        let tree = tree_of(&g, 0);
        let policy = RetryPolicy::for_tree(&tree, 4);
        let (values, cost) = reliable_broadcast_value(
            &g,
            &tree,
            99,
            BandwidthModel::Local,
            &FaultPlan::none(),
            policy,
        )
        .unwrap();
        assert!(values.iter().all(|&v| v == Some(99)));
        assert_eq!(cost.retransmits, 0);
        assert_eq!(cost.failures, 0);
    }

    #[test]
    fn broadcast_recovers_from_drops() {
        let g = topology::grid(5, 5);
        let tree = tree_of(&g, 0);
        let policy = RetryPolicy::for_tree(&tree, 8);
        let plan = FaultPlan::seeded(5).with_drops(0.3);
        let (values, cost) =
            reliable_broadcast_value(&g, &tree, 7, BandwidthModel::Local, &plan, policy).unwrap();
        assert!(
            values.iter().all(|&v| v == Some(7)),
            "ARQ must deliver everywhere: {values:?}"
        );
        assert!(cost.retransmits > 0);
        assert_eq!(cost.failures, 0);
    }

    #[test]
    fn crashed_subtree_is_accounted_not_hung() {
        let g = topology::line(6);
        let tree = tree_of(&g, 0); // chain 0-1-2-3-4-5
        let values = vec![1u64; 6];
        let policy = RetryPolicy {
            max_retries: 2,
            deadline: 40,
        };
        // Node 4 crashes immediately: node 5's reports die, and node
        // 3 never hears from 4.
        let plan = FaultPlan::seeded(1).with_crash(4, 0);
        let (sums, cost) =
            reliable_convergecast_sums(&g, &tree, &values, BandwidthModel::Local, &plan, policy)
                .unwrap();
        assert!(cost.failures > 0, "crash must surface as failures");
        assert_eq!(sums[tree.root], 4, "nodes 0..=3 still counted");
    }

    #[test]
    fn rejoined_node_resumes_convergecast_exactly() {
        let g = topology::line(6);
        let tree = tree_of(&g, 0); // chain 0-1-2-3-4-5
        let values = vec![1u64; 6];
        // Node 4 goes down at round 0 and comes back at round 6: its
        // own report and node 5's relay are delayed, not lost. A policy
        // widened for the outage must deliver the exact total.
        let plan = FaultPlan::seeded(1).with_crash(4, 0).with_rejoin(4, 6);
        let policy = RetryPolicy::for_tree(&tree, 2).allowing_outage(plan.max_outage_rounds());
        let (sums, cost) =
            reliable_convergecast_sums(&g, &tree, &values, BandwidthModel::Local, &plan, policy)
                .unwrap();
        assert_eq!(cost.failures, 0, "outage-sized policy must recover");
        assert_eq!(sums[tree.root], 6, "total exact after rejoin");
    }

    #[test]
    fn rejoined_node_receives_broadcast() {
        let g = topology::balanced_binary_tree(15);
        let tree = tree_of(&g, 0);
        // An internal node sleeps through the first wave of the
        // broadcast; its parent's widened retry budget outlasts the
        // outage and the whole subtree still converges.
        let plan = FaultPlan::seeded(9).with_crash(1, 0).with_rejoin(1, 8);
        let policy = RetryPolicy::for_tree(&tree, 2).allowing_outage(plan.max_outage_rounds());
        let (values, cost) =
            reliable_broadcast_value(&g, &tree, 42, BandwidthModel::Local, &plan, policy).unwrap();
        assert!(
            values.iter().all(|&v| v == Some(42)),
            "rejoined subtree must still receive the value: {values:?}"
        );
        assert_eq!(cost.failures, 0);
    }

    #[test]
    fn rejoin_recovery_is_engine_invariant() {
        // The crash/rejoin path must behave bit-identically across the
        // serial and parallel engines (the differential suite covers
        // the same property for the sharded/reference engines via
        // protocol-level runs; here we pin the reliable primitives).
        let g = topology::grid(4, 4);
        let tree = tree_of(&g, 0);
        let values: Vec<u64> = (0..16u64).collect();
        let plan = FaultPlan::seeded(11)
            .with_drops(0.15)
            .with_crash(5, 2)
            .with_rejoin(5, 9);
        let policy = RetryPolicy::for_tree(&tree, 4).allowing_outage(plan.max_outage_rounds());
        let run = |threads: usize| {
            let mut net = Network::new(&g, BandwidthModel::Local);
            let states: Vec<CodedProtocol<RConvNode, IdentityCodec<RelMsg>>> = (0..g.node_count())
                .map(|v| {
                    CodedProtocol::new(
                        RConvNode {
                            parent: tree.parent[v],
                            children: tree.children[v].clone(),
                            reported: vec![false; tree.children[v].len()],
                            acc: values[v],
                            ready: false,
                            up: ArqSend::new(),
                            max_retries: policy.max_retries,
                            deadline: policy.up_deadline(tree.depth[v], tree.height),
                            retransmits: 0,
                            failures: 0,
                        },
                        IdentityCodec::<RelMsg>::new(),
                    )
                })
                .collect();
            let mut scratch = EngineScratch::new();
            let options = RunOptions::parallel(threads).with_faults(plan.clone());
            let report = net
                .run_with_options(states, policy.max_rounds(&tree), &mut scratch, &options)
                .unwrap();
            (
                report.rounds,
                report.total_messages,
                report
                    .nodes
                    .iter()
                    .map(|n| n.inner().acc)
                    .collect::<Vec<_>>(),
            )
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn reliable_nodes_snapshot_round_trip() {
        use crate::recover::{restore_nodes, snapshot_nodes, RecoverError};
        let g = topology::grid(3, 4);
        let tree = tree_of(&g, 0);
        let mk_conv = |v: usize| RConvNode {
            parent: tree.parent[v],
            children: tree.children[v].clone(),
            reported: tree.children[v].iter().map(|&c| c % 2 == 0).collect(),
            acc: v as u64 * 1000 + 7,
            ready: v.is_multiple_of(3),
            up: ArqSend {
                acked: v.is_multiple_of(2),
                gave_up: false,
                sends: v,
                last_send: if v % 2 == 1 { Some(v * 2) } else { None },
            },
            max_retries: 4,
            deadline: 30 + v,
            retransmits: v as u64,
            failures: u64::from(v == 5),
        };
        let originals: Vec<RConvNode> = (0..g.node_count()).map(mk_conv).collect();
        let snaps = snapshot_nodes(&originals);
        let mut blank: Vec<RConvNode> = (0..g.node_count()).map(|_| mk_conv(0)).collect();
        restore_nodes(&mut blank, &snaps).unwrap();
        assert_eq!(blank, originals);
        // A truncated word stream is a typed error, never a panic.
        let mut cut = snaps[1].clone();
        cut.pop();
        assert_eq!(blank[1].restore(&cut), Err(RecoverError::Truncated));

        let mk_bcast = |v: usize| RBcastNode {
            parent: tree.parent[v],
            children: tree.children[v].clone(),
            value: if v.is_multiple_of(2) {
                Some(v as u64 + 9)
            } else {
                None
            },
            down: tree.children[v]
                .iter()
                .map(|&c| ArqSend {
                    acked: c % 2 == 0,
                    gave_up: c % 5 == 4,
                    sends: c,
                    last_send: Some(c + 1),
                })
                .collect(),
            expired: v == 7,
            max_retries: 3,
            deadline: 40,
            retransmits: v as u64 * 2,
            failures: 0,
        };
        let originals: Vec<RBcastNode> = (0..g.node_count()).map(mk_bcast).collect();
        let snaps = snapshot_nodes(&originals);
        let mut blank: Vec<RBcastNode> = (0..g.node_count()).map(|_| mk_bcast(1)).collect();
        restore_nodes(&mut blank, &snaps).unwrap();
        assert_eq!(blank, originals);
    }

    #[test]
    fn observed_run_records_reliable_keys() {
        use dut_obs::MemorySink;
        let g = topology::line(10);
        let tree = tree_of(&g, 0);
        let values = vec![1u64; 10];
        let policy = RetryPolicy::for_tree(&tree, 8);
        let plan = FaultPlan::seeded(42).with_drops(0.3);
        let mut sink = MemorySink::new();
        let (_, cost) = reliable_convergecast_sums_observed(
            &g,
            &tree,
            &values,
            BandwidthModel::Local,
            &plan,
            policy,
            &mut sink,
        )
        .unwrap();
        assert_eq!(
            sink.counter(keys::NETSIM_RELIABLE_RETRANSMITS),
            cost.retransmits
        );
        assert_eq!(sink.counter(keys::NETSIM_RELIABLE_FAILURES), cost.failures);
        assert!(sink.counter(keys::NETSIM_FAULT_DROPPED_MESSAGES) > 0);
    }
}
