//! Convergecast (aggregate up a tree) and broadcast (push down a tree).
//!
//! The CONGEST tester's final step — "summing up the tree the number of
//! virtual nodes that want to reject" — is a convergecast; announcing the
//! verdict is a broadcast. Both run in `height(T) + O(1)` rounds with
//! `O(log k)`-bit messages.

use super::bfs::BfsTree;
use crate::engine::{BandwidthModel, Compact, EngineError, Network, NodeProtocol, Outbox};
use crate::graph::{ImplicitTopology, NodeId};
use dut_obs::{keys, NoopSink, Sink};

/// Wire cost of one tree operation (convergecast or broadcast), taken
/// from the underlying engine report so callers can account for the
/// bits these primitives actually put on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeOpCost {
    /// Rounds used.
    pub rounds: usize,
    /// Messages delivered.
    pub messages: usize,
    /// Payload bits delivered.
    pub bits: usize,
}

/// Per-node convergecast state.
#[derive(Debug, Clone)]
struct ConvNode {
    parent: Option<NodeId>,
    expected_children: usize,
    received: usize,
    acc: u64,
    sent: bool,
}

impl NodeProtocol for ConvNode {
    type Msg = Compact;

    fn on_round(
        &mut self,
        _node: NodeId,
        _round: usize,
        inbox: &[(NodeId, Compact)],
        out: &mut Outbox<'_, Compact>,
    ) {
        for &(_, Compact(v)) in inbox {
            self.acc += v;
            self.received += 1;
        }
        if !self.sent && self.received == self.expected_children {
            if let Some(p) = self.parent {
                out.send(p, Compact(self.acc));
            }
            self.sent = true;
        }
    }

    fn is_done(&self) -> bool {
        self.sent
    }
}

/// Sums `values` up the tree; returns the total (as computed at the
/// root) and the number of rounds used.
///
/// # Errors
///
/// Propagates engine errors (round limit on a malformed tree, CONGEST
/// budget violations).
///
/// # Panics
///
/// Panics if `values` length does not match the graph.
pub fn convergecast_sum<T: ImplicitTopology>(
    g: &T,
    tree: &BfsTree,
    values: &[u64],
    model: BandwidthModel,
) -> Result<(u64, usize), EngineError> {
    let (total, cost) = convergecast_sum_observed(g, tree, values, model, &mut NoopSink)?;
    Ok((total, cost.rounds))
}

/// [`convergecast_sum`] that also returns the operation's wire cost and
/// records it into `sink` under the `netsim.convergecast.*` keys (the
/// underlying engine run records `netsim.*` as well).
///
/// # Errors
///
/// Same conditions as [`convergecast_sum`].
///
/// # Panics
///
/// Panics if `values` length does not match the graph.
pub fn convergecast_sum_observed<T: ImplicitTopology>(
    g: &T,
    tree: &BfsTree,
    values: &[u64],
    model: BandwidthModel,
    sink: &mut dyn Sink,
) -> Result<(u64, TreeOpCost), EngineError> {
    assert_eq!(values.len(), g.node_count(), "one value per node");
    let states: Vec<ConvNode> = (0..g.node_count())
        .map(|v| ConvNode {
            parent: tree.parent[v],
            expected_children: tree.children[v].len(),
            received: 0,
            acc: values[v],
            sent: false,
        })
        .collect();
    let mut net = Network::new(g, model);
    let report = net.run_observed(states, 2 * g.node_count() + 4, sink)?;
    let cost = TreeOpCost {
        rounds: report.rounds,
        messages: report.total_messages,
        bits: report.total_bits,
    };
    if sink.enabled() {
        sink.add(keys::CONVERGECAST_RUNS, 1);
        sink.add(keys::CONVERGECAST_ROUNDS, cost.rounds as u64);
        sink.add(keys::CONVERGECAST_BITS, cost.bits as u64);
    }
    Ok((report.nodes[tree.root].acc, cost))
}

/// Per-node broadcast state.
#[derive(Debug, Clone)]
struct BcastNode {
    children: Vec<NodeId>,
    value: Option<u64>,
    sent: bool,
}

impl NodeProtocol for BcastNode {
    type Msg = Compact;

    fn on_round(
        &mut self,
        _node: NodeId,
        _round: usize,
        inbox: &[(NodeId, Compact)],
        out: &mut Outbox<'_, Compact>,
    ) {
        if self.value.is_none() {
            if let Some(&(_, Compact(v))) = inbox.first() {
                self.value = Some(v);
            }
        }
        if let (Some(v), false) = (self.value, self.sent) {
            for &c in &self.children {
                out.send(c, Compact(v));
            }
            self.sent = true;
        }
    }

    fn is_done(&self) -> bool {
        self.sent
    }
}

/// Pushes `value` from the root down the tree; returns each node's
/// received value and the number of rounds used.
///
/// # Errors
///
/// Propagates engine errors.
pub fn broadcast_value<T: ImplicitTopology>(
    g: &T,
    tree: &BfsTree,
    value: u64,
    model: BandwidthModel,
) -> Result<(Vec<u64>, usize), EngineError> {
    let (values, cost) = broadcast_value_observed(g, tree, value, model, &mut NoopSink)?;
    Ok((values, cost.rounds))
}

/// [`broadcast_value`] that also returns the operation's wire cost and
/// records it into `sink` under the `netsim.broadcast.*` keys (the
/// underlying engine run records `netsim.*` as well).
///
/// # Errors
///
/// Same conditions as [`broadcast_value`].
pub fn broadcast_value_observed<T: ImplicitTopology>(
    g: &T,
    tree: &BfsTree,
    value: u64,
    model: BandwidthModel,
    sink: &mut dyn Sink,
) -> Result<(Vec<u64>, TreeOpCost), EngineError> {
    let states: Vec<BcastNode> = (0..g.node_count())
        .map(|v| BcastNode {
            children: tree.children[v].clone(),
            value: if v == tree.root { Some(value) } else { None },
            sent: false,
        })
        .collect();
    let mut net = Network::new(g, model);
    let report = net.run_observed(states, 2 * g.node_count() + 4, sink)?;
    let cost = TreeOpCost {
        rounds: report.rounds,
        messages: report.total_messages,
        bits: report.total_bits,
    };
    if sink.enabled() {
        sink.add(keys::BROADCAST_RUNS, 1);
        sink.add(keys::BROADCAST_ROUNDS, cost.rounds as u64);
        sink.add(keys::BROADCAST_BITS, cost.bits as u64);
    }
    // Unreachable expect: `BcastNode::is_done` requires `value.is_some()`,
    // and the engine only returns a successful report once every node is
    // done, so a value is set everywhere.
    let values = report
        .nodes
        .iter()
        .map(|n| n.value.expect("broadcast reached all nodes"))
        .collect();
    Ok((values, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::bfs::build_bfs_tree;
    use crate::topology;

    fn tree_of(g: &crate::graph::Graph, root: NodeId) -> BfsTree {
        build_bfs_tree(g, root, BandwidthModel::Local).unwrap().0
    }

    #[test]
    fn sum_on_a_line() {
        let g = topology::line(5);
        let tree = tree_of(&g, 0);
        let values = [1u64, 2, 3, 4, 5];
        let (total, rounds) = convergecast_sum(&g, &tree, &values, BandwidthModel::Local).unwrap();
        assert_eq!(total, 15);
        // height 4: leaf's value takes 4 hops + quiescence overhead
        assert!((4..=8).contains(&rounds), "rounds = {rounds}");
    }

    #[test]
    fn sum_on_a_star_is_fast() {
        let g = topology::star(64);
        let tree = tree_of(&g, 0);
        let values = vec![1u64; 64];
        let (total, rounds) = convergecast_sum(&g, &tree, &values, BandwidthModel::Local).unwrap();
        assert_eq!(total, 64);
        assert!(rounds <= 4, "star convergecast took {rounds} rounds");
    }

    #[test]
    fn sum_fits_congest() {
        let g = topology::grid(6, 6);
        let tree = tree_of(&g, 0);
        let values = vec![3u64; 36];
        let model = BandwidthModel::Congest { bits_per_edge: 64 };
        let (total, _) = convergecast_sum(&g, &tree, &values, model).unwrap();
        assert_eq!(total, 108);
    }

    #[test]
    fn sum_with_zero_values() {
        let g = topology::ring(7);
        let tree = tree_of(&g, 3);
        let values = vec![0u64; 7];
        let (total, _) = convergecast_sum(&g, &tree, &values, BandwidthModel::Local).unwrap();
        assert_eq!(total, 0);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let g = topology::balanced_binary_tree(31);
        let tree = tree_of(&g, 0);
        let (values, rounds) = broadcast_value(&g, &tree, 42, BandwidthModel::Local).unwrap();
        assert!(values.iter().all(|&v| v == 42));
        assert!(rounds <= tree.height + 3);
    }

    #[test]
    fn broadcast_round_count_scales_with_height() {
        let g = topology::line(20);
        let tree = tree_of(&g, 0);
        let (_, rounds_line) = broadcast_value(&g, &tree, 7, BandwidthModel::Local).unwrap();
        let g2 = topology::star(20);
        let tree2 = tree_of(&g2, 0);
        let (_, rounds_star) = broadcast_value(&g2, &tree2, 7, BandwidthModel::Local).unwrap();
        assert!(rounds_line > rounds_star);
    }
}
