//! Leader election by max-identifier flooding.
//!
//! The paper's token-packaging protocol starts by identifying "the vertex
//! with the largest identifier" (§5). Nodes flood the largest identifier
//! they have heard; after `D + O(1)` rounds the flood stabilizes and the
//! node holding the global maximum knows it is the leader.

use crate::algorithms::coded::{codec_stats, CodecStats, CodedProtocol, MessageCodec};
use crate::engine::{
    BandwidthModel, Compact, EngineError, EngineScratch, Network, NodeProtocol, Outbox, RunOptions,
};
use crate::fault::FaultPlan;
use crate::graph::{ImplicitTopology, NodeId};

/// Per-node max-flood state.
#[derive(Debug, Clone)]
struct LeaderNode {
    my_id: u64,
    best: u64,
    pending: bool,
}

impl NodeProtocol for LeaderNode {
    type Msg = Compact;

    fn on_round(
        &mut self,
        _node: NodeId,
        round: usize,
        inbox: &[(NodeId, Compact)],
        out: &mut Outbox<'_, Compact>,
    ) {
        if round == 0 {
            self.pending = true;
        }
        for &(_, Compact(id)) in inbox {
            if id > self.best {
                self.best = id;
                self.pending = true;
            }
        }
        if self.pending {
            out.broadcast(Compact(self.best));
            self.pending = false;
        }
    }

    fn is_done(&self) -> bool {
        true // quiescence (no improving floods) ends the run
    }
}

/// Elects the node with the largest identifier by flooding. Returns
/// `(leader, rounds)`.
///
/// `ids[v]` is node `v`'s identifier; in an anonymous network these are
/// random values from a large namespace (unique w.h.p.), as the paper's
/// lower-bound section notes. Duplicated maximum ids are rejected.
///
/// # Errors
///
/// Returns [`EngineError::EmptyNetwork`] on a zero-node graph, and
/// propagates engine errors from the flood itself.
///
/// # Panics
///
/// Panics if `ids` length mismatches the graph, or the maximum id is not
/// unique.
pub fn elect_leader<T: ImplicitTopology>(
    g: &T,
    ids: &[u64],
    model: BandwidthModel,
) -> Result<(NodeId, usize), EngineError> {
    assert_eq!(ids.len(), g.node_count(), "one id per node");
    let Some(&max) = ids.iter().max() else {
        return Err(EngineError::EmptyNetwork);
    };
    assert_eq!(
        ids.iter().filter(|&&i| i == max).count(),
        1,
        "maximum id must be unique"
    );
    let states: Vec<LeaderNode> = ids
        .iter()
        .map(|&my_id| LeaderNode {
            my_id,
            best: my_id,
            pending: false,
        })
        .collect();
    let mut net = Network::new(g, model);
    let report = net.run(states, 2 * g.node_count() + 4)?;
    // Unreachable expect: the unique maximum asserted above never loses a
    // comparison, so the node holding it still has `best == my_id == max`
    // once the flood quiesces.
    let leader = report
        .nodes
        .iter()
        .position(|n| n.my_id == n.best && n.my_id == max)
        .expect("exactly one node holds the maximum");
    Ok((leader, report.rounds))
}

/// [`elect_leader`] with messages travelling through `codec` under a
/// [`FaultPlan`]: bit flips below the codec's correction radius are
/// fixed transparently; undecodable or dropped floods simply re-trigger
/// on the next improving id. The max-id holder elects itself even under
/// heavy faults (no flood can overwrite the global maximum), but other
/// nodes may terminate without having heard it.
///
/// # Errors
///
/// Same conditions as [`elect_leader`].
///
/// # Panics
///
/// Same conditions as [`elect_leader`].
pub fn elect_leader_coded<T, C>(
    g: &T,
    ids: &[u64],
    model: BandwidthModel,
    plan: &FaultPlan,
    codec: C,
) -> Result<(NodeId, usize, CodecStats), EngineError>
where
    T: ImplicitTopology,
    C: MessageCodec<Plain = Compact> + Clone + Send,
    C::Wire: Send + Sync,
{
    assert_eq!(ids.len(), g.node_count(), "one id per node");
    let Some(&max) = ids.iter().max() else {
        return Err(EngineError::EmptyNetwork);
    };
    assert_eq!(
        ids.iter().filter(|&&i| i == max).count(),
        1,
        "maximum id must be unique"
    );
    let states: Vec<CodedProtocol<LeaderNode, C>> = ids
        .iter()
        .map(|&my_id| {
            CodedProtocol::new(
                LeaderNode {
                    my_id,
                    best: my_id,
                    pending: false,
                },
                codec.clone(),
            )
        })
        .collect();
    let mut net = Network::new(g, model);
    let mut scratch = EngineScratch::new();
    let options = RunOptions::default().with_faults(plan.clone());
    let report = net.run_with_options(states, 2 * g.node_count() + 4, &mut scratch, &options)?;
    let stats = codec_stats(&report.nodes);
    // Unreachable expect: no id exceeds the unique maximum, so faults can
    // delay but never displace the max holder's self-election.
    let leader = report
        .nodes
        .iter()
        .position(|n| n.inner().my_id == n.inner().best && n.inner().my_id == max)
        .expect("exactly one node holds the maximum");
    Ok((leader, report.rounds, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn leader_on_line() {
        let g = topology::line(8);
        let ids = [3u64, 9, 1, 4, 1, 5, 92, 6];
        let (leader, rounds) = elect_leader(&g, &ids, BandwidthModel::Local).unwrap();
        assert_eq!(leader, 6);
        assert!(rounds <= 2 * 8);
    }

    #[test]
    fn leader_rounds_scale_with_diameter() {
        let g1 = topology::line(32);
        let mut ids: Vec<u64> = (0..32).collect();
        ids[0] = 1000; // worst case: max at one end
        let (_, rounds_line) = elect_leader(&g1, &ids, BandwidthModel::Local).unwrap();
        let g2 = topology::star(32);
        let (_, rounds_star) = elect_leader(&g2, &ids, BandwidthModel::Local).unwrap();
        assert!(rounds_line > rounds_star);
        assert!(rounds_line >= 31, "flood must cross the whole line");
    }

    #[test]
    fn leader_with_random_ids_fits_congest() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = topology::grid(6, 6);
        let ids: Vec<u64> = (0..36).map(|_| rng.gen()).collect();
        let model = BandwidthModel::Congest { bits_per_edge: 64 };
        let (leader, _) = elect_leader(&g, &ids, model).unwrap();
        let max = *ids.iter().max().unwrap();
        assert_eq!(ids[leader], max);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_max_rejected() {
        let g = topology::line(3);
        let _ = elect_leader(&g, &[5, 5, 1], BandwidthModel::Local);
    }
}
