//! Luby's maximal independent set algorithm.
//!
//! The LOCAL tester (§6) computes an MIS on the power graph `G^r` so
//! that sample-gathering centers are pairwise more than `r` apart. We
//! implement the classic Luby algorithm: in each phase every undecided
//! node draws a random priority; a node joins the MIS if its priority
//! beats all undecided neighbors, and MIS nodes knock their neighbors
//! out. O(log k) phases w.h.p.; each phase costs O(1) rounds on the
//! communication graph it runs on (O(r) rounds of `G` when simulating
//! `G^r` on `G`).

use crate::graph::Graph;
use rand::Rng;

/// The result of an MIS computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MisResult {
    /// Whether each node is in the MIS.
    pub in_mis: Vec<bool>,
    /// Number of Luby phases executed.
    pub phases: usize,
}

impl MisResult {
    /// The MIS members.
    pub fn members(&self) -> Vec<usize> {
        self.in_mis
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(v, _)| v)
            .collect()
    }
}

/// Runs Luby's MIS algorithm on `g`.
///
/// Each phase, every undecided node draws a `u64` priority; a node joins
/// the MIS iff its (priority, id) pair is strictly largest among itself
/// and its undecided neighbors. The (priority, id) tie-break makes the
/// phase well-defined even on the measure-zero event of equal draws.
pub fn luby_mis<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> MisResult {
    let k = g.node_count();
    let mut in_mis = vec![false; k];
    let mut decided = vec![false; k];
    let mut undecided_left = k;
    let mut phases = 0usize;
    let mut priority = vec![0u64; k];

    while undecided_left > 0 {
        phases += 1;
        for (v, p) in priority.iter_mut().enumerate() {
            if !decided[v] {
                *p = rng.gen();
            }
        }
        // Winners: local maxima among undecided nodes.
        let mut winners = Vec::new();
        for v in 0..k {
            if decided[v] {
                continue;
            }
            let my = (priority[v], v);
            let beaten = g
                .neighbors(v)
                .iter()
                .any(|&w| !decided[w] && (priority[w], w) > my);
            if !beaten {
                winners.push(v);
            }
        }
        for &v in &winners {
            in_mis[v] = true;
            decided[v] = true;
            undecided_left -= 1;
            for &w in g.neighbors(v) {
                if !decided[w] {
                    decided[w] = true;
                    undecided_left -= 1;
                }
            }
        }
    }
    MisResult { in_mis, phases }
}

/// Verifies that `in_mis` is an independent set that is maximal:
/// no two members are adjacent, and every non-member has a member
/// neighbor.
pub fn verify_mis(g: &Graph, in_mis: &[bool]) -> bool {
    if in_mis.len() != g.node_count() {
        return false;
    }
    for v in 0..g.node_count() {
        if in_mis[v] {
            if g.neighbors(v).iter().any(|&w| in_mis[w]) {
                return false; // not independent
            }
        } else if !g.neighbors(v).iter().any(|&w| in_mis[w]) {
            return false; // not maximal
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::power_graph;
    use crate::topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mis_on_line_is_valid() {
        let g = topology::line(10);
        let mut rng = StdRng::seed_from_u64(1);
        let mis = luby_mis(&g, &mut rng);
        assert!(verify_mis(&g, &mis.in_mis));
    }

    #[test]
    fn mis_on_complete_graph_is_single_node() {
        let g = topology::complete(12);
        let mut rng = StdRng::seed_from_u64(2);
        let mis = luby_mis(&g, &mut rng);
        assert_eq!(mis.members().len(), 1);
        assert!(verify_mis(&g, &mis.in_mis));
    }

    #[test]
    fn mis_on_edgeless_graph_is_everyone() {
        let g = Graph::new(7);
        let mut rng = StdRng::seed_from_u64(3);
        let mis = luby_mis(&g, &mut rng);
        assert_eq!(mis.members().len(), 7);
        assert_eq!(mis.phases, 1);
    }

    #[test]
    fn mis_valid_on_many_topologies_and_seeds() {
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            for t in topology::Topology::ALL {
                let g = t.instantiate(50, &mut rng);
                let mis = luby_mis(&g, &mut rng);
                assert!(
                    verify_mis(&g, &mis.in_mis),
                    "invalid MIS on {} seed {seed}",
                    t.name()
                );
            }
        }
    }

    #[test]
    fn mis_phases_are_logarithmic() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = topology::connected_erdos_renyi(500, 0.02, &mut rng);
        let mis = luby_mis(&g, &mut rng);
        assert!(verify_mis(&g, &mis.in_mis));
        assert!(
            mis.phases <= 30,
            "Luby used {} phases on 500 nodes",
            mis.phases
        );
    }

    #[test]
    fn mis_on_power_graph_spreads_centers() {
        // On G^r of a line, MIS members must be > r apart in G.
        let g = topology::line(40);
        let r = 4;
        let p = power_graph(&g, r);
        let mut rng = StdRng::seed_from_u64(5);
        let mis = luby_mis(&p, &mut rng);
        assert!(verify_mis(&p, &mis.in_mis));
        let members = mis.members();
        for w in members.windows(2) {
            assert!(
                w[1] - w[0] > r,
                "MIS members {} and {} too close on the line",
                w[0],
                w[1]
            );
        }
    }
}
