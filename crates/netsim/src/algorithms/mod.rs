//! Distributed building blocks: BFS trees, convergecast/broadcast,
//! leader election, and Luby's maximal independent set.
//!
//! These are the substrate the paper's CONGEST protocol (§5) and LOCAL
//! protocol (§6) assume: "the network identifies the vertex with the
//! largest identifier, and then constructs a BFS tree", "summing up the
//! tree the number of virtual nodes that want to reject", "use Luby's
//! MIS algorithm to find a maximal independent set on the graph G^r".

pub mod bfs;
pub mod coded;
pub mod convergecast;
pub mod distributed_mis;
pub mod leader;
pub mod mis;
pub mod reliable;
pub mod routing;

pub use bfs::{build_bfs_tree, build_bfs_tree_coded, BfsTree};
pub use coded::{
    codec_stats, CodecError, CodecMessage, CodecStats, CodedProtocol, IdentityCodec, MessageCodec,
};
pub use convergecast::{
    broadcast_value, broadcast_value_observed, convergecast_sum, convergecast_sum_observed,
    TreeOpCost,
};
pub use distributed_mis::{distributed_luby_mis, DistributedMisResult};
pub use leader::{elect_leader, elect_leader_coded};
pub use mis::{luby_mis, verify_mis, MisResult};
pub use reliable::{
    reliable_broadcast_value, reliable_broadcast_value_coded, reliable_broadcast_value_observed,
    reliable_convergecast_sums, reliable_convergecast_sums_coded,
    reliable_convergecast_sums_observed, RelMsg, ReliableCost, RetryPolicy,
};
pub use routing::{route_to_centers, Parcel};
