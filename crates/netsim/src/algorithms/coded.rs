//! Generic message codecs: run any [`NodeProtocol`] with its messages
//! encoded on the wire.
//!
//! [`CodedProtocol`] wraps an inner protocol and a [`MessageCodec`]:
//! every outgoing message is encoded into the codec's wire type (what
//! fault injection sees and flips), and every incoming wire word is
//! decoded back before the inner protocol runs. A wire word the codec
//! cannot decode (corruption beyond its correction radius) is treated
//! exactly like a dropped message — the inner protocol never sees it —
//! which composes with the retry layer in
//! [`crate::algorithms::reliable`]: flips below the radius are corrected
//! transparently, flips above it degrade into drops, and drops are
//! recovered by acknowledgment and retransmission.
//!
//! The concrete error-correcting codec (Justesen-coded words from
//! `dut-ecc`) lives in the `dut-congest` crate; this module provides the
//! protocol plumbing and the trivial [`IdentityCodec`].

use crate::engine::{MessageSize, NodeProtocol, Outbox};
use crate::fault::FaultInjectable;
use crate::graph::NodeId;
use std::error::Error;
use std::fmt;
use std::marker::PhantomData;

/// A wire word could not be decoded: the corruption exceeded the
/// codec's correction capability. The carrying message is discarded
/// (equivalent to a drop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecError;

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wire word corrupted beyond the codec's correction radius"
        )
    }
}

impl Error for CodecError {}

/// Fixed-width binary serialization for messages a block codec can
/// encode.
///
/// A codec that operates on bit blocks (such as the Justesen codec)
/// needs its plain messages as bits; implementors pack into the low
/// bits of a `u128` (128 bits is enough for every protocol message in
/// this crate) and invert the packing exactly.
pub trait CodecMessage: Clone {
    /// The number of low bits of `to_bits` the packing uses. Constant
    /// per type — a block codec sizes its code to this.
    const PACKED_BITS: usize;

    /// Packs the message into the low [`CodecMessage::PACKED_BITS`]
    /// bits; higher bits must be zero.
    fn to_bits(&self) -> u128;

    /// Inverts [`CodecMessage::to_bits`]. Bits above
    /// [`CodecMessage::PACKED_BITS`] must be ignored.
    fn from_bits(bits: u128) -> Self;
}

impl CodecMessage for crate::engine::Compact {
    const PACKED_BITS: usize = 64;

    fn to_bits(&self) -> u128 {
        u128::from(self.0)
    }

    fn from_bits(bits: u128) -> Self {
        crate::engine::Compact(bits as u64)
    }
}

/// Encodes plain protocol messages into a wire representation and
/// decodes (possibly corrupted) wire words back.
pub trait MessageCodec {
    /// The plain message type the wrapped protocol exchanges.
    type Plain: Clone + MessageSize;
    /// The on-wire message type — what the engine meters and fault
    /// injection corrupts.
    type Wire: Clone + MessageSize + FaultInjectable;

    /// Encodes a plain message for the wire.
    fn encode(&self, msg: &Self::Plain) -> Self::Wire;

    /// Decodes a wire word. On success returns the plain message and
    /// the number of wire bits the codec corrected (0 on a clean word).
    ///
    /// # Errors
    ///
    /// [`CodecError`] when the word is corrupted beyond the codec's
    /// correction capability; the caller discards the message.
    fn decode(&self, wire: &Self::Wire) -> Result<(Self::Plain, usize), CodecError>;
}

/// The trivial codec: the wire type *is* the plain type.
///
/// Corrects nothing and detects nothing — bit flips pass straight
/// through to the protocol. Useful as the uncoded baseline when
/// measuring what an error-correcting codec buys, and for running the
/// reliable (ack/retry) primitives against drops only.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityCodec<M>(PhantomData<M>);

impl<M> IdentityCodec<M> {
    /// Creates the identity codec.
    pub fn new() -> Self {
        IdentityCodec(PhantomData)
    }
}

impl<M: Clone + MessageSize + FaultInjectable> MessageCodec for IdentityCodec<M> {
    type Plain = M;
    type Wire = M;

    fn encode(&self, msg: &M) -> M {
        msg.clone()
    }

    fn decode(&self, wire: &M) -> Result<(M, usize), CodecError> {
        Ok((wire.clone(), 0))
    }
}

/// Codec totals aggregated over a run's final node states.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodecStats {
    /// Wire bits corrected across all nodes (flips below the radius,
    /// fixed transparently).
    pub corrected_bits: u64,
    /// Wire words discarded as undecodable (corruption beyond the
    /// radius; each behaves like a dropped message).
    pub decode_failures: u64,
}

/// Wraps an inner [`NodeProtocol`] so its messages travel encoded.
///
/// The wrapper is itself a `NodeProtocol` whose message type is the
/// codec's wire type; run it on any engine path. Decode failures are
/// silently discarded (the inner protocol sees a drop) and counted in
/// [`CodedProtocol::decode_failures`].
pub struct CodedProtocol<P, C: MessageCodec> {
    inner: P,
    codec: C,
    corrected_bits: u64,
    decode_failures: u64,
    /// Reused per-round buffer of decoded inbox messages.
    plain_inbox: Vec<(NodeId, C::Plain)>,
    /// Reused staging buffer backing the inner protocol's outbox.
    stage: Vec<(NodeId, NodeId, C::Plain)>,
    /// Reused dense neighbor-position index for the inner outbox.
    pos: Vec<u32>,
}

impl<P, C: MessageCodec> CodedProtocol<P, C> {
    /// Wraps `inner` with `codec`.
    pub fn new(inner: P, codec: C) -> Self {
        CodedProtocol {
            inner,
            codec,
            corrected_bits: 0,
            decode_failures: 0,
            plain_inbox: Vec::new(),
            stage: Vec::new(),
            pos: Vec::new(),
        }
    }

    /// The wrapped protocol state (outputs live here).
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps into the inner protocol state.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Wire bits this node's codec corrected over the run.
    pub fn corrected_bits(&self) -> u64 {
        self.corrected_bits
    }

    /// Wire words this node discarded as undecodable.
    pub fn decode_failures(&self) -> u64 {
        self.decode_failures
    }
}

impl<P: Clone, C: MessageCodec + Clone> Clone for CodedProtocol<P, C> {
    fn clone(&self) -> Self {
        // Scratch buffers hold no cross-round state; a clone starts
        // with fresh (empty) ones.
        CodedProtocol {
            inner: self.inner.clone(),
            codec: self.codec.clone(),
            corrected_bits: self.corrected_bits,
            decode_failures: self.decode_failures,
            plain_inbox: Vec::new(),
            stage: Vec::new(),
            pos: Vec::new(),
        }
    }
}

impl<P: fmt::Debug, C: MessageCodec> fmt::Debug for CodedProtocol<P, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CodedProtocol")
            .field("inner", &self.inner)
            .field("corrected_bits", &self.corrected_bits)
            .field("decode_failures", &self.decode_failures)
            .finish_non_exhaustive()
    }
}

impl<P, C> NodeProtocol for CodedProtocol<P, C>
where
    P: NodeProtocol,
    C: MessageCodec<Plain = P::Msg>,
{
    type Msg = C::Wire;

    fn on_round(
        &mut self,
        node: NodeId,
        round: usize,
        inbox: &[(NodeId, C::Wire)],
        out: &mut Outbox<'_, C::Wire>,
    ) {
        self.plain_inbox.clear();
        for (from, wire) in inbox {
            match self.codec.decode(wire) {
                Ok((plain, corrected)) => {
                    self.corrected_bits += corrected as u64;
                    self.plain_inbox.push((*from, plain));
                }
                // Undecodable = dropped: the inner protocol never
                // sees it; the reliable layer's retries recover it.
                Err(CodecError) => self.decode_failures += 1,
            }
        }
        // The engine's outbox borrows its neighbor slice from the
        // engine itself, so it stays available while we hand the inner
        // protocol a private outbox over our reusable buffers.
        let neighbors = out.neighbors();
        let needed = neighbors.iter().map(|&nb| nb + 1).max().unwrap_or(0);
        if self.pos.len() < needed {
            self.pos.resize(needed, 0);
        }
        debug_assert!(self.stage.is_empty());
        let filled = {
            let mut inner_out = Outbox::new(node, neighbors, &mut self.pos, &mut self.stage);
            self.inner
                .on_round(node, round, &self.plain_inbox, &mut inner_out);
            inner_out.index_filled()
        };
        if filled {
            // Restore the all-zero invariant of the private index.
            for &nb in neighbors {
                self.pos[nb] = 0;
            }
        }
        for (to, _, msg) in self.stage.drain(..) {
            out.send(to, self.codec.encode(&msg));
        }
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    fn on_rejoin(&mut self, node: NodeId, round: usize) {
        // Codec state (correction totals) is pure accounting; only the
        // wrapped protocol has timers to restart.
        self.inner.on_rejoin(node, round);
    }
}

impl<P, C> crate::recover::Recoverable for CodedProtocol<P, C>
where
    P: crate::recover::Recoverable,
    C: MessageCodec,
{
    fn snapshot(&self) -> Vec<u64> {
        // Correction totals travel with the snapshot so a restored run
        // keeps honest codec accounting.
        let mut words = vec![self.corrected_bits, self.decode_failures];
        words.extend(self.inner.snapshot());
        words
    }

    fn restore(&mut self, words: &[u64]) -> Result<(), crate::recover::RecoverError> {
        let (head, rest) = words
            .split_first_chunk::<2>()
            .ok_or(crate::recover::RecoverError::Truncated)?;
        self.corrected_bits = head[0];
        self.decode_failures = head[1];
        self.inner.restore(rest)
    }
}

/// Sums the per-node codec counters of a completed run.
pub fn codec_stats<P, C: MessageCodec>(nodes: &[CodedProtocol<P, C>]) -> CodecStats {
    let mut stats = CodecStats::default();
    for n in nodes {
        stats.corrected_bits += n.corrected_bits;
        stats.decode_failures += n.decode_failures;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BandwidthModel, Compact, EngineScratch, Network, RunOptions};
    use crate::fault::FaultPlan;
    use crate::topology;

    /// Max-id flood used as the inner protocol under test.
    #[derive(Debug, Clone, PartialEq)]
    struct MaxFlood {
        best: u64,
        pending: bool,
    }

    impl NodeProtocol for MaxFlood {
        type Msg = Compact;

        fn on_round(
            &mut self,
            _node: NodeId,
            round: usize,
            inbox: &[(NodeId, Compact)],
            out: &mut Outbox<'_, Compact>,
        ) {
            if round == 0 {
                self.pending = true;
            }
            for &(_, Compact(v)) in inbox {
                if v > self.best {
                    self.best = v;
                    self.pending = true;
                }
            }
            if self.pending {
                out.broadcast(Compact(self.best));
                self.pending = false;
            }
        }

        fn is_done(&self) -> bool {
            true
        }
    }

    fn flood_states(n: usize) -> Vec<MaxFlood> {
        (0..n)
            .map(|v| MaxFlood {
                best: (v as u64 * 37) % 101,
                pending: false,
            })
            .collect()
    }

    /// Test codec: triple modular redundancy over one `u64`, majority
    /// vote per bit. Corrects any flips that leave a per-bit majority.
    #[derive(Debug, Clone, Copy)]
    struct Rep3;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Rep3Word([u64; 3]);

    impl MessageSize for Rep3Word {
        fn size_bits(&self) -> usize {
            192
        }
    }

    impl FaultInjectable for Rep3Word {
        fn flip_bit(&mut self, bit: usize) {
            let bit = bit % 192;
            self.0[bit / 64] ^= 1u64 << (bit % 64);
        }
    }

    impl MessageCodec for Rep3 {
        type Plain = Compact;
        type Wire = Rep3Word;

        fn encode(&self, msg: &Compact) -> Rep3Word {
            Rep3Word([msg.0; 3])
        }

        fn decode(&self, wire: &Rep3Word) -> Result<(Compact, usize), CodecError> {
            let [a, b, c] = wire.0;
            let voted = (a & b) | (a & c) | (b & c);
            let corrected = ((a ^ voted).count_ones()
                + (b ^ voted).count_ones()
                + (c ^ voted).count_ones()) as usize;
            Ok((Compact(voted), corrected))
        }
    }

    #[test]
    fn identity_codec_matches_plain_run() {
        let g = topology::grid(4, 5);
        let n = g.node_count();
        let plain = Network::new(&g, BandwidthModel::Local)
            .run(flood_states(n), 64)
            .unwrap();
        let coded_states: Vec<_> = flood_states(n)
            .into_iter()
            .map(|s| CodedProtocol::new(s, IdentityCodec::<Compact>::new()))
            .collect();
        let coded = Network::new(&g, BandwidthModel::Local)
            .run(coded_states, 64)
            .unwrap();
        assert_eq!(plain.rounds, coded.rounds);
        assert_eq!(plain.total_messages, coded.total_messages);
        assert_eq!(plain.total_bits, coded.total_bits);
        for (p, c) in plain.nodes.iter().zip(&coded.nodes) {
            assert_eq!(p, c.inner());
        }
        assert_eq!(codec_stats(&coded.nodes), CodecStats::default());
    }

    #[test]
    fn rep3_corrects_flips_transparently() {
        let g = topology::complete(8);
        let n = g.node_count();
        let mk = || -> Vec<_> {
            flood_states(n)
                .into_iter()
                .map(|s| CodedProtocol::new(s, Rep3))
                .collect()
        };
        let clean = Network::new(&g, BandwidthModel::Local)
            .run(mk(), 64)
            .unwrap();
        // Flip rate low enough that (at this fixed seed) no bit
        // position of a word is hit in two copies: majority vote fixes
        // everything, so every flipped bit is a corrected bit.
        let plan = FaultPlan::seeded(0xC0DE).with_flips(0.0005);
        let mut scratch = EngineScratch::new();
        let opts = RunOptions::serial().with_faults(plan);
        let faulted = Network::new(&g, BandwidthModel::Local)
            .run_with_options(mk(), 64, &mut scratch, &opts)
            .unwrap();
        assert!(faulted.flipped_bits > 0, "fault plan must actually flip");
        let stats = codec_stats(&faulted.nodes);
        assert_eq!(stats.corrected_bits, faulted.flipped_bits as u64);
        assert_eq!(stats.decode_failures, 0);
        for (a, b) in clean.nodes.iter().zip(&faulted.nodes) {
            assert_eq!(a.inner(), b.inner(), "correction must be transparent");
        }
    }

    #[test]
    fn compact_codec_message_round_trips() {
        for v in [0u64, 1, 42, u64::MAX] {
            let c = Compact(v);
            assert_eq!(Compact::from_bits(c.to_bits()), c);
        }
    }
}
