//! A synchronous round-based message-passing network simulator with
//! LOCAL and CONGEST semantics.
//!
//! The distributed models of *Distributed Uniformity Testing* (Fischer,
//! Meir, Oshman; PODC 2018) are the textbook synchronous models:
//!
//! * **LOCAL** — in each round every node may send an arbitrarily large
//!   message to each neighbor; complexity is measured in rounds only.
//! * **CONGEST** — messages are limited to `O(log n)` bits per edge per
//!   round; the simulator *enforces* the budget and fails loudly on
//!   violation, and reports rounds, messages, and bits as first-class
//!   metrics.
//!
//! The crate provides:
//!
//! * [`graph`] — undirected graphs, BFS, eccentricity/diameter,
//!   connectivity.
//! * [`topology`] — generators for the standard experiment topologies
//!   (line, ring, star, complete, balanced tree, 2D grid, connected
//!   Erdős–Rényi) plus implicit million-node families (torus,
//!   hypercube, Margulis expander, line/ring/tree) that compute
//!   neighbors on the fly via [`graph::ImplicitTopology`] instead of
//!   materializing an edge list.
//! * [`engine`] — the synchronous round engine: implement
//!   [`engine::NodeProtocol`] and run it on any graph under either
//!   bandwidth model.
//! * [`algorithms`] — the building blocks the paper's protocols assume:
//!   distributed BFS-tree construction, max-id leader election,
//!   convergecast aggregation and broadcast, and Luby's MIS (on power
//!   graphs `G^r`, as the LOCAL tester requires).
//! * [`fault`] — deterministic, seeded fault injection (message drops,
//!   bit flips, node crashes) applied identically by every engine path.
//! * [`power`] — power-graph construction `G^r`.
//!
//! # Example: flooding a token
//!
//! ```rust
//! use dut_netsim::engine::{BandwidthModel, Network, NodeProtocol, Outbox};
//! use dut_netsim::graph::NodeId;
//! use dut_netsim::topology;
//!
//! #[derive(Clone)]
//! struct Flood { seen: bool }
//!
//! impl NodeProtocol for Flood {
//!     type Msg = ();
//!     fn on_round(
//!         &mut self,
//!         node: NodeId,
//!         round: usize,
//!         inbox: &[(NodeId, ())],
//!         out: &mut Outbox<'_, ()>,
//!     ) {
//!         let newly = (node == 0 && round == 0) || (!self.seen && !inbox.is_empty());
//!         if newly {
//!             self.seen = true;
//!             out.broadcast(());
//!         }
//!     }
//!     fn is_done(&self) -> bool { self.seen }
//! }
//!
//! let g = topology::line(8);
//! let mut net = Network::new(&g, BandwidthModel::Local);
//! let report = net.run(vec![Flood { seen: false }; 8], 32).unwrap();
//! // 7 hops, one round draining the last broadcast, one quiescent round.
//! assert_eq!(report.rounds, 9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algorithms;
pub mod engine;
pub mod fault;
pub mod graph;
pub mod power;
pub mod recover;
pub mod reference;
pub mod topology;

pub use engine::{BandwidthModel, EngineScratch, Network, RunOptions, RunReport};
pub use fault::{FaultInjectable, FaultPlan};
pub use graph::{Csr, DegreeStats, Graph, GraphError, ImplicitTopology, NodeId};
pub use topology::{
    Hypercube, ImplicitLine, ImplicitRing, ImplicitTree, MargulisExpander, Torus2d,
};
