//! Topology generators for experiments.
//!
//! The paper's round complexities depend on the network diameter `D`
//! (e.g. CONGEST testing in `O(D + n/(kε⁴))` rounds), so experiments
//! sweep over topologies with very different diameters: the line
//! (`D = k−1`), ring, star (`D = 2`), complete graph (`D = 1`), balanced
//! binary tree (`D = Θ(log k)`), 2D grid (`D = Θ(√k)`) and connected
//! Erdős–Rényi graphs (`D = Θ(log k)` w.h.p.).

use crate::graph::{Graph, ImplicitTopology, NodeId};
use rand::Rng;

/// A line (path) on `k` nodes: `0 — 1 — ... — k−1`. Diameter `k−1`.
///
/// `line(0)` is the empty graph and `line(1)` a singleton; both are
/// valid [`Graph`] values, and the round engine reports the empty one
/// as a typed [`crate::engine::EngineError::EmptyNetwork`] instead of
/// silently succeeding on zero nodes.
pub fn line(k: usize) -> Graph {
    let mut g = Graph::new(k);
    for i in 1..k {
        g.add_edge(i - 1, i);
    }
    g
}

/// A ring (cycle) on `k ≥ 3` nodes. Diameter `⌊k/2⌋`.
///
/// # Panics
///
/// Panics if `k < 3`.
pub fn ring(k: usize) -> Graph {
    assert!(k >= 3, "a ring needs at least 3 nodes");
    let mut g = line(k);
    g.add_edge(k - 1, 0);
    g
}

/// A star on `k ≥ 1` nodes with node 0 as the hub. Diameter 2 (0 for
/// the degenerate `star(1)`, which is a valid singleton — a hub with no
/// spokes — rather than a panic).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn star(k: usize) -> Graph {
    assert!(k >= 1, "a star needs at least 1 node (the hub)");
    let mut g = Graph::new(k);
    for i in 1..k {
        g.add_edge(0, i);
    }
    g
}

/// The complete graph on `k` nodes. Diameter 1 (`complete(1)` is a
/// valid singleton).
///
/// # Panics
///
/// Panics if the `k·(k−1)/2` edge count overflows `usize` — a sizing
/// bug caught before it turns into an absurd allocation.
pub fn complete(k: usize) -> Graph {
    if k > 1 {
        k.checked_mul(k - 1)
            .expect("complete(k): edge count overflows usize");
    }
    let mut g = Graph::new(k);
    for u in 0..k {
        for v in (u + 1)..k {
            g.add_edge(u, v);
        }
    }
    g
}

/// Two complete graphs on `⌈k/2⌉` and `⌊k/2⌋` nodes joined by a single
/// bridge edge `(0, ⌈k/2⌉)`. The canonical far-from-expander instance
/// for conductance testing: the cut at the bridge has conductance
/// `Θ(1/k²)`, so lazy random walks stay trapped on their side and the
/// endpoint collision statistic roughly doubles versus a true expander.
///
/// # Panics
///
/// Panics if `k < 4` (each side needs at least 2 nodes to be a clique)
/// or if the clique edge count overflows `usize`.
pub fn bridged_cliques(k: usize) -> Graph {
    assert!(k >= 4, "bridged_cliques needs k >= 4 (got {k})");
    let left = k.div_ceil(2);
    k.checked_mul(k - 1)
        .expect("bridged_cliques(k): edge count overflows usize");
    let mut g = Graph::new(k);
    for u in 0..left {
        for v in (u + 1)..left {
            g.add_edge(u, v);
        }
    }
    for u in left..k {
        for v in (u + 1)..k {
            g.add_edge(u, v);
        }
    }
    g.add_edge(0, left);
    g
}

/// A balanced binary tree on `k` nodes (heap layout: node `i`'s children
/// are `2i+1`, `2i+2`). Diameter `Θ(log k)`.
pub fn balanced_binary_tree(k: usize) -> Graph {
    let mut g = Graph::new(k);
    for i in 1..k {
        g.add_edge((i - 1) / 2, i);
    }
    g
}

/// A 2D grid with `rows × cols` nodes (row-major ids). Diameter
/// `rows + cols − 2`.
///
/// # Panics
///
/// Panics if either dimension is zero (`grid(r, 0)` used to silently
/// return the empty graph) or if `rows · cols` overflows `usize`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(
        rows >= 1 && cols >= 1,
        "grid dimensions must be at least 1x1 (got {rows}x{cols})"
    );
    let k = rows
        .checked_mul(cols)
        .expect("grid(rows, cols): node count overflows usize");
    let mut g = Graph::new(k);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                g.add_edge(id, id + 1);
            }
            if r + 1 < rows {
                g.add_edge(id, id + cols);
            }
        }
    }
    g
}

/// A connected Erdős–Rényi graph `G(k, p)`: edges drawn independently
/// with probability `p`, then augmented with a random spanning-path edge
/// for every node left disconnected (so the result is always connected
/// while staying close to `G(k, p)` for `p` above the connectivity
/// threshold).
///
/// # Panics
///
/// Panics unless `0 < p <= 1`.
pub fn connected_erdos_renyi<R: Rng + ?Sized>(k: usize, p: f64, rng: &mut R) -> Graph {
    assert!(p > 0.0 && p <= 1.0, "edge probability must be in (0, 1]");
    let mut g = Graph::new(k);
    for u in 0..k {
        for v in (u + 1)..k {
            if rng.gen::<f64>() < p {
                g.add_edge(u, v);
            }
        }
    }
    // Stitch components together: chain one representative per
    // component (keeps degree inflation minimal).
    let (comp, n_comp) = g.connected_components();
    if n_comp > 1 {
        // Pick one representative per component and chain them.
        let mut reps = vec![None; n_comp];
        for v in 0..k {
            if reps[comp[v]].is_none() {
                reps[comp[v]] = Some(v);
            }
        }
        let reps: Vec<usize> = reps
            .into_iter()
            .map(|r| r.expect("component has a node"))
            .collect();
        for w in reps.windows(2) {
            if !g.has_edge(w[0], w[1]) {
                g.add_edge(w[0], w[1]);
            }
        }
    }
    g
}

// ---------------------------------------------------------------------------
// Implicit families: neighbors computed on the fly, no stored edge list.
//
// At 10⁶–10⁷ nodes a materialized adjacency costs gigabytes before the
// first round runs; these families implement [`ImplicitTopology`]
// directly so the engine can ask for `neighbors(v)` in O(degree) with
// zero setup memory. Every family's neighbor order is canonical and
// documented, because the order is observable through engine runs (it
// fixes inbox order and therefore counter-keyed fault streams).
// `materialize()` (the trait default) validates symmetry/simplicity via
// `Graph::from_adjacency`, which the differential tests lean on.
// ---------------------------------------------------------------------------

/// A 2D torus (wrap-around grid) with `rows × cols` nodes, row-major
/// ids. Diameter `⌊rows/2⌋ + ⌊cols/2⌋`.
///
/// Neighbor order is up, down, left, right (wrapping), with duplicates
/// collapsed (a dimension of length 2 makes up == down) and self-edges
/// skipped (a dimension of length 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus2d {
    rows: usize,
    cols: usize,
}

impl Torus2d {
    /// Builds a `rows × cols` torus descriptor.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `rows · cols` overflows
    /// `usize`.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows >= 1 && cols >= 1,
            "torus dimensions must be at least 1x1 (got {rows}x{cols})"
        );
        rows.checked_mul(cols)
            .expect("Torus2d::new: node count overflows usize");
        Torus2d { rows, cols }
    }

    /// Row dimension.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column dimension.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

impl ImplicitTopology for Torus2d {
    fn node_count(&self) -> usize {
        self.rows * self.cols
    }

    fn max_degree(&self) -> usize {
        let per_dim = |len: usize| if len >= 3 { 2 } else { len - 1 };
        per_dim(self.rows) + per_dim(self.cols)
    }

    fn neighbors<'a>(&'a self, v: NodeId, buf: &'a mut Vec<NodeId>) -> &'a [NodeId] {
        buf.clear();
        let (r, c) = (v / self.cols, v % self.cols);
        let up = (r + self.rows - 1) % self.rows;
        let down = (r + 1) % self.rows;
        let left = (c + self.cols - 1) % self.cols;
        let right = (c + 1) % self.cols;
        for cand in [
            up * self.cols + c,
            down * self.cols + c,
            r * self.cols + left,
            r * self.cols + right,
        ] {
            if cand != v && !buf.contains(&cand) {
                buf.push(cand);
            }
        }
        buf
    }
}

/// The `dim`-dimensional hypercube on `2^dim` nodes: `u ~ v` iff their
/// ids differ in exactly one bit. Diameter `dim`.
///
/// Neighbor order flips bit 0 first: `v ^ 1, v ^ 2, …, v ^ 2^(dim−1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// Builds a `dim`-dimensional hypercube descriptor (`dim == 0` is a
    /// singleton).
    ///
    /// # Panics
    ///
    /// Panics if `2^dim` overflows `usize`.
    pub fn new(dim: u32) -> Self {
        assert!(dim < usize::BITS, "Hypercube::new: 2^{dim} overflows usize");
        Hypercube { dim }
    }

    /// Number of dimensions (= degree of every node).
    pub fn dim(&self) -> u32 {
        self.dim
    }
}

impl ImplicitTopology for Hypercube {
    fn node_count(&self) -> usize {
        1usize << self.dim
    }

    fn max_degree(&self) -> usize {
        self.dim as usize
    }

    fn neighbors<'a>(&'a self, v: NodeId, buf: &'a mut Vec<NodeId>) -> &'a [NodeId] {
        buf.clear();
        for i in 0..self.dim {
            buf.push(v ^ (1usize << i));
        }
        buf
    }
}

/// The Margulis–Gabber–Galil expander on `Z_m × Z_m` (`m = side`),
/// `m² ` nodes with id `x·m + y`. Each node connects to the eight
/// images/preimages of the two affine generators `(x ± 2y, y)`,
/// `(x ± (2y+1), y)`, `(x, y ± 2x)`, `(x, y ± (2x+1))` (mod `m`), a
/// classical constant-degree expander family — diameter `Θ(log k)` with
/// spectral gap bounded away from zero.
///
/// Neighbor order is the generator order above, with duplicates
/// collapsed and self-edges skipped (both occur for small `m`). The
/// candidate set is closed under inversion, so the relation is
/// symmetric and `materialize()` passes `Graph::from_adjacency`'s
/// symmetry check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MargulisExpander {
    side: usize,
}

impl MargulisExpander {
    /// Builds the expander descriptor on `side²` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0` or `side²` overflows `usize`.
    pub fn new(side: usize) -> Self {
        assert!(side >= 1, "MargulisExpander::new: side must be at least 1");
        side.checked_mul(side)
            .expect("MargulisExpander::new: node count overflows usize");
        MargulisExpander { side }
    }

    /// Grid side length (`node_count == side²`).
    pub fn side(&self) -> usize {
        self.side
    }
}

impl ImplicitTopology for MargulisExpander {
    fn node_count(&self) -> usize {
        self.side * self.side
    }

    fn max_degree(&self) -> usize {
        // Eight generators, but never more neighbors than other nodes.
        8.min(self.node_count().saturating_sub(1))
    }

    fn neighbors<'a>(&'a self, v: NodeId, buf: &'a mut Vec<NodeId>) -> &'a [NodeId] {
        buf.clear();
        let m = self.side;
        let (x, y) = (v / m, v % m);
        let add = |a: usize, b: usize| (a + b % m) % m;
        let sub = |a: usize, b: usize| (a + m - b % m) % m;
        for (nx, ny) in [
            (add(x, 2 * y), y),
            (add(x, 2 * y + 1), y),
            (sub(x, 2 * y), y),
            (sub(x, 2 * y + 1), y),
            (x, add(y, 2 * x)),
            (x, add(y, 2 * x + 1)),
            (x, sub(y, 2 * x)),
            (x, sub(y, 2 * x + 1)),
        ] {
            let cand = nx * m + ny;
            if cand != v && !buf.contains(&cand) {
                buf.push(cand);
            }
        }
        buf
    }
}

/// Implicit form of [`line()`]: identical node ids and neighbor order
/// (`[v−1, v+1]` clipped at the ends), so `materialize()` equals
/// `line(k)` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImplicitLine {
    /// Number of nodes.
    pub k: usize,
}

impl ImplicitTopology for ImplicitLine {
    fn node_count(&self) -> usize {
        self.k
    }

    fn max_degree(&self) -> usize {
        match self.k {
            0 | 1 => 0,
            2 => 1,
            _ => 2,
        }
    }

    fn neighbors<'a>(&'a self, v: NodeId, buf: &'a mut Vec<NodeId>) -> &'a [NodeId] {
        buf.clear();
        if v > 0 {
            buf.push(v - 1);
        }
        if v + 1 < self.k {
            buf.push(v + 1);
        }
        buf
    }
}

/// Implicit form of [`ring()`]: neighbor order matches the generator's
/// edge-insertion order (`adj[0] = [1, k−1]`, `adj[k−1] = [k−2, 0]`,
/// interior `[v−1, v+1]`), so `materialize()` equals `ring(k)` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImplicitRing {
    k: usize,
}

impl ImplicitRing {
    /// Builds a `k`-node ring descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `k < 3` (matching [`ring()`]).
    pub fn new(k: usize) -> Self {
        assert!(k >= 3, "a ring needs at least 3 nodes");
        ImplicitRing { k }
    }
}

impl ImplicitTopology for ImplicitRing {
    fn node_count(&self) -> usize {
        self.k
    }

    fn max_degree(&self) -> usize {
        2
    }

    fn neighbors<'a>(&'a self, v: NodeId, buf: &'a mut Vec<NodeId>) -> &'a [NodeId] {
        buf.clear();
        if v == 0 {
            buf.push(1);
            buf.push(self.k - 1);
        } else if v == self.k - 1 {
            buf.push(v - 1);
            buf.push(0);
        } else {
            buf.push(v - 1);
            buf.push(v + 1);
        }
        buf
    }
}

/// Implicit form of [`balanced_binary_tree()`] (heap layout): neighbor
/// order `[parent, 2v+1, 2v+2]` clipped to range, matching the
/// generator's edge-insertion order so `materialize()` equals
/// `balanced_binary_tree(k)` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImplicitTree {
    /// Number of nodes.
    pub k: usize,
}

impl ImplicitTopology for ImplicitTree {
    fn node_count(&self) -> usize {
        self.k
    }

    fn max_degree(&self) -> usize {
        match self.k {
            0 | 1 => 0,
            2 => 1,
            3 => 2,
            _ => 3,
        }
    }

    fn neighbors<'a>(&'a self, v: NodeId, buf: &'a mut Vec<NodeId>) -> &'a [NodeId] {
        buf.clear();
        if v > 0 {
            buf.push((v - 1) / 2);
        }
        for child in [2 * v + 1, 2 * v + 2] {
            if child < self.k {
                buf.push(child);
            }
        }
        buf
    }
}

/// Catalogue of named topologies, used by experiment harnesses to sweep
/// uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// [`line()`] — maximal diameter `k−1`.
    Line,
    /// [`ring`] — diameter `⌊k/2⌋`.
    Ring,
    /// [`star`] — diameter 2.
    Star,
    /// [`balanced_binary_tree`] — diameter `Θ(log k)`.
    Tree,
    /// Square-ish [`grid`] — diameter `Θ(√k)`.
    Grid,
    /// [`connected_erdos_renyi`] with `p = 2 ln k / k` — diameter
    /// `Θ(log k)` w.h.p.
    ErdosRenyi,
}

impl Topology {
    /// All catalogue topologies.
    pub const ALL: [Topology; 6] = [
        Topology::Line,
        Topology::Ring,
        Topology::Star,
        Topology::Tree,
        Topology::Grid,
        Topology::ErdosRenyi,
    ];

    /// Short machine-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Line => "line",
            Topology::Ring => "ring",
            Topology::Star => "star",
            Topology::Tree => "tree",
            Topology::Grid => "grid",
            Topology::ErdosRenyi => "erdos-renyi",
        }
    }

    /// Instantiates the topology on (roughly) `k` nodes — the grid
    /// rounds `k` down to a full rectangle.
    pub fn instantiate<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Graph {
        match self {
            Topology::Line => line(k),
            Topology::Ring => ring(k.max(3)),
            Topology::Star => star(k.max(2)),
            Topology::Tree => balanced_binary_tree(k),
            Topology::Grid => {
                let side = (k as f64).sqrt().floor().max(1.0) as usize;
                grid(side, k / side)
            }
            Topology::ErdosRenyi => {
                let p = (2.0 * (k.max(2) as f64).ln() / k.max(2) as f64).min(1.0);
                connected_erdos_renyi(k, p, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn line_shape() {
        let g = line(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.diameter(), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn ring_shape() {
        let g = ring(8);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.diameter(), 4);
        assert!(g.neighbors(0).contains(&7));
    }

    #[test]
    fn star_shape() {
        let g = star(10);
        assert_eq!(g.edge_count(), 9);
        assert_eq!(g.degree(0), 9);
        assert_eq!(g.diameter(), 2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.diameter(), 1);
    }

    #[test]
    fn bridged_cliques_shape() {
        let g = bridged_cliques(10);
        assert_eq!(g.node_count(), 10);
        // Two K5s plus the bridge.
        assert_eq!(g.edge_count(), 2 * 10 + 1);
        assert!(g.is_connected());
        assert_eq!(g.degree(0), 5); // clique-internal 4 + bridge
        assert_eq!(g.degree(5), 5);
        assert_eq!(g.degree(1), 4);
        assert_eq!(g.diameter(), 3);
    }

    #[test]
    fn bridged_cliques_odd_split() {
        let g = bridged_cliques(7);
        assert_eq!(g.node_count(), 7);
        // K4 (6 edges) + K3 (3 edges) + bridge.
        assert_eq!(g.edge_count(), 10);
        assert!(g.is_connected());
    }

    #[test]
    #[should_panic(expected = "bridged_cliques needs k >= 4")]
    fn bridged_cliques_too_small_panics() {
        let _ = bridged_cliques(3);
    }

    #[test]
    fn tree_shape() {
        let g = balanced_binary_tree(15);
        assert_eq!(g.edge_count(), 14);
        assert!(g.is_connected());
        // Depth 3 full tree: diameter 6 (leaf to leaf).
        assert_eq!(g.diameter(), 6);
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 5);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 4 * 4 + 3 * 5);
        assert_eq!(g.diameter(), 3 + 4);
    }

    #[test]
    fn erdos_renyi_always_connected() {
        let mut rng = StdRng::seed_from_u64(1);
        for k in [5usize, 20, 100] {
            // Even far below the connectivity threshold, stitching keeps
            // the output connected.
            let g = connected_erdos_renyi(k, 0.01, &mut rng);
            assert!(g.is_connected(), "k={k} disconnected");
        }
    }

    #[test]
    fn erdos_renyi_density_tracks_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let k = 200;
        let g = connected_erdos_renyi(k, 0.1, &mut rng);
        let expected = 0.1 * (k * (k - 1) / 2) as f64;
        let actual = g.edge_count() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.2,
            "edges {actual} vs expected {expected}"
        );
    }

    #[test]
    fn catalogue_instantiates_connected() {
        let mut rng = StdRng::seed_from_u64(3);
        for t in Topology::ALL {
            let g = t.instantiate(64, &mut rng);
            assert!(g.is_connected(), "{} disconnected", t.name());
            assert!(g.node_count() >= 56, "{} too small", t.name());
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn ring_too_small() {
        let _ = ring(2);
    }

    #[test]
    fn degenerate_sizes_are_valid_singletons() {
        assert_eq!(line(0).node_count(), 0);
        assert_eq!(line(1).node_count(), 1);
        let hub = star(1);
        assert_eq!(hub.node_count(), 1);
        assert_eq!(hub.edge_count(), 0);
        let k1 = complete(1);
        assert_eq!(k1.node_count(), 1);
        assert_eq!(k1.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1 node")]
    fn star_zero_panics() {
        let _ = star(0);
    }

    #[test]
    #[should_panic(expected = "at least 1x1")]
    fn grid_zero_dimension_panics() {
        let _ = grid(3, 0);
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn grid_size_overflow_panics() {
        let _ = grid(usize::MAX, 2);
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn complete_size_overflow_panics() {
        let _ = complete(usize::MAX);
    }

    #[test]
    fn implicit_line_ring_tree_match_generators() {
        for k in [0usize, 1, 2, 3, 5, 17] {
            assert_eq!(ImplicitLine { k }.materialize(), line(k), "line k={k}");
            assert_eq!(
                ImplicitTree { k }.materialize(),
                balanced_binary_tree(k),
                "tree k={k}"
            );
        }
        for k in [3usize, 4, 9, 32] {
            assert_eq!(ImplicitRing::new(k).materialize(), ring(k), "ring k={k}");
        }
    }

    #[test]
    fn torus_shape() {
        let t = Torus2d::new(4, 4);
        let g = t.materialize();
        assert_eq!(g.node_count(), 16);
        for v in 0..16 {
            assert_eq!(g.degree(v), 4, "node {v}");
        }
        assert_eq!(g.diameter(), 4);
    }

    #[test]
    fn torus_degenerate_dimensions() {
        // 1x1: a singleton, no self-loop.
        let g = Torus2d::new(1, 1).materialize();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        // 2x2: wrap-around duplicates collapse, leaving a 4-cycle.
        let g = Torus2d::new(2, 2).materialize();
        assert_eq!(g.node_count(), 4);
        for v in 0..4 {
            assert_eq!(g.degree(v), 2, "node {v}");
        }
        // 1xN: a ring seen from one row.
        let g = Torus2d::new(1, 5).materialize();
        assert_eq!(g.edge_count(), 5);
        assert!(g.is_connected());
    }

    #[test]
    fn hypercube_shape() {
        let h = Hypercube::new(4);
        let g = h.materialize();
        assert_eq!(g.node_count(), 16);
        for v in 0..16 {
            assert_eq!(g.degree(v), 4, "node {v}");
        }
        assert_eq!(g.diameter(), 4);
        // dim 0: a singleton.
        assert_eq!(Hypercube::new(0).materialize().node_count(), 1);
    }

    #[test]
    fn expander_is_connected_and_symmetric() {
        for side in [1usize, 2, 3, 5, 8] {
            // materialize() validates symmetry + simplicity internally.
            let g = MargulisExpander::new(side).materialize();
            assert_eq!(g.node_count(), side * side);
            assert!(g.is_connected(), "side={side} disconnected");
            let bound = MargulisExpander::new(side).max_degree();
            for v in 0..g.node_count() {
                assert!(g.degree(v) <= bound, "side={side} node {v}");
            }
        }
    }

    #[test]
    fn implicit_max_degree_bounds_hold() {
        let topos: Vec<(Box<dyn Fn() -> Graph>, usize)> = vec![
            (
                Box::new(|| Torus2d::new(3, 7).materialize()),
                Torus2d::new(3, 7).max_degree(),
            ),
            (
                Box::new(|| Hypercube::new(5).materialize()),
                Hypercube::new(5).max_degree(),
            ),
            (
                Box::new(|| ImplicitLine { k: 9 }.materialize()),
                ImplicitLine { k: 9 }.max_degree(),
            ),
            (
                Box::new(|| ImplicitRing::new(6).materialize()),
                ImplicitRing::new(6).max_degree(),
            ),
            (
                Box::new(|| ImplicitTree { k: 12 }.materialize()),
                ImplicitTree { k: 12 }.max_degree(),
            ),
        ];
        for (build, bound) in topos {
            let g = build();
            for v in 0..g.node_count() {
                assert!(g.degree(v) <= bound);
            }
        }
    }
}
