//! Topology generators for experiments.
//!
//! The paper's round complexities depend on the network diameter `D`
//! (e.g. CONGEST testing in `O(D + n/(kε⁴))` rounds), so experiments
//! sweep over topologies with very different diameters: the line
//! (`D = k−1`), ring, star (`D = 2`), complete graph (`D = 1`), balanced
//! binary tree (`D = Θ(log k)`), 2D grid (`D = Θ(√k)`) and connected
//! Erdős–Rényi graphs (`D = Θ(log k)` w.h.p.).

use crate::graph::Graph;
use rand::Rng;

/// A line (path) on `k` nodes: `0 — 1 — ... — k−1`. Diameter `k−1`.
pub fn line(k: usize) -> Graph {
    let mut g = Graph::new(k);
    for i in 1..k {
        g.add_edge(i - 1, i);
    }
    g
}

/// A ring (cycle) on `k ≥ 3` nodes. Diameter `⌊k/2⌋`.
///
/// # Panics
///
/// Panics if `k < 3`.
pub fn ring(k: usize) -> Graph {
    assert!(k >= 3, "a ring needs at least 3 nodes");
    let mut g = line(k);
    g.add_edge(k - 1, 0);
    g
}

/// A star on `k ≥ 2` nodes with node 0 as the hub. Diameter 2.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn star(k: usize) -> Graph {
    assert!(k >= 2, "a star needs at least 2 nodes");
    let mut g = Graph::new(k);
    for i in 1..k {
        g.add_edge(0, i);
    }
    g
}

/// The complete graph on `k` nodes. Diameter 1.
pub fn complete(k: usize) -> Graph {
    let mut g = Graph::new(k);
    for u in 0..k {
        for v in (u + 1)..k {
            g.add_edge(u, v);
        }
    }
    g
}

/// A balanced binary tree on `k` nodes (heap layout: node `i`'s children
/// are `2i+1`, `2i+2`). Diameter `Θ(log k)`.
pub fn balanced_binary_tree(k: usize) -> Graph {
    let mut g = Graph::new(k);
    for i in 1..k {
        g.add_edge((i - 1) / 2, i);
    }
    g
}

/// A 2D grid with `rows × cols` nodes (row-major ids). Diameter
/// `rows + cols − 2`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                g.add_edge(id, id + 1);
            }
            if r + 1 < rows {
                g.add_edge(id, id + cols);
            }
        }
    }
    g
}

/// A connected Erdős–Rényi graph `G(k, p)`: edges drawn independently
/// with probability `p`, then augmented with a random spanning-path edge
/// for every node left disconnected (so the result is always connected
/// while staying close to `G(k, p)` for `p` above the connectivity
/// threshold).
///
/// # Panics
///
/// Panics unless `0 < p <= 1`.
pub fn connected_erdos_renyi<R: Rng + ?Sized>(k: usize, p: f64, rng: &mut R) -> Graph {
    assert!(p > 0.0 && p <= 1.0, "edge probability must be in (0, 1]");
    let mut g = Graph::new(k);
    for u in 0..k {
        for v in (u + 1)..k {
            if rng.gen::<f64>() < p {
                g.add_edge(u, v);
            }
        }
    }
    // Stitch components together: chain one representative per
    // component (keeps degree inflation minimal).
    let (comp, n_comp) = g.connected_components();
    if n_comp > 1 {
        // Pick one representative per component and chain them.
        let mut reps = vec![None; n_comp];
        for v in 0..k {
            if reps[comp[v]].is_none() {
                reps[comp[v]] = Some(v);
            }
        }
        let reps: Vec<usize> = reps
            .into_iter()
            .map(|r| r.expect("component has a node"))
            .collect();
        for w in reps.windows(2) {
            if !g.has_edge(w[0], w[1]) {
                g.add_edge(w[0], w[1]);
            }
        }
    }
    g
}

/// Catalogue of named topologies, used by experiment harnesses to sweep
/// uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// [`line()`] — maximal diameter `k−1`.
    Line,
    /// [`ring`] — diameter `⌊k/2⌋`.
    Ring,
    /// [`star`] — diameter 2.
    Star,
    /// [`balanced_binary_tree`] — diameter `Θ(log k)`.
    Tree,
    /// Square-ish [`grid`] — diameter `Θ(√k)`.
    Grid,
    /// [`connected_erdos_renyi`] with `p = 2 ln k / k` — diameter
    /// `Θ(log k)` w.h.p.
    ErdosRenyi,
}

impl Topology {
    /// All catalogue topologies.
    pub const ALL: [Topology; 6] = [
        Topology::Line,
        Topology::Ring,
        Topology::Star,
        Topology::Tree,
        Topology::Grid,
        Topology::ErdosRenyi,
    ];

    /// Short machine-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Line => "line",
            Topology::Ring => "ring",
            Topology::Star => "star",
            Topology::Tree => "tree",
            Topology::Grid => "grid",
            Topology::ErdosRenyi => "erdos-renyi",
        }
    }

    /// Instantiates the topology on (roughly) `k` nodes — the grid
    /// rounds `k` down to a full rectangle.
    pub fn instantiate<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Graph {
        match self {
            Topology::Line => line(k),
            Topology::Ring => ring(k.max(3)),
            Topology::Star => star(k.max(2)),
            Topology::Tree => balanced_binary_tree(k),
            Topology::Grid => {
                let side = (k as f64).sqrt().floor().max(1.0) as usize;
                grid(side, k / side)
            }
            Topology::ErdosRenyi => {
                let p = (2.0 * (k.max(2) as f64).ln() / k.max(2) as f64).min(1.0);
                connected_erdos_renyi(k, p, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn line_shape() {
        let g = line(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.diameter(), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn ring_shape() {
        let g = ring(8);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.diameter(), 4);
        assert!(g.neighbors(0).contains(&7));
    }

    #[test]
    fn star_shape() {
        let g = star(10);
        assert_eq!(g.edge_count(), 9);
        assert_eq!(g.degree(0), 9);
        assert_eq!(g.diameter(), 2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.diameter(), 1);
    }

    #[test]
    fn tree_shape() {
        let g = balanced_binary_tree(15);
        assert_eq!(g.edge_count(), 14);
        assert!(g.is_connected());
        // Depth 3 full tree: diameter 6 (leaf to leaf).
        assert_eq!(g.diameter(), 6);
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 5);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 4 * 4 + 3 * 5);
        assert_eq!(g.diameter(), 3 + 4);
    }

    #[test]
    fn erdos_renyi_always_connected() {
        let mut rng = StdRng::seed_from_u64(1);
        for k in [5usize, 20, 100] {
            // Even far below the connectivity threshold, stitching keeps
            // the output connected.
            let g = connected_erdos_renyi(k, 0.01, &mut rng);
            assert!(g.is_connected(), "k={k} disconnected");
        }
    }

    #[test]
    fn erdos_renyi_density_tracks_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let k = 200;
        let g = connected_erdos_renyi(k, 0.1, &mut rng);
        let expected = 0.1 * (k * (k - 1) / 2) as f64;
        let actual = g.edge_count() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.2,
            "edges {actual} vs expected {expected}"
        );
    }

    #[test]
    fn catalogue_instantiates_connected() {
        let mut rng = StdRng::seed_from_u64(3);
        for t in Topology::ALL {
            let g = t.instantiate(64, &mut rng);
            assert!(g.is_connected(), "{} disconnected", t.name());
            assert!(g.node_count() >= 56, "{} too small", t.name());
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn ring_too_small() {
        let _ = ring(2);
    }
}
