//! Crash-recovery snapshots for protocol state.
//!
//! The fault layer's rejoin schedule ([`crate::fault::FaultPlan`]
//! `rejoins`) models *stable-storage* reboots: a node comes back with
//! exactly the local state it crashed with, because the engine never
//! clears node state while a node is down. This module is the
//! complementary piece for state that must survive the **process**, not
//! just the simulated node: a [`Recoverable`] protocol can serialize
//! its per-node local state to a flat word vector, and a set of
//! snapshots round-trips through the same append-only, torn-tail-safe
//! line discipline the Monte-Carlo checkpoint files use
//! (`dut_core::checkpoint`): one self-framing record per line, a length
//! field up front, decode errors typed rather than panicking, and a
//! torn final line detected instead of misparsed.
//!
//! The encoding is deliberately dumb — hex words, no schema evolution —
//! because snapshots live exactly as long as one run: they are written
//! by a driver that wants kill-resume (the soak harness) or phase
//! hand-off (`run_robust`), and read back by the same binary.

use std::fmt;

/// Protocol state that can be snapshot to (and restored from) a flat
/// `u64` word vector.
///
/// # Contract
///
/// `restore` after `snapshot` must reproduce a state that behaves
/// identically: for any round schedule, the restored node sends the
/// same messages and reaches `is_done` at the same round as the
/// original would have. Implementations must consume exactly the words
/// they wrote (wrappers append after their inner state), and must
/// return a typed [`RecoverError`] — never panic — on malformed input,
/// since snapshot bytes may come back through a torn file.
pub trait Recoverable {
    /// Serializes this node's local state.
    fn snapshot(&self) -> Vec<u64>;

    /// Restores this node's local state from `words` (all of them).
    ///
    /// # Errors
    ///
    /// [`RecoverError::Truncated`] when `words` ends early,
    /// [`RecoverError::Malformed`] when a field decodes to an
    /// impossible value (e.g. a bool word that is neither 0 nor 1).
    fn restore(&mut self, words: &[u64]) -> Result<(), RecoverError>;
}

/// Typed failure of a snapshot decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// The word stream ended before the state was fully decoded.
    Truncated,
    /// A field held a value outside its domain.
    Malformed {
        /// Which field was malformed.
        field: &'static str,
    },
    /// A snapshot line failed to parse (bad frame, bad hex, or a word
    /// count that disagrees with the length field).
    BadLine {
        /// 0-based line number within the snapshot text.
        line: usize,
    },
    /// The snapshot text holds state for a different node count.
    NodeCountMismatch {
        /// Nodes the snapshot was taken over.
        snapshot: usize,
        /// Nodes the caller wants to restore.
        expected: usize,
    },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Truncated => write!(f, "snapshot word stream ended early"),
            RecoverError::Malformed { field } => {
                write!(f, "snapshot field `{field}` holds an impossible value")
            }
            RecoverError::BadLine { line } => {
                write!(f, "snapshot line {line} is not a valid record")
            }
            RecoverError::NodeCountMismatch { snapshot, expected } => write!(
                f,
                "snapshot holds {snapshot} nodes but {expected} were expected"
            ),
        }
    }
}

impl std::error::Error for RecoverError {}

/// A cursor over a snapshot word stream with typed decode errors; the
/// building block `restore` implementations use.
#[derive(Debug)]
pub struct WordReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> WordReader<'a> {
    /// Starts reading `words` from the front.
    pub fn new(words: &'a [u64]) -> Self {
        WordReader { words, pos: 0 }
    }

    /// Next raw word.
    ///
    /// # Errors
    ///
    /// [`RecoverError::Truncated`] at end of stream.
    pub fn word(&mut self) -> Result<u64, RecoverError> {
        let w = *self.words.get(self.pos).ok_or(RecoverError::Truncated)?;
        self.pos += 1;
        Ok(w)
    }

    /// Next word as a `usize`.
    ///
    /// # Errors
    ///
    /// [`RecoverError::Truncated`] at end of stream.
    pub fn len(&mut self, field: &'static str) -> Result<usize, RecoverError> {
        usize::try_from(self.word()?).map_err(|_| RecoverError::Malformed { field })
    }

    /// Next word as a bool (must be 0 or 1).
    ///
    /// # Errors
    ///
    /// [`RecoverError::Truncated`] at end of stream;
    /// [`RecoverError::Malformed`] on any word other than 0/1.
    pub fn flag(&mut self, field: &'static str) -> Result<bool, RecoverError> {
        match self.word()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(RecoverError::Malformed { field }),
        }
    }

    /// Next word as `Option<usize>` (0 = `None`, `v+1` = `Some(v)`).
    ///
    /// # Errors
    ///
    /// [`RecoverError::Truncated`] at end of stream.
    pub fn opt(&mut self, field: &'static str) -> Result<Option<usize>, RecoverError> {
        match self.word()? {
            0 => Ok(None),
            v => usize::try_from(v - 1)
                .map(Some)
                .map_err(|_| RecoverError::Malformed { field }),
        }
    }

    /// Whether every word has been consumed.
    pub fn exhausted(&self) -> bool {
        self.pos == self.words.len()
    }
}

/// Encodes `Option<usize>` the way [`WordReader::opt`] decodes it.
pub fn opt_word(v: Option<usize>) -> u64 {
    match v {
        None => 0,
        Some(v) => v as u64 + 1,
    }
}

/// Snapshots every node of a protocol vector.
pub fn snapshot_nodes<P: Recoverable>(nodes: &[P]) -> Vec<Vec<u64>> {
    nodes.iter().map(Recoverable::snapshot).collect()
}

/// Restores every node of a protocol vector from `snapshots`.
///
/// # Errors
///
/// [`RecoverError::NodeCountMismatch`] when the lengths differ; the
/// first per-node decode error otherwise. Nodes before the failing one
/// are already restored when an error is returned.
pub fn restore_nodes<P: Recoverable>(
    nodes: &mut [P],
    snapshots: &[Vec<u64>],
) -> Result<(), RecoverError> {
    if nodes.len() != snapshots.len() {
        return Err(RecoverError::NodeCountMismatch {
            snapshot: snapshots.len(),
            expected: nodes.len(),
        });
    }
    for (node, words) in nodes.iter_mut().zip(snapshots) {
        node.restore(words)?;
    }
    Ok(())
}

/// Serializes per-node snapshots as text: one `ns/state` record per
/// node, `ns/state <node> <word-count> <hex words…>\n`, following the
/// checkpoint-file discipline (self-framing lines, length up front, a
/// final newline terminating the last record).
pub fn encode_snapshots(snapshots: &[Vec<u64>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (node, words) in snapshots.iter().enumerate() {
        write!(out, "ns/state {node} {}", words.len()).expect("string write");
        for w in words {
            write!(out, " {w:x}").expect("string write");
        }
        out.push('\n');
    }
    out
}

/// Parses text written by [`encode_snapshots`]. A torn final line (no
/// trailing newline — the writer died mid-record) is dropped, exactly
/// like the Monte-Carlo checkpoint's torn-tail rule; any other
/// malformation is a typed error. Returns the per-node word vectors and
/// how many whole records survived.
///
/// # Errors
///
/// [`RecoverError::BadLine`] naming the first unparseable complete
/// line.
pub fn decode_snapshots(text: &str) -> Result<Vec<Vec<u64>>, RecoverError> {
    let whole = match text.rfind('\n') {
        Some(last) => &text[..=last],
        None => "", // a single torn line: nothing durable yet
    };
    let mut out = Vec::new();
    for (line_no, line) in whole.lines().enumerate() {
        let bad = || RecoverError::BadLine { line: line_no };
        let mut fields = line.split(' ');
        if fields.next() != Some("ns/state") {
            return Err(bad());
        }
        let node: usize = fields.next().and_then(|f| f.parse().ok()).ok_or_else(bad)?;
        if node != line_no {
            return Err(bad());
        }
        let count: usize = fields.next().and_then(|f| f.parse().ok()).ok_or_else(bad)?;
        let words: Vec<u64> = fields
            .map(|f| u64::from_str_radix(f, 16))
            .collect::<Result<_, _>>()
            .map_err(|_| bad())?;
        if words.len() != count {
            return Err(bad());
        }
        out.push(words);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Toy {
        acc: u64,
        ready: bool,
        parent: Option<usize>,
        seen: Vec<u64>,
    }

    impl Recoverable for Toy {
        fn snapshot(&self) -> Vec<u64> {
            let mut w = vec![
                self.acc,
                u64::from(self.ready),
                opt_word(self.parent),
                self.seen.len() as u64,
            ];
            w.extend(&self.seen);
            w
        }

        fn restore(&mut self, words: &[u64]) -> Result<(), RecoverError> {
            let mut r = WordReader::new(words);
            self.acc = r.word()?;
            self.ready = r.flag("ready")?;
            self.parent = r.opt("parent")?;
            let n = r.len("seen")?;
            self.seen.clear();
            for _ in 0..n {
                self.seen.push(r.word()?);
            }
            if !r.exhausted() {
                return Err(RecoverError::Malformed { field: "trailer" });
            }
            Ok(())
        }
    }

    fn toys() -> Vec<Toy> {
        vec![
            Toy {
                acc: 7,
                ready: true,
                parent: None,
                seen: vec![1, 2, 3],
            },
            Toy {
                acc: u64::MAX,
                ready: false,
                parent: Some(0),
                seen: vec![],
            },
        ]
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let original = toys();
        let snaps = snapshot_nodes(&original);
        let mut blank = vec![
            Toy {
                acc: 0,
                ready: false,
                parent: None,
                seen: vec![9; 9],
            };
            2
        ];
        restore_nodes(&mut blank, &snaps).unwrap();
        assert_eq!(blank, original);
    }

    #[test]
    fn truncated_words_are_typed() {
        let snaps = snapshot_nodes(&toys());
        let mut cut = snaps[0].clone();
        cut.pop();
        let mut t = toys().remove(0);
        assert_eq!(t.restore(&cut), Err(RecoverError::Truncated));
    }

    #[test]
    fn malformed_flag_is_typed() {
        let mut snap = snapshot_nodes(&toys()).remove(0);
        snap[1] = 2; // `ready` must be 0/1
        let mut t = toys().remove(0);
        assert_eq!(
            t.restore(&snap),
            Err(RecoverError::Malformed { field: "ready" })
        );
    }

    #[test]
    fn text_round_trip_and_torn_tail() {
        let snaps = snapshot_nodes(&toys());
        let text = encode_snapshots(&snaps);
        assert_eq!(decode_snapshots(&text).unwrap(), snaps);

        // Tearing the final line drops that record, silently — the
        // writer died mid-append, same rule as the checkpoint file.
        let torn = &text[..text.len() - 3];
        let partial = decode_snapshots(torn).unwrap();
        assert_eq!(partial, snaps[..1]);

        // A malformed *complete* line is a typed error, not a panic.
        let mangled = text.replace("ns/state 1", "ns/state x");
        assert_eq!(
            decode_snapshots(&mangled),
            Err(RecoverError::BadLine { line: 1 })
        );
        // A word-count lie is caught by the length field.
        let lying = "ns/state 0 5 1 2\n";
        assert_eq!(
            decode_snapshots(lying),
            Err(RecoverError::BadLine { line: 0 })
        );
    }

    #[test]
    fn node_count_mismatch_is_typed() {
        let snaps = snapshot_nodes(&toys());
        let mut one = toys()[..1].to_vec();
        assert_eq!(
            restore_nodes(&mut one, &snaps),
            Err(RecoverError::NodeCountMismatch {
                snapshot: 2,
                expected: 1
            })
        );
    }
}
