//! Deterministic, seeded fault injection for the round engine.
//!
//! A [`FaultPlan`] describes a stochastic channel/process fault model —
//! per-message drop probability, per-bit flip probability (a binary
//! symmetric channel), and an optional node-crash schedule — that the
//! engine applies while delivering messages. The plan travels in
//! [`crate::engine::RunOptions`], so the same protocol code runs
//! faulted or fault-free without modification.
//!
//! # Determinism
//!
//! Every fault decision is drawn from a dedicated keyed counter stream:
//! a 64-bit block derived by a splitmix64-style mixer from
//! `(seed, lane, round, from, to, message-index, bit-index)`, where
//! `message-index` numbers the messages a node pushes over one directed
//! edge within one round, in send order. The stream is *stateless* —
//! no generator advances — so the decision for a given message depends
//! only on its coordinates, never on evaluation order. That is what
//! lets the flat serial engine, the parallel path (which meters a
//! merged buffer), and the naive reference engine agree bit-for-bit on
//! the same plan, and what makes faulted runs resumable: re-running any
//! prefix of rounds reproduces the same faults.
//!
//! Protocol RNGs are untouched: fault randomness is keyed by
//! [`FaultPlan::seed`] alone, so a faulted run with `drop_prob = 0`,
//! `flip_prob = 0` and no crashes is bit-identical to an unfaulted run
//! (the engine routes [`FaultPlan::none`] to the unfaulted code paths
//! outright).
//!
//! # Semantics
//!
//! * The *sender* pays for every message it stages: metering, CONGEST
//!   budget enforcement, and `total_bits` all see the original message.
//!   Faults act on delivery only, mirroring a physical channel.
//! * A dropped message simply never arrives; `dropped_messages` on the
//!   [`crate::engine::RunReport`] counts it.
//! * Bit flips are i.i.d. per wire bit ([`MessageSize::size_bits`] bits
//!   per message); each flip calls [`FaultInjectable::flip_bit`] on the
//!   in-flight copy. `flipped_bits` counts them.
//! * A node crashed at round `c` executes no round ≥ `c` while it is
//!   down: it is skipped by the scheduler, counts as done for
//!   quiescence (unless a rejoin is still pending), and messages that
//!   would be delivered to it while down are dropped (and counted).
//! * A rejoin scheduled at round `j > c` brings the node back with
//!   *stable-storage* semantics: its local protocol state is exactly
//!   what it was when it crashed (the engine never clears it), it
//!   missed every message delivered while it was down, and starting at
//!   round `j` it executes again and can receive. The engine calls
//!   [`crate::engine::NodeProtocol::on_rejoin`] once, at round `j`
//!   before that round's `on_round`, so protocols can restart timers or
//!   re-announce state. Crash/rejoin pairs may repeat (crash again
//!   after a rejoin); the liveness query [`FaultPlan::crashed`] resolves
//!   the latest event at or before the queried round.

use crate::engine::{Compact, MessageSize};
use crate::graph::NodeId;

/// Lane constants separating the drop and flip decision streams, so a
/// message's drop draw never correlates with its bit-flip draws.
const LANE_DROP: u64 = 0x9E37_79B9_7F4A_7C15;
const LANE_FLIP: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// The splitmix64 finalizer: an invertible 64-bit mixer with full
/// avalanche, used here as the block function of the keyed counter
/// stream.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Maps a 64-bit word to a uniform `f64` in `[0, 1)` using the top 53
/// bits (the standard exact construction).
#[inline]
fn u01(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A deterministic fault model for one run. See the [module
/// docs](self) for semantics and the determinism argument.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Keys the fault stream. Two runs with equal seeds (and equal
    /// protocol behavior) suffer identical faults; the seed is
    /// independent of any protocol RNG.
    pub seed: u64,
    /// Probability that a message is dropped in transit, per message.
    pub drop_prob: f64,
    /// Probability that each wire bit of a delivered message is
    /// flipped, independently (binary symmetric channel).
    pub flip_prob: f64,
    /// Crash schedule: `(node, round)` pairs; the node executes no
    /// round ≥ `round` while down (see `rejoins`).
    pub crashes: Vec<(NodeId, usize)>,
    /// Rejoin schedule: `(node, round)` pairs; a node down because of
    /// an earlier crash comes back at `round` with its pre-crash local
    /// state (stable storage) and executes every round ≥ `round` until
    /// a later crash, if any. A rejoin with no earlier crash is inert.
    pub rejoins: Vec<(NodeId, usize)>,
}

impl FaultPlan {
    /// The fault-free plan. The engine recognizes it and runs the
    /// plain, unfaulted code paths, so results are bit-identical to a
    /// run without any plan.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            flip_prob: 0.0,
            crashes: Vec::new(),
            rejoins: Vec::new(),
        }
    }

    /// A plan keyed by `seed` with no faults enabled yet; combine with
    /// the `with_*` builders.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Sets the per-message drop probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_drops(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability {p} not in [0, 1]"
        );
        self.drop_prob = p;
        self
    }

    /// Sets the per-bit flip probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_flips(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "flip probability {p} not in [0, 1]"
        );
        self.flip_prob = p;
        self
    }

    /// Schedules `node` to crash at `round` (it executes no round ≥
    /// `round` until a later rejoin, if any).
    pub fn with_crash(mut self, node: NodeId, round: usize) -> Self {
        self.crashes.push((node, round));
        self
    }

    /// Schedules `node` to rejoin at `round` after an earlier crash: it
    /// resumes execution at `round` with its pre-crash local state.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no crash of `node` strictly before
    /// `round` that this rejoin could answer — a dangling rejoin is a
    /// schedule bug, not a fault model.
    pub fn with_rejoin(mut self, node: NodeId, round: usize) -> Self {
        assert!(
            self.crashes.iter().any(|&(v, c)| v == node && c < round),
            "rejoin of node {node} at round {round} has no earlier crash"
        );
        self.rejoins.push((node, round));
        self
    }

    /// Whether the plan injects no faults at all (the seed is ignored:
    /// a seeded but all-zero plan is still fault-free).
    pub fn is_none(&self) -> bool {
        self.drop_prob == 0.0
            && self.flip_prob == 0.0
            && self.crashes.is_empty()
            && self.rejoins.is_empty()
    }

    /// Whether `node` is down at `round`: its latest crash/rejoin event
    /// at or before `round` is a crash (a rejoin at the same round as a
    /// crash wins — the node never misses a round). With an empty
    /// rejoin schedule this is exactly the old permanent-crash query.
    pub fn crashed(&self, node: NodeId, round: usize) -> bool {
        let last_crash = self
            .crashes
            .iter()
            .filter(|&&(v, c)| v == node && c <= round)
            .map(|&(_, c)| c)
            .max();
        match last_crash {
            None => false,
            Some(c) => !self
                .rejoins
                .iter()
                .any(|&(v, j)| v == node && j >= c && j <= round),
        }
    }

    /// Whether `node` comes back to life exactly at `round`: a
    /// scheduled rejoin that ends a real outage. The engines call the
    /// [`crate::engine::NodeProtocol::on_rejoin`] hook at these
    /// coordinates, once per rejoin, in every execution mode.
    pub fn rejoins_at(&self, node: NodeId, round: usize) -> bool {
        round > 0
            && self.rejoins.iter().any(|&(v, j)| v == node && j == round)
            && self.crashed(node, round - 1)
            && !self.crashed(node, round)
    }

    /// Whether a rejoin of `node` is scheduled strictly after `round`.
    /// The quiescence checks use this: a down node with a pending
    /// rejoin is a future wake-up, not a terminated one.
    pub fn will_rejoin(&self, node: NodeId, round: usize) -> bool {
        self.rejoins.iter().any(|&(v, j)| v == node && j > round)
    }

    /// The earliest crash or rejoin round strictly after `round`, if
    /// any. Sparse-activity stepping fast-forwards to this round when
    /// nothing is in flight: between schedule events, silent-stable
    /// nodes cannot change the done-set.
    pub fn next_event_after(&self, round: usize) -> Option<usize> {
        self.crashes
            .iter()
            .chain(self.rejoins.iter())
            .map(|&(_, r)| r)
            .filter(|&r| r > round)
            .min()
    }

    /// Crash entries that took effect within a run of `rounds` rounds.
    pub(crate) fn effective_crashes(&self, rounds: usize) -> usize {
        self.crashes.iter().filter(|&&(_, r)| r < rounds).count()
    }

    /// Rejoin entries that took effect within a run of `rounds` rounds.
    pub(crate) fn effective_rejoins(&self, rounds: usize) -> usize {
        self.rejoins
            .iter()
            .filter(|&&(v, j)| j < rounds && self.rejoins_at(v, j))
            .count()
    }

    /// Total rounds spent down by nodes whose outage ended in a rejoin
    /// within a run of `rounds` rounds — the run's aggregate recovery
    /// time (each rejoin contributes `rejoin_round - crash_round`).
    pub(crate) fn downtime_rounds(&self, rounds: usize) -> usize {
        self.rejoins
            .iter()
            .filter(|&&(v, j)| j < rounds && self.rejoins_at(v, j))
            .map(|&(v, j)| {
                let c = self
                    .crashes
                    .iter()
                    .filter(|&&(u, c)| u == v && c < j)
                    .map(|&(_, c)| c)
                    .max()
                    .expect("rejoins_at implies an earlier crash");
                j - c
            })
            .sum()
    }

    /// Longest contiguous outage any node recovers from: the maximum
    /// `rejoin_round - crash_round` gap over the plan's rejoin
    /// schedule. Permanent crashes (no rejoin) are not counted — no
    /// finite retry budget outlasts them, and the reliable primitives
    /// already account them as failures. Retry policies can be widened
    /// to survive every scheduled outage with
    /// [`RetryPolicy::allowing_outage`](crate::algorithms::reliable::RetryPolicy::allowing_outage).
    pub fn max_outage_rounds(&self) -> usize {
        self.rejoins
            .iter()
            .filter(|&&(v, j)| self.rejoins_at(v, j))
            .map(|&(v, j)| {
                let c = self
                    .crashes
                    .iter()
                    .filter(|&&(u, c)| u == v && c < j)
                    .map(|&(_, c)| c)
                    .max()
                    .expect("rejoins_at implies an earlier crash");
                j - c
            })
            .max()
            .unwrap_or(0)
    }

    /// One block of the keyed counter stream. Absorption is positional
    /// (each coordinate passes through the mixer before the next is
    /// folded in), so permuted coordinates produce unrelated blocks.
    #[inline]
    fn word(
        &self,
        lane: u64,
        round: usize,
        from: NodeId,
        to: NodeId,
        idx: usize,
        extra: u64,
    ) -> u64 {
        let mut h = mix(self.seed ^ lane);
        h = mix(h.wrapping_add(round as u64));
        h = mix(h ^ (from as u64));
        h = mix(h ^ (to as u64));
        h = mix(h ^ (idx as u64));
        mix(h ^ extra)
    }

    /// Applies channel faults to the `idx`-th message node `from` sends
    /// to `to` in `round`. Returns `None` if the message is dropped
    /// (including delivery to a crashed node), otherwise the number of
    /// bits flipped in place.
    ///
    /// Metering happens *before* this call: the sender is charged for
    /// the original message whether or not it survives the channel.
    pub fn apply<M: MessageSize + FaultInjectable>(
        &self,
        round: usize,
        from: NodeId,
        to: NodeId,
        idx: usize,
        msg: &mut M,
    ) -> Option<u32> {
        // Messages sent in `round` are delivered at `round + 1`; a
        // receiver crashed by then never processes them.
        if self.crashed(to, round + 1) {
            return None;
        }
        if self.drop_prob > 0.0
            && u01(self.word(LANE_DROP, round, from, to, idx, 0)) < self.drop_prob
        {
            return None;
        }
        let mut flips = 0u32;
        if self.flip_prob > 0.0 {
            // Bit count fixed up front: flips must not change how many
            // draws this message consumes (variable-width encodings can
            // shrink under flips).
            let bits = msg.size_bits();
            for b in 0..bits {
                if u01(self.word(LANE_FLIP, round, from, to, idx, b as u64)) < self.flip_prob {
                    msg.flip_bit(b);
                    flips += 1;
                }
            }
        }
        Some(flips)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Messages that can be corrupted bit-wise by the fault layer.
///
/// Running under [`crate::engine::RunOptions`] (which carries a
/// [`FaultPlan`]) requires the protocol's message type to implement
/// this; the plain `run`/`run_with_scratch` entry points do not.
///
/// `flip_bit(b)` flips wire bit `b`, where `b` is drawn below
/// [`MessageSize::size_bits`] *as measured before any flip of this
/// message*. Implementations must be deterministic; when earlier flips
/// shrink a variable-width encoding, out-of-range `b` may be treated as
/// a no-op or flipped at the raw position — either is fine as long as
/// it is a pure function of `(message value, b)`.
pub trait FaultInjectable {
    /// Flips wire bit `bit` of this message in place.
    fn flip_bit(&mut self, bit: usize);
}

impl FaultInjectable for () {
    fn flip_bit(&mut self, _bit: usize) {
        // The unit message carries no information; its 1 wire bit is
        // pure framing.
    }
}

impl FaultInjectable for bool {
    fn flip_bit(&mut self, _bit: usize) {
        *self = !*self;
    }
}

impl FaultInjectable for u32 {
    fn flip_bit(&mut self, bit: usize) {
        *self ^= 1u32 << (bit % 32);
    }
}

impl FaultInjectable for u64 {
    fn flip_bit(&mut self, bit: usize) {
        *self ^= 1u64 << (bit % 64);
    }
}

impl FaultInjectable for Compact {
    fn flip_bit(&mut self, bit: usize) {
        self.0 ^= 1u64 << (bit % 64);
    }
}

impl<T: MessageSize + FaultInjectable> FaultInjectable for Vec<T> {
    fn flip_bit(&mut self, mut bit: usize) {
        for item in self.iter_mut() {
            let s = item.size_bits();
            if bit < s {
                item.flip_bit(bit);
                return;
            }
            bit -= s;
        }
        // Empty vectors meter as 1 framing bit; nothing to corrupt.
    }
}

impl<A, B> FaultInjectable for (A, B)
where
    A: MessageSize + FaultInjectable,
    B: FaultInjectable,
{
    fn flip_bit(&mut self, bit: usize) {
        let a_bits = self.0.size_bits();
        if bit < a_bits {
            self.0.flip_bit(bit);
        } else {
            self.1.flip_bit(bit - a_bits);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        // The seed alone does not make a plan faulty.
        assert!(FaultPlan::seeded(42).is_none());
        assert!(!FaultPlan::seeded(42).with_drops(0.1).is_none());
        assert!(!FaultPlan::seeded(42).with_flips(0.1).is_none());
        assert!(!FaultPlan::seeded(42).with_crash(0, 3).is_none());
    }

    #[test]
    fn stream_is_stateless_and_order_independent() {
        let plan = FaultPlan::seeded(7).with_drops(0.5);
        let a: Vec<u64> = (0..32)
            .map(|i| plan.word(LANE_DROP, 3, 1, 2, i, 0))
            .collect();
        // Re-evaluating in any order reproduces the same blocks.
        let b: Vec<u64> = (0..32)
            .rev()
            .map(|i| plan.word(LANE_DROP, 3, 1, 2, i, 0))
            .collect();
        let b_rev: Vec<u64> = b.into_iter().rev().collect();
        assert_eq!(a, b_rev);
    }

    #[test]
    fn coordinates_decorrelate() {
        let plan = FaultPlan::seeded(7);
        // Swapping from/to, or shifting the same delta between round
        // and idx, must not collide.
        assert_ne!(
            plan.word(LANE_DROP, 0, 1, 2, 0, 0),
            plan.word(LANE_DROP, 0, 2, 1, 0, 0)
        );
        assert_ne!(
            plan.word(LANE_DROP, 1, 1, 2, 0, 0),
            plan.word(LANE_DROP, 0, 1, 2, 1, 0)
        );
        assert_ne!(
            plan.word(LANE_DROP, 0, 1, 2, 0, 0),
            plan.word(LANE_FLIP, 0, 1, 2, 0, 0)
        );
    }

    #[test]
    fn u01_stays_in_unit_interval() {
        let plan = FaultPlan::seeded(0xABCD);
        for i in 0..1000 {
            let x = u01(plan.word(LANE_FLIP, i, 0, 1, 0, 0));
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan::seeded(11).with_drops(0.25);
        let mut dropped = 0;
        let trials = 20_000;
        for i in 0..trials {
            let mut msg = 0u64;
            if plan.apply(i, 0, 1, 0, &mut msg).is_none() {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.02, "drop rate {rate}");
    }

    #[test]
    fn flip_rate_tracks_probability_per_bit() {
        let plan = FaultPlan::seeded(12).with_flips(0.1);
        let mut flips = 0u64;
        let trials = 2_000;
        for i in 0..trials {
            let mut msg = u64::MAX; // 64 wire bits
            flips += u64::from(plan.apply(i, 0, 1, 0, &mut msg).unwrap());
        }
        let rate = flips as f64 / (trials * 64) as f64;
        assert!((rate - 0.1).abs() < 0.01, "flip rate {rate}");
    }

    #[test]
    fn flips_are_reported_accurately() {
        let plan = FaultPlan::seeded(13).with_flips(0.2);
        for i in 0..200 {
            let original = 0xDEAD_BEEFu64;
            let mut msg = original;
            let flips = plan.apply(i, 2, 3, 1, &mut msg).unwrap();
            assert_eq!((msg ^ original).count_ones(), flips);
        }
    }

    #[test]
    fn crash_schedule_is_inclusive() {
        let plan = FaultPlan::seeded(1).with_crash(4, 10);
        assert!(!plan.crashed(4, 9));
        assert!(plan.crashed(4, 10));
        assert!(plan.crashed(4, 11));
        assert!(!plan.crashed(3, 11));
        // Messages delivered at the crash round are dropped.
        let mut msg = 1u64;
        assert_eq!(plan.apply(9, 0, 4, 0, &mut msg), None);
        assert!(plan.apply(8, 0, 4, 0, &mut msg).is_some());
        assert_eq!(plan.effective_crashes(11), 1);
        assert_eq!(plan.effective_crashes(10), 0);
    }

    #[test]
    fn rejoin_ends_the_outage() {
        let plan = FaultPlan::seeded(2).with_crash(4, 10).with_rejoin(4, 14);
        assert!(!plan.crashed(4, 9));
        assert!(plan.crashed(4, 10));
        assert!(plan.crashed(4, 13));
        assert!(!plan.crashed(4, 14));
        assert!(!plan.crashed(4, 20));
        assert!(plan.rejoins_at(4, 14));
        assert!(!plan.rejoins_at(4, 13));
        assert!(!plan.rejoins_at(3, 14));
        assert!(plan.will_rejoin(4, 10));
        assert!(!plan.will_rejoin(4, 14));
        // Delivery resumes at the rejoin round: messages sent at 13
        // arrive at 14, when the node is back.
        let mut msg = 1u64;
        assert_eq!(plan.apply(12, 0, 4, 0, &mut msg), None);
        assert!(plan.apply(13, 0, 4, 0, &mut msg).is_some());
        assert_eq!(plan.effective_rejoins(15), 1);
        assert_eq!(plan.effective_rejoins(14), 0);
        assert_eq!(plan.downtime_rounds(15), 4);
    }

    #[test]
    fn crash_rejoin_cycles_resolve_latest_event() {
        let plan = FaultPlan::seeded(3)
            .with_crash(1, 2)
            .with_rejoin(1, 5)
            .with_crash(1, 8)
            .with_rejoin(1, 12);
        assert!(!plan.crashed(1, 1));
        assert!(plan.crashed(1, 3));
        assert!(!plan.crashed(1, 6));
        assert!(plan.crashed(1, 9));
        assert!(!plan.crashed(1, 12));
        assert!(plan.rejoins_at(1, 5));
        assert!(plan.rejoins_at(1, 12));
        assert_eq!(plan.next_event_after(0), Some(2));
        assert_eq!(plan.next_event_after(5), Some(8));
        assert_eq!(plan.next_event_after(12), None);
        assert_eq!(plan.effective_rejoins(13), 2);
        assert_eq!(plan.downtime_rounds(13), 3 + 4);
        assert_eq!(plan.max_outage_rounds(), 4);
        assert_eq!(FaultPlan::none().max_outage_rounds(), 0);
    }

    #[test]
    #[should_panic(expected = "no earlier crash")]
    fn dangling_rejoin_is_rejected() {
        let _ = FaultPlan::seeded(4).with_rejoin(0, 5);
    }

    #[test]
    fn rejoin_only_difference_still_counts_as_faulted() {
        let plan = FaultPlan::seeded(5).with_crash(0, 1).with_rejoin(0, 2);
        assert!(!plan.is_none());
    }

    #[test]
    fn compound_messages_route_flips() {
        // Vec<u64>: bit 70 lands in the second element, bit 6.
        let mut v = vec![0u64, 0u64];
        v.flip_bit(70);
        assert_eq!(v, vec![0, 1 << 6]);

        // (Compact, u64): Compact(5) is 3 wire bits, so bit 3 is the
        // second component's bit 0.
        let mut pair = (Compact(5), 0u64);
        pair.flip_bit(3);
        assert_eq!(pair, (Compact(5), 1));
        pair.flip_bit(1);
        assert_eq!(pair, (Compact(7), 1));
    }

    #[test]
    fn same_seed_same_faults_different_seed_different_faults() {
        let a = FaultPlan::seeded(5).with_drops(0.3);
        let b = FaultPlan::seeded(5).with_drops(0.3);
        let c = FaultPlan::seeded(6).with_drops(0.3);
        let pattern = |p: &FaultPlan| -> Vec<bool> {
            (0..256)
                .map(|i| {
                    let mut m = 0u64;
                    p.apply(0, 0, 1, i, &mut m).is_none()
                })
                .collect()
        };
        assert_eq!(pattern(&a), pattern(&b));
        assert_ne!(pattern(&a), pattern(&c));
    }
}
