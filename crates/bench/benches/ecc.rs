//! Criterion bench: code construction and encoding (E8 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dut_ecc::{BinaryCode, JustesenCode, RandomLinearCode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc_encode");
    for &k in &[256usize, 4096] {
        let linear = RandomLinearCode::rate_one_third(k, 15);
        let words = k.div_ceil(64);
        let mut rng = StdRng::seed_from_u64(16);
        let msg: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
        group.bench_with_input(BenchmarkId::new("random_linear", k), &k, |b, _| {
            b.iter(|| black_box(linear.encode(&msg)))
        });
    }
    let justesen = JustesenCode::rate_one_third(8);
    let words = justesen.input_bits().div_ceil(64);
    let mut rng = StdRng::seed_from_u64(17);
    let msg: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
    group.bench_function("justesen_m8", |b| {
        b.iter(|| black_box(justesen.encode(&msg)))
    });
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc_construct");
    group.bench_function("random_linear_4096", |b| {
        b.iter(|| black_box(RandomLinearCode::rate_one_third(4096, 18)))
    });
    group.bench_function("justesen_m10", |b| {
        b.iter(|| black_box(JustesenCode::rate_one_third(10)))
    });
    group.finish();
}

criterion_group!(benches, bench_encoding, bench_construction);
criterion_main!(benches);
