//! Criterion bench: the LOCAL tester and its substrates (E7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dut_distributions::DiscreteDistribution;
use dut_local::LocalUniformityTester;
use dut_netsim::algorithms::mis::luby_mis;
use dut_netsim::power::power_graph;
use dut_netsim::topology;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_substrates");
    group.sample_size(10);
    let g = topology::grid(40, 40);
    for &r in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("power_graph", r), &r, |b, _| {
            b.iter(|| black_box(power_graph(&g, r)))
        });
    }
    let gr = power_graph(&g, 4);
    group.bench_function("luby_mis_on_g4", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(luby_mis(&gr, &mut rng)))
    });
    group.finish();
}

fn bench_full_local(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_tester");
    group.sample_size(10);
    let n = 1 << 16;
    let k = 4096;
    let tester = LocalUniformityTester::plan(n, k, 0.75, 1.0 / 3.0).expect("plannable");
    let uniform = DiscreteDistribution::uniform(n);
    let g = topology::grid(64, 64);
    group.bench_function("grid_64x64", |b| {
        let mut rng = StdRng::seed_from_u64(8);
        b.iter(|| black_box(tester.run(&g, &uniform, &mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_substrates, bench_full_local);
criterion_main!(benches);
