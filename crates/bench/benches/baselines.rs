//! Criterion bench: centralized baselines (E10) and the identity
//! filter (E11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dut_core::baselines::CollisionCountTester;
use dut_core::identity::IdentityFilter;
use dut_distributions::DiscreteDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_collision_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("collision_count_tester");
    for &n in &[1usize << 12, 1 << 16] {
        let tester = CollisionCountTester::plan(n, 0.5, 3.0).expect("plannable");
        let uniform = DiscreteDistribution::uniform(n);
        group.bench_with_input(BenchmarkId::new("run", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(13);
            b.iter(|| black_box(tester.run(&uniform, &mut rng)))
        });
    }
    group.finish();
}

fn bench_identity_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("identity_filter");
    let n = 1 << 10;
    let eta = DiscreteDistribution::from_weights((1..=n).map(|i| 1.0 / i as f64).collect())
        .expect("valid");
    group.bench_function("construct_64_slots", |b| {
        b.iter(|| black_box(IdentityFilter::new(&eta, 64).unwrap()))
    });
    let filter = IdentityFilter::new(&eta, 64).expect("valid");
    group.bench_function("map_sample", |b| {
        let mut rng = StdRng::seed_from_u64(14);
        b.iter(|| {
            let x = eta.sample(&mut rng);
            black_box(filter.map(x, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_collision_counting, bench_identity_filter);
criterion_main!(benches);
