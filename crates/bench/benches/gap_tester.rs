//! Criterion bench: the single-collision gap tester (E1/E2 runtime).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dut_core::gap::GapTester;
use dut_distributions::families::paninski_far;
use dut_distributions::DiscreteDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_gap_tester(c: &mut Criterion) {
    let mut group = c.benchmark_group("gap_tester_run");
    for &n in &[1usize << 12, 1 << 16, 1 << 20] {
        let tester = GapTester::new(n, 0.01).expect("plannable");
        let uniform = DiscreteDistribution::uniform(n);
        let far = paninski_far(n, 0.5).expect("valid");
        group.bench_with_input(BenchmarkId::new("uniform", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(tester.run(&uniform, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("paninski_far", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| black_box(tester.run(&far, &mut rng)))
        });
    }
    group.finish();
}

fn bench_distribution_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    let n = 1 << 16;
    let uniform = DiscreteDistribution::uniform(n);
    let far = paninski_far(n, 0.5).expect("valid");
    group.bench_function("uniform_fast_path", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(uniform.sample(&mut rng)))
    });
    group.bench_function("alias_table", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| black_box(far.sample(&mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_gap_tester, bench_distribution_sampling);
criterion_main!(benches);
