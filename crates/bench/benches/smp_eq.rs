//! Criterion bench: the SMP Equality protocol (E8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dut_smp::{EqualityProtocol, SmpProtocol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_equality(c: &mut Criterion) {
    let mut group = c.benchmark_group("smp_equality");
    for &n in &[1usize << 10, 1 << 14] {
        let p = EqualityProtocol::new(n, 2.0, 0.05, 9).expect("valid");
        let words = n.div_ceil(64);
        let mut rng = StdRng::seed_from_u64(10);
        let x: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
        let mut y = x.clone();
        y[0] ^= 1;
        group.bench_with_input(BenchmarkId::new("run_distinct", n), &n, |b, _| {
            let mut ra = StdRng::seed_from_u64(11);
            let mut rb = StdRng::seed_from_u64(12);
            b.iter(|| black_box(p.run(&x, &y, &mut ra, &mut rb)))
        });
        group.bench_with_input(BenchmarkId::new("construct", n), &n, |b, _| {
            b.iter(|| black_box(EqualityProtocol::new(n, 2.0, 0.05, 9).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_equality);
criterion_main!(benches);
