//! Criterion bench: token packaging and the CONGEST tester (E6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dut_congest::{solve_token_packaging, CongestUniformityTester};
use dut_distributions::DiscreteDistribution;
use dut_netsim::engine::BandwidthModel;
use dut_netsim::topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_packaging(c: &mut Criterion) {
    let mut group = c.benchmark_group("token_packaging");
    group.sample_size(10);
    for &k in &[1_000usize, 4_000] {
        let g = topology::balanced_binary_tree(k);
        let tokens: Vec<Vec<u64>> = (0..k as u64).map(|v| vec![v]).collect();
        let ids: Vec<u64> = (0..k as u64).collect();
        group.bench_with_input(BenchmarkId::new("tree", k), &k, |b, _| {
            b.iter(|| {
                black_box(
                    solve_token_packaging(&g, &tokens, &ids, 8, BandwidthModel::Local).unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_full_tester(c: &mut Criterion) {
    let mut group = c.benchmark_group("congest_tester");
    group.sample_size(10);
    let n = 1 << 12;
    let k = 12_000;
    let tester = CongestUniformityTester::plan(n, k, 1.0, 1.0 / 3.0, 1).expect("plannable");
    let uniform = DiscreteDistribution::uniform(n);
    for topo in [topology::Topology::Star, topology::Topology::Grid] {
        let mut rng = StdRng::seed_from_u64(6);
        let g = topo.instantiate(k, &mut rng);
        let tester = if g.node_count() == k {
            tester.clone()
        } else {
            CongestUniformityTester::plan(n, g.node_count(), 1.0, 1.0 / 3.0, 1).unwrap()
        };
        group.bench_function(topo.name(), |b| {
            let mut rng = StdRng::seed_from_u64(rng.gen());
            b.iter(|| black_box(tester.run(&g, &uniform, &mut rng).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_packaging, bench_full_tester);
criterion_main!(benches);
