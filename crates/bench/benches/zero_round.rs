//! Criterion bench: planning and running the 0-round testers (E3/E4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dut_core::zero_round::{AndNetworkTester, ThresholdNetworkTester};
use dut_distributions::DiscreteDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("zero_round_plan");
    group.bench_function("threshold_exact_150k", |b| {
        b.iter(|| {
            black_box(ThresholdNetworkTester::plan(1 << 20, 150_000, 0.5, 1.0 / 3.0).unwrap())
        })
    });
    group.bench_function("and_rule_4096", |b| {
        b.iter(|| black_box(AndNetworkTester::plan(1 << 20, 4096, 0.5, 1.0 / 3.0).unwrap()))
    });
    group.finish();
}

fn bench_network_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("zero_round_run");
    group.sample_size(10);
    let n = 1 << 16;
    for &k in &[10_000usize, 40_000] {
        if let Ok(tester) = ThresholdNetworkTester::plan(n, k, 1.0, 1.0 / 3.0) {
            let uniform = DiscreteDistribution::uniform(n);
            group.bench_with_input(BenchmarkId::new("threshold", k), &k, |b, _| {
                let mut rng = StdRng::seed_from_u64(5);
                b.iter(|| black_box(tester.run(&uniform, &mut rng)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_planning, bench_network_run);
criterion_main!(benches);
