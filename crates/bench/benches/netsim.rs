//! Criterion bench: the network-simulator substrate.
//!
//! The `netsim_engine` and `netsim_montecarlo` groups compare the
//! retained naive reference engine (`before`) against the flat-buffer
//! engine (`after`, plus scratch-reuse and parallel variants); their
//! numbers are recorded in `BENCH_netsim.json` at the repo root.
//!
//! `--metrics out.jsonl` skips Criterion and instead runs each engine
//! scenario once with a recording sink, appending one `dut-metrics/1`
//! record per scenario (see `docs/METRICS.md`):
//!
//! ```text
//! cargo bench -p dut-bench --bench netsim -- --metrics netsim.jsonl
//! ```

use criterion::{criterion_group, BenchmarkId, Criterion};
use dut_core::decision::Decision;
use dut_core::gap::GapTester;
use dut_core::montecarlo::{estimate_failure_rate, estimate_failure_rate_with_state, trial_rng};
use dut_core::scratch::TesterScratch;
use dut_distributions::DiscreteDistribution;
use dut_netsim::algorithms::bfs::build_bfs_tree;
use dut_netsim::algorithms::convergecast::convergecast_sum;
use dut_netsim::algorithms::distributed_mis::distributed_luby_mis;
use dut_netsim::algorithms::leader::elect_leader;
use dut_netsim::algorithms::routing::route_to_centers;
use dut_netsim::engine::{
    BandwidthModel, EngineScratch, Network, NodeProtocol, Outbox, RunOptions,
};
use dut_netsim::graph::NodeId;
use dut_netsim::reference::{run_reference, run_reference_observed};
use dut_netsim::topology;
use dut_obs::{JsonlWriter, MemorySink, RunRecord};
use std::hint::black_box;
use std::path::Path;

/// All-to-all gossip: every node broadcasts its running maximum for a
/// fixed number of rounds. On a clique this is the densest message load
/// the engine can see (k·(k−1) messages per round).
#[derive(Clone)]
struct Gossip {
    best: u64,
    rounds_left: u32,
}

impl NodeProtocol for Gossip {
    type Msg = u64;
    fn on_round(
        &mut self,
        _node: NodeId,
        _round: usize,
        inbox: &[(NodeId, u64)],
        out: &mut Outbox<'_, u64>,
    ) {
        for &(_, v) in inbox {
            self.best = self.best.max(v);
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            out.broadcast(self.best);
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
}

/// BFS distance wavefront from node 0 — on a long line this stresses
/// per-round fixed costs (thousands of rounds, few messages each).
#[derive(Clone)]
struct Bfs {
    dist: Option<u64>,
}

impl NodeProtocol for Bfs {
    type Msg = u64;
    fn on_round(
        &mut self,
        node: NodeId,
        round: usize,
        inbox: &[(NodeId, u64)],
        out: &mut Outbox<'_, u64>,
    ) {
        if self.dist.is_some() {
            return;
        }
        if node == 0 && round == 0 {
            self.dist = Some(0);
            out.broadcast(1);
        } else if let Some(&d) = inbox.iter().map(|(_, d)| d).min() {
            self.dist = Some(d);
            out.broadcast(d + 1);
        }
    }
    fn is_done(&self) -> bool {
        self.dist.is_some()
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_engine");
    group.sample_size(10);

    // 256-node clique, 8 rounds of all-to-all gossip (~522k messages).
    let clique = topology::complete(256);
    let gossip_states = |k: usize| -> Vec<Gossip> {
        (0..k)
            .map(|v| Gossip {
                best: v as u64,
                rounds_left: 8,
            })
            .collect()
    };
    group.bench_function("clique256_broadcast/before_reference", |b| {
        b.iter(|| {
            black_box(
                run_reference(&clique, BandwidthModel::Local, gossip_states(256), 32).unwrap(),
            )
        })
    });
    group.bench_function("clique256_broadcast/after_flat", |b| {
        let mut net = Network::new(&clique, BandwidthModel::Local);
        b.iter(|| black_box(net.run(gossip_states(256), 32).unwrap()))
    });
    group.bench_function("clique256_broadcast/after_flat_scratch", |b| {
        let mut net = Network::new(&clique, BandwidthModel::Local);
        let mut scratch = EngineScratch::new();
        b.iter(|| {
            black_box(
                net.run_with_scratch(gossip_states(256), 32, &mut scratch)
                    .unwrap(),
            )
        })
    });
    group.bench_function("clique256_broadcast/after_flat_parallel", |b| {
        let mut net = Network::new(&clique, BandwidthModel::Local);
        let mut scratch = EngineScratch::new();
        let options = RunOptions::parallel(0);
        b.iter(|| {
            black_box(
                net.run_with_options(gossip_states(256), 32, &mut scratch, &options)
                    .unwrap(),
            )
        })
    });

    // 4096-node line BFS: ~4k rounds of a 1-node wavefront, dominated
    // by per-round fixed costs and inbox bookkeeping.
    let line = topology::line(4096);
    let bfs_states = |k: usize| vec![Bfs { dist: None }; k];
    group.bench_function("line4096_bfs/before_reference", |b| {
        b.iter(|| {
            black_box(run_reference(&line, BandwidthModel::Local, bfs_states(4096), 8192).unwrap())
        })
    });
    group.bench_function("line4096_bfs/after_flat_scratch", |b| {
        let mut net = Network::new(&line, BandwidthModel::Local);
        let mut scratch = EngineScratch::new();
        b.iter(|| {
            black_box(
                net.run_with_scratch(bfs_states(4096), 8192, &mut scratch)
                    .unwrap(),
            )
        })
    });

    group.finish();
}

fn bench_montecarlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_montecarlo");
    group.sample_size(10);

    // Monte-Carlo failure-rate estimation end to end: the allocating
    // tester (per-trial sample Vec + sort) vs the scratch-reusing one.
    let n = 1 << 16;
    let tester = GapTester::new(n, 0.05).unwrap();
    let uniform = DiscreteDistribution::uniform(n);
    let trials = 20_000;
    group.bench_function("mc_gap_20k/before_alloc", |b| {
        b.iter(|| {
            black_box(
                estimate_failure_rate(trials, 7, |seed| {
                    let mut rng = trial_rng(seed);
                    tester.run(&uniform, &mut rng) == Decision::Reject
                })
                .expect("trials > 0"),
            )
        })
    });
    group.bench_function("mc_gap_20k/after_scratch", |b| {
        b.iter(|| {
            black_box(
                estimate_failure_rate_with_state(trials, 7, TesterScratch::new, |seed, scratch| {
                    let mut rng = trial_rng(seed);
                    tester.run_with_scratch(&uniform, &mut rng, scratch) == Decision::Reject
                })
                .expect("trials > 0"),
            )
        })
    });

    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_primitives");
    group.sample_size(20);
    for &k in &[1_000usize, 10_000] {
        let g = topology::balanced_binary_tree(k);
        group.bench_with_input(BenchmarkId::new("bfs_tree", k), &k, |b, _| {
            b.iter(|| black_box(build_bfs_tree(&g, 0, BandwidthModel::Local).unwrap()))
        });
        let (tree, _) = build_bfs_tree(&g, 0, BandwidthModel::Local).unwrap();
        let values = vec![1u64; k];
        group.bench_with_input(BenchmarkId::new("convergecast", k), &k, |b, _| {
            b.iter(|| {
                black_box(convergecast_sum(&g, &tree, &values, BandwidthModel::Local).unwrap())
            })
        });
        let ids: Vec<u64> = (0..k as u64).collect();
        group.bench_with_input(BenchmarkId::new("leader_election", k), &k, |b, _| {
            b.iter(|| black_box(elect_leader(&g, &ids, BandwidthModel::Local).unwrap()))
        });
    }
    group.finish();
}

fn bench_mis_and_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_mis_routing");
    group.sample_size(10);
    let g = topology::grid(40, 40);
    group.bench_function("distributed_luby_1600", |b| {
        b.iter(|| black_box(distributed_luby_mis(&g, BandwidthModel::Local, 1).unwrap()))
    });
    let k = g.node_count();
    let center_of = vec![0usize; k];
    let payloads: Vec<Vec<u64>> = (0..k as u64).map(|v| vec![v]).collect();
    group.bench_function("route_all_to_corner_1600", |b| {
        b.iter(|| {
            black_box(
                route_to_centers(&g, &center_of, &payloads, BandwidthModel::Local, usize::MAX)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

/// The `--metrics` mode: one observed execution per engine scenario,
/// one `dut-metrics/1` record each, pairing the engine's `RunReport`
/// totals with the sink's `netsim.*` / `reference.*` counters and
/// per-round histograms. The scenarios mirror the `netsim_engine`
/// Criterion group so a record can be read next to `BENCH_netsim.json`.
fn run_metrics(path: &Path) -> std::io::Result<()> {
    let mut w = JsonlWriter::create(path)?;
    let gossip_states = |k: usize| -> Vec<Gossip> {
        (0..k)
            .map(|v| Gossip {
                best: v as u64,
                rounds_left: 8,
            })
            .collect()
    };
    let bfs_states = |k: usize| vec![Bfs { dist: None }; k];
    let mut sink = MemorySink::new();
    let record = |w: &mut JsonlWriter,
                  sink: &MemorySink,
                  case: &str,
                  k: usize,
                  rounds: usize,
                  messages: usize,
                  bits: usize|
     -> std::io::Result<()> {
        let rec = RunRecord::new("bench.netsim", case)
            .param("k", k)
            .param("rounds", rounds)
            .param("messages", messages)
            .param("bits", bits);
        w.write(&rec, sink)
    };

    // 256-node clique, 8 rounds of all-to-all gossip.
    let clique = topology::complete(256);
    let r = run_reference_observed(
        &clique,
        BandwidthModel::Local,
        gossip_states(256),
        32,
        &mut sink,
    )
    .unwrap();
    record(
        &mut w,
        &sink,
        "clique256_broadcast/before_reference",
        256,
        r.rounds,
        r.total_messages,
        r.total_bits,
    )?;
    sink.reset();
    let mut net = Network::new(&clique, BandwidthModel::Local);
    let r = net.run_observed(gossip_states(256), 32, &mut sink).unwrap();
    record(
        &mut w,
        &sink,
        "clique256_broadcast/after_flat",
        256,
        r.rounds,
        r.total_messages,
        r.total_bits,
    )?;

    // 4096-node line BFS wavefront.
    let line = topology::line(4096);
    sink.reset();
    let r = run_reference_observed(
        &line,
        BandwidthModel::Local,
        bfs_states(4096),
        8192,
        &mut sink,
    )
    .unwrap();
    record(
        &mut w,
        &sink,
        "line4096_bfs/before_reference",
        4096,
        r.rounds,
        r.total_messages,
        r.total_bits,
    )?;
    sink.reset();
    let mut net = Network::new(&line, BandwidthModel::Local);
    let mut scratch = EngineScratch::new();
    let r = net
        .run_with_scratch_observed(bfs_states(4096), 8192, &mut scratch, &mut sink)
        .unwrap();
    record(
        &mut w,
        &sink,
        "line4096_bfs/after_flat_scratch",
        4096,
        r.rounds,
        r.total_messages,
        r.total_bits,
    )?;

    w.flush()
}

criterion_group!(
    benches,
    bench_engine,
    bench_montecarlo,
    bench_primitives,
    bench_mis_and_routing
);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(at) = args.iter().position(|a| a == "--metrics") {
        let path = args.get(at + 1).expect("--metrics needs a path");
        run_metrics(Path::new(path)).expect("failed to write metrics");
        eprintln!("wrote {path}");
        return;
    }
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}
