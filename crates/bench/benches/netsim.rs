//! Criterion bench: the network-simulator substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dut_netsim::algorithms::bfs::build_bfs_tree;
use dut_netsim::algorithms::convergecast::convergecast_sum;
use dut_netsim::algorithms::distributed_mis::distributed_luby_mis;
use dut_netsim::algorithms::leader::elect_leader;
use dut_netsim::algorithms::routing::route_to_centers;
use dut_netsim::engine::BandwidthModel;
use dut_netsim::topology;
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_primitives");
    group.sample_size(20);
    for &k in &[1_000usize, 10_000] {
        let g = topology::balanced_binary_tree(k);
        group.bench_with_input(BenchmarkId::new("bfs_tree", k), &k, |b, _| {
            b.iter(|| black_box(build_bfs_tree(&g, 0, BandwidthModel::Local).unwrap()))
        });
        let (tree, _) = build_bfs_tree(&g, 0, BandwidthModel::Local).unwrap();
        let values = vec![1u64; k];
        group.bench_with_input(BenchmarkId::new("convergecast", k), &k, |b, _| {
            b.iter(|| {
                black_box(convergecast_sum(&g, &tree, &values, BandwidthModel::Local).unwrap())
            })
        });
        let ids: Vec<u64> = (0..k as u64).collect();
        group.bench_with_input(BenchmarkId::new("leader_election", k), &k, |b, _| {
            b.iter(|| black_box(elect_leader(&g, &ids, BandwidthModel::Local).unwrap()))
        });
    }
    group.finish();
}

fn bench_mis_and_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_mis_routing");
    group.sample_size(10);
    let g = topology::grid(40, 40);
    group.bench_function("distributed_luby_1600", |b| {
        b.iter(|| black_box(distributed_luby_mis(&g, BandwidthModel::Local, 1).unwrap()))
    });
    let k = g.node_count();
    let center_of = vec![0usize; k];
    let payloads: Vec<Vec<u64>> = (0..k as u64).map(|v| vec![v]).collect();
    group.bench_function("route_all_to_corner_1600", |b| {
        b.iter(|| {
            black_box(
                route_to_centers(&g, &center_of, &payloads, BandwidthModel::Local, usize::MAX)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_mis_and_routing);
criterion_main!(benches);
