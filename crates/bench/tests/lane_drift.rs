//! CI lane-drift guard: `./ci.sh --list` and the GitHub Actions matrix
//! must name exactly the same lanes, so a lane added to one side can
//! never silently miss the other (the chaos lane was added to both by
//! hand in an earlier change; this test makes the agreement
//! machine-checked).

use std::path::PathBuf;
use std::process::Command;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

/// Lanes `./ci.sh --list` declares, in order.
fn script_lanes() -> Vec<String> {
    let root = repo_root();
    let out = Command::new("bash")
        .arg(root.join("ci.sh"))
        .arg("--list")
        .current_dir(&root)
        .output()
        .expect("ci.sh --list runs");
    assert!(
        out.status.success(),
        "ci.sh --list failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .expect("utf-8 lane names")
        .lines()
        .map(|l| l.trim().to_string())
        .filter(|l| !l.is_empty())
        .collect()
}

/// Lane entries of the `matrix.lane:` list in ci.yml, in order.
fn workflow_matrix_lanes(workflow: &str) -> Vec<String> {
    let mut lanes = Vec::new();
    let mut in_matrix = false;
    for line in workflow.lines() {
        let trimmed = line.trim();
        if trimmed == "lane:" {
            in_matrix = true;
            continue;
        }
        if in_matrix {
            if let Some(entry) = trimmed.strip_prefix("- ") {
                lanes.push(entry.trim().to_string());
            } else if !trimmed.is_empty() {
                break; // first non-entry line ends the list
            }
        }
    }
    lanes
}

#[test]
fn workflow_matrix_matches_ci_sh_lanes() {
    let root = repo_root();
    let workflow =
        std::fs::read_to_string(root.join(".github/workflows/ci.yml")).expect("ci.yml readable");
    let matrix = workflow_matrix_lanes(&workflow);
    assert!(
        !matrix.is_empty(),
        "no matrix.lane entries parsed from ci.yml"
    );

    let mut lanes = script_lanes();
    assert!(!lanes.is_empty(), "no lanes parsed from ci.sh --list");

    // The msrv lane runs as a dedicated job (it needs a different
    // toolchain), not as a matrix entry — assert the job exists, then
    // compare the rest exactly, order included.
    assert!(
        workflow.contains("./ci.sh msrv"),
        "ci.yml lost the dedicated msrv job"
    );
    assert_eq!(
        lanes.pop().as_deref(),
        Some("msrv"),
        "msrv must stay the final ci.sh lane (the dedicated-job contract)"
    );
    assert_eq!(
        matrix, lanes,
        "ci.yml matrix and ci.sh --list disagree — add the lane to both"
    );

    // Every matrix lane must also be dispatchable (a LANES entry with
    // no run_lane arm would die at runtime; the case arm with no LANES
    // entry would silently skip locally).
    for lane in &matrix {
        let status = Command::new("bash")
            .arg("-c")
            .arg(format!(
                "grep -qE '^[[:space:]]*{lane}\\) lane_' ci.sh",
                lane = regex_escape(lane)
            ))
            .current_dir(&root)
            .status()
            .expect("grep runs");
        assert!(status.success(), "lane {lane} has no run_lane dispatch arm");
    }
}

#[test]
fn nightly_soak_workflow_is_wired() {
    let root = repo_root();
    let nightly = std::fs::read_to_string(root.join(".github/workflows/nightly.yml"))
        .expect("nightly.yml readable");
    assert!(
        nightly.contains("schedule:"),
        "nightly workflow lost its cron trigger"
    );
    assert!(
        nightly.contains("workflow_dispatch"),
        "nightly workflow must stay manually triggerable"
    );
    assert!(
        nightly.contains("--soak 120"),
        "nightly workflow must run the wall-clock soak"
    );
    assert!(
        nightly.contains("--metrics soak.jsonl") && nightly.contains("upload-artifact"),
        "nightly workflow must upload the soak JSONL audit trail"
    );
}

fn regex_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                vec![c]
            } else {
                vec!['\\', c]
            }
        })
        .collect()
}
