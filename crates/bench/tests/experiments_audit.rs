//! Audit that the experiment registry stays closed: every id in
//! `ALL_EXPERIMENTS` must be listable, dispatchable, checkable, and
//! named by the usage text. Adding an experiment module without wiring
//! one of those surfaces fails here instead of at runtime.

use dut_bench::{normalize_id, verdict, ALL_EXPERIMENTS};
use std::process::Command;

#[test]
fn list_flag_prints_exactly_the_registry() {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .arg("--list")
        .output()
        .expect("experiments --list runs");
    assert!(out.status.success());
    let listed: Vec<String> = String::from_utf8(out.stdout)
        .expect("utf-8")
        .lines()
        .map(|l| l.trim().to_string())
        .filter(|l| !l.is_empty())
        .collect();
    assert_eq!(listed, ALL_EXPERIMENTS.map(String::from).to_vec());
}

#[test]
fn usage_text_names_the_full_experiment_range() {
    let src = include_str!("../src/bin/experiments.rs");
    let last = ALL_EXPERIMENTS.last().expect("non-empty registry");
    let range = format!("e1 .. {last}");
    assert!(
        src.contains(&range),
        "usage text must advertise `{range}` — update USAGE when extending ALL_EXPERIMENTS"
    );
}

#[test]
fn every_id_is_normal_form_and_has_a_dispatch_arm() {
    let dispatch = include_str!("../src/lib.rs");
    for id in ALL_EXPERIMENTS {
        assert_eq!(normalize_id(id), id, "registry ids must be normal form");
        let arm = format!("\"{id}\" =>");
        assert!(
            dispatch.contains(&arm),
            "run_experiment_ctx has no `{arm}` dispatch arm"
        );
    }
}

#[test]
fn every_id_has_a_check_arm_and_a_recorded_verdict() {
    for id in ALL_EXPERIMENTS {
        // `check` on empty tables may legitimately Err (nothing to
        // inspect), but an id missing from its match panics with
        // "unknown experiment id" — the one failure mode audited here.
        let outcome = std::panic::catch_unwind(|| verdict::check(id, &[]));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            assert!(
                !msg.contains("unknown experiment id"),
                "verdict::check has no arm for {id}"
            );
        }
        assert!(
            verdict::recorded_holds(id).is_some(),
            "EXPERIMENTS.md records no verdict for {id}"
        );
    }
}
