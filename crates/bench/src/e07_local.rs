//! E7 — the LOCAL tester (§6): MIS-based gathering.
//!
//! Measures gathering radius, MIS size (≤ 2k/r), samples per center
//! (≥ r/2), rounds, and decisions across topologies, next to the §6
//! round formula.

use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_core::decision::Decision;
use dut_distributions::families::paninski_far;
use dut_distributions::DiscreteDistribution;
use dut_local::LocalUniformityTester;
use dut_netsim::topology::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E7.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = 1 << 16;
    let k = 4_096;
    let eps = 1.0;
    let p = 1.0 / 3.0;
    let trials = scale.pick(10, 30);
    let topologies: Vec<Topology> = scale.pick(
        vec![Topology::Grid, Topology::Line],
        vec![
            Topology::Grid,
            Topology::Line,
            Topology::Ring,
            Topology::ErdosRenyi,
        ],
    );

    let uniform = DiscreteDistribution::uniform(n);
    let far = paninski_far(n, eps).expect("valid far instance");

    let mut t = Table::new(
        "E7: LOCAL tester via MIS on G^r (§6)",
        format!(
            "n = 2^16, k = 4096, ε = 1. Plans are topology-aware (plan_for_graph: the \
             per-center AND budget is sized for the actual MIS of G^r, not the 2k/r \
             worst case). §6 guarantees ≥ r/2 samples per center and ≤ 2k/r centers; \
             the §6 theory-rounds formula gives {:.0} (Θ-constants 1). The AND rule's \
             soundness at this scale is the paper's weak \"1/2 + Θ(ε²)\" signal: expect \
             rejects(far) > rejects(U) with rejects(U) ≲ trials/3, not a clean 2/3 split.",
            LocalUniformityTester::theory_rounds(n, k, eps, p),
        ),
        &[
            "topology",
            "radius r",
            "MIS size",
            "2k/r bound",
            "min gathered",
            "r/2 bound",
            "rounds",
            "rejects(U)",
            "rejects(far)",
        ],
    );

    let mut rng = StdRng::seed_from_u64(701);
    for topo in topologies {
        let g = topo.instantiate(k, &mut rng);
        let kk = g.node_count();
        let tester_g = match LocalUniformityTester::plan_for_graph(n, &g, eps, p, &mut rng) {
            Ok(t) => t,
            Err(e) => {
                // Honest failure mode: on very-low-diameter graphs the
                // MIS of G^r collapses to a handful of centers, and a
                // single-collision AND tester cannot reach constant
                // error with so few voters (the paper's k→small regime).
                t.push_row(vec![
                    topo.name().to_string(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                    format!("infeasible: {e}"),
                    "—".into(),
                ]);
                continue;
            }
        };
        let mut mis_size = 0usize;
        let mut min_gathered = usize::MAX;
        let mut rounds = 0usize;
        let mut rej_u = 0usize;
        let mut rej_f = 0usize;
        for _ in 0..trials {
            let ru = tester_g.run(&g, &uniform, &mut rng);
            mis_size = ru.mis_size;
            min_gathered = min_gathered.min(ru.min_gathered);
            rounds += ru.rounds;
            rej_u += usize::from(ru.outcome.decision == Decision::Reject);
            let rf = tester_g.run(&g, &far, &mut rng);
            rej_f += usize::from(rf.outcome.decision == Decision::Reject);
            rounds += rf.rounds;
        }
        t.push_row(vec![
            topo.name().to_string(),
            tester_g.radius().to_string(),
            mis_size.to_string(),
            (2 * kk / tester_g.radius()).to_string(),
            min_gathered.to_string(),
            (tester_g.radius() / 2).to_string(),
            fmt_f(rounds as f64 / (2 * trials) as f64),
            format!("{rej_u}/{trials}"),
            format!("{rej_f}/{trials}"),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_respects_section_6_invariants() {
        let tables = run(Scale::Quick);
        assert!(!tables[0].rows.is_empty());
        crate::verdict::check("e7", &tables).unwrap();
    }
}
