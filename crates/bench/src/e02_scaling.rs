//! E2 — sample-complexity scaling `s = Θ(√(δn))` (Theorem 3.1).
//!
//! Verifies the planner's integer sample counts track the continuous
//! law `s(s−1) = 2δn`, and that the empirical error budget follows δ
//! across two decades of `δ·n`.

use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_core::params::{delta_for_samples, samples_for_delta};

/// Runs E2.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E2: s = Θ(√(δn)) scaling (Theorem 3.1)",
        "The planned integer sample count s must satisfy s(s−1) ≤ 2δn < (s+1)s, so the \
         normalized ratio s(s−1)/(2δn) sits in (0.8, 1] once s is nontrivial.",
        &["n", "delta", "s", "s(s-1)/(2δn)", "realized δ/requested δ"],
    );
    let ns: Vec<usize> = scale.pick(
        vec![1 << 12, 1 << 16, 1 << 20],
        vec![
            1 << 10,
            1 << 12,
            1 << 14,
            1 << 16,
            1 << 18,
            1 << 20,
            1 << 24,
        ],
    );
    for n in ns {
        for &delta in &[0.001f64, 0.01, 0.05] {
            let Ok(s) = samples_for_delta(n, delta) else {
                continue;
            };
            let budget = 2.0 * delta * n as f64;
            let ratio = (s * (s - 1)) as f64 / budget;
            let realized = delta_for_samples(n, s) / delta;
            t.push_row(vec![
                n.to_string(),
                fmt_f(delta),
                s.to_string(),
                fmt_f(ratio),
                fmt_f(realized),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_stay_in_band() {
        let tables = run(Scale::Quick);
        assert!(!tables[0].rows.is_empty());
        crate::verdict::check("e2", &tables).unwrap();
    }
}
