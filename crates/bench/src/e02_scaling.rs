//! E2 — sample-complexity scaling `s = Θ(√(δn))` (Theorem 3.1).
//!
//! Verifies the planner's integer sample counts track the continuous
//! law `s(s−1) = 2δn`, and that the empirical error budget follows δ
//! across two decades of `δ·n`.

use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_core::decision::Decision;
use dut_core::executor::MonteCarloConfig;
use dut_core::gap::GapTester;
use dut_core::montecarlo::{sampling_rng, MonteCarlo};
use dut_core::params::{delta_for_samples, samples_for_delta};
use dut_distributions::DiscreteDistribution;

/// Largest domain the adaptive measurement column materializes a
/// uniform pmf for; above this the cell reports `—` rather than
/// allocating hundreds of megabytes (full scale sweeps up to 2^24).
const ADAPTIVE_MEASURE_MAX_N: usize = 1 << 20;

/// Runs E2.
pub fn run(scale: Scale) -> Vec<Table> {
    run_ctx(scale, None)
}

/// Runs E2, optionally with a confidence-sequence-measured column: when
/// `adaptive` is set, each (n, δ) cell also runs the planned gap tester
/// on the uniform distribution under
/// [`MonteCarloConfig::adaptive`]`(tol)` with δ itself as the stop
/// threshold, so the empirical rejection rate lands next to the
/// planner's δ using only as many trials as the confidence sequence
/// needs. The default (`None`) output is bit-identical to the historical
/// fixed table — the extra column (and its Monte-Carlo work) only
/// exists on adaptive runs, and the verdict never reads it.
pub fn run_ctx(scale: Scale, adaptive: Option<f64>) -> Vec<Table> {
    let base_cols = ["n", "delta", "s", "s(s-1)/(2δn)", "realized δ/requested δ"];
    let adaptive_cols = [
        "n",
        "delta",
        "s",
        "s(s-1)/(2δn)",
        "realized δ/requested δ",
        "measured reject (adaptive MC)",
    ];
    let mut t = Table::new(
        "E2: s = Θ(√(δn)) scaling (Theorem 3.1)",
        "The planned integer sample count s must satisfy s(s−1) ≤ 2δn < (s+1)s, so the \
         normalized ratio s(s−1)/(2δn) sits in (0.8, 1] once s is nontrivial.",
        if adaptive.is_some() {
            &adaptive_cols[..]
        } else {
            &base_cols[..]
        },
    );
    let budget = scale.pick(20_000, 100_000);
    let ns: Vec<usize> = scale.pick(
        vec![1 << 12, 1 << 16, 1 << 20],
        vec![
            1 << 10,
            1 << 12,
            1 << 14,
            1 << 16,
            1 << 18,
            1 << 20,
            1 << 24,
        ],
    );
    for n in ns {
        for &delta in &[0.001f64, 0.01, 0.05] {
            let Ok(s) = samples_for_delta(n, delta) else {
                continue;
            };
            let budget_f = 2.0 * delta * n as f64;
            let ratio = (s * (s - 1)) as f64 / budget_f;
            let realized = delta_for_samples(n, s) / delta;
            let mut row = vec![
                n.to_string(),
                fmt_f(delta),
                s.to_string(),
                fmt_f(ratio),
                fmt_f(realized),
            ];
            if let Some(tol) = adaptive {
                row.push(measure_reject(n, delta, tol, budget));
            }
            t.push_row(row);
        }
    }
    vec![t]
}

/// The adaptive-only measurement cell: the gap tester's rejection rate
/// on uniform, `rate [lo, hi] (trials)` with the trials the sequence
/// spent, or `—` when the domain is too large to materialize.
fn measure_reject(n: usize, delta: f64, tol: f64, budget: usize) -> String {
    if n > ADAPTIVE_MEASURE_MAX_N {
        return "—".to_string();
    }
    let tester = GapTester::new(n, delta).expect("plannable cell");
    let uniform = DiscreteDistribution::uniform(n);
    let est = MonteCarlo::new(budget, 131)
        .config(MonteCarloConfig::adaptive(tol).stop_threshold(delta))
        .run(|seed| tester.run(&uniform, &mut sampling_rng(seed)) == Decision::Reject)
        .expect("budget > 0");
    format!(
        "{} [{}, {}] ({} trials)",
        fmt_f(est.rate),
        fmt_f(est.lower),
        fmt_f(est.upper),
        est.trials
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_stay_in_band() {
        let tables = run(Scale::Quick);
        assert!(!tables[0].rows.is_empty());
        crate::verdict::check("e2", &tables).unwrap();
    }

    #[test]
    fn adaptive_run_adds_a_column_and_keeps_the_verdict() {
        let tables = run_ctx(Scale::Quick, Some(0.01));
        assert_eq!(tables[0].headers.len(), 6);
        for row in &tables[0].rows {
            assert_eq!(row.len(), 6);
            assert!(row[5] == "—" || row[5].contains("trials"), "{row:?}");
        }
        crate::verdict::check("e2", &tables).unwrap();
    }
}
