//! E1 — the gap tester A_δ (Theorem 3.1 / Lemma 3.4).
//!
//! Measures the single-collision tester's rejection probability on the
//! uniform distribution (must be ≤ δ) and on ε-far families (must be
//! ≥ (1+γε²)δ), across a grid of (n, ε, δ).

use crate::table::{fmt_f, Table};
use crate::{MetricsLog, Scale};
use dut_core::decision::Decision;
use dut_core::executor::MonteCarloConfig;
use dut_core::gap::GapTester;
use dut_core::montecarlo::{sampling_rng, ErrorEstimate, MonteCarlo};
use dut_core::Checkpoint;
use dut_distributions::families::FarFamily;
use dut_distributions::DiscreteDistribution;
use dut_obs::{MemorySink, RunRecord, Sink};

/// Runs E1.
pub fn run(scale: Scale) -> Vec<Table> {
    run_ctx(scale, None, None, &mut MetricsLog::disabled())
}

/// Logs one `dut-metrics/1` record for an adaptive grid cell: the
/// trials the confidence sequence actually spent against the cell's
/// fixed budget (the `mc.adaptive.*` keys). No-op on a disabled log,
/// and never called on fixed-budget runs — those have no stopping
/// story to tell.
fn record_spend(log: &mut MetricsLog, case: &str, est: &ErrorEstimate, budget: usize) {
    if !log.enabled() {
        return;
    }
    let mut sink = MemorySink::new();
    sink.add(dut_obs::keys::MC_ADAPTIVE_TRIALS_SPENT, est.trials as u64);
    sink.add(dut_obs::keys::MC_ADAPTIVE_BUDGET, budget as u64);
    log.write(&RunRecord::new("e1", case), &sink)
        .expect("metrics log write");
}

/// Runs E1 with the full context:
///
/// * `checkpoint` — chunk-level Monte-Carlo checkpointing: each grid
///   cell estimates under a stable label
///   (`e1a/n=..,eps=..,delta=..` / `e1b/../family=..`), so an
///   interrupted full-scale sweep resumes where it stopped and still
///   produces bit-identical tables.
/// * `adaptive` — confidence-sequence early stopping
///   ([`MonteCarloConfig::adaptive`]) with the cell's own decision
///   threshold (δ for completeness cells, the `(1+γε²)δ` bound for
///   soundness cells): a cell stops as soon as its interval clears the
///   threshold or shrinks below the tolerance. Cells that straddle
///   their threshold at the tolerance keep their fixed-budget verdict
///   (`lower ≤ δ` / `upper ≥ bound` both hold for a straddling
///   interval), so the rendered `ok` column agrees with the
///   fixed-budget run's — only the intervals and trial counts move.
/// * `log` — when adaptive and enabled, one record per cell pairs the
///   spent trials with the budget (`mc.adaptive.trials_spent` /
///   `mc.adaptive.budget`).
///
/// # Panics
///
/// Panics if `checkpoint` points at a file recorded under different
/// parameters (scale or stop-rule change against a stale file —
/// delete it).
pub fn run_ctx(
    scale: Scale,
    mut checkpoint: Option<&mut Checkpoint>,
    adaptive: Option<f64>,
    log: &mut MetricsLog,
) -> Vec<Table> {
    let trials = scale.pick(100_000, 400_000);
    let grid: Vec<(usize, f64, f64)> = scale.pick(
        vec![(1 << 14, 1.0, 0.01), (1 << 16, 0.5, 0.005)],
        vec![
            (1 << 14, 1.0, 0.01),
            (1 << 14, 0.5, 0.01),
            (1 << 16, 1.0, 0.005),
            (1 << 16, 0.5, 0.005),
            (1 << 18, 0.5, 0.002),
            (1 << 20, 0.25, 0.002),
        ],
    );

    let mut completeness = Table::new(
        "E1a: gap tester completeness (Lemma 3.4.1)",
        "Rejection rate on the uniform distribution must stay at or below δ = s(s−1)/2n.",
        &["n", "eps", "s", "delta", "measured reject", "ok"],
    );
    let mut soundness = Table::new(
        "E1b: gap tester soundness (Lemma 3.4.2)",
        "Rejection rate on ε-far families must reach (1+γε²)δ; the Paninski family is the \
         extremal (hardest) case, other families reject strictly more.",
        &[
            "n",
            "eps",
            "family",
            "bound (1+γε²)δ",
            "measured reject",
            "ok",
        ],
    );

    for &(n, eps, delta) in &grid {
        let tester = GapTester::new(n, delta).expect("plannable grid point");
        let uniform = DiscreteDistribution::uniform(n);
        let label = format!("e1a/n={n},eps={eps},delta={delta}");
        let est = {
            let t = tester;
            let u = uniform.clone();
            let mut mc = MonteCarlo::new(trials, 101);
            if let Some(tol) = adaptive {
                mc = mc.config(MonteCarloConfig::adaptive(tol).stop_threshold(tester.delta()));
            }
            if let Some(ck) = checkpoint.as_deref_mut() {
                mc = mc.checkpoint(ck, label.clone());
            }
            mc.run(move |seed| t.run(&u, &mut sampling_rng(seed)) == Decision::Reject)
                .expect("trials > 0 and a usable checkpoint")
        };
        if adaptive.is_some() {
            record_spend(log, &label, &est, trials);
        }
        let ok = est.lower <= tester.delta();
        completeness.push_row(vec![
            n.to_string(),
            fmt_f(eps),
            tester.samples().to_string(),
            fmt_f(tester.delta()),
            format!(
                "{} [{}, {}]",
                fmt_f(est.rate),
                fmt_f(est.lower),
                fmt_f(est.upper)
            ),
            ok.to_string(),
        ]);

        for family in FarFamily::ALL {
            let far = match family.instantiate(n, eps) {
                Ok(d) => d,
                Err(_) => continue,
            };
            let bound = tester.soundness_rejection_bound(eps);
            let label = format!("e1b/n={n},eps={eps},delta={delta},family={}", family.name());
            let est = {
                let t = tester;
                let mut mc = MonteCarlo::new(trials, 211);
                if let Some(tol) = adaptive {
                    mc = mc.config(MonteCarloConfig::adaptive(tol).stop_threshold(bound));
                }
                if let Some(ck) = checkpoint.as_deref_mut() {
                    mc = mc.checkpoint(ck, label.clone());
                }
                mc.run(move |seed| t.run(&far, &mut sampling_rng(seed)) == Decision::Reject)
                    .expect("trials > 0 and a usable checkpoint")
            };
            if adaptive.is_some() {
                record_spend(log, &label, &est, trials);
            }
            let ok = est.upper >= bound;
            soundness.push_row(vec![
                n.to_string(),
                fmt_f(eps),
                family.name().to_string(),
                fmt_f(bound),
                format!(
                    "{} [{}, {}]",
                    fmt_f(est.rate),
                    fmt_f(est.lower),
                    fmt_f(est.upper)
                ),
                ok.to_string(),
            ]);
        }
    }
    vec![completeness, soundness]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_tables_with_all_ok() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert!(!t.rows.is_empty());
        }
        // The CI smoke lane re-checks the same invariant via --check;
        // routing the test through it keeps the two from drifting.
        crate::verdict::check("e1", &tables).unwrap();
    }

    #[test]
    fn adaptive_run_keeps_every_verdict_and_spends_less() {
        let mut log = MetricsLog::buffer();
        let fixed = run(Scale::Quick);
        let adaptive = run_ctx(Scale::Quick, None, Some(0.002), &mut log);
        assert_eq!(fixed.len(), adaptive.len());
        for (f, a) in fixed.iter().zip(&adaptive) {
            assert_eq!(f.rows.len(), a.rows.len());
            for (fr, ar) in f.rows.iter().zip(&a.rows) {
                assert_eq!(fr.last(), ar.last(), "verdict moved on {ar:?}");
            }
        }
        crate::verdict::check("e1", &adaptive).unwrap();
        // Every cell logged its spend, and at least one stopped early.
        let cells = 2 + dut_distributions::families::FarFamily::ALL.len() * 2;
        assert!(log.records() >= cells - 2, "{} records", log.records());
        let saved = log
            .lines()
            .iter()
            .any(|l| !l.contains("\"mc.adaptive.trials_spent\":100000"));
        assert!(
            saved,
            "no cell stopped before its budget:\n{:?}",
            log.lines()
        );
    }
}
