//! E1 — the gap tester A_δ (Theorem 3.1 / Lemma 3.4).
//!
//! Measures the single-collision tester's rejection probability on the
//! uniform distribution (must be ≤ δ) and on ε-far families (must be
//! ≥ (1+γε²)δ), across a grid of (n, ε, δ).

use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_core::decision::Decision;
use dut_core::gap::GapTester;
use dut_core::montecarlo::{trial_rng, MonteCarlo};
use dut_core::Checkpoint;
use dut_distributions::families::FarFamily;
use dut_distributions::DiscreteDistribution;

/// Runs E1.
pub fn run(scale: Scale) -> Vec<Table> {
    run_ctx(scale, None)
}

/// Runs E1 with an optional chunk-level Monte-Carlo checkpoint: each
/// grid cell estimates under a stable label
/// (`e1a/n=..,eps=..,delta=..` / `e1b/../family=..`), so an
/// interrupted full-scale sweep resumes where it stopped and still
/// produces bit-identical tables.
///
/// # Panics
///
/// Panics if `checkpoint` points at a file recorded under different
/// parameters (scale change against a stale file — delete it).
pub fn run_ctx(scale: Scale, mut checkpoint: Option<&mut Checkpoint>) -> Vec<Table> {
    let trials = scale.pick(100_000, 400_000);
    let grid: Vec<(usize, f64, f64)> = scale.pick(
        vec![(1 << 14, 1.0, 0.01), (1 << 16, 0.5, 0.005)],
        vec![
            (1 << 14, 1.0, 0.01),
            (1 << 14, 0.5, 0.01),
            (1 << 16, 1.0, 0.005),
            (1 << 16, 0.5, 0.005),
            (1 << 18, 0.5, 0.002),
            (1 << 20, 0.25, 0.002),
        ],
    );

    let mut completeness = Table::new(
        "E1a: gap tester completeness (Lemma 3.4.1)",
        "Rejection rate on the uniform distribution must stay at or below δ = s(s−1)/2n.",
        &["n", "eps", "s", "delta", "measured reject", "ok"],
    );
    let mut soundness = Table::new(
        "E1b: gap tester soundness (Lemma 3.4.2)",
        "Rejection rate on ε-far families must reach (1+γε²)δ; the Paninski family is the \
         extremal (hardest) case, other families reject strictly more.",
        &[
            "n",
            "eps",
            "family",
            "bound (1+γε²)δ",
            "measured reject",
            "ok",
        ],
    );

    for &(n, eps, delta) in &grid {
        let tester = GapTester::new(n, delta).expect("plannable grid point");
        let uniform = DiscreteDistribution::uniform(n);
        let est = {
            let t = tester;
            let u = uniform.clone();
            let mut mc = MonteCarlo::new(trials, 101);
            if let Some(ck) = checkpoint.as_deref_mut() {
                mc = mc.checkpoint(ck, format!("e1a/n={n},eps={eps},delta={delta}"));
            }
            mc.run(move |seed| t.run(&u, &mut trial_rng(seed)) == Decision::Reject)
                .expect("trials > 0 and a usable checkpoint")
        };
        let ok = est.lower <= tester.delta();
        completeness.push_row(vec![
            n.to_string(),
            fmt_f(eps),
            tester.samples().to_string(),
            fmt_f(tester.delta()),
            format!(
                "{} [{}, {}]",
                fmt_f(est.rate),
                fmt_f(est.lower),
                fmt_f(est.upper)
            ),
            ok.to_string(),
        ]);

        for family in FarFamily::ALL {
            let far = match family.instantiate(n, eps) {
                Ok(d) => d,
                Err(_) => continue,
            };
            let bound = tester.soundness_rejection_bound(eps);
            let est = {
                let t = tester;
                let mut mc = MonteCarlo::new(trials, 211);
                if let Some(ck) = checkpoint.as_deref_mut() {
                    let label =
                        format!("e1b/n={n},eps={eps},delta={delta},family={}", family.name());
                    mc = mc.checkpoint(ck, label);
                }
                mc.run(move |seed| t.run(&far, &mut trial_rng(seed)) == Decision::Reject)
                    .expect("trials > 0 and a usable checkpoint")
            };
            let ok = est.upper >= bound;
            soundness.push_row(vec![
                n.to_string(),
                fmt_f(eps),
                family.name().to_string(),
                fmt_f(bound),
                format!(
                    "{} [{}, {}]",
                    fmt_f(est.rate),
                    fmt_f(est.lower),
                    fmt_f(est.upper)
                ),
                ok.to_string(),
            ]);
        }
    }
    vec![completeness, soundness]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_tables_with_all_ok() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert!(!t.rows.is_empty());
        }
        // The CI smoke lane re-checks the same invariant via --check;
        // routing the test through it keeps the two from drifting.
        crate::verdict::check("e1", &tables).unwrap();
    }
}
