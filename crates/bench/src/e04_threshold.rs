//! E4 — the 0-round threshold tester (Theorem 1.2), and the
//! threshold-vs-AND-vs-centralized comparison the paper's introduction
//! promises.
//!
//! Per-node rejection probabilities are Monte-Carlo estimated; network
//! errors follow exactly as binomial tails over `k` iid nodes.

use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_core::baselines::centralized_sample_complexity;
use dut_core::decision::Decision;
use dut_core::montecarlo::{estimate_failure_rate, trial_rng};
use dut_core::params::{
    binomial_cdf, binomial_tail_ge, plan_threshold, theorem_1_2_samples, WindowMethod,
};
use dut_core::zero_round::{AndNetworkTester, ThresholdNetworkTester};
use dut_distributions::exact::paninski_rejection_probability;
use dut_distributions::families::paninski_far;

/// Runs E4.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = 1 << 18;
    let eps = 0.5;
    let p = 1.0 / 3.0;
    let ks: Vec<usize> = scale.pick(
        vec![60_000, 240_000],
        vec![30_000, 60_000, 120_000, 240_000, 480_000, 960_000],
    );
    let mc_trials = scale.pick(150_000, 400_000);

    let mut t = Table::new(
        "E4a: 0-round threshold tester (Theorem 1.2)",
        "n = 2^18, ε = 0.5, p = 1/3. `theory s` = √(n/k)/ε². Per-node rejection rates are \
         exact (generating-function formula, cross-checked by the MC column); network \
         errors are binomial tails over k iid nodes — both sides must be ≤ 1/3, with \
         s tracking the √(n/k) law.",
        &[
            "k",
            "s/node",
            "theory s",
            "T",
            "p_reject(U)",
            "p_reject(far)",
            "MC check (far)",
            "net comp err",
            "net sound err",
        ],
    );

    let mut comparison = Table::new(
        "E4b: samples per node — threshold vs AND vs centralized",
        "The paper's headline: with the threshold rule the per-node burden drops like \
         √(n/k); the AND rule saves only a k^{Θ(ε²)} factor; a centralized tester needs \
         √n/ε² at one node.",
        &["k", "threshold s", "AND s", "centralized s"],
    );

    for &k in &ks {
        let tester = match ThresholdNetworkTester::plan(n, k, eps, p) {
            Ok(t) => t,
            Err(e) => {
                t.push_row(vec![
                    k.to_string(),
                    format!("plan failed: {e}"),
                    fmt_f(theorem_1_2_samples(n, k, eps)),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
        };
        let plan = tester.plan_details().clone();
        let s_node = plan.samples_per_node;
        let p_u = paninski_rejection_probability(n, 0.0, s_node);
        let p_f = paninski_rejection_probability(n, eps, s_node);

        // Monte-Carlo cross-check of the per-node far rejection rate.
        let node = *tester.node_tester();
        let far = paninski_far(n, eps).expect("valid far instance");
        let mc = estimate_failure_rate(mc_trials, 403 + k as u64, move |seed| {
            node.run(&far, &mut trial_rng(seed)) == Decision::Reject
        })
        .expect("trials > 0");

        let comp_err = binomial_tail_ge(k, p_u, plan.threshold);
        let sound_err = binomial_cdf(k, p_f, plan.threshold.saturating_sub(1));
        t.push_row(vec![
            k.to_string(),
            plan.samples_per_node.to_string(),
            fmt_f(theorem_1_2_samples(n, k, eps)),
            plan.threshold.to_string(),
            fmt_f(p_u),
            fmt_f(p_f),
            format!(
                "{} [{}, {}]",
                fmt_f(mc.rate),
                fmt_f(mc.lower),
                fmt_f(mc.upper)
            ),
            fmt_f(comp_err),
            fmt_f(sound_err),
        ]);

        let and_s = AndNetworkTester::plan(n, k, eps, p)
            .map(|a| a.samples_per_node().to_string())
            .unwrap_or_else(|_| "-".into());
        comparison.push_row(vec![
            k.to_string(),
            plan.samples_per_node.to_string(),
            and_s,
            fmt_f(centralized_sample_complexity(n, eps)),
        ]);
    }

    // Ablation: how much does the concentration bound used to place the
    // threshold T cost in per-node samples?
    let mut ablation = Table::new(
        "E4c: ablation — threshold window method (Chernoff vs Normal vs Exact)",
        "The paper's Eq. (5) Chernoff window is provable but loose; the exact binomial \
         plan is what a simulation can honestly run. Cells show samples per node \
         (— = the method finds no feasible plan at this k).",
        &["k", "Chernoff s", "Normal s", "Exact s"],
    );
    for &k in &ks {
        let cell = |m: WindowMethod| -> String {
            plan_threshold(n, k, eps, p, m)
                .map(|pl| pl.samples_per_node.to_string())
                .unwrap_or_else(|_| "—".into())
        };
        ablation.push_row(vec![
            k.to_string(),
            cell(WindowMethod::Chernoff),
            cell(WindowMethod::Normal),
            cell(WindowMethod::Exact),
        ]);
    }
    vec![t, comparison, ablation]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_meets_error_targets_and_beats_baselines() {
        let tables = run(Scale::Quick);
        assert!(!tables[0].rows.is_empty());
        assert!(!tables[1].rows.is_empty());
        crate::verdict::check("e4", &tables).unwrap();
    }
}
