//! E9 — Lemma 2.1: the Bernoulli-KL lower bound
//! `D(B_{1−δ} ‖ B_{1−τδ}) ≥ (δ/4)(τ − 1 − ln τ)`.
//!
//! Evaluates both sides over a (δ, τ) grid and reports the slack: the
//! minimum of lhs/rhs must be ≥ 1 everywhere in the lemma's range.

use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_distributions::info::lemma_2_1;

/// Runs E9.
pub fn run(scale: Scale) -> Vec<Table> {
    let deltas: Vec<f64> = scale.pick(
        vec![0.01, 0.1, 0.2],
        vec![0.001, 0.01, 0.05, 0.1, 0.15, 0.2, 0.24],
    );
    let taus: Vec<f64> = scale.pick(
        vec![1.1, 2.0, 3.0],
        vec![1.01, 1.1, 1.25, 1.5, 2.0, 2.7, 3.0, 4.0],
    );
    let mut t = Table::new(
        "E9: Lemma 2.1 — KL divergence needed for a (δ, τ)-gap",
        "lhs = D(B_{1−δ}‖B_{1−τδ}), rhs = (δ/4)(τ−1−ln τ). The lemma claims lhs ≥ rhs \
         throughout δ ∈ (0, 1/4), τ ∈ (1, 1/δ); ratio = lhs/rhs.",
        &["delta", "tau", "lhs (nats)", "rhs (nats)", "ratio"],
    );
    for &delta in &deltas {
        for &tau in &taus {
            if tau >= 1.0 / delta {
                continue;
            }
            let (lhs, rhs) = lemma_2_1(delta, tau);
            t.push_row(vec![
                fmt_f(delta),
                fmt_f(tau),
                format!("{lhs:.6}"),
                format!("{rhs:.6}"),
                fmt_f(lhs / rhs),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma_holds_everywhere() {
        for scale in [Scale::Quick, Scale::Full] {
            let tables = run(scale);
            assert!(!tables[0].rows.is_empty());
            crate::verdict::check("e9", &tables).unwrap();
        }
    }
}
