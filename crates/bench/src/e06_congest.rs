//! E6 — CONGEST: token packaging (Theorem 5.1) and the full tester
//! (Theorem 1.4), across topologies.
//!
//! Measures protocol rounds against the `O(D + τ)` / `O(D + n/(kε⁴))`
//! bounds, verifies the CONGEST bit budget end-to-end (the simulator
//! enforces it), and records decisions on uniform vs far inputs.

use crate::metrics::MetricsLog;
use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_congest::CongestUniformityTester;
use dut_core::decision::Decision;
use dut_distributions::families::paninski_far;
use dut_distributions::DiscreteDistribution;
use dut_netsim::graph::ImplicitTopology;
use dut_netsim::topology::{MargulisExpander, Topology, Torus2d};
use dut_obs::{MemorySink, RunRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E6, appending one `dut-metrics/1` record per tester run to
/// `log` (params: topology, input, trial, n, k, eps; the record's
/// `congest.rounds` / `congest.bits` counters sum to the table's
/// round/bit totals).
pub fn run(scale: Scale, log: &mut MetricsLog) -> Vec<Table> {
    let n = 1 << 12;
    let k = 12_000;
    let eps = 1.0;
    let p = 1.0 / 3.0;
    let trials = scale.pick(6, 12);
    let topologies: Vec<Topology> = scale.pick(
        vec![Topology::Star, Topology::Tree, Topology::Grid],
        vec![
            Topology::Star,
            Topology::Tree,
            Topology::Grid,
            Topology::ErdosRenyi,
            Topology::Ring,
            Topology::Line,
        ],
    );

    let tester = CongestUniformityTester::plan(n, k, eps, p, 1).expect("plannable");
    let uniform = DiscreteDistribution::uniform(n);
    let far = paninski_far(n, eps).expect("valid far instance");

    let mut t = Table::new(
        "E6: CONGEST uniformity tester (Theorems 5.1 + 1.4)",
        format!(
            "n = 2^12, k = 12000, ε = 1, τ = {}, virtual threshold T = {}. Rounds must \
             track D + τ (constant factor ≤ ~8 from the leader/BFS/residue/convergecast \
             phases); the simulator enforces the O(log n)-bit budget, so a completed run \
             certifies CONGEST compliance.",
            tester.tau(),
            tester.virtual_plan().threshold
        ),
        &[
            "topology",
            "diameter",
            "rounds",
            "theory D+τ",
            "rounds/(D+τ)",
            "bits",
            "packages",
            "rejects(U)",
            "rejects(far)",
        ],
    );

    let mut rng = StdRng::seed_from_u64(601);
    for topo in topologies {
        // High-diameter topologies cost Θ(k·D) engine work per run;
        // cap their trial counts.
        let trials = match topo {
            Topology::Line | Topology::Ring => trials.min(3),
            _ => trials,
        };
        let g = topo.instantiate(k, &mut rng);
        let kk = g.node_count();
        let tester_g = if kk == k {
            tester.clone()
        } else {
            CongestUniformityTester::plan(n, kk, eps, p, 1).expect("plannable")
        };
        let d = match topo {
            Topology::Line => kk - 1,
            Topology::Ring => kk / 2,
            Topology::Star => 2,
            // Exact diameter is O(k·m) to compute; these are cheap.
            _ => g.diameter(),
        };
        let theory = d as f64 + tester_g.tau() as f64;
        let mut rounds_sum = 0usize;
        let mut bits_sum = 0usize;
        let mut packages = 0usize;
        let mut rej_u = 0usize;
        let mut rej_f = 0usize;
        // One record per tester run; the sink is reset per run so each
        // line holds exactly that run's counters.
        let record = |log: &mut MetricsLog,
                      sink: &MemorySink,
                      input: &str,
                      trial: usize,
                      kk: usize,
                      r: &dut_congest::CongestRunResult| {
            if !log.enabled() {
                return;
            }
            let rec = RunRecord::new("e6", &format!("{}/{input}", topo.name()))
                .param("n", n)
                .param("k", kk)
                .param("eps", eps)
                .param("trial", trial)
                .param("rounds", r.rounds)
                .param("bits", r.bits)
                .param("packages", r.packages)
                .param("decision", format!("{:?}", r.decision));
            log.write(&rec, sink).expect("metrics write");
        };
        let mut sink = MemorySink::new();
        for trial in 0..trials {
            sink.reset();
            let ru = tester_g
                .run_observed(&g, &uniform, &mut rng, &mut sink)
                .expect("run ok");
            rounds_sum += ru.rounds;
            bits_sum += ru.bits;
            packages = ru.packages;
            rej_u += usize::from(ru.decision == Decision::Reject);
            record(log, &sink, "uniform", trial, kk, &ru);
            sink.reset();
            let rf = tester_g
                .run_observed(&g, &far, &mut rng, &mut sink)
                .expect("run ok");
            rounds_sum += rf.rounds;
            bits_sum += rf.bits;
            rej_f += usize::from(rf.decision == Decision::Reject);
            record(log, &sink, "far", trial, kk, &rf);
        }
        let mean_rounds = rounds_sum as f64 / (2 * trials) as f64;
        let mean_bits = bits_sum as f64 / (2 * trials) as f64;
        t.push_row(vec![
            topo.name().to_string(),
            d.to_string(),
            fmt_f(mean_rounds),
            fmt_f(theory),
            fmt_f(mean_rounds / theory),
            fmt_f(mean_bits),
            packages.to_string(),
            format!("{rej_u}/{trials}"),
            format!("{rej_f}/{trials}"),
        ]);
    }

    vec![t, run_implicit(scale, log, n, eps, p, &uniform, &far)]
}

/// E6b: the same tester over *implicit* topology families — neighbors
/// are computed on the fly, never materialized into an edge list, so
/// the identical pipeline (leader → BFS → residues → votes → verdict)
/// is what the million-node netsim path exercises.
#[allow(clippy::too_many_arguments)]
fn run_implicit(
    scale: Scale,
    log: &mut MetricsLog,
    n: usize,
    eps: f64,
    p: f64,
    uniform: &DiscreteDistribution,
    far: &DiscreteDistribution,
) -> Table {
    let trials = scale.pick(3, 6);
    let mut t = Table::new(
        "E6b: CONGEST tester over implicit topologies",
        "Same protocol, but neighbors are generated on demand (no edge list in \
         memory) — the access path the 10^6-node netsim runs use. Diameters are \
         exact for the torus (⌊rows/2⌋+⌊cols/2⌋); the expander column reports \
         ecc(0) of a one-off materialization as the D proxy.",
        &[
            "topology",
            "diameter",
            "rounds",
            "theory D+τ",
            "rounds/(D+τ)",
            "bits",
            "packages",
            "rejects(U)",
            "rejects(far)",
        ],
    );
    let mut rng = StdRng::seed_from_u64(602);

    let torus = Torus2d::new(110, 110); // 12100 nodes, D = 110
    let expander = MargulisExpander::new(110); // 12100 nodes, D = O(log k)
    let exp_d = expander
        .materialize()
        .bfs_distances(0)
        .iter()
        .map(|d| d.expect("expander is connected"))
        .max()
        .unwrap();

    #[allow(clippy::too_many_arguments)]
    fn row_for<T: ImplicitTopology>(
        name: &str,
        topo: &T,
        d: usize,
        n: usize,
        eps: f64,
        p: f64,
        trials: usize,
        uniform: &DiscreteDistribution,
        far: &DiscreteDistribution,
        rng: &mut StdRng,
        log: &mut MetricsLog,
    ) -> Vec<String> {
        let kk = topo.node_count();
        let tester = CongestUniformityTester::plan(n, kk, eps, p, 1).expect("plannable");
        let theory = d as f64 + tester.tau() as f64;
        let mut rounds_sum = 0usize;
        let mut bits_sum = 0usize;
        let mut packages = 0usize;
        let mut rej_u = 0usize;
        let mut rej_f = 0usize;
        let mut sink = MemorySink::new();
        let record = |log: &mut MetricsLog,
                      sink: &MemorySink,
                      input: &str,
                      trial: usize,
                      r: &dut_congest::CongestRunResult| {
            if !log.enabled() {
                return;
            }
            let rec = RunRecord::new("e6", &format!("{name}/{input}"))
                .param("n", n)
                .param("k", kk)
                .param("eps", eps)
                .param("trial", trial)
                .param("rounds", r.rounds)
                .param("bits", r.bits)
                .param("packages", r.packages)
                .param("decision", format!("{:?}", r.decision));
            log.write(&rec, sink).expect("metrics write");
        };
        for trial in 0..trials {
            sink.reset();
            let ru = tester
                .run_observed(topo, uniform, rng, &mut sink)
                .expect("run ok");
            rounds_sum += ru.rounds;
            bits_sum += ru.bits;
            packages = ru.packages;
            rej_u += usize::from(ru.decision == Decision::Reject);
            record(log, &sink, "uniform", trial, &ru);
            sink.reset();
            let rf = tester
                .run_observed(topo, far, rng, &mut sink)
                .expect("run ok");
            rounds_sum += rf.rounds;
            bits_sum += rf.bits;
            rej_f += usize::from(rf.decision == Decision::Reject);
            record(log, &sink, "far", trial, &rf);
        }
        let mean_rounds = rounds_sum as f64 / (2 * trials) as f64;
        let mean_bits = bits_sum as f64 / (2 * trials) as f64;
        vec![
            name.to_string(),
            d.to_string(),
            fmt_f(mean_rounds),
            fmt_f(theory),
            fmt_f(mean_rounds / theory),
            fmt_f(mean_bits),
            packages.to_string(),
            format!("{rej_u}/{trials}"),
            format!("{rej_f}/{trials}"),
        ]
    }

    t.push_row(row_for(
        "torus2d",
        &torus,
        110 / 2 + 110 / 2,
        n,
        eps,
        p,
        trials,
        uniform,
        far,
        &mut rng,
        log,
    ));
    t.push_row(row_for(
        "margulis", &expander, exp_d, n, eps, p, trials, uniform, far, &mut rng, log,
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_rounds_track_d_plus_tau() {
        let tables = run(Scale::Quick, &mut MetricsLog::disabled());
        assert!(!tables[0].rows.is_empty());
        crate::verdict::check("e6", &tables).unwrap();
    }

    /// Pulls the integer following `"key":` out of a JSONL line.
    fn field_u64(line: &str, key: &str) -> u64 {
        let pat = format!("\"{key}\":");
        let at = line
            .find(&pat)
            .unwrap_or_else(|| panic!("no {key} in {line}"));
        line[at + pat.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    }

    #[test]
    fn metrics_records_match_table_totals() {
        // Same seed → logging must not perturb the tables, and the
        // per-run records must re-derive the table's means exactly.
        let plain = run(Scale::Quick, &mut MetricsLog::disabled());
        let mut log = MetricsLog::buffer();
        let logged = run(Scale::Quick, &mut log);
        assert_eq!(plain, logged, "metrics logging perturbed the experiment");

        // Quick scale: 6 trials x 2 inputs per E6 topology, 3 trials x 2
        // inputs per E6b implicit family.
        assert_eq!(
            log.records(),
            logged[0].rows.len() * 12 + logged[1].rows.len() * 6
        );
        for (table, per_row) in [(&logged[0], 12usize), (&logged[1], 6usize)] {
            for row in &table.rows {
                let topo = &row[0];
                let runs: Vec<&String> = log
                    .lines()
                    .iter()
                    .filter(|l| l.contains(&format!("\"case\":\"{topo}/")))
                    .collect();
                assert_eq!(runs.len(), per_row, "wrong record count for {topo}");
                for line in &runs {
                    assert!(line.starts_with("{\"schema\":\"dut-metrics/1\""));
                    assert!(line.contains("\"experiment\":\"e6\""));
                    // The run-level params agree with the sink's counters.
                    assert_eq!(field_u64(line, "rounds"), field_u64(line, "congest.rounds"));
                    assert_eq!(field_u64(line, "bits"), field_u64(line, "congest.bits"));
                    // The netsim substrate metered the aggregation phases.
                    assert!(field_u64(line, "netsim.bits") > 0);
                }
                let rounds_sum: u64 = runs.iter().map(|l| field_u64(l, "congest.rounds")).sum();
                let bits_sum: u64 = runs.iter().map(|l| field_u64(l, "congest.bits")).sum();
                assert_eq!(
                    fmt_f(rounds_sum as f64 / per_row as f64),
                    row[2],
                    "rounds for {topo}"
                );
                assert_eq!(
                    fmt_f(bits_sum as f64 / per_row as f64),
                    row[5],
                    "bits for {topo}"
                );
            }
        }
    }
}
