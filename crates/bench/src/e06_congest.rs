//! E6 — CONGEST: token packaging (Theorem 5.1) and the full tester
//! (Theorem 1.4), across topologies.
//!
//! Measures protocol rounds against the `O(D + τ)` / `O(D + n/(kε⁴))`
//! bounds, verifies the CONGEST bit budget end-to-end (the simulator
//! enforces it), and records decisions on uniform vs far inputs.

use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_congest::CongestUniformityTester;
use dut_core::decision::Decision;
use dut_distributions::families::paninski_far;
use dut_distributions::DiscreteDistribution;
use dut_netsim::topology::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E6.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = 1 << 12;
    let k = 12_000;
    let eps = 1.0;
    let p = 1.0 / 3.0;
    let trials = scale.pick(6, 12);
    let topologies: Vec<Topology> = scale.pick(
        vec![Topology::Star, Topology::Tree, Topology::Grid],
        vec![
            Topology::Star,
            Topology::Tree,
            Topology::Grid,
            Topology::ErdosRenyi,
            Topology::Ring,
            Topology::Line,
        ],
    );

    let tester = CongestUniformityTester::plan(n, k, eps, p, 1).expect("plannable");
    let uniform = DiscreteDistribution::uniform(n);
    let far = paninski_far(n, eps).expect("valid far instance");

    let mut t = Table::new(
        "E6: CONGEST uniformity tester (Theorems 5.1 + 1.4)",
        format!(
            "n = 2^12, k = 12000, ε = 1, τ = {}, virtual threshold T = {}. Rounds must \
             track D + τ (constant factor ≤ ~8 from the leader/BFS/residue/convergecast \
             phases); the simulator enforces the O(log n)-bit budget, so a completed run \
             certifies CONGEST compliance.",
            tester.tau(),
            tester.virtual_plan().threshold
        ),
        &[
            "topology",
            "diameter",
            "rounds",
            "theory D+τ",
            "rounds/(D+τ)",
            "packages",
            "rejects(U)",
            "rejects(far)",
        ],
    );

    let mut rng = StdRng::seed_from_u64(601);
    for topo in topologies {
        // High-diameter topologies cost Θ(k·D) engine work per run;
        // cap their trial counts.
        let trials = match topo {
            Topology::Line | Topology::Ring => trials.min(3),
            _ => trials,
        };
        let g = topo.instantiate(k, &mut rng);
        let kk = g.node_count();
        let tester_g = if kk == k {
            tester.clone()
        } else {
            CongestUniformityTester::plan(n, kk, eps, p, 1).expect("plannable")
        };
        let d = match topo {
            Topology::Line => kk - 1,
            Topology::Ring => kk / 2,
            Topology::Star => 2,
            // Exact diameter is O(k·m) to compute; these are cheap.
            _ => g.diameter(),
        };
        let theory = d as f64 + tester_g.tau() as f64;
        let mut rounds_sum = 0usize;
        let mut packages = 0usize;
        let mut rej_u = 0usize;
        let mut rej_f = 0usize;
        for _ in 0..trials {
            let ru = tester_g.run(&g, &uniform, &mut rng).expect("run ok");
            rounds_sum += ru.rounds;
            packages = ru.packages;
            rej_u += usize::from(ru.decision == Decision::Reject);
            let rf = tester_g.run(&g, &far, &mut rng).expect("run ok");
            rounds_sum += rf.rounds;
            rej_f += usize::from(rf.decision == Decision::Reject);
        }
        let mean_rounds = rounds_sum as f64 / (2 * trials) as f64;
        t.push_row(vec![
            topo.name().to_string(),
            d.to_string(),
            fmt_f(mean_rounds),
            fmt_f(theory),
            fmt_f(mean_rounds / theory),
            packages.to_string(),
            format!("{rej_u}/{trials}"),
            format!("{rej_f}/{trials}"),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_rounds_track_d_plus_tau() {
        let tables = run(Scale::Quick);
        for row in &tables[0].rows {
            let ratio: f64 = row[4].parse().unwrap();
            assert!(
                ratio < 10.0,
                "rounds not O(D + tau) on {}: ratio {ratio}",
                row[0]
            );
            // Far must reject at least as often as uniform.
            let ru: usize = row[6].split('/').next().unwrap().parse().unwrap();
            let rf: usize = row[7].split('/').next().unwrap().parse().unwrap();
            assert!(rf >= ru, "no separation on {}: {row:?}", row[0]);
        }
    }
}
