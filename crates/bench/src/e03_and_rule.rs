//! E3 — the 0-round AND-rule tester (Theorem 1.1).
//!
//! For a sweep of network sizes `k`, plans the AND-rule tester and
//! computes the per-node rejection probabilities **exactly** via the
//! generating-function formula for the paired family
//! ([`dut_distributions::exact`]); because nodes are iid, the network
//! errors follow in closed form: completeness error `1 − (1−p_u)^k`,
//! soundness error `(1−p_f)^k`. A Monte-Carlo column cross-checks the
//! analytic pipeline at every row.
//!
//! The table shows the paper's honest story: completeness is protected,
//! per-node samples shrink with `k^{1/(2m)}`, and at simulatable `k` the
//! provable soundness is the weak "1/2 + Θ(ε²)" signal (the `feasible`
//! column).

use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_core::decision::Decision;
use dut_core::montecarlo::{estimate_failure_rate, trial_rng};
use dut_core::params::theorem_1_1_samples;
use dut_core::zero_round::AndNetworkTester;
use dut_distributions::exact::paninski_rejection_probability;
use dut_distributions::families::paninski_far;

/// Runs E3.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = 1 << 20;
    let eps = 0.75;
    let p = 1.0 / 3.0;
    let ks: Vec<usize> = scale.pick(
        vec![256, 4096],
        vec![64, 256, 1024, 4096, 16_384, 65_536, 262_144],
    );
    let mc_trials = scale.pick(150_000, 400_000);

    let mut t = Table::new(
        "E3: 0-round AND-rule tester (Theorem 1.1)",
        "n = 2^20, ε = 0.75, p = 1/3. Per-run rejection probabilities are exact \
         (generating-function formula); `MC check` re-measures the far case by \
         simulation. Network errors follow from node iid-ness. `theory s` is the \
         Theorem 1.1 formula with Θ-constants 1; `feasible` = the provable gap C_p \
         is reached (needs k ≳ (64/ε⁴)^m).",
        &[
            "k",
            "m",
            "s/node",
            "theory s",
            "p_reject(U)",
            "p_reject(far)",
            "MC check (far)",
            "net comp err",
            "net sound err",
            "feasible",
        ],
    );

    for &k in &ks {
        let tester = match AndNetworkTester::plan(n, k, eps, p) {
            Ok(t) => t,
            Err(e) => {
                t.push_row(vec![
                    k.to_string(),
                    "-".into(),
                    "-".into(),
                    fmt_f(theorem_1_1_samples(n, k, eps, p)),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("plan failed: {e}"),
                ]);
                continue;
            }
        };
        let plan = tester.plan_details().clone();
        let s_run = plan.samples_per_run;

        // Exact per-run probabilities; node rejects iff all m runs do.
        let p_run_u = paninski_rejection_probability(n, 0.0, s_run);
        let p_run_f = paninski_rejection_probability(n, eps, s_run);
        let p_u = p_run_u.powi(plan.m as i32);
        let p_f = p_run_f.powi(plan.m as i32);

        // Monte-Carlo cross-check of the per-node far rejection rate.
        let node = *tester.node_tester();
        let far = paninski_far(n, eps).expect("valid far instance");
        let mc = estimate_failure_rate(mc_trials, 303 + k as u64, move |seed| {
            node.run(&far, &mut trial_rng(seed)) == Decision::Reject
        })
        .expect("trials > 0");

        let comp_err = 1.0 - (1.0 - p_u).powi(k as i32);
        let sound_err = (1.0 - p_f).powi(k as i32);
        t.push_row(vec![
            k.to_string(),
            plan.m.to_string(),
            plan.samples_per_node.to_string(),
            fmt_f(theorem_1_1_samples(n, k, eps, p)),
            fmt_f(p_u),
            fmt_f(p_f),
            format!(
                "{} [{}, {}]",
                fmt_f(mc.rate),
                fmt_f(mc.lower),
                fmt_f(mc.upper)
            ),
            fmt_f(comp_err),
            fmt_f(sound_err),
            plan.feasible.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_protects_completeness_and_validates_mc() {
        let tables = run(Scale::Quick);
        assert!(!tables[0].rows.is_empty());
        crate::verdict::check("e3", &tables).unwrap();
    }
}
