//! Scanner-parser for the committed `BENCH_*.json` baselines at the
//! repo root.
//!
//! These files are written by us (criterion summaries transcribed by
//! hand, or `ci-bench-check --refresh`), so this is a closed-world
//! scanner like the checkpoint reader — **not** a general JSON parser.
//! It tolerates reordered or extra fields but assumes the quoting and
//! nesting the repo's own files use: one `"name"` key per workload
//! object, medians either as a direct `"median_ms"` number or nested
//! as `"after_ms": { .. "median": x .. }`.

/// One named workload and the baseline median we gate against.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineWorkload {
    /// Workload name, e.g. `clique256_broadcast`.
    pub name: String,
    /// Committed median wall-clock in milliseconds (the `after`/current
    /// implementation — the one CI re-times).
    pub median_ms: f64,
}

/// Extracts every workload (name + median) from a `BENCH_*.json`
/// baseline file.
///
/// # Errors
///
/// Returns a message naming the first workload entry missing a usable
/// median, or an error if no workloads are present at all.
pub fn parse_workloads(json: &str) -> Result<Vec<BaselineWorkload>, String> {
    let body = match json.find("\"workloads\"") {
        Some(at) => &json[at..],
        None => return Err("no \"workloads\" array in baseline file".into()),
    };
    let starts: Vec<usize> = match_indices(body, "\"name\":");
    if starts.is_empty() {
        return Err("empty \"workloads\" array in baseline file".into());
    }
    let mut out = Vec::with_capacity(starts.len());
    for (i, &at) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(body.len());
        let seg = &body[at..end];
        let name =
            quoted_after(seg, "\"name\":").ok_or_else(|| format!("unreadable name near {seg}"))?;
        let median = number_after(seg, "\"median_ms\":")
            .or_else(|| {
                let after = seg.find("\"after_ms\"")?;
                number_after(&seg[after..], "\"median\":")
            })
            .ok_or_else(|| format!("workload {name}: no median_ms or after_ms.median"))?;
        out.push(BaselineWorkload {
            name,
            median_ms: median,
        });
    }
    Ok(out)
}

/// Reads a top-level (or first-occurring) numeric field, e.g.
/// `"speedup_parallel"`.
pub fn number_field(json: &str, key: &str) -> Option<f64> {
    number_after(json, &format!("\"{key}\":"))
}

fn match_indices(s: &str, pat: &str) -> Vec<usize> {
    s.match_indices(pat).map(|(i, _)| i).collect()
}

fn quoted_after(s: &str, key: &str) -> Option<String> {
    let rest = &s[s.find(key)? + key.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    Some(rest[..rest.find('"')?].to_string())
}

fn number_after(s: &str, key: &str) -> Option<f64> {
    let rest = s[s.find(key)? + key.len()..].trim_start();
    let tok: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    tok.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_committed_netsim_baseline() {
        let json = include_str!("../../../BENCH_netsim.json");
        let workloads = parse_workloads(json).unwrap();
        let names: Vec<&str> = workloads.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "clique256_broadcast",
                "line4096_bfs",
                "mc_gap_20k",
                "torus_1m_gossip"
            ],
            "ci-bench-check times exactly these four workloads; renaming \
             one in BENCH_netsim.json requires updating the gate"
        );
        for w in &workloads {
            assert!(w.median_ms > 0.0, "{w:?}");
        }
    }

    #[test]
    fn direct_median_ms_and_nested_after_median_both_parse() {
        let json = r#"{"workloads":[
            {"name":"a","median_ms": 12.5},
            {"name":"b","before_ms":{"median": 9.0},"after_ms":{"min":1.0,"median":2.25,"max":3.0}}
        ],"speedup_parallel": 1.75}"#;
        let workloads = parse_workloads(json).unwrap();
        assert_eq!(workloads[0].median_ms, 12.5);
        assert_eq!(workloads[1].median_ms, 2.25);
        assert_eq!(number_field(json, "speedup_parallel"), Some(1.75));
    }

    #[test]
    fn missing_median_is_a_named_error() {
        let err = parse_workloads(r#"{"workloads":[{"name":"broken"}]}"#).unwrap_err();
        assert!(err.contains("broken"), "{err}");
        assert!(parse_workloads("{}").is_err());
    }
}
