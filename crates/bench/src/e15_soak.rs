//! E15 — soak harness: long-horizon streaming + robust CONGEST under a
//! sustained fault rate.
//!
//! Every other experiment measures one protocol run (or a short sweep)
//! in isolation; the soak harness measures *stability over time*. A
//! seeded tick loop pushes continuous traffic through a persistent
//! [`StreamService`] (uniform and Paninski-far streams, each sample
//! surviving a sustained ingest drop coin) and drives one robust
//! τ-token packaging run per tick under a fault plan combining a low
//! message-drop rate with a scheduled crash/rejoin cycle of varying
//! outage length. Three long-horizon claims become machine-checkable:
//!
//! * **No silent verdict flips** — once the coordinator resolves a
//!   verdict (Uniform/Far) it never flips to the opposite resolved
//!   verdict on a later tick, and resolved verdicts match the traffic.
//! * **Bounded retransmit growth** — per-tick ARQ retransmissions stay
//!   flat across the horizon (no state leaks across ticks), so
//!   cumulative retransmits grow at most linearly.
//! * **Recovery** — every scheduled crash/rejoin cycle is absorbed by
//!   the outage-widened retry policy; the recovery-time histogram
//!   (downtime rounds per absorbed rejoin) covers every scheduled
//!   outage length.
//!
//! Each tick is a pure function of its tick index (all seeds derive
//! from `base_seed ^ tick`), so the `dut-metrics/1` audit trail is
//! reproducible per tick whether the horizon is a fixed tick budget
//! (`--check`, tests) or a wall-clock bound (`--soak SECS`).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crate::metrics::MetricsLog;
use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_congest::{robust_bandwidth_model, solve_token_packaging_robust};
use dut_distributions::families::paninski_far;
use dut_distributions::DiscreteDistribution;
use dut_netsim::fault::FaultPlan;
use dut_netsim::topology;
use dut_obs::keys::{
    SOAK_DROPPED_SAMPLES, SOAK_PIPELINE_FAILURES, SOAK_PIPELINE_RUNS, SOAK_RECOVERY_ROUNDS,
    SOAK_RETRANSMITS, SOAK_SAMPLES, SOAK_TICKS, SOAK_VERDICT_FLIPS,
};
use dut_obs::{MemorySink, RunRecord, Sink};
use dut_stream::{StreamConfig, StreamService, Verdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// splitmix64 — one deterministic, well-mixed child seed per (parent,
/// salt) pair, the same derivation discipline the chaos search uses.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn verdict_name(v: Verdict) -> &'static str {
    match v {
        Verdict::Uniform => "Uniform",
        Verdict::Far => "Far",
        Verdict::Pending => "Pending",
    }
}

/// Tracks one coordinator verdict across ticks and counts *silent
/// flips*: a resolved verdict changing to the other resolved verdict.
/// Pending→resolved transitions are not flips.
#[derive(Debug, Default)]
struct FlipTracker {
    last_resolved: Option<Verdict>,
}

impl FlipTracker {
    fn observe(&mut self, cur: Verdict) -> bool {
        if cur == Verdict::Pending {
            return false;
        }
        let flipped = self.last_resolved.is_some_and(|prev| prev != cur);
        self.last_resolved = Some(cur);
        flipped
    }
}

fn unique_tokens(k: usize, per_node: usize) -> Vec<Vec<u64>> {
    let mut next = 0u64;
    (0..k)
        .map(|_| {
            (0..per_node)
                .map(|_| {
                    next += 1;
                    next
                })
                .collect()
        })
        .collect()
}

/// Runs E15 with the fixed tick budget (`Quick` 6 / `Full` 24) — the
/// configuration the tests, `--check`, and EXPERIMENTS.md use.
pub fn run(scale: Scale, log: &mut MetricsLog) -> Vec<Table> {
    run_soak(scale, log, None)
}

/// Runs the soak loop. `wall = None` runs the fixed tick budget;
/// `wall = Some(d)` keeps ticking until `d` has elapsed (at least one
/// tick) — the `experiments --soak SECS` mode. Tick *contents* are
/// identical either way: tick `t` is a pure function of `t`.
///
/// Appends one `dut-metrics/1` record per tick to `log` (params: tick,
/// outage, verdicts, outcome; counters: per-tick `soak.*` + `stream.*`
/// + ARQ totals; histogram: `soak.recovery_rounds`).
pub fn run_soak(scale: Scale, log: &mut MetricsLog, wall: Option<Duration>) -> Vec<Table> {
    // Streaming side: a persistent sharded service per traffic kind,
    // windows sliding across the whole horizon.
    let n = 1024usize;
    let eps = 1.0;
    let streams = 8u64;
    let window = 192usize;
    let per_stream = 96usize; // samples offered per stream per tick
    let ingest_drop = 0.10; // sustained transport loss before the service
    let reject_threshold = streams as usize / 2;
    let base_seed = 0xE15_50AC;

    // CONGEST side: the line-of-8 instance whose crash/rejoin phase
    // timing is pinned by the dut-congest robust tests — node 6 crashes
    // at round 4 (after the floods pass it, before node 5's residue
    // report lands) and rejoins `outage` rounds later; the
    // outage-widened retry policy must absorb every cycle.
    let g = topology::line(8);
    let k = g.node_count();
    let tokens = unique_tokens(k, 2);
    let ids: Vec<u64> = (1..=k as u64).collect();
    let tau = 3usize;
    let max_retries = 3usize;
    let message_drop = 1e-3; // sustained wire loss under the ARQ layer
    let crash_node = 6usize;
    let crash_round = 4usize;
    let model = robust_bandwidth_model();

    let ticks_budget = scale.pick(6usize, 24);

    let uniform = DiscreteDistribution::uniform(n);
    let far = paninski_far(n, eps).expect("valid far instance");
    let config = |seed_salt: u64| StreamConfig {
        domain: n,
        epsilon: eps,
        window,
        shards: 2,
        reject_threshold,
        base_seed: mix(base_seed, seed_salt),
    };
    let mut svc_u = StreamService::new(config(0xA0)).expect("valid config");
    let mut svc_f = StreamService::new(config(0xA1)).expect("valid config");

    let mut t_ticks = Table::new(
        "E15: soak tick log (streaming + robust CONGEST under sustained faults)",
        format!(
            "n = {n}, ε = 1, {streams} streams x {per_stream} samples/tick, window = \
             {window}, ingest drop = {ingest_drop}; line(8) robust packaging per tick, \
             τ = {tau}, retries ≤ {max_retries}, wire drop = {message_drop}, node \
             {crash_node} crashes at round {crash_round} and rejoins after the \
             scheduled outage. Resolved verdicts must never flip, every outage must \
             be absorbed, and per-tick retransmits must stay flat.",
        ),
        &[
            "tick",
            "ingested",
            "dropped",
            "verdict(U)",
            "verdict(far)",
            "flips",
            "pipeline",
            "outage",
            "retransmits",
        ],
    );

    // outage rounds → (scheduled, recovered, retransmits over recoveries)
    let mut recovery: BTreeMap<usize, (usize, usize, u64)> = BTreeMap::new();
    let mut flips_u = FlipTracker::default();
    let mut flips_f = FlipTracker::default();
    let mut total_flips = 0u64;
    let mut sink = MemorySink::new();

    let started = Instant::now();
    let mut tick = 0usize;
    loop {
        match wall {
            Some(d) => {
                if tick > 0 && started.elapsed() >= d {
                    break;
                }
            }
            None => {
                if tick == ticks_budget {
                    break;
                }
            }
        }
        let tick_seed = mix(base_seed, tick as u64);
        sink.reset();
        sink.add(SOAK_TICKS, 1);

        // ---- streaming burst: both services see the same transport,
        // so one drop coin per slot governs both samples.
        let mut drop_rng = StdRng::seed_from_u64(mix(tick_seed, 0xD0));
        let mut rngs_u: Vec<StdRng> = (0..streams)
            .map(|l| {
                StdRng::seed_from_u64(dut_core::executor::derive_trial_seed(
                    mix(tick_seed, 0x7A),
                    l,
                ))
            })
            .collect();
        let mut rngs_f: Vec<StdRng> = (0..streams)
            .map(|l| {
                StdRng::seed_from_u64(dut_core::executor::derive_trial_seed(
                    mix(tick_seed, 0x7B),
                    l,
                ))
            })
            .collect();
        let mut ingested = 0u64;
        let mut dropped = 0u64;
        for _ in 0..per_stream {
            for label in 0..streams {
                let su = uniform.sample(&mut rngs_u[label as usize]);
                let sf = far.sample(&mut rngs_f[label as usize]);
                if drop_rng.gen_bool(ingest_drop) {
                    dropped += 2;
                } else {
                    ingested += 2;
                    svc_u
                        .ingest_observed(label, su, &mut sink)
                        .expect("in-domain");
                    svc_f
                        .ingest_observed(label, sf, &mut sink)
                        .expect("in-domain");
                }
            }
        }
        sink.add(SOAK_SAMPLES, ingested);
        sink.add(SOAK_DROPPED_SAMPLES, dropped);

        let vu = svc_u.global_verdict_observed(&mut sink).value;
        let vf = svc_f.global_verdict_observed(&mut sink).value;
        let tick_flips = u64::from(flips_u.observe(vu)) + u64::from(flips_f.observe(vf));
        total_flips += tick_flips;
        sink.add(SOAK_VERDICT_FLIPS, tick_flips);

        // ---- robust CONGEST run under this tick's fault plan.
        let outage = 4 + 2 * (tick % 3); // 4, 6, 8 rounds of downtime
        let plan = FaultPlan::seeded(mix(tick_seed, 0xFA))
            .with_drops(message_drop)
            .with_crash(crash_node, crash_round)
            .with_rejoin(crash_node, crash_round + outage);
        sink.add(SOAK_PIPELINE_RUNS, 1);
        let outcome = solve_token_packaging_robust(
            &g,
            &tokens,
            &ids,
            tau,
            model,
            &plan,
            max_retries,
            &mut sink,
        );
        let entry = recovery.entry(outage).or_insert((0, 0, 0));
        entry.0 += 1;
        let (pipeline, retransmits) = match &outcome {
            Ok((_, stats)) => {
                entry.1 += 1;
                entry.2 += stats.retransmits;
                sink.add(SOAK_RETRANSMITS, stats.retransmits);
                sink.observe(SOAK_RECOVERY_ROUNDS, outage as u64);
                ("ok", stats.retransmits)
            }
            Err(_) => {
                sink.add(SOAK_PIPELINE_FAILURES, 1);
                ("overwhelmed", 0)
            }
        };

        if log.enabled() {
            let rec = RunRecord::new("e15", &format!("tick{tick}"))
                .param("tick", tick)
                .param("outage", outage)
                .param("ingested", ingested)
                .param("verdict_u", verdict_name(vu))
                .param("verdict_far", verdict_name(vf))
                .param("outcome", pipeline);
            log.write(&rec, &sink).expect("metrics write");
        }

        t_ticks.push_row(vec![
            tick.to_string(),
            ingested.to_string(),
            dropped.to_string(),
            verdict_name(vu).to_string(),
            verdict_name(vf).to_string(),
            total_flips.to_string(),
            pipeline.to_string(),
            outage.to_string(),
            retransmits.to_string(),
        ]);
        tick += 1;
    }

    let mut t_recovery = Table::new(
        "E15: recovery-time histogram (scheduled crash/rejoin cycles)",
        "Downtime rounds per scheduled outage vs how many of those cycles the \
         outage-widened retry policy absorbed (run completed with exact packages). \
         `recovered` must equal `scheduled` — a recoverable outage never surfaces \
         as FaultOverwhelmed — and mean retransmits grow with the outage length, \
         the price of bridging the gap."
            .to_string(),
        &[
            "outage rounds",
            "scheduled",
            "recovered",
            "mean retransmits",
        ],
    );
    for (outage, (scheduled, recovered, retx)) in &recovery {
        t_recovery.push_row(vec![
            outage.to_string(),
            scheduled.to_string(),
            recovered.to_string(),
            fmt_f(*retx as f64 / (*recovered).max(1) as f64),
        ]);
    }

    vec![t_ticks, t_recovery]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_obs::keys::STREAM_PUSHES;

    #[test]
    fn quick_soak_holds_the_e15_verdict() {
        let tables = run(Scale::Quick, &mut MetricsLog::disabled());
        assert_eq!(tables.len(), 2);
        crate::verdict::check("e15", &tables).unwrap();
    }

    #[test]
    fn soak_is_deterministic() {
        let a = run(Scale::Quick, &mut MetricsLog::disabled());
        let b = run(Scale::Quick, &mut MetricsLog::disabled());
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_log_one_record_per_tick() {
        let mut log = MetricsLog::buffer();
        let tables = run(Scale::Quick, &mut log);
        assert_eq!(log.records(), tables[0].rows.len());
        for line in log.lines() {
            assert!(line.starts_with("{\"schema\":\"dut-metrics/1\""));
            assert!(line.contains("\"experiment\":\"e15\""));
            assert!(line.contains(SOAK_TICKS));
            assert!(line.contains(STREAM_PUSHES));
            assert!(line.contains(SOAK_RECOVERY_ROUNDS));
        }
        // Logging must not perturb the soak.
        let plain = run(Scale::Quick, &mut MetricsLog::disabled());
        assert_eq!(plain, tables);
    }

    #[test]
    fn wall_clock_mode_runs_at_least_one_tick_with_identical_contents() {
        let mut log = MetricsLog::disabled();
        let timed = run_soak(Scale::Quick, &mut log, Some(Duration::ZERO));
        assert!(!timed[0].rows.is_empty());
        // Tick t is a pure function of t: the wall-clock run's prefix
        // must match the fixed-budget run row for row.
        let fixed = run(Scale::Quick, &mut MetricsLog::disabled());
        for (a, b) in timed[0].rows.iter().zip(&fixed[0].rows) {
            assert_eq!(a, b);
        }
    }
}
