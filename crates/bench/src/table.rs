//! Minimal markdown-table rendering for experiment output.

use std::fmt;

/// A titled table with a caption tying it to the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (e.g. "E4: threshold tester, Theorem 1.2").
    pub title: String,
    /// One-line description of what the rows show and what to look for.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of pre-formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, caption: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            caption: caption.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Serializes the table as a JSON object (all cells are strings, so
    /// no escaping subtleties beyond the standard string escapes).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"title\":");
        json_string(&mut out, &self.title);
        out.push_str(",\"caption\":");
        json_string(&mut out, &self.caption);
        out.push_str(",\"headers\":");
        json_string_array(&mut out, &self.headers);
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string_array(&mut out, row);
        }
        out.push_str("]}");
        out
    }
}

/// Serializes a slice of tables as a pretty-ish JSON array (one table
/// per line), replacing the previous `serde_json::to_string_pretty`.
pub fn tables_to_json(tables: &[Table]) -> String {
    let mut out = String::from("[\n");
    for (i, t) in tables.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&t.to_json());
        if i + 1 < tables.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_string_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(out, s);
    }
    out.push(']');
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {}", self.title)?;
        writeln!(f)?;
        writeln!(f, "{}", self.caption)?;
        writeln!(f)?;
        // Column widths for aligned markdown.
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        writeln!(f, "{}", render_row(&self.headers))?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "| {} |", sep.join(" | "))?;
        for row in &self.rows {
            writeln!(f, "{}", render_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float to 4 significant decimals for table cells.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("T", "cap", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("### T"));
        assert!(s.contains("| a | b |"));
        assert!(s.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("T", "cap", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(0.12345), "0.1235");
        assert_eq!(fmt_f(2.34567), "2.346");
        assert_eq!(fmt_f(123456.0), "123456");
    }
}
