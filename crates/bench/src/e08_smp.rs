//! E8 — the asymmetric-error Equality protocol (Lemma 7.3), plus the
//! Theorem 7.2 lower bound for context.
//!
//! Sweeps input length `n` and measures: communication (must scale as
//! `√(τδn)` and respect the upper bound), acceptance on equal inputs
//! (always accepted — error 0 ≤ δ), and rejection on one-bit-apart
//! inputs (must be ≥ τδ). Codewords are precomputed once per instance
//! (the expensive matrix product); each trial then costs O(t).

use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_core::montecarlo::trial_rng;
use dut_core::montecarlo::ErrorEstimate;
use dut_lowerbound::theorem_7_2_bound;
use dut_smp::{EqualityProtocol, PublicCoinEquality, SmpProtocol};
use rand::Rng;

/// Runs E8.
pub fn run(scale: Scale) -> Vec<Table> {
    let tau = 2.0;
    let delta = 0.05;
    let ns: Vec<usize> = scale.pick(
        vec![1 << 8, 1 << 12],
        vec![1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16],
    );
    let trials = scale.pick(60_000, 250_000);

    let mut t = Table::new(
        "E8: SMP Equality with asymmetric error (Lemma 7.3 vs Theorem 7.2)",
        "τ = 2, δ = 0.05. Upper bound: the torus-chunk protocol with cost \
         t + 2log(6m₀) = O(√(τδn)); lower bound: Ω(√(f(τ)δn)) bits (Θ-constants 1). \
         NO instances are one-bit flips — the worst case. `rej(NO)` must reach τδ = 0.1; \
         equal inputs are never rejected (error 0 ≤ δ).",
        &[
            "n bits",
            "cost bits",
            "√(24τδn)",
            "lower bound",
            "rej(NO) measured",
            "τδ target",
        ],
    );

    for &n in &ns {
        let protocol = EqualityProtocol::new(n, tau, delta, 800 + n as u64).expect("valid");
        // One worst-case NO pair, codewords precomputed once.
        let mut rng = trial_rng(801 ^ n as u64);
        let words = n.div_ceil(64);
        let mut x: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
        if n % 64 != 0 {
            x[words - 1] &= (1u64 << (n % 64)) - 1;
        }
        let mut y = x.clone();
        y[0] ^= 1;
        let ex = protocol.encode_input(&x);
        let ey = protocol.encode_input(&y);

        let mut ra = trial_rng(802 ^ n as u64);
        let mut rb = trial_rng(803 ^ n as u64);
        let mut rejections = 0usize;
        for _ in 0..trials {
            let ma = protocol.alice_from_encoded(&ex, &mut ra);
            let mb = protocol.bob_from_encoded(&ey, &mut rb);
            if !protocol.referee(&ma, &mb) {
                rejections += 1;
            }
        }
        let rej_no = ErrorEstimate::from_counts(trials, rejections, 1.96);

        t.push_row(vec![
            n.to_string(),
            protocol.message_bits_bound().to_string(),
            fmt_f((24.0 * tau * delta * n as f64).sqrt()),
            fmt_f(theorem_7_2_bound(n, tau, delta)),
            format!(
                "{} [{}, {}]",
                fmt_f(rej_no.rate),
                fmt_f(rej_no.lower),
                fmt_f(rej_no.upper)
            ),
            fmt_f(tau * delta),
        ]);
    }

    // Contrast: public coins make Equality exponentially cheaper — the
    // private-coin √n-type cost is the price of unshared randomness.
    let mut contrast = Table::new(
        "E8b: private vs public coins — what the √(τδn) buys",
        "With shared randomness, `r` hash bits reject distinct inputs w.p. 1 − 2^{−r} \
         regardless of n (Newman-style); the paper's model forbids shared coins, and \
         Theorem 7.2 shows the gap is inherent.",
        &[
            "n bits",
            "private-coin bits (Lemma 7.3)",
            "public-coin bits (rej ≥ 0.9)",
        ],
    );
    for &n in &ns {
        let private = EqualityProtocol::new(n, tau, delta, 800 + n as u64)
            .expect("valid")
            .message_bits_bound();
        // 4 hash bits give rejection 1 − 2^{-4} = 0.9375 ≥ 0.9.
        let public = PublicCoinEquality::new(n, 4, 1).message_bits_bound();
        contrast.push_row(vec![n.to_string(), private.to_string(), public.to_string()]);
    }

    // The [ACT18] referee model the paper's §1.1 contrasts against:
    // one sample per player, ℓ bits to the referee, arbitrary referee
    // decision — measure the players-vs-bits trade-off.
    let mut referee = Table::new(
        "E8c: the [ACT18] referee model — players vs bits per player",
        "One sample per player, ℓ-bit messages, collision-counting referee over a shared \
         random partition; n = 2^10, ε = 1. `k used` = 4× the k = n/(2^{ℓ/2}ε²) theory \
         count; both error sides (300 runs) reach ≤ 1/3 for ℓ ≥ 4 — at ℓ = 2 the hidden \
         Θ-constant bites, as the small-B variance analysis predicts. The paper's \
         0-round model instead fixes the decision rule and gives each player only one \
         output bit — the two models trade referee power against sample locality.",
        &["ℓ bits", "theory k", "k used", "err(U)", "err(far)"],
    );
    {
        use dut_distributions::families::paninski_far;
        use dut_distributions::DiscreteDistribution;
        use dut_smp::referee::{Decision, RefereeUniformityProtocol};
        let n = 1 << 10;
        let eps = 1.0;
        let trials = scale.pick(120, 300);
        let uniform = DiscreteDistribution::uniform(n);
        let far = paninski_far(n, eps).expect("valid far instance");
        for ell in [2u32, 4, 6, 8, 10] {
            let theory = RefereeUniformityProtocol::theory_players(n, ell, eps);
            let k = (4.0 * theory).ceil() as usize;
            let protocol = RefereeUniformityProtocol::new(n, k.max(4), ell, eps);
            let mut rng = trial_rng(809 + ell as u64);
            let e_u = (0..trials)
                .filter(|_| protocol.run(&uniform, &mut rng).0 != Decision::Accept)
                .count() as f64
                / trials as f64;
            let e_f = (0..trials)
                .filter(|_| protocol.run(&far, &mut rng).0 != Decision::Reject)
                .count() as f64
                / trials as f64;
            referee.push_row(vec![
                ell.to_string(),
                fmt_f(theory),
                k.to_string(),
                fmt_f(e_u),
                fmt_f(e_f),
            ]);
        }
    }
    vec![t, contrast, referee]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_meets_bounds() {
        let tables = run(Scale::Quick);
        assert!(!tables[0].rows.is_empty());
        crate::verdict::check("e8", &tables).unwrap();
    }
}
