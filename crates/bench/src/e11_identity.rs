//! E11 — identity testing via the filter reduction (§1).
//!
//! Tests equality to a known non-uniform reference η (a Zipf law) by
//! filtering samples into the slot domain and running (a) the
//! centralized collision-counting tester and (b) the distributed
//! threshold tester on the filtered stream — demonstrating that the
//! reduction "continues to work in the distributed setting" because
//! each node applies the filter locally with private randomness.

use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_core::baselines::CollisionCountTester;
use dut_core::decision::Decision;
use dut_core::identity::{FilteredOracle, IdentityFilter};
use dut_core::montecarlo::{estimate_failure_rate, trial_rng};
use dut_core::zero_round::ThresholdNetworkTester;
use dut_distributions::distance::l1_distance;
use dut_distributions::DiscreteDistribution;

fn zipf(n: usize) -> DiscreteDistribution {
    DiscreteDistribution::from_weights((1..=n).map(|i| 1.0 / i as f64).collect())
        .expect("valid weights")
}

/// Mixes η with a permuted copy to get a μ at the requested L1 distance
/// from η.
fn perturbed(eta: &DiscreteDistribution, epsilon: f64) -> DiscreteDistribution {
    let n = eta.domain_size();
    // Reverse-permute η and mix: distance grows linearly in the weight.
    let perm: Vec<usize> = (0..n).rev().collect();
    let reversed = eta.permute(&perm);
    let full = l1_distance(eta, &reversed).expect("same domain");
    let beta = (epsilon / full).min(1.0);
    eta.mix(&reversed, beta).expect("same domain")
}

/// Runs E11.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = 1 << 10;
    let slots_per_element = 64;
    let eps = 0.6;
    let trials = scale.pick(600, 3_000);

    let eta = zipf(n);
    let filter = IdentityFilter::new(&eta, slots_per_element).expect("valid filter");
    let g = filter.output_domain_size();
    let mu_far = perturbed(&eta, eps);

    let mut t = Table::new(
        "E11: identity testing to a Zipf reference via the filter reduction (§1)",
        format!(
            "η = Zipf(2^10), slot domain g = {g}, rounding L1 error = {:.4}. Rows test \
             μ = η (expect accept) and μ with ‖μ−η‖₁ = {eps} (expect reject), through \
             the filter + a uniformity tester. Centralized = collision counting with \
             3√g/ε'² samples; distributed = threshold network (exact plan).",
            filter.rounding_l1_error()
        ),
        &["tester", "input", "expected", "error rate"],
    );

    let eps_eff = eps - filter.rounding_l1_error() - 0.05;
    let central = CollisionCountTester::plan(g, eps_eff, 3.0).expect("plannable");

    for (label, mu, expect) in [
        ("centralized", &eta, Decision::Accept),
        ("centralized", &mu_far, Decision::Reject),
    ] {
        let filter_c = filter.clone();
        let mu_c = mu.clone();
        let err = estimate_failure_rate(trials, 1101, move |seed| {
            let mut rng = trial_rng(seed);
            let oracle = FilteredOracle::new(&filter_c, &mu_c);
            central.run(&oracle, &mut rng) != expect
        })
        .expect("trials > 0");
        t.push_row(vec![
            label.to_string(),
            if expect == Decision::Accept {
                "η".into()
            } else {
                "ε-far μ".into()
            },
            expect.to_string(),
            format!(
                "{} [{}, {}]",
                fmt_f(err.rate),
                fmt_f(err.lower),
                fmt_f(err.upper)
            ),
        ]);
    }

    // Distributed: threshold network over the slot domain.
    let k = scale.pick(60_000, 120_000);
    let dist_trials = scale.pick(12, 25);
    if let Ok(network) = ThresholdNetworkTester::plan(g, k, eps_eff, 1.0 / 3.0) {
        for (mu, expect) in [(&eta, Decision::Accept), (&mu_far, Decision::Reject)] {
            let mut rng = trial_rng(1102);
            let oracle = FilteredOracle::new(&filter, mu);
            let errors = (0..dist_trials)
                .filter(|_| network.run(&oracle, &mut rng).decision != expect)
                .count();
            t.push_row(vec![
                format!("distributed (k={k})"),
                if expect == Decision::Accept {
                    "η".into()
                } else {
                    "ε-far μ".into()
                },
                expect.to_string(),
                format!("{errors}/{dist_trials}"),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_all_error_rates_low() {
        let tables = run(Scale::Quick);
        assert!(tables[0].rows.len() >= 2);
        crate::verdict::check("e11", &tables).unwrap();
    }
}
