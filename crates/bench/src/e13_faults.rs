//! E13 — fault injection: the ECC-hardened CONGEST tester under a
//! drop/flip sweep.
//!
//! Every message of the robust tester travels as a Justesen codeword
//! (`dut-congest::JustesenCodec`), the residue/vote/verdict phases run
//! over the ack/retry tree primitives, and the forwarding phase is
//! guarded by a token-conservation check. The sweep measures, per fault
//! configuration: how many runs survive, how many wire bits the codec
//! corrected, how many retransmissions the ARQ layer spent, and whether
//! the surviving runs still separate uniform from far inputs.
//!
//! Predictions: bit flips below the certified correction radius are
//! absorbed transparently (all runs survive, decisions unperturbed);
//! drops are recovered by retries in the reliable phases but are fatal
//! when they hit the retry-free forwarding pipeline — survival decays
//! with the drop rate, yet a surviving run's packaging is exact, so
//! accuracy never degrades silently.

use crate::metrics::MetricsLog;
use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_congest::CongestUniformityTester;
use dut_core::decision::Decision;
use dut_distributions::families::paninski_far;
use dut_distributions::DiscreteDistribution;
use dut_netsim::fault::FaultPlan;
use dut_netsim::topology;
use dut_obs::{MemorySink, RunRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E13, appending one `dut-metrics/1` record per robust tester run
/// to `log` (params: drop, flip, input, trial, outcome; the
/// `congest.robust.*` / `congest.ecc.*` counters carry the
/// fault-handling totals).
pub fn run(scale: Scale, log: &mut MetricsLog) -> Vec<Table> {
    // The smallest plannable instance (s = 32 samples per node): robust
    // runs Justesen-decode every message, so the sweep stays at a few
    // hundred nodes.
    let n = 2048usize;
    let k = 250usize;
    let eps = 1.0;
    let p = 1.0 / 3.0;
    let s = 32;
    let max_retries = 8;
    let trials = scale.pick(3usize, 8);
    // (drop rate, flip rate) cells: a fault-free control, flips-only
    // (absorbed by the code), drops-only (retried or fatal), and mixed.
    let configs: Vec<(f64, f64)> = scale.pick(
        vec![(0.0, 0.0), (0.0, 3e-4), (5e-4, 0.0), (5e-4, 3e-4)],
        vec![
            (0.0, 0.0),
            (0.0, 1e-4),
            (0.0, 3e-4),
            (2e-4, 0.0),
            (5e-4, 0.0),
            (2e-3, 0.0),
            (5e-4, 3e-4),
        ],
    );

    let tester = CongestUniformityTester::plan(n, k, eps, p, s).expect("plannable");
    let g = topology::grid(10, 25);
    let uniform = DiscreteDistribution::uniform(n);
    let far = paninski_far(n, eps).expect("valid far instance");

    let mut t = Table::new(
        "E13: CONGEST tester under fault injection (drops + bit flips)",
        format!(
            "n = 2^11, k = 250, s = 32, ε = 1, τ = {}, grid 10x25, retries ≤ {max_retries}. \
             Justesen-coded messages correct flips below the certified radius; the ARQ \
             layer retries dropped residue/vote/verdict messages; forwarding losses fail \
             the token-conservation check. Surviving runs package exactly, so separation \
             must match the fault-free row.",
            tester.tau(),
        ),
        &[
            "drop",
            "flip",
            "survived",
            "corrected bits",
            "decode fails",
            "retransmits",
            "rejects(U)",
            "rejects(far)",
        ],
    );

    let mut rng = StdRng::seed_from_u64(1301);
    let mut sink = MemorySink::new();
    for (ci, &(drop, flip)) in configs.iter().enumerate() {
        let total = 2 * trials;
        let mut survived = 0usize;
        let mut corrected = 0u64;
        let mut decode_fails = 0u64;
        let mut retransmits = 0u64;
        let mut rej_u = 0usize;
        let mut rej_f = 0usize;
        let mut ok_u = 0usize;
        let mut ok_f = 0usize;
        for trial in 0..trials {
            for (input, dist) in [("uniform", &uniform), ("far", &far)] {
                // One deterministic fault stream per (cell, trial,
                // input); the sampling RNG advances across the sweep.
                let fault_seed =
                    0xE13_0000 + (ci as u64) * 64 + (trial as u64) * 2 + u64::from(input == "far");
                let plan = FaultPlan::seeded(fault_seed)
                    .with_drops(drop)
                    .with_flips(flip);
                sink.reset();
                let outcome =
                    tester.run_robust_observed(&g, dist, &mut rng, &plan, max_retries, &mut sink);
                let outcome_name = match &outcome {
                    Ok(_) => "ok",
                    Err(_) => "overwhelmed",
                };
                if let Ok(r) = &outcome {
                    survived += 1;
                    corrected += r.stats.corrected_bits;
                    decode_fails += r.stats.decode_failures;
                    retransmits += r.stats.retransmits;
                    let reject = r.run.decision == Decision::Reject;
                    if input == "uniform" {
                        ok_u += 1;
                        rej_u += usize::from(reject);
                    } else {
                        ok_f += 1;
                        rej_f += usize::from(reject);
                    }
                }
                if log.enabled() {
                    let rec = RunRecord::new("e13", &format!("drop{drop}/flip{flip}/{input}"))
                        .param("n", n)
                        .param("k", k)
                        .param("drop", drop)
                        .param("flip", flip)
                        .param("trial", trial)
                        .param("outcome", outcome_name);
                    log.write(&rec, &sink).expect("metrics write");
                }
            }
        }
        let denom = survived.max(1) as f64;
        t.push_row(vec![
            fmt_f(drop),
            fmt_f(flip),
            format!("{survived}/{total}"),
            fmt_f(corrected as f64 / denom),
            decode_fails.to_string(),
            fmt_f(retransmits as f64 / denom),
            format!("{rej_u}/{ok_u}"),
            format!("{rej_f}/{ok_f}"),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_faults_absorbed_or_typed() {
        let tables = run(Scale::Quick, &mut MetricsLog::disabled());
        assert!(tables[0].rows.len() >= 2);
        crate::verdict::check("e13", &tables).unwrap();
    }

    #[test]
    fn metrics_log_one_record_per_run() {
        let mut log = MetricsLog::buffer();
        let tables = run(Scale::Quick, &mut log);
        // Quick scale: 4 configs x 3 trials x 2 inputs.
        assert_eq!(log.records(), 4 * 3 * 2);
        for line in log.lines() {
            assert!(line.starts_with("{\"schema\":\"dut-metrics/1\""));
            assert!(line.contains("\"experiment\":\"e13\""));
            assert!(line.contains("\"outcome\":"));
        }
        // Logging must not perturb the sweep.
        let plain = run(Scale::Quick, &mut MetricsLog::disabled());
        assert_eq!(plain, tables);
    }
}
