//! Machine-checkable experiment verdicts.
//!
//! Each experiment module renders tables for humans; this module holds
//! the *invariants* those tables must satisfy for the experiment's
//! paper claim to hold — the same assertions the modules' unit tests
//! make, lifted into one place so that:
//!
//! * the `experiments` binary can re-evaluate every verdict on each
//!   run (`--check` exits non-zero when a verdict regresses from the
//!   recorded `EXPERIMENTS.md` state), and
//! * the per-module tests and the CI smoke lane can never drift apart
//!   — both call [`check`].
//!
//! A verdict failing means the *claim* check failed on this run's
//! numbers, not that the code crashed; the `Err` carries the first
//! violated invariant with the offending row.

use crate::table::Table;

/// The recorded verdict summary, compiled in so the binary needs no
/// filesystem access to know what EXPERIMENTS.md claims.
const EXPERIMENTS_MD: &str = include_str!("../../../EXPERIMENTS.md");

/// Whether `EXPERIMENTS.md` records experiment `id` (canonical form,
/// e.g. `"e7"`) as holding. Parses the "Verdict summary" table: a row
/// `| E7 | ... | **Holds ... |` records `true`; any other verdict
/// records `false`. Returns `None` if the experiment has no recorded
/// row.
pub fn recorded_holds(id: &str) -> Option<bool> {
    let tag = format!("| {} |", id.to_ascii_uppercase());
    for line in EXPERIMENTS_MD.lines() {
        if let Some(rest) = line.strip_prefix(&tag) {
            let verdict = rest.rsplit('|').nth(1).unwrap_or("");
            return Some(verdict.trim_start().starts_with("**Holds"));
        }
    }
    None
}

/// Evaluates experiment `id`'s invariants against its just-rendered
/// `tables`. `Ok(())` means the paper claim held on this run;
/// `Err(reason)` names the first violated invariant.
///
/// # Panics
///
/// Panics on an unknown id (same contract as
/// [`crate::run_experiment`]).
pub fn check(id: &str, tables: &[Table]) -> Result<(), String> {
    match id {
        "e1" => check_e1(tables),
        "e2" => check_e2(tables),
        "e3" => check_e3(tables),
        "e4" => check_e4(tables),
        "e5" => check_e5(tables),
        "e6" => check_e6(tables),
        "e7" => check_e7(tables),
        "e8" => check_e8(tables),
        "e9" => check_e9(tables),
        "e10" => check_e10(tables),
        "e11" => check_e11(tables),
        "e12" => check_e12(tables),
        "e13" => check_e13(tables),
        "e14" => check_e14(tables),
        "e15" => check_e15(tables),
        "e16" => check_e16(tables),
        other => panic!("unknown experiment id: {other}"),
    }
}

// ------------------------------------------------------------- helpers

fn fail(table: &Table, row: &[String], what: &str) -> String {
    format!("{}: {what} (row {row:?})", table.title)
}

fn num(table: &Table, row: &[String], col: usize) -> Result<f64, String> {
    row.get(col)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| fail(table, row, &format!("column {col} is not a number")))
}

/// Parses the leading number of a `"rate [lo, hi]"` or `"x/y"` cell.
fn leading_num(table: &Table, row: &[String], col: usize) -> Result<f64, String> {
    row.get(col)
        .and_then(|c| c.split([' ', '/']).next())
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| fail(table, row, &format!("column {col} has no leading number")))
}

/// Parses an `"x/y"` counter cell.
fn ratio_cell(table: &Table, row: &[String], col: usize) -> Result<(usize, usize), String> {
    let parse = || {
        let (a, b) = row.get(col)?.split_once('/')?;
        Some((a.parse().ok()?, b.parse().ok()?))
    };
    parse().ok_or_else(|| fail(table, row, &format!("column {col} is not x/y")))
}

/// Parses the `[lo, hi]` interval of a `"rate [lo, hi]"` cell.
fn interval(table: &Table, row: &[String], col: usize) -> Result<(f64, f64), String> {
    let parse = || {
        let cell = row.get(col)?;
        let inner = cell.split_once('[')?.1.strip_suffix(']')?;
        let (lo, hi) = inner.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    };
    parse().ok_or_else(|| fail(table, row, &format!("column {col} is not rate [lo, hi]")))
}

// ------------------------------------------------------ per-experiment

/// E1 (Lemma 3.4): every completeness and soundness row shows ok.
fn check_e1(tables: &[Table]) -> Result<(), String> {
    for t in tables {
        if t.rows.is_empty() {
            return Err(format!("{}: no rows", t.title));
        }
        for row in &t.rows {
            if row.last().map(String::as_str) != Some("true") {
                return Err(fail(t, row, "bound violated"));
            }
        }
    }
    Ok(())
}

/// E2 (Theorem 3.1): s(s−1)/(2δn) ≤ 1, and > 0.8 once s ≥ 10.
fn check_e2(tables: &[Table]) -> Result<(), String> {
    let t = &tables[0];
    for row in &t.rows {
        let ratio = num(t, row, 3)?;
        if ratio > 1.0 + 1e-9 {
            return Err(fail(t, row, "ratio above 1"));
        }
        if num(t, row, 2)? >= 10.0 && ratio <= 0.8 {
            return Err(fail(t, row, "ratio below 0.8 at nontrivial s"));
        }
    }
    Ok(())
}

/// E3 (Theorem 1.1): completeness protected, per-node separation, and
/// the Monte-Carlo cross-check brackets the exact rejection rate.
fn check_e3(tables: &[Table]) -> Result<(), String> {
    let t = &tables[0];
    for row in &t.rows {
        if row[4] == "-" {
            continue; // honestly-reported plan failure
        }
        if num(t, row, 7)? >= 0.4 {
            return Err(fail(t, row, "completeness error too high"));
        }
        let (pu, pf) = (num(t, row, 4)?, num(t, row, 5)?);
        if pf <= pu {
            return Err(fail(t, row, "no per-node separation"));
        }
        let (lo, hi) = interval(t, row, 6)?;
        if pf < lo - 1e-4 || pf > hi + 1e-4 {
            return Err(fail(t, row, "MC interval misses the exact rate"));
        }
    }
    Ok(())
}

/// E4 (Theorem 1.2): both error sides ≤ 0.4 and threshold beats AND
/// and centralized sample counts.
fn check_e4(tables: &[Table]) -> Result<(), String> {
    let t = &tables[0];
    for row in &t.rows {
        if row[4] == "-" {
            continue;
        }
        if num(t, row, 7)? > 0.4 || num(t, row, 8)? > 0.4 {
            return Err(fail(t, row, "error side above 0.4"));
        }
    }
    let c = &tables[1];
    for row in &c.rows {
        let thr = num(c, row, 1)?;
        if thr >= num(c, row, 3)? {
            return Err(fail(c, row, "threshold not below centralized"));
        }
        if let Ok(and) = row[2].parse::<f64>() {
            if thr > and {
                return Err(fail(c, row, "threshold not below AND"));
            }
        }
    }
    Ok(())
}

/// E5 (§4 + Lemma 4.1): cost-law constant stable, AND strictly
/// costlier, lemma never violated.
fn check_e5(tables: &[Table]) -> Result<(), String> {
    let t = &tables[0];
    let mut ratios = Vec::new();
    for row in &t.rows {
        ratios.push(num(t, row, 4)?);
    }
    let spread = ratios.iter().cloned().fold(f64::MIN, f64::max)
        / ratios.iter().cloned().fold(f64::MAX, f64::min);
    // NaN-propagating on purpose: a NaN spread must fail the check.
    if !matches!(spread.partial_cmp(&2.0), Some(std::cmp::Ordering::Less)) {
        return Err(format!(
            "{}: cost-law constant varies too much ({ratios:?})",
            t.title
        ));
    }
    let a = &tables[1];
    for row in &a.rows {
        if num(a, row, 4)? <= 1.0 {
            return Err(fail(a, row, "AND rule not strictly costlier"));
        }
    }
    let l = &tables[2];
    for row in &l.rows {
        if num(l, row, 2)? > 1.0 + 1e-9 {
            return Err(fail(l, row, "Lemma 4.1 violated"));
        }
    }
    Ok(())
}

/// E6 (Theorems 5.1 + 1.4): rounds stay O(D + τ) and far inputs
/// reject at least as often as uniform.
fn check_e6(tables: &[Table]) -> Result<(), String> {
    // Same invariants for E6 (materialized topologies) and E6b
    // (implicit families) — the protocol must not care how neighbor
    // lists are produced.
    for t in tables {
        for row in &t.rows {
            if num(t, row, 4)? >= 10.0 {
                return Err(fail(t, row, "rounds not O(D + tau)"));
            }
            let (ru, _) = ratio_cell(t, row, 7)?;
            let (rf, _) = ratio_cell(t, row, 8)?;
            if rf < ru {
                return Err(fail(t, row, "no separation"));
            }
        }
    }
    Ok(())
}

/// E7 (§6): MIS and gathering bounds hold on every feasible topology,
/// with far/uniform separation.
fn check_e7(tables: &[Table]) -> Result<(), String> {
    let t = &tables[0];
    for row in &t.rows {
        if row[1] == "—" {
            continue; // honestly-reported infeasible topology
        }
        if num(t, row, 2)? > num(t, row, 3)? {
            return Err(fail(t, row, "MIS bound violated"));
        }
        if num(t, row, 4)? < num(t, row, 5)? {
            return Err(fail(t, row, "gathering bound violated"));
        }
        let (ru, _) = ratio_cell(t, row, 7)?;
        let (rf, _) = ratio_cell(t, row, 8)?;
        if rf < ru {
            return Err(fail(t, row, "no separation"));
        }
    }
    Ok(())
}

/// E8 (Lemma 7.3 vs Theorem 7.2): cost between the bounds and NO-pair
/// rejection reaches the τδ target.
fn check_e8(tables: &[Table]) -> Result<(), String> {
    let t = &tables[0];
    for row in &t.rows {
        let cost = num(t, row, 1)?;
        if cost > 3.0 * num(t, row, 2)? + 40.0 {
            return Err(fail(t, row, "cost above the upper-bound shape"));
        }
        if cost < num(t, row, 3)? {
            return Err(fail(t, row, "cost below the lower bound"));
        }
        if leading_num(t, row, 4)? < 0.8 * num(t, row, 5)? {
            return Err(fail(t, row, "rejection below the τδ target"));
        }
    }
    Ok(())
}

/// E9 (Lemma 2.1): lhs/rhs ≥ 1 on the whole grid.
fn check_e9(tables: &[Table]) -> Result<(), String> {
    let t = &tables[0];
    for row in &t.rows {
        if num(t, row, 4)? < 1.0 {
            return Err(fail(t, row, "Lemma 2.1 violated"));
        }
    }
    Ok(())
}

/// E10 (centralized baselines): error decreases with samples and ends
/// under 1/3.
fn check_e10(tables: &[Table]) -> Result<(), String> {
    let t = &tables[0];
    let mut errs = Vec::new();
    for row in &t.rows {
        errs.push(num(t, row, 2)?);
    }
    let (Some(first), Some(last)) = (errs.first(), errs.last()) else {
        return Err(format!("{}: no rows", t.title));
    };
    if last >= first {
        return Err(format!("{}: error not decreasing ({errs:?})", t.title));
    }
    if *last >= 1.0 / 3.0 {
        return Err(format!("{}: final error above 1/3 ({errs:?})", t.title));
    }
    Ok(())
}

/// E11 (§1 filter reduction): every tested pair keeps its error low
/// (rate ≤ 0.4 centralized, count ≤ trials/2 distributed).
fn check_e11(tables: &[Table]) -> Result<(), String> {
    let t = &tables[0];
    if t.rows.len() < 2 {
        return Err(format!("{}: too few rows", t.title));
    }
    for row in &t.rows {
        let err = leading_num(t, row, 3)?;
        let bound = if row[3].contains('/') {
            ratio_cell(t, row, 3)?.1 as f64 / 2.0
        } else {
            0.4
        };
        if err > bound {
            return Err(fail(t, row, "error rate too high"));
        }
    }
    Ok(())
}

/// E12 (Theorem 1.3): error ≈ 1/2 far below √(n/k) and falls across
/// the sweep.
fn check_e12(tables: &[Table]) -> Result<(), String> {
    let t = &tables[0];
    let (Some(first), Some(last)) = (t.rows.first(), t.rows.last()) else {
        return Err(format!("{}: no rows", t.title));
    };
    let first_err = num(t, first, 2)?;
    let last_err = num(t, last, 2)?;
    if first_err <= 0.3 {
        return Err(fail(t, first, "below-threshold testers should fail"));
    }
    if last_err >= first_err {
        return Err(fail(t, last, "no error transition across the sweep"));
    }
    Ok(())
}

/// E13 (fault injection): the fault-free control is clean and
/// sub-radius flips are fully absorbed by the codec.
fn check_e13(tables: &[Table]) -> Result<(), String> {
    let t = &tables[0];
    if t.rows.len() < 2 {
        return Err(format!("{}: too few rows", t.title));
    }
    let control = &t.rows[0];
    let (survived, total) = ratio_cell(t, control, 2)?;
    if survived != total {
        return Err(fail(t, control, "fault-free runs must all survive"));
    }
    if control[3] != "0" || control[5] != "0" {
        return Err(fail(t, control, "corrections/retransmits without faults"));
    }
    let flips = &t.rows[1];
    let (survived, total) = ratio_cell(t, flips, 2)?;
    if survived != total {
        return Err(fail(t, flips, "sub-radius flips must be corrected"));
    }
    if num(t, flips, 3)? <= 0.0 {
        return Err(fail(t, flips, "flips must actually be injected"));
    }
    if flips[4] != "0" {
        return Err(fail(t, flips, "decode failures below the radius"));
    }
    Ok(())
}

/// E14 (streaming service): every shard count sustains positive
/// throughput, verdicts are bit-identical across shard counts, and the
/// coordinator separates uniform from Paninski-far traffic.
fn check_e14(tables: &[Table]) -> Result<(), String> {
    let perf = &tables[0];
    if perf.rows.is_empty() {
        return Err(format!("{}: no rows", perf.title));
    }
    for row in &perf.rows {
        if num(perf, row, 3)? <= 0.0 {
            return Err(fail(perf, row, "non-positive throughput"));
        }
    }
    let sep = &tables[1];
    if sep.rows.len() < 2 {
        return Err(format!("{}: too few rows", sep.title));
    }
    for row in &sep.rows {
        if row[4] != "true" {
            return Err(fail(sep, row, "verdict differs across shard counts"));
        }
        let expect = match row[0].as_str() {
            "uniform" => "Uniform",
            "far" => "Far",
            other => return Err(fail(sep, row, &format!("unknown input {other}"))),
        };
        if row[2] != expect {
            return Err(fail(sep, row, "coordinator verdict misses the input"));
        }
    }
    Ok(())
}

/// E15 (soak harness): zero silent verdict flips across the horizon,
/// resolved verdicts match the traffic (and end resolved), every
/// scheduled crash/rejoin cycle recovered, and per-tick retransmits
/// stay flat (second-half mean ≤ 2x first-half mean + 8).
fn check_e15(tables: &[Table]) -> Result<(), String> {
    let t = &tables[0];
    if t.rows.len() < 4 {
        return Err(format!("{}: too few ticks", t.title));
    }
    let mut retx = Vec::new();
    for row in &t.rows {
        if row[3] == "Far" {
            return Err(fail(t, row, "uniform traffic resolved Far"));
        }
        if row[4] == "Uniform" {
            return Err(fail(t, row, "far traffic resolved Uniform"));
        }
        if row[5] != "0" {
            return Err(fail(t, row, "silent verdict flip"));
        }
        if row[6] != "ok" {
            return Err(fail(t, row, "pipeline run not absorbed"));
        }
        retx.push(num(t, row, 8)?);
    }
    let last = t.rows.last().expect("non-empty");
    if last[3] != "Uniform" || last[4] != "Far" {
        return Err(fail(t, last, "horizon ends with an unresolved verdict"));
    }
    let half = retx.len() / 2;
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    let (early, late) = (mean(&retx[..half]), mean(&retx[half..]));
    if late > 2.0 * early + 8.0 {
        return Err(format!(
            "{}: retransmit growth not bounded (first-half mean {early:.2}, \
             second-half mean {late:.2})",
            t.title
        ));
    }
    let h = &tables[1];
    if h.rows.len() < 2 {
        return Err(format!("{}: recovery histogram too narrow", h.title));
    }
    for row in &h.rows {
        if num(h, row, 1)? != num(h, row, 2)? {
            return Err(fail(h, row, "scheduled outage not recovered"));
        }
    }
    Ok(())
}

/// E16 (conductance testing): expanders accepted, bridged two-cliques
/// rejected — on the plain and on the robust (coded/ARQ, flips
/// injected) pipeline — the realized round count stays within 1.5x the
/// D + ln k/(ε·Φ²) envelope, and the walk census is bit-identical on
/// every engine, clean and faulted.
fn check_e16(tables: &[Table]) -> Result<(), String> {
    let sep = &tables[0];
    if sep.rows.len() < 4 {
        return Err(format!("{}: too few pipeline rows", sep.title));
    }
    let (mut saw_robust, mut saw_accept, mut saw_reject) = (false, false, false);
    for row in &sep.rows {
        let expect = match row[0].as_str() {
            "margulis" => "accept",
            "bridged-cliques" => "reject",
            other => return Err(fail(sep, row, &format!("unknown instance {other}"))),
        };
        if row[3] != expect {
            return Err(fail(sep, row, "verdict misses the instance class"));
        }
        saw_accept |= expect == "accept";
        saw_reject |= expect == "reject";
        saw_robust |= row[1].starts_with("robust");
        if num(sep, row, 8)? > 1.5 {
            return Err(fail(sep, row, "round count exceeds 1.5x the theory bound"));
        }
    }
    if !(saw_accept && saw_reject && saw_robust) {
        return Err(format!(
            "{}: sweep must cover accept, reject, and a robust pipeline row",
            sep.title
        ));
    }
    let ident = &tables[1];
    if ident.rows.len() < 4 {
        return Err(format!("{}: too few engine rows", ident.title));
    }
    let mut fp_by_plan: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
    for row in &ident.rows {
        if row[5] != "yes" {
            return Err(fail(ident, row, "engine diverged from the serial census"));
        }
        match fp_by_plan.entry(row[0].as_str()) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(row[4].as_str());
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != row[4].as_str() {
                    return Err(fail(
                        ident,
                        row,
                        "census fingerprint differs across engines",
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorded_verdicts_cover_all_experiments() {
        for id in crate::ALL_EXPERIMENTS {
            assert!(recorded_holds(id).is_some(), "no recorded verdict for {id}");
        }
        assert_eq!(recorded_holds("e99"), None);
    }

    #[test]
    fn failing_tables_produce_named_violations() {
        let mut t = Table::new("T", "c", &["n", "eps", "s", "delta", "reject", "ok"]);
        t.push_row(vec![
            "16".into(),
            "1".into(),
            "4".into(),
            "0.01".into(),
            "0.5".into(),
            "false".into(),
        ]);
        let err = check("e1", &[t]).unwrap_err();
        assert!(err.contains("bound violated"), "{err}");
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        let _ = check("e99", &[]);
    }
}
