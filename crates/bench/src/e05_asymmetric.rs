//! E5 — asymmetric-cost testers (§4): the `1/‖T‖₂` cost law.
//!
//! Sweeps cost-vector shapes at fixed `(n, k, ε)` and compares the
//! planner's achieved maximum individual cost against the paper's
//! closed form `√n/ε²/‖T‖₂`; also verifies the Lemma 4.1 extremal
//! property numerically on random points.

use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_core::asymmetric::{
    lemma_4_1_check, theory_max_cost_and, theory_max_cost_threshold, AsymmetricAndTester,
    AsymmetricThresholdTester, CostVector,
};
use dut_core::decision::Decision;
use dut_core::executor::MonteCarloConfig;
use dut_core::montecarlo::{sampling_rng, MonteCarlo};
use dut_distributions::families::paninski_far;
use dut_distributions::DiscreteDistribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cost_shape(name: &str, k: usize) -> CostVector {
    let costs: Vec<f64> = match name {
        "uniform" => vec![1.0; k],
        "two-class" => (0..k).map(|i| if i < k / 2 { 4.0 } else { 1.0 }).collect(),
        "power-law" => (0..k).map(|i| 1.0 + (i as f64 / k as f64) * 9.0).collect(),
        other => panic!("unknown cost shape {other}"),
    };
    CostVector::new(costs).expect("valid costs")
}

/// Runs E5.
pub fn run(scale: Scale) -> Vec<Table> {
    run_ctx(scale, None)
}

/// Runs E5, optionally with confidence-sequence error estimation: when
/// `adaptive` is set, the `err(U)` / `err(far)` columns of E5a come
/// from [`MonteCarloConfig::adaptive`] runs (stop threshold ½, the
/// accept/reject midpoint) over a larger trial budget, instead of the
/// fixed dozen-trial serial loop — sharper error estimates for the
/// same or less work, parallel and reproducible at any thread count.
/// The verdict only reads the cost-law columns, so both modes agree on
/// it; the default (`None`) path is bit-identical to the historical
/// output.
pub fn run_ctx(scale: Scale, adaptive: Option<f64>) -> Vec<Table> {
    let n = 1 << 20;
    let k = scale.pick(150_000, 300_000);
    let eps = 0.5;
    let p = 1.0 / 3.0;
    let trials = scale.pick(12, 30);
    let adaptive_budget = scale.pick(48, 200);

    let mut t = Table::new(
        "E5a: asymmetric threshold tester cost (§4.2)",
        "Max individual cost C = max_i s_i·c_i vs the paper's √n/ε²/‖T‖₂ law. The ratio \
         column must be roughly constant across cost shapes (the Θ-constant).",
        &[
            "cost shape",
            "‖T‖₂",
            "planned C",
            "theory C",
            "ratio",
            "err(U)",
            "err(far)",
        ],
    );

    let uniform = DiscreteDistribution::uniform(n);
    let far = paninski_far(n, eps).expect("valid far instance");

    for shape in ["uniform", "two-class", "power-law"] {
        let costs = cost_shape(shape, k);
        let tester = AsymmetricThresholdTester::plan(n, &costs, eps, p).expect("plannable shape");
        let theory = theory_max_cost_threshold(n, &costs, eps);
        let (err_u, err_f) = match adaptive {
            None => {
                let mut rng = StdRng::seed_from_u64(501);
                let err_u = (0..trials)
                    .filter(|_| tester.run(&uniform, &mut rng).decision == Decision::Reject)
                    .count() as f64
                    / trials as f64;
                let err_f = (0..trials)
                    .filter(|_| tester.run(&far, &mut rng).decision == Decision::Accept)
                    .count() as f64
                    / trials as f64;
                (err_u, err_f)
            }
            Some(tol) => {
                let cfg = MonteCarloConfig::adaptive(tol).stop_threshold(0.5);
                let err_u = MonteCarlo::new(adaptive_budget, 501)
                    .config(cfg)
                    .run(|seed| {
                        tester.run(&uniform, &mut sampling_rng(seed)).decision == Decision::Reject
                    })
                    .expect("budget > 0");
                let err_f = MonteCarlo::new(adaptive_budget, 503)
                    .config(cfg)
                    .run(|seed| {
                        tester.run(&far, &mut sampling_rng(seed)).decision == Decision::Accept
                    })
                    .expect("budget > 0");
                (err_u.rate, err_f.rate)
            }
        };
        t.push_row(vec![
            shape.to_string(),
            fmt_f(costs.inverse_norm(2.0)),
            fmt_f(tester.max_cost()),
            fmt_f(theory),
            fmt_f(tester.max_cost() / theory),
            fmt_f(err_u),
            fmt_f(err_f),
        ]);
    }

    let mut and_t = Table::new(
        "E5b: asymmetric AND-rule cost (§4.1) — theory and planner",
        "The closed-form AND cost √2·(ln 1/(1−p))^{1/2m}·m·√n/‖T‖₂ₘ vs the threshold \
         cost — the AND rule pays the m = Θ(C_p/ε²) repetition factor. `planned C` is \
         the practical planner's achieved max cost (completeness pinned at p by \
         Eq. (6)); `pred sound err` is its honest missed-detection prediction.",
        &[
            "cost shape",
            "‖T‖₂ₘ",
            "theory AND C",
            "threshold C",
            "AND/threshold",
            "planned C",
            "pred sound err",
        ],
    );
    for shape in ["uniform", "two-class", "power-law"] {
        let costs = cost_shape(shape, k);
        let m = dut_core::asymmetric::default_and_repetitions(eps, p);
        let and_c = theory_max_cost_and(n, &costs, eps, p);
        let thr_c = theory_max_cost_threshold(n, &costs, eps);
        let (planned_c, sound) = match AsymmetricAndTester::plan(n, &costs, eps, p) {
            Ok(t) => (fmt_f(t.max_cost()), fmt_f(t.predicted_soundness_error())),
            Err(_) => ("—".into(), "—".into()),
        };
        and_t.push_row(vec![
            shape.to_string(),
            fmt_f(costs.inverse_norm(2.0 * m as f64)),
            fmt_f(and_c),
            fmt_f(thr_c),
            fmt_f(and_c / thr_c),
            planned_c,
            sound,
        ]);
    }

    let mut lemma = Table::new(
        "E5c: Lemma 4.1 extremal check",
        "For random X on the constraint manifold Π(1−xᵢ) = c, the symmetric point Y must \
         maximize g(X) = Π(1−a·xᵢ): max over 1000 random X of g(X)/g(Y) must be ≤ 1.",
        &["dim k", "a", "max g(X)/g(Y)"],
    );
    let mut rng = StdRng::seed_from_u64(502);
    for &dim in &[2usize, 3, 5, 8] {
        for &a in &[1.5f64, 2.0, 2.7] {
            let mut worst: f64 = 0.0;
            for _ in 0..1000 {
                let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..0.3 / a)).collect();
                let (gx, gy) = lemma_4_1_check(&x, a);
                worst = worst.max(gx / gy);
            }
            lemma.push_row(vec![dim.to_string(), fmt_f(a), format!("{worst:.6}")]);
        }
    }

    vec![t, and_t, lemma]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_cost_law_and_lemma_hold() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 3);
        crate::verdict::check("e5", &tables).unwrap();
    }
}
