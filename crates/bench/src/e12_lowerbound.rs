//! E12 — the Theorem 1.3 lower bound, empirically.
//!
//! Sweeps the per-node sample count `s` around the `√(n/k)` threshold
//! and reports the best error any threshold rule can achieve (chosen in
//! hindsight — an upper bound on every realizable tester of this form).
//! The transition from "useless" (error ≈ 1/2) to "works" (error ≤ 1/3)
//! must straddle `Θ(√(n/k))`, matching Theorem 1.3 against the
//! Theorem 1.2 upper bound.

use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_lowerbound::experiments::probe_sample_count;
use dut_lowerbound::theorem_1_3_bound;

/// Runs E12.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = 1 << 16;
    let k = 100;
    let eps = 1.0;
    let trials = scale.pick(120, 400);
    let sqrt_nk = (n as f64 / k as f64).sqrt(); // 25.6

    let mut t = Table::new(
        "E12: empirical sample threshold vs Theorem 1.3 (n = 2^16, k = 100, ε = 1)",
        format!(
            "√(n/k) = {sqrt_nk:.1}; Theorem 1.3 lower bound (with log factor) = {:.1}. \
             `best error` is the hindsight-optimal threshold rule's max-side error: it \
             must stay ≈ 1/2 well below √(n/k) and fall under 1/3 above it.",
            theorem_1_3_bound(n, k)
        ),
        &["s/node", "s/√(n/k)", "best error", "best T"],
    );

    let fractions: Vec<f64> = scale.pick(
        vec![0.1, 0.5, 1.0, 2.0],
        vec![0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0],
    );
    for &frac in &fractions {
        let s = ((frac * sqrt_nk) as usize).max(2);
        let point = probe_sample_count(n, k, eps, s, trials, 1201);
        t.push_row(vec![
            s.to_string(),
            fmt_f(s as f64 / sqrt_nk),
            fmt_f(point.best_error),
            point.best_threshold.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_the_transition() {
        let tables = run(Scale::Quick);
        assert!(tables[0].rows.len() >= 2);
        crate::verdict::check("e12", &tables).unwrap();
    }
}
