//! E16 — distributed conductance testing (Fichtenberger–Vasudev) on
//! the fault-hardened CONGEST substrate.
//!
//! A second property-testing workload on the uniformity tester's
//! machinery: every node launches seeded lazy random walks, the
//! endpoint collision statistic is convergecast to an elected root,
//! and the root's exact-integer threshold decision separates
//! Φ-expanders from graphs ε-far from every Φ*-expander.
//!
//! Predictions: (1) the tester **accepts** Margulis expanders and
//! **rejects** bridged two-cliques at the configured (Φ, ε), both on
//! the plain pipeline and on the coded/ARQ robust pipeline under an
//! E13-style flip plan (which must also leave the statistic exactly
//! equal to the fault-free run); (2) the realized round count stays
//! within the O(D + log n/(εΦ²)) envelope; (3) the walk census is
//! bit-identical across the serial, sharded-parallel, and naive
//! reference engines, clean and faulted — the counter-keyed RNG
//! discipline extended to walk coins.

use crate::metrics::MetricsLog;
use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_congest::conductance::walk::{
    run_walks_observed, run_walks_reference_faulted, walk_bandwidth_model, WalkOutcome,
};
use dut_congest::ConductanceTester;
use dut_netsim::engine::RunOptions;
use dut_netsim::fault::FaultPlan;
use dut_netsim::graph::{Graph, ImplicitTopology};
use dut_netsim::topology::{bridged_cliques, MargulisExpander};
use dut_obs::{MemorySink, RunRecord};

const PHI: f64 = 0.1;
const EPS: f64 = 0.5;
const SEED: u64 = 0xE16;

/// An E13-style light flip plan: every flip lands below the Justesen
/// correction radius, so the robust pipeline must absorb all of them.
fn flip_plan() -> FaultPlan {
    FaultPlan::seeded(0xE16_F11D).with_flips(3e-4)
}

/// An order-independent census fingerprint (FNV-1a over the
/// row-major counts), printed so bit-identity is visible in the table.
fn fingerprint(outcome: &WalkOutcome) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for row in &outcome.counts {
        for &c in row {
            h ^= c;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Runs E16, appending one `dut-metrics/1` record per pipeline run to
/// `log` (params: instance, pipeline, k, verdict; the
/// `congest.conductance.*` counters carry the round/bit/token totals).
pub fn run(scale: Scale, log: &mut MetricsLog) -> Vec<Table> {
    let side = scale.pick(8usize, 16);
    let k = side * side;
    // The robust rows Justesen-decode every walk codeword, so they stay
    // small on both scales (the same economy E13 applies).
    let robust_side = 6usize;
    let robust_k = robust_side * robust_side;
    let max_retries = 4;

    let mut sep = Table::new(
        "E16: distributed conductance testing (accept/reject separation + round bound)",
        format!(
            "Φ = {PHI}, ε = {EPS}; plan: ℓ = ⌈12/ε⌉ walks per node, L = ⌈ln k/Φ⌉ lazy \
             rounds. Margulis expanders must be accepted, bridged two-cliques rejected. \
             `bound` is D + ln k/(ε·Φ²) (Θ-constants 1); `ratio` = rounds/bound must stay \
             ≤ 1.5. Robust rows run every phase coded/ARQ under a flip plan (rate 3e-4) \
             at k = {robust_k} and must reproduce the plain statistic exactly.",
        ),
        &[
            "instance",
            "pipeline",
            "k",
            "verdict",
            "collisions",
            "threshold",
            "rounds",
            "bound",
            "ratio",
        ],
    );

    let mut sink = MemorySink::new();
    let instances: Vec<(&str, Graph, usize)> = vec![
        ("margulis", MargulisExpander::new(side).materialize(), k),
        ("bridged-cliques", bridged_cliques(k), k),
        (
            "margulis",
            MargulisExpander::new(robust_side).materialize(),
            robust_k,
        ),
        ("bridged-cliques", bridged_cliques(robust_k), robust_k),
    ];
    for (i, (name, g, kk)) in instances.iter().enumerate() {
        let robust = i >= 2;
        let tester = ConductanceTester::plan(*kk, PHI, EPS).expect("plannable");
        sink.reset();
        let (result, pipeline) = if robust {
            // Plain twin first: the robust run must reproduce it.
            let plain = tester.run(g, SEED).expect("plain twin");
            let (r, stats) = tester
                .run_robust_observed(
                    g,
                    SEED,
                    &flip_plan(),
                    max_retries,
                    &RunOptions::default(),
                    &mut sink,
                )
                .expect("flips below the radius must be absorbed");
            assert_eq!(
                r.collisions, plain.collisions,
                "robust skewed the statistic"
            );
            assert_eq!(r.verdict, plain.verdict);
            assert!(stats.corrected_bits > 0, "flip plan never fired");
            (r, "robust+flips")
        } else {
            let r = tester
                .run_observed(g, SEED, &RunOptions::default(), &mut sink)
                .expect("plain run");
            (r, "plain")
        };
        let bound = tester.round_bound(result.tree_height);
        let ratio = result.rounds as f64 / bound;
        sep.push_row(vec![
            (*name).to_string(),
            pipeline.to_string(),
            kk.to_string(),
            if result.verdict.accepts() {
                "accept".into()
            } else {
                "reject".into()
            },
            result.collisions.to_string(),
            fmt_f(result.threshold),
            result.rounds.to_string(),
            fmt_f(bound),
            fmt_f(ratio),
        ]);
        if log.enabled() {
            let rec = RunRecord::new("e16", &format!("{name}/{pipeline}"))
                .param("k", *kk)
                .param("phi", PHI)
                .param("eps", EPS)
                .param("instance", *name)
                .param("pipeline", pipeline)
                .param(
                    "verdict",
                    if result.verdict.accepts() {
                        "accept"
                    } else {
                        "reject"
                    },
                );
            log.write(&rec, &sink).expect("metrics write");
        }
    }

    // ------------------------------------------------ engine bit-identity
    let ident_k = 36usize;
    let ident_walks = 8u64;
    let ident_len = 16usize;
    let ident_g = MargulisExpander::new(6).materialize();
    let model = walk_bandwidth_model(ident_k, ident_walks);
    let mut ident = Table::new(
        "E16: walk-census bit-identity across engines",
        format!(
            "Margulis side 6 (k = {ident_k}), ℓ = {ident_walks}, L = {ident_len}. The \
             same seed must produce the identical per-source endpoint census on the \
             serial flat engine, the sharded parallel engine, and the naive reference \
             engine — clean and under the E13-style flip plan (faults are keyed by the \
             same counter discipline, so corruption is reproduced, not avoided).",
        ),
        &[
            "plan",
            "engine",
            "collisions",
            "tokens",
            "census fp",
            "match",
        ],
    );
    for (plan_name, plan) in [("clean", FaultPlan::none()), ("flips 3e-4", flip_plan())] {
        let serial = run_walks_observed(
            &ident_g,
            SEED,
            ident_walks,
            ident_len,
            model,
            &RunOptions::default().with_faults(plan.clone()),
            &mut dut_obs::NoopSink,
        )
        .expect("serial walk");
        let engines: Vec<(&str, WalkOutcome)> = vec![
            ("serial", serial.clone()),
            (
                "parallel-2",
                run_walks_observed(
                    &ident_g,
                    SEED,
                    ident_walks,
                    ident_len,
                    model,
                    &RunOptions::parallel(2).with_faults(plan.clone()),
                    &mut dut_obs::NoopSink,
                )
                .expect("parallel walk"),
            ),
            (
                "parallel-4+shard",
                run_walks_observed(
                    &ident_g,
                    SEED,
                    ident_walks,
                    ident_len,
                    model,
                    &RunOptions::parallel(4)
                        .with_shard_delivery(1)
                        .with_faults(plan.clone()),
                    &mut dut_obs::NoopSink,
                )
                .expect("sharded walk"),
            ),
            (
                "reference",
                run_walks_reference_faulted(&ident_g, SEED, ident_walks, ident_len, model, &plan)
                    .expect("reference walk"),
            ),
        ];
        for (engine, outcome) in engines {
            let matches = outcome.counts == serial.counts;
            ident.push_row(vec![
                plan_name.to_string(),
                engine.to_string(),
                outcome.collision_statistic().to_string(),
                outcome.total_tokens().to_string(),
                format!("{:016x}", fingerprint(&outcome)),
                if matches { "yes".into() } else { "NO".into() },
            ]);
        }
    }

    vec![sep, ident]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_separation_and_bit_identity_hold() {
        let tables = run(Scale::Quick, &mut MetricsLog::disabled());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 4);
        assert_eq!(tables[1].rows.len(), 8);
        crate::verdict::check("e16", &tables).unwrap();
    }

    #[test]
    fn metrics_log_one_record_per_pipeline_run() {
        let mut log = MetricsLog::buffer();
        let tables = run(Scale::Quick, &mut log);
        assert_eq!(log.records(), 4);
        for line in log.lines() {
            assert!(line.starts_with("{\"schema\":\"dut-metrics/1\""));
            assert!(line.contains("\"experiment\":\"e16\""));
            assert!(line.contains("\"verdict\":"));
        }
        // Logging must not perturb the sweep.
        let plain = run(Scale::Quick, &mut MetricsLog::disabled());
        assert_eq!(plain, tables);
    }
}
