//! E10 — centralized baselines: samples-to-error curves for the
//! collision-counting tester (Paninski-style) vs the single-collision
//! gap tester, at the `Θ(√n/ε²)` scale.
//!
//! Shows (a) the collision-counting tester reaches error 1/3 at
//! `s ≈ c·√n/ε²`, and (b) the single-collision tester, designed for
//! the distributed small-`s` regime, is *not* competitive centrally —
//! context for why the distributed algorithms count a single collision
//! but a centralized tester counts all of them.

use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_core::baselines::{
    centralized_sample_complexity, CollisionCountTester, SingletonCountTester,
};
use dut_core::decision::Decision;
use dut_core::gap::GapTester;
use dut_core::montecarlo::{estimate_failure_rate, trial_rng};
use dut_distributions::families::paninski_far;
use dut_distributions::DiscreteDistribution;

/// Runs E10.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = 1 << 14;
    let eps = 0.5;
    let trials = scale.pick(2_000, 10_000);
    let sqrt_n_eps = centralized_sample_complexity(n, eps); // √n/ε² = 512

    let multipliers: Vec<f64> = scale.pick(
        vec![0.5, 2.0, 4.0],
        vec![0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0],
    );

    let mut t = Table::new(
        "E10: centralized baselines at n = 2^14, ε = 0.5 (√n/ε² = 512)",
        "max-side error (worse of false-alarm on uniform / missed detection on \
         Paninski-far) vs samples. Collision counting and Paninski's singleton count \
         cross 1/3 within a small multiple of √n/ε²; the single-collision tester is \
         degenerate centrally (its regime is the distributed small-s world).",
        &[
            "s",
            "s/(√n/ε²)",
            "collision-count err",
            "singleton-count err",
            "single-collision err",
        ],
    );

    let uniform = DiscreteDistribution::uniform(n);
    let far = paninski_far(n, eps).expect("valid far instance");

    for &mult in &multipliers {
        let s = (mult * sqrt_n_eps) as usize;
        let counting = CollisionCountTester::with_samples(n, s, eps).expect("valid");
        let cc_u = {
            let u = uniform.clone();
            estimate_failure_rate(trials, 1001, move |seed| {
                counting.run(&u, &mut trial_rng(seed)) == Decision::Reject
            })
            .expect("trials > 0")
            .rate
        };
        let cc_f = {
            let f = far.clone();
            estimate_failure_rate(trials, 1002, move |seed| {
                counting.run(&f, &mut trial_rng(seed)) == Decision::Accept
            })
            .expect("trials > 0")
            .rate
        };
        let singleton = SingletonCountTester::with_samples(n, s, eps).expect("valid");
        let sc_u = {
            let u = uniform.clone();
            estimate_failure_rate(trials, 1005, move |seed| {
                singleton.run(&u, &mut trial_rng(seed)) == Decision::Reject
            })
            .expect("trials > 0")
            .rate
        };
        let sc_f = {
            let f = far.clone();
            estimate_failure_rate(trials, 1006, move |seed| {
                singleton.run(&f, &mut trial_rng(seed)) == Decision::Accept
            })
            .expect("trials > 0")
            .rate
        };
        // Single-collision tester at the same s (δ saturates near 1 for
        // large s; skip when the plan is degenerate).
        let single_err = match GapTester::with_samples(n, s) {
            Ok(g) => {
                let u = uniform.clone();
                let su = estimate_failure_rate(trials, 1003, move |seed| {
                    g.run(&u, &mut trial_rng(seed)) == Decision::Reject
                })
                .expect("trials > 0")
                .rate;
                let f = far.clone();
                let sf = estimate_failure_rate(trials, 1004, move |seed| {
                    g.run(&f, &mut trial_rng(seed)) == Decision::Accept
                })
                .expect("trials > 0")
                .rate;
                fmt_f(su.max(sf))
            }
            Err(_) => "degenerate".to_string(),
        };
        t.push_row(vec![
            s.to_string(),
            fmt_f(mult),
            fmt_f(cc_u.max(cc_f)),
            fmt_f(sc_u.max(sc_f)),
            single_err,
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_tester_improves_with_samples() {
        let tables = run(Scale::Quick);
        assert!(tables[0].rows.len() >= 2);
        crate::verdict::check("e10", &tables).unwrap();
    }
}
