//! The experiment runner: regenerates every quantitative claim of the
//! paper as a markdown table.
//!
//! ```text
//! experiments [--quick] all
//! experiments [--quick] e1 e4 e6
//! experiments --json results.json all
//! experiments --list
//! ```

use dut_bench::{run_experiment, Scale, ALL_EXPERIMENTS};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut ids: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut expect_json_path = false;
    for a in &args {
        if expect_json_path {
            json_path = Some(a.clone());
            expect_json_path = false;
            continue;
        }
        match a.as_str() {
            "--json" => expect_json_path = true,
            "--quick" | "-q" => scale = Scale::Quick,
            "--list" | "-l" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            other if ALL_EXPERIMENTS.contains(&other) => ids.push(other.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: experiments [--quick] [--list] (all | e1 .. e12)+");
                std::process::exit(2);
            }
        }
    }
    if ids.is_empty() {
        eprintln!("usage: experiments [--quick] [--list] (all | e1 .. e12)+");
        std::process::exit(2);
    }
    ids.dedup();

    println!(
        "# Distributed Uniformity Testing — experiment run ({})\n",
        match scale {
            Scale::Quick => "quick scale",
            Scale::Full => "full scale",
        }
    );
    let mut all_tables: Vec<dut_bench::Table> = Vec::new();
    for id in ids {
        let start = Instant::now();
        let tables = run_experiment(&id, scale);
        for table in &tables {
            println!("{table}");
        }
        all_tables.extend(tables);
        println!(
            "_{} finished in {:.1}s_\n",
            id,
            start.elapsed().as_secs_f64()
        );
    }
    if let Some(path) = json_path {
        let json = dut_bench::tables_to_json(&all_tables);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
