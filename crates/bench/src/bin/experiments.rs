//! The experiment runner: regenerates every quantitative claim of the
//! paper as a markdown table.
//!
//! ```text
//! experiments [--quick] all
//! experiments [--quick] e1 e4 e6
//! experiments --json results.json all
//! experiments --metrics metrics.jsonl e6
//! experiments --list
//! ```
//!
//! `--metrics` appends one `dut-metrics/1` JSON object per tester run
//! (for the instrumented experiments; see `docs/METRICS.md`).
//! Experiment ids are zero-pad tolerant: `e06` names `e6`.

use dut_bench::{normalize_id, run_experiment, MetricsLog, Scale, ALL_EXPERIMENTS};
use std::path::Path;
use std::time::Instant;

const USAGE: &str =
    "usage: experiments [--quick] [--list] [--json out.json] [--metrics out.jsonl] \
     (all | e1 .. e13)+";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut ids: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut expect_path_for: Option<&str> = None;
    for a in &args {
        if let Some(flag) = expect_path_for.take() {
            match flag {
                "--json" => json_path = Some(a.clone()),
                _ => metrics_path = Some(a.clone()),
            }
            continue;
        }
        match a.as_str() {
            "--json" => expect_path_for = Some("--json"),
            "--metrics" => expect_path_for = Some("--metrics"),
            "--quick" | "-q" => scale = Scale::Quick,
            "--list" | "-l" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            other => {
                let id = normalize_id(other);
                if ALL_EXPERIMENTS.contains(&id.as_str()) {
                    ids.push(id);
                } else {
                    eprintln!("unknown argument: {other}");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            }
        }
    }
    if let Some(flag) = expect_path_for {
        eprintln!("{flag} needs a path argument");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if ids.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    ids.dedup();

    let mut log = match &metrics_path {
        Some(path) => match MetricsLog::create(Path::new(path)) {
            Ok(log) => log,
            Err(e) => {
                eprintln!("failed to create {path}: {e}");
                std::process::exit(1);
            }
        },
        None => MetricsLog::disabled(),
    };

    println!(
        "# Distributed Uniformity Testing — experiment run ({})\n",
        match scale {
            Scale::Quick => "quick scale",
            Scale::Full => "full scale",
        }
    );
    let mut all_tables: Vec<dut_bench::Table> = Vec::new();
    for id in ids {
        let start = Instant::now();
        let tables = run_experiment(&id, scale, &mut log);
        for table in &tables {
            println!("{table}");
        }
        all_tables.extend(tables);
        println!(
            "_{} finished in {:.1}s_\n",
            id,
            start.elapsed().as_secs_f64()
        );
    }
    if let Some(path) = json_path {
        let json = dut_bench::tables_to_json(&all_tables);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = metrics_path {
        if let Err(e) = log.flush() {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {} metric records to {path}", log.records());
    }
}
