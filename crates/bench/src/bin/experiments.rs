//! The experiment runner: regenerates every quantitative claim of the
//! paper as a markdown table.
//!
//! ```text
//! experiments [--quick] all
//! experiments [--quick] e1 e4 e6
//! experiments --json results.json all
//! experiments --metrics metrics.jsonl e6
//! experiments --check --quick all
//! experiments --threads 8 --checkpoint ck/ e1
//! experiments --list
//! ```
//!
//! `--metrics` appends one `dut-metrics/1` JSON object per tester run
//! (for the instrumented experiments; see `docs/METRICS.md`).
//! `--check` re-derives each experiment's verdict from the freshly
//! generated tables and exits non-zero if an experiment that
//! EXPERIMENTS.md records as **Holds** no longer does — this is the CI
//! smoke lane's regression gate. `--threads N` sets the Monte-Carlo
//! worker count (results are bit-identical at any value; 0 = all
//! cores). `--checkpoint DIR` persists chunk-level Monte-Carlo
//! progress to `DIR/e<N>.jsonl` so interrupted sweeps resume.
//! `--adaptive[=TOL]` turns on confidence-sequence early stopping for
//! the Monte-Carlo experiments (E1/E2/E5): each grid cell stops as
//! soon as its decision threshold is resolved at interval tolerance
//! `TOL` (default 0.002), cutting wall-clock time without changing any
//! verdict; intervals and trial counts do change, so recorded
//! EXPERIMENTS.md tables are regenerated without the flag.
//! `--soak SECS` replaces the E15 soak loop's fixed tick budget with a
//! wall-clock horizon (and implies `e15` when no ids are listed) —
//! tick contents stay seed-pure, so the JSONL audit trail is
//! reproducible per tick at any duration.
//! Experiment ids are zero-pad tolerant: `e06` names `e6`.

use dut_bench::{
    normalize_id, run_experiment_ctx, verdict, ExperimentCtx, MetricsLog, Scale, ALL_EXPERIMENTS,
};
use dut_core::Checkpoint;
use std::path::{Path, PathBuf};
use std::time::Instant;

const USAGE: &str =
    "usage: experiments [--quick] [--list] [--check] [--threads N] [--checkpoint dir] \
     [--adaptive[=TOL]] [--soak SECS] [--json out.json] [--metrics out.jsonl] \
     (all | e1 .. e16)+";

/// Interval tolerance a bare `--adaptive` uses: tight enough that every
/// E1 verdict margin survives, loose enough to stop clear-cut cells
/// after a few chunks.
const DEFAULT_ADAPTIVE_TOL: f64 = 0.002;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut ids: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut adaptive: Option<f64> = None;
    let mut soak: Option<std::time::Duration> = None;
    let mut check = false;
    let mut expect_value_for: Option<&str> = None;
    for a in &args {
        if let Some(flag) = expect_value_for.take() {
            match flag {
                "--json" => json_path = Some(a.clone()),
                "--metrics" => metrics_path = Some(a.clone()),
                "--checkpoint" => checkpoint_dir = Some(PathBuf::from(a)),
                "--soak" => match a.parse::<u64>() {
                    Ok(secs) if secs > 0 => soak = Some(std::time::Duration::from_secs(secs)),
                    _ => {
                        eprintln!("--soak needs a positive number of seconds, got {a}");
                        std::process::exit(2);
                    }
                },
                _ => match a.parse::<usize>() {
                    Ok(n) => dut_core::montecarlo::set_default_threads(n),
                    Err(_) => {
                        eprintln!("--threads needs a number, got {a}");
                        std::process::exit(2);
                    }
                },
            }
            continue;
        }
        match a.as_str() {
            "--json" => expect_value_for = Some("--json"),
            "--metrics" => expect_value_for = Some("--metrics"),
            "--checkpoint" => expect_value_for = Some("--checkpoint"),
            "--soak" => expect_value_for = Some("--soak"),
            "--threads" | "-j" => expect_value_for = Some("--threads"),
            "--check" => check = true,
            "--adaptive" => adaptive = Some(DEFAULT_ADAPTIVE_TOL),
            "--quick" | "-q" => scale = Scale::Quick,
            "--list" | "-l" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            other if other.starts_with("--adaptive=") => {
                let value = &other["--adaptive=".len()..];
                match value.parse::<f64>() {
                    Ok(tol) if tol.is_finite() && tol > 0.0 => adaptive = Some(tol),
                    _ => {
                        eprintln!("--adaptive needs a positive tolerance, got {value}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                let id = normalize_id(other);
                if ALL_EXPERIMENTS.contains(&id.as_str()) {
                    ids.push(id);
                } else {
                    eprintln!("unknown argument: {other}");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            }
        }
    }
    if let Some(flag) = expect_value_for {
        eprintln!("{flag} needs a value argument");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if ids.is_empty() {
        if soak.is_some() {
            // `experiments --soak SECS` alone means: run the soak.
            ids.push("e15".to_string());
        } else {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
    ids.dedup();

    let mut log = match &metrics_path {
        Some(path) => match MetricsLog::create(Path::new(path)) {
            Ok(log) => log,
            Err(e) => {
                eprintln!("failed to create {path}: {e}");
                std::process::exit(1);
            }
        },
        None => MetricsLog::disabled(),
    };
    if let Some(dir) = &checkpoint_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("failed to create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    println!(
        "# Distributed Uniformity Testing — experiment run ({})\n",
        match scale {
            Scale::Quick => "quick scale",
            Scale::Full => "full scale",
        }
    );
    let mut all_tables: Vec<dut_bench::Table> = Vec::new();
    let mut regressions: Vec<String> = Vec::new();
    for id in ids {
        let start = Instant::now();
        let mut checkpoint = match &checkpoint_dir {
            Some(dir) => match Checkpoint::open(&dir.join(format!("{id}.jsonl"))) {
                Ok(ck) => Some(ck),
                Err(e) => {
                    eprintln!("unusable checkpoint for {id}: {e}");
                    std::process::exit(1);
                }
            },
            None => None,
        };
        let tables = run_experiment_ctx(
            &id,
            ExperimentCtx {
                scale,
                log: &mut log,
                checkpoint: checkpoint.as_mut(),
                adaptive,
                soak,
            },
        );
        for table in &tables {
            println!("{table}");
        }
        println!(
            "_{} finished in {:.1}s_\n",
            id,
            start.elapsed().as_secs_f64()
        );
        if check {
            let fresh = verdict::check(&id, &tables);
            let recorded_holds = verdict::recorded_holds(&id)
                .unwrap_or_else(|| panic!("{id} missing from EXPERIMENTS.md verdict table"));
            match (&fresh, recorded_holds) {
                (Err(why), true) => {
                    println!("_{id} verdict: REGRESSED — {why}_\n");
                    regressions.push(format!("{id}: {why}"));
                }
                (Err(why), false) => {
                    // Recorded as not holding; an Err is the status quo.
                    println!("_{id} verdict: fails as recorded ({why})_\n");
                }
                (Ok(()), _) => println!("_{id} verdict: holds_\n"),
            }
        }
        all_tables.extend(tables);
    }
    if let Some(path) = json_path {
        let json = dut_bench::tables_to_json(&all_tables);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = metrics_path {
        if let Err(e) = log.flush() {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {} metric records to {path}", log.records());
    }
    if !regressions.is_empty() {
        eprintln!("verdict regressions ({}):", regressions.len());
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
}
