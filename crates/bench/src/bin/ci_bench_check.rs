//! CI perf-regression gate (`ci.sh perf-gate`).
//!
//! Re-times the four `BENCH_netsim.json` workloads (current/"after"
//! variants only, plain `Instant` medians — quick mode, no Criterion),
//! the parallel Monte-Carlo executor on the E1 quick sweep, and the
//! batched sampling kernels, then compares against the committed
//! baselines:
//!
//! * any netsim workload more than `DUT_BENCH_SLACK` (default 0.25,
//!   i.e. 25%) slower than its committed median fails the gate;
//! * the Monte-Carlo parallel sweep is held to the same slack against
//!   `BENCH_montecarlo.json`, and on machines with ≥ 4 cores must also
//!   keep its ≥ 2× speedup over the serial run;
//! * the `BENCH_sampling.json` workloads (alias-table draws and
//!   collision counting, sort-based vs scratch-table) are held to the
//!   same slack, and the batched alias path must keep its
//!   `target_alias_speedup` (2×) advantage over the frozen seed
//!   kernel (`alias_scalar_reference`), slack-adjusted;
//! * serial and parallel sweeps must agree bit-for-bit (always
//!   enforced — a perf run that changes results is a correctness bug,
//!   not a slowdown).
//!
//! Refresh the Monte-Carlo and sampling baselines after an intentional
//! perf change with:
//!
//! ```text
//! cargo run -p dut-bench --release --bin ci-bench-check -- --refresh
//! ```
//!
//! (`BENCH_netsim.json` is refreshed from Criterion instead:
//! `cargo bench -p dut-bench --bench netsim`.)

use dut_bench::baseline::{number_field, parse_workloads, BaselineWorkload};
use dut_bench::{e01_gap, Scale};
use dut_core::decision::Decision;
use dut_core::gap::GapTester;
use dut_core::montecarlo::{set_default_threads, trial_rng};
use dut_core::scratch::TesterScratch;
use dut_core::MonteCarlo;
use dut_distributions::batch::BatchRng;
use dut_distributions::collision::{has_collision, CollisionScratch};
use dut_distributions::DiscreteDistribution;
use dut_netsim::engine::{
    BandwidthModel, EngineScratch, Network, NodeProtocol, Outbox, RunOptions,
};
use dut_netsim::graph::{ImplicitTopology, NodeId};
use dut_netsim::topology::{self, Torus2d};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Samples per netsim workload; medians are stable enough at 5 for a
/// 25% gate.
const SAMPLES: usize = 5;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn slack() -> f64 {
    match std::env::var("DUT_BENCH_SLACK") {
        Ok(v) if !v.is_empty() => v
            .parse()
            .unwrap_or_else(|_| panic!("DUT_BENCH_SLACK must be a number, got {v}")),
        _ => 0.25,
    }
}

fn median_ms(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

// The two protocols mirror benches/netsim.rs so the gate times the
// exact workloads the committed medians describe.

#[derive(Clone)]
struct Gossip {
    best: u64,
    rounds_left: u32,
}

impl NodeProtocol for Gossip {
    type Msg = u64;
    fn on_round(
        &mut self,
        _node: NodeId,
        _round: usize,
        inbox: &[(NodeId, u64)],
        out: &mut Outbox<'_, u64>,
    ) {
        for &(_, v) in inbox {
            self.best = self.best.max(v);
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            out.broadcast(self.best);
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
}

#[derive(Clone)]
struct Bfs {
    dist: Option<u64>,
}

impl NodeProtocol for Bfs {
    type Msg = u64;
    fn on_round(
        &mut self,
        node: NodeId,
        round: usize,
        inbox: &[(NodeId, u64)],
        out: &mut Outbox<'_, u64>,
    ) {
        if self.dist.is_some() {
            return;
        }
        if node == 0 && round == 0 {
            self.dist = Some(0);
            out.broadcast(1);
        } else if let Some(&d) = inbox.iter().map(|(_, d)| d).min() {
            self.dist = Some(d);
            out.broadcast(d + 1);
        }
    }
    fn is_done(&self) -> bool {
        self.dist.is_some()
    }
}

fn time_netsim_workload(name: &str) -> f64 {
    match name {
        "clique256_broadcast" => {
            let clique = topology::complete(256);
            let mut net = Network::new(&clique, BandwidthModel::Local);
            let mut scratch = EngineScratch::new();
            let states = || -> Vec<Gossip> {
                (0..256)
                    .map(|v| Gossip {
                        best: v as u64,
                        rounds_left: 8,
                    })
                    .collect()
            };
            median_ms(SAMPLES, || {
                black_box(net.run_with_scratch(states(), 32, &mut scratch).unwrap());
            })
        }
        "line4096_bfs" => {
            let line = topology::line(4096);
            let mut net = Network::new(&line, BandwidthModel::Local);
            let mut scratch = EngineScratch::new();
            median_ms(SAMPLES, || {
                black_box(
                    net.run_with_scratch(vec![Bfs { dist: None }; 4096], 8192, &mut scratch)
                        .unwrap(),
                );
            })
        }
        "mc_gap_20k" => {
            let n = 1 << 16;
            let tester = GapTester::new(n, 0.05).unwrap();
            let uniform = DiscreteDistribution::uniform(n);
            median_ms(SAMPLES, || {
                black_box(
                    MonteCarlo::new(20_000, 7)
                        .run_with_state(TesterScratch::new, |seed, scratch| {
                            let mut rng = trial_rng(seed);
                            tester.run_with_scratch(&uniform, &mut rng, scratch) == Decision::Reject
                        })
                        .expect("trials > 0"),
                );
            })
        }
        "torus_1m_gossip" => time_torus_1m_gossip(true),
        other => panic!("BENCH_netsim.json names workload {other}, which this gate can't time"),
    }
}

/// Gossip states for the million-node torus workload.
fn torus_1m_states(k: usize) -> Vec<Gossip> {
    (0..k)
        .map(|v| Gossip {
            best: v as u64,
            rounds_left: 2,
        })
        .collect()
}

/// Times the 10⁶-node implicit-torus gossip burst: 2 broadcast rounds
/// over a 1000×1000 torus (≈8M deliveries/round), neighbors computed on
/// the fly. `sharded` picks the 8-thread sharded-delivery path (the
/// baseline's "after" variant) vs plain serial delivery ("before").
/// Heavier than the other workloads, so it takes 3 samples, not 5.
fn time_torus_1m_gossip(sharded: bool) -> f64 {
    let torus = Torus2d::new(1000, 1000);
    let k = torus.node_count();
    let mut net = Network::new(&torus, BandwidthModel::Local);
    let mut scratch = EngineScratch::new();
    let opts = if sharded {
        RunOptions::parallel(8).with_shard_delivery(4096)
    } else {
        RunOptions::serial()
    };
    median_ms(3, || {
        black_box(
            net.run_with_options(torus_1m_states(k), 8, &mut scratch, &opts)
                .unwrap(),
        );
    })
}

/// Gregorian date from a UNIX timestamp (Howard Hinnant's
/// civil-from-days), so `--refresh` can stamp the baseline without a
/// date crate.
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after 1970")
        .as_secs() as i64;
    let z = secs.div_euclid(86_400) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

struct McMeasurement {
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    cores: usize,
}

/// Draws per alias-table timing pass.
const ALIAS_DRAWS: usize = 1 << 20;
/// Domain size for both sampling workloads (the E1 sweet spot).
const SAMPLING_DOMAIN: usize = 1 << 16;
/// Sample sets per collision-counting timing pass.
const COLLISION_SETS: usize = 20_000;
/// Samples per set — the gap tester's s at (n = 2^16, δ = 0.05).
const COLLISION_SAMPLES: usize = 81;

struct SamplingMeasurement {
    alias_reference_ms: f64,
    alias_scalar_ms: f64,
    alias_batched_ms: f64,
    alias_speedup: f64,
    alias_speedup_vs_scalar: f64,
    collision_sort_ms: f64,
    collision_scratch_ms: f64,
    collision_speedup: f64,
}

/// The frozen pre-optimization alias sampler: parallel `prob`/`alias`
/// arrays and a per-draw `if` on the fraction comparison. This is the
/// kernel the seed shipped, re-implemented here so the speedup gate
/// compares against a fixed reference that cannot silently inherit
/// later layout optimizations. The comparison select reliably lowers
/// to a conditional branch (it feeds a store), which mispredicts on
/// the coin-flip `frac < prob` outcome — exactly the cost the
/// pick-pair kernel removes.
struct ReferenceAlias {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl ReferenceAlias {
    fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            alias[s as usize] = l;
            let donated = (prob[l as usize] + prob[s as usize]) - 1.0;
            prob[l as usize] = donated;
            if donated < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for l in large {
            prob[l as usize] = 1.0;
        }
        for s in small {
            prob[s as usize] = 1.0;
        }
        ReferenceAlias { prob, alias }
    }

    fn fill<R: rand::Rng>(&self, rng: &mut R, out: &mut [u32]) {
        for o in out.iter_mut() {
            let i = rng.gen_range(0..self.prob.len());
            *o = if rng.gen::<f64>() < self.prob[i] {
                i as u32
            } else {
                self.alias[i]
            };
        }
    }
}

/// Times the batched sampling kernels against their scalar references:
/// the frozen seed kernel ([`ReferenceAlias`]) and today's per-draw
/// [`DiscreteDistribution::sample`], both on `StdRng` (the default
/// path), vs [`DiscreteDistribution::sample_batch`] on [`BatchRng`]
/// (the `fast-sampling` path); and sort-based collision detection vs
/// the bitset [`CollisionScratch`]. Bit/verdict agreement between the
/// live paths is proven by the differential test suites; the reference
/// kernel's draw-identity with the live sampler is asserted here
/// before timing.
fn measure_sampling() -> SamplingMeasurement {
    let weights: Vec<f64> = (0..SAMPLING_DOMAIN).map(|i| 1.0 / (i + 1) as f64).collect();
    let dist =
        DiscreteDistribution::from_weights(weights.clone()).expect("valid power-law weights");
    let reference = ReferenceAlias::new(&weights);
    let mut out = vec![0u32; 4096];
    {
        // The reference must be the same sampler, draw for draw —
        // otherwise the speedup it anchors is fiction.
        let mut rng = trial_rng(42);
        reference.fill(&mut rng, &mut out);
        let mut rng = trial_rng(42);
        let expect: Vec<u32> = (0..out.len())
            .map(|_| dist.sample(&mut rng) as u32)
            .collect();
        assert_eq!(
            out, expect,
            "reference alias kernel diverged from the live sampler"
        );
    }
    let alias_reference_ms = median_ms(SAMPLES, || {
        let mut rng = trial_rng(42);
        let mut done = 0;
        while done < ALIAS_DRAWS {
            let take = out.len().min(ALIAS_DRAWS - done);
            reference.fill(&mut rng, &mut out[..take]);
            done += take;
        }
        black_box(out[0]);
    });
    let alias_scalar_ms = median_ms(SAMPLES, || {
        let mut rng = trial_rng(42);
        let mut acc = 0usize;
        for _ in 0..ALIAS_DRAWS {
            acc ^= dist.sample(&mut rng);
        }
        black_box(acc);
    });
    let alias_batched_ms = median_ms(SAMPLES, || {
        let mut rng = BatchRng::new(42);
        let mut done = 0;
        while done < ALIAS_DRAWS {
            let take = out.len().min(ALIAS_DRAWS - done);
            dist.sample_batch(&mut rng, &mut out[..take]);
            done += take;
        }
        black_box(out[0]);
    });

    let uniform = DiscreteDistribution::uniform(SAMPLING_DOMAIN);
    let mut sets = Vec::new();
    let mut rng = BatchRng::new(7);
    uniform.sample_batch_into(&mut rng, COLLISION_SETS * COLLISION_SAMPLES, &mut sets);
    let collision_sort_ms = median_ms(SAMPLES, || {
        let mut hits = 0u32;
        for set in sets.chunks_exact(COLLISION_SAMPLES) {
            hits += u32::from(has_collision(set));
        }
        black_box(hits);
    });
    let mut scratch = CollisionScratch::with_domain(SAMPLING_DOMAIN);
    let collision_scratch_ms = median_ms(SAMPLES, || {
        let mut hits = 0u32;
        for set in sets.chunks_exact(COLLISION_SAMPLES) {
            hits += u32::from(scratch.has_collision(set));
        }
        black_box(hits);
    });
    SamplingMeasurement {
        alias_reference_ms,
        alias_scalar_ms,
        alias_batched_ms,
        alias_speedup: alias_reference_ms / alias_batched_ms,
        alias_speedup_vs_scalar: alias_scalar_ms / alias_batched_ms,
        collision_sort_ms,
        collision_scratch_ms,
        collision_speedup: collision_sort_ms / collision_scratch_ms,
    }
}

/// Times the E1 quick sweep serially and with all cores, asserting the
/// two produce identical tables.
fn measure_montecarlo() -> McMeasurement {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    set_default_threads(1);
    let mut serial_tables = Vec::new();
    let serial_ms = median_ms(1, || serial_tables = e01_gap::run(Scale::Quick));
    set_default_threads(0);
    let mut parallel_tables = Vec::new();
    let parallel_ms = median_ms(1, || parallel_tables = e01_gap::run(Scale::Quick));
    assert_eq!(
        serial_tables, parallel_tables,
        "serial and parallel E1 sweeps disagree — determinism bug, not a perf problem"
    );
    McMeasurement {
        serial_ms,
        parallel_ms,
        speedup: serial_ms / parallel_ms,
        cores,
    }
}

fn montecarlo_json(m: &McMeasurement) -> String {
    let notes = if m.cores >= 4 {
        format!(
            "Recorded on a {}-core machine, so the >=2x parallel target was enforced at record \
             time (measured {:.2}x).",
            m.cores, m.speedup
        )
    } else {
        format!(
            "Recorded on a {}-core machine: the >=2x parallel-over-serial target cannot be \
             exercised here (target_applies_from_cores = 4), so this baseline only pins \
             absolute wall-clock; the speedup clause of the gate activates automatically on \
             >=4-core runners.",
            m.cores
        )
    };
    format!(
        r#"{{
  "description": "Parallel Monte-Carlo executor vs the serial run on the E1 quick sweep (100k gap-tester trials per grid cell, completeness + soundness sides; bit-identical tables asserted before timing). Regenerate with `cargo run -p dut-bench --release --bin ci-bench-check -- --refresh`; the >=2x speedup target applies on machines with >= 4 cores and is checked by `ci.sh perf-gate` only there.",
  "date": "{}",
  "cores": {},
  "workloads": [
    {{
      "name": "e1_quick_serial",
      "detail": "e01_gap::run(Scale::Quick), MonteCarloConfig threads=1",
      "median_ms": {:.2}
    }},
    {{
      "name": "e1_quick_parallel",
      "detail": "e01_gap::run(Scale::Quick), MonteCarloConfig threads=all cores",
      "median_ms": {:.2}
    }}
  ],
  "speedup_parallel": {:.2},
  "target_speedup": 2.0,
  "target_applies_from_cores": 4,
  "target_checked": {},
  "bit_identical": true,
  "notes": "{}"
}}
"#,
        today(),
        m.cores,
        m.serial_ms,
        m.parallel_ms,
        m.speedup,
        m.cores >= 4,
        notes,
    )
}

fn sampling_json(m: &SamplingMeasurement) -> String {
    format!(
        r#"{{
  "description": "Batched sampling kernels vs their scalar references: 2^20 alias-table draws from a 2^16-element power-law pmf, and collision detection over 20k sets of 81 uniform samples (sort-based has_collision vs the adaptive CollisionScratch (one-pass generation stamps below 2^19 domains, u64 bitset above)). The alias speedup gate compares DiscreteDistribution::sample_batch on the counter-based BatchRng (the fast-sampling configuration) against the frozen seed kernel (parallel prob/alias arrays, per-draw branchy select on StdRng), asserted draw-identical to the live sampler before timing. Regenerate with `cargo run -p dut-bench --release --bin ci-bench-check -- --refresh`. The gate holds every median to DUT_BENCH_SLACK and requires the alias speedup to stay at target_alias_speedup, slack-adjusted.",
  "date": "{}",
  "workloads": [
    {{
      "name": "alias_scalar_reference",
      "detail": "1M draws, frozen seed kernel: parallel prob/alias arrays + branchy select, StdRng",
      "median_ms": {:.2}
    }},
    {{
      "name": "alias_scalar_stdrng",
      "detail": "1M DiscreteDistribution::sample draws, StdRng (default path)",
      "median_ms": {:.2}
    }},
    {{
      "name": "alias_batched_batchrng",
      "detail": "1M DiscreteDistribution::sample_batch draws, BatchRng (fast-sampling path)",
      "median_ms": {:.2}
    }},
    {{
      "name": "collision_sort_reference",
      "detail": "20k x 81-sample sets, sort-based has_collision",
      "median_ms": {:.2}
    }},
    {{
      "name": "collision_scratch",
      "detail": "20k x 81-sample sets, adaptive CollisionScratch (stamp mode at this domain)",
      "median_ms": {:.2}
    }}
  ],
  "speedup_alias_batched": {:.2},
  "speedup_alias_vs_current_scalar": {:.2},
  "speedup_collision_scratch": {:.2},
  "target_alias_speedup": 2.0,
  "notes": "speedup_alias_batched is measured against the frozen seed kernel (alias_scalar_reference), not against today's scalar path: the branchless pick-pair column layout that powers sample_batch also serves DiscreteDistribution::sample, so the live scalar path inherited most of the win (see speedup_alias_vs_current_scalar) and the two live paths are nearly RNG-bound-identical per draw. Gating against the frozen reference keeps the target meaningful: it fails if the batched kernel ever regresses to a mispredicting select or a lane-buffered fill."
}}
"#,
        today(),
        m.alias_reference_ms,
        m.alias_scalar_ms,
        m.alias_batched_ms,
        m.collision_sort_ms,
        m.collision_scratch_ms,
        m.alias_speedup,
        m.alias_speedup_vs_scalar,
        m.collision_speedup,
    )
}

fn main() {
    let refresh = match std::env::args().nth(1).as_deref() {
        Some("--refresh") => true,
        None => false,
        Some(other) => {
            eprintln!("usage: ci-bench-check [--refresh]  (unknown argument: {other})");
            std::process::exit(2);
        }
    };
    let root = repo_root();
    let slack = slack();
    let mut failures: Vec<String> = Vec::new();

    // Netsim workloads vs BENCH_netsim.json.
    let netsim_path = root.join("BENCH_netsim.json");
    let baselines = parse_workloads(
        &std::fs::read_to_string(&netsim_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", netsim_path.display())),
    )
    .expect("BENCH_netsim.json parses");
    println!("perf gate (slack {:.0}%):", slack * 100.0);
    for BaselineWorkload { name, median_ms } in &baselines {
        let measured = time_netsim_workload(name);
        let limit = median_ms * (1.0 + slack);
        let verdict = if measured <= limit { "ok" } else { "SLOW" };
        println!(
            "  {name}: {measured:.2} ms (baseline {median_ms:.2} ms, limit {limit:.2} ms) {verdict}"
        );
        if measured > limit {
            failures.push(format!(
                "{name}: {measured:.2} ms exceeds {median_ms:.2} ms baseline by more than {:.0}%",
                slack * 100.0
            ));
        }
    }

    // Sharded-delivery speedup on the million-node torus. Like the
    // Monte-Carlo speedup target, a 1-core runner cannot show parallel
    // gains, so the >=2x clause activates only on >=4-core machines
    // (sharded_target_applies_from_cores in BENCH_netsim.json); the
    // absolute wall-clock gate above applies everywhere.
    {
        let baseline = std::fs::read_to_string(&netsim_path).expect("read again");
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let target = number_field(&baseline, "sharded_target_speedup").unwrap_or(2.0);
        let applies_from =
            number_field(&baseline, "sharded_target_applies_from_cores").unwrap_or(4.0) as usize;
        if cores >= applies_from {
            let serial_ms = time_torus_1m_gossip(false);
            let sharded_ms = time_torus_1m_gossip(true);
            let speedup = serial_ms / sharded_ms;
            println!(
                "  torus_1m_gossip sharded speedup: serial {serial_ms:.2} ms, sharded \
                 {sharded_ms:.2} ms, {speedup:.2}x (target {target:.1}x on {cores} cores)"
            );
            let floor = target / (1.0 + slack);
            if speedup < floor {
                failures.push(format!(
                    "sharded delivery speedup {speedup:.2}x below the slack-adjusted \
                     {target:.1}x target ({floor:.2}x) on {cores} cores"
                ));
            }
        } else {
            println!(
                "  (sharded speedup target {target:.1}x not enforced below {applies_from} cores)"
            );
        }
    }

    // Monte-Carlo executor vs BENCH_montecarlo.json.
    let mc = measure_montecarlo();
    println!(
        "  e1_quick (cores={}): serial {:.2} ms, parallel {:.2} ms, speedup {:.2}x",
        mc.cores, mc.serial_ms, mc.parallel_ms, mc.speedup
    );
    let mc_path = root.join("BENCH_montecarlo.json");
    if refresh {
        std::fs::write(&mc_path, montecarlo_json(&mc))
            .unwrap_or_else(|e| panic!("write {}: {e}", mc_path.display()));
        println!("refreshed {}", mc_path.display());
    } else {
        let baseline = std::fs::read_to_string(&mc_path)
            .unwrap_or_else(|e| panic!("read {}: {e} (run --refresh once)", mc_path.display()));
        let recorded = parse_workloads(&baseline)
            .ok()
            .and_then(|ws| ws.into_iter().find(|w| w.name == "e1_quick_parallel"))
            .expect("BENCH_montecarlo.json has an e1_quick_parallel workload");
        let limit = recorded.median_ms * (1.0 + slack);
        if mc.parallel_ms > limit {
            failures.push(format!(
                "e1_quick_parallel: {:.2} ms exceeds {:.2} ms baseline by more than {:.0}%",
                mc.parallel_ms,
                recorded.median_ms,
                slack * 100.0
            ));
        }
        let target = number_field(&baseline, "target_speedup").unwrap_or(2.0);
        let applies_from =
            number_field(&baseline, "target_applies_from_cores").unwrap_or(4.0) as usize;
        if mc.cores >= applies_from && mc.speedup < target {
            failures.push(format!(
                "parallel speedup {:.2}x below the {target:.1}x target on {} cores",
                mc.speedup, mc.cores
            ));
        } else if mc.cores < applies_from {
            println!("  (speedup target {target:.1}x not enforced below {applies_from} cores)");
        }
    }

    // Batched sampling kernels vs BENCH_sampling.json.
    let sm = measure_sampling();
    println!(
        "  sampling: alias reference {:.2} ms, scalar {:.2} ms, batched {:.2} ms ({:.2}x vs \
         reference, {:.2}x vs scalar); collision sort {:.2} ms, scratch {:.2} ms ({:.2}x)",
        sm.alias_reference_ms,
        sm.alias_scalar_ms,
        sm.alias_batched_ms,
        sm.alias_speedup,
        sm.alias_speedup_vs_scalar,
        sm.collision_sort_ms,
        sm.collision_scratch_ms,
        sm.collision_speedup
    );
    let sampling_path = root.join("BENCH_sampling.json");
    if refresh {
        std::fs::write(&sampling_path, sampling_json(&sm))
            .unwrap_or_else(|e| panic!("write {}: {e}", sampling_path.display()));
        println!("refreshed {}", sampling_path.display());
    } else {
        let baseline = std::fs::read_to_string(&sampling_path).unwrap_or_else(|e| {
            panic!("read {}: {e} (run --refresh once)", sampling_path.display())
        });
        let recorded = parse_workloads(&baseline).expect("BENCH_sampling.json parses");
        let measured = [
            ("alias_scalar_reference", sm.alias_reference_ms),
            ("alias_scalar_stdrng", sm.alias_scalar_ms),
            ("alias_batched_batchrng", sm.alias_batched_ms),
            ("collision_sort_reference", sm.collision_sort_ms),
            ("collision_scratch", sm.collision_scratch_ms),
        ];
        for (name, ms) in measured {
            let Some(base) = recorded.iter().find(|w| w.name == name) else {
                failures.push(format!(
                    "BENCH_sampling.json has no {name} workload (run --refresh once)"
                ));
                continue;
            };
            let limit = base.median_ms * (1.0 + slack);
            if ms > limit {
                failures.push(format!(
                    "{name}: {ms:.2} ms exceeds {:.2} ms baseline by more than {:.0}%",
                    base.median_ms,
                    slack * 100.0
                ));
            }
        }
        let target = number_field(&baseline, "target_alias_speedup").unwrap_or(2.0);
        // A throughput ratio on one box is stable but not noise-free;
        // hold it to the slack-adjusted target rather than the raw one.
        let floor = target / (1.0 + slack);
        if sm.alias_speedup < floor {
            failures.push(format!(
                "batched alias speedup {:.2}x below the slack-adjusted {target:.1}x target \
                 ({floor:.2}x)",
                sm.alias_speedup
            ));
        }
    }

    if failures.is_empty() {
        println!("perf gate passed");
    } else {
        eprintln!("perf gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "if the slowdown is intentional, refresh the baselines \
             (see BENCH_*.json descriptions) or raise DUT_BENCH_SLACK"
        );
        std::process::exit(1);
    }
}
