//! CI perf-regression gate (`ci.sh perf-gate`).
//!
//! Re-times the three `BENCH_netsim.json` workloads (current/"after"
//! variants only, plain `Instant` medians — quick mode, no Criterion)
//! and the parallel Monte-Carlo executor on the E1 quick sweep, then
//! compares against the committed baselines:
//!
//! * any netsim workload more than `DUT_BENCH_SLACK` (default 0.25,
//!   i.e. 25%) slower than its committed median fails the gate;
//! * the Monte-Carlo parallel sweep is held to the same slack against
//!   `BENCH_montecarlo.json`, and on machines with ≥ 4 cores must also
//!   keep its ≥ 2× speedup over the serial run;
//! * serial and parallel sweeps must agree bit-for-bit (always
//!   enforced — a perf run that changes results is a correctness bug,
//!   not a slowdown).
//!
//! Refresh the Monte-Carlo baseline after an intentional perf change
//! with:
//!
//! ```text
//! cargo run -p dut-bench --release --bin ci-bench-check -- --refresh
//! ```
//!
//! (`BENCH_netsim.json` is refreshed from Criterion instead:
//! `cargo bench -p dut-bench --bench netsim`.)

use dut_bench::baseline::{number_field, parse_workloads, BaselineWorkload};
use dut_bench::{e01_gap, Scale};
use dut_core::decision::Decision;
use dut_core::gap::GapTester;
use dut_core::montecarlo::{set_default_threads, trial_rng};
use dut_core::scratch::TesterScratch;
use dut_core::MonteCarlo;
use dut_distributions::DiscreteDistribution;
use dut_netsim::engine::{BandwidthModel, EngineScratch, Network, NodeProtocol, Outbox};
use dut_netsim::graph::NodeId;
use dut_netsim::topology;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Samples per netsim workload; medians are stable enough at 5 for a
/// 25% gate.
const SAMPLES: usize = 5;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn slack() -> f64 {
    match std::env::var("DUT_BENCH_SLACK") {
        Ok(v) if !v.is_empty() => v
            .parse()
            .unwrap_or_else(|_| panic!("DUT_BENCH_SLACK must be a number, got {v}")),
        _ => 0.25,
    }
}

fn median_ms(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

// The two protocols mirror benches/netsim.rs so the gate times the
// exact workloads the committed medians describe.

#[derive(Clone)]
struct Gossip {
    best: u64,
    rounds_left: u32,
}

impl NodeProtocol for Gossip {
    type Msg = u64;
    fn on_round(
        &mut self,
        _node: NodeId,
        _round: usize,
        inbox: &[(NodeId, u64)],
        out: &mut Outbox<'_, u64>,
    ) {
        for &(_, v) in inbox {
            self.best = self.best.max(v);
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            out.broadcast(self.best);
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
}

#[derive(Clone)]
struct Bfs {
    dist: Option<u64>,
}

impl NodeProtocol for Bfs {
    type Msg = u64;
    fn on_round(
        &mut self,
        node: NodeId,
        round: usize,
        inbox: &[(NodeId, u64)],
        out: &mut Outbox<'_, u64>,
    ) {
        if self.dist.is_some() {
            return;
        }
        if node == 0 && round == 0 {
            self.dist = Some(0);
            out.broadcast(1);
        } else if let Some(&d) = inbox.iter().map(|(_, d)| d).min() {
            self.dist = Some(d);
            out.broadcast(d + 1);
        }
    }
    fn is_done(&self) -> bool {
        self.dist.is_some()
    }
}

fn time_netsim_workload(name: &str) -> f64 {
    match name {
        "clique256_broadcast" => {
            let clique = topology::complete(256);
            let mut net = Network::new(&clique, BandwidthModel::Local);
            let mut scratch = EngineScratch::new();
            let states = || -> Vec<Gossip> {
                (0..256)
                    .map(|v| Gossip {
                        best: v as u64,
                        rounds_left: 8,
                    })
                    .collect()
            };
            median_ms(SAMPLES, || {
                black_box(net.run_with_scratch(states(), 32, &mut scratch).unwrap());
            })
        }
        "line4096_bfs" => {
            let line = topology::line(4096);
            let mut net = Network::new(&line, BandwidthModel::Local);
            let mut scratch = EngineScratch::new();
            median_ms(SAMPLES, || {
                black_box(
                    net.run_with_scratch(vec![Bfs { dist: None }; 4096], 8192, &mut scratch)
                        .unwrap(),
                );
            })
        }
        "mc_gap_20k" => {
            let n = 1 << 16;
            let tester = GapTester::new(n, 0.05).unwrap();
            let uniform = DiscreteDistribution::uniform(n);
            median_ms(SAMPLES, || {
                black_box(
                    MonteCarlo::new(20_000, 7)
                        .run_with_state(TesterScratch::new, |seed, scratch| {
                            let mut rng = trial_rng(seed);
                            tester.run_with_scratch(&uniform, &mut rng, scratch) == Decision::Reject
                        })
                        .expect("trials > 0"),
                );
            })
        }
        other => panic!("BENCH_netsim.json names workload {other}, which this gate can't time"),
    }
}

/// Gregorian date from a UNIX timestamp (Howard Hinnant's
/// civil-from-days), so `--refresh` can stamp the baseline without a
/// date crate.
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after 1970")
        .as_secs() as i64;
    let z = secs.div_euclid(86_400) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

struct McMeasurement {
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    cores: usize,
}

/// Times the E1 quick sweep serially and with all cores, asserting the
/// two produce identical tables.
fn measure_montecarlo() -> McMeasurement {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    set_default_threads(1);
    let mut serial_tables = Vec::new();
    let serial_ms = median_ms(1, || serial_tables = e01_gap::run(Scale::Quick));
    set_default_threads(0);
    let mut parallel_tables = Vec::new();
    let parallel_ms = median_ms(1, || parallel_tables = e01_gap::run(Scale::Quick));
    assert_eq!(
        serial_tables, parallel_tables,
        "serial and parallel E1 sweeps disagree — determinism bug, not a perf problem"
    );
    McMeasurement {
        serial_ms,
        parallel_ms,
        speedup: serial_ms / parallel_ms,
        cores,
    }
}

fn montecarlo_json(m: &McMeasurement) -> String {
    format!(
        r#"{{
  "description": "Parallel Monte-Carlo executor vs the serial run on the E1 quick sweep (100k gap-tester trials per grid cell, completeness + soundness sides; bit-identical tables asserted before timing). Regenerate with `cargo run -p dut-bench --release --bin ci-bench-check -- --refresh`; the >=2x speedup target applies on machines with >= 4 cores and is checked by `ci.sh perf-gate` only there.",
  "date": "{}",
  "cores": {},
  "workloads": [
    {{
      "name": "e1_quick_serial",
      "detail": "e01_gap::run(Scale::Quick), MonteCarloConfig threads=1",
      "median_ms": {:.2}
    }},
    {{
      "name": "e1_quick_parallel",
      "detail": "e01_gap::run(Scale::Quick), MonteCarloConfig threads=all cores",
      "median_ms": {:.2}
    }}
  ],
  "speedup_parallel": {:.2},
  "target_speedup": 2.0,
  "target_applies_from_cores": 4,
  "target_checked": {},
  "bit_identical": true
}}
"#,
        today(),
        m.cores,
        m.serial_ms,
        m.parallel_ms,
        m.speedup,
        m.cores >= 4,
    )
}

fn main() {
    let refresh = match std::env::args().nth(1).as_deref() {
        Some("--refresh") => true,
        None => false,
        Some(other) => {
            eprintln!("usage: ci-bench-check [--refresh]  (unknown argument: {other})");
            std::process::exit(2);
        }
    };
    let root = repo_root();
    let slack = slack();
    let mut failures: Vec<String> = Vec::new();

    // Netsim workloads vs BENCH_netsim.json.
    let netsim_path = root.join("BENCH_netsim.json");
    let baselines = parse_workloads(
        &std::fs::read_to_string(&netsim_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", netsim_path.display())),
    )
    .expect("BENCH_netsim.json parses");
    println!("perf gate (slack {:.0}%):", slack * 100.0);
    for BaselineWorkload { name, median_ms } in &baselines {
        let measured = time_netsim_workload(name);
        let limit = median_ms * (1.0 + slack);
        let verdict = if measured <= limit { "ok" } else { "SLOW" };
        println!(
            "  {name}: {measured:.2} ms (baseline {median_ms:.2} ms, limit {limit:.2} ms) {verdict}"
        );
        if measured > limit {
            failures.push(format!(
                "{name}: {measured:.2} ms exceeds {median_ms:.2} ms baseline by more than {:.0}%",
                slack * 100.0
            ));
        }
    }

    // Monte-Carlo executor vs BENCH_montecarlo.json.
    let mc = measure_montecarlo();
    println!(
        "  e1_quick (cores={}): serial {:.2} ms, parallel {:.2} ms, speedup {:.2}x",
        mc.cores, mc.serial_ms, mc.parallel_ms, mc.speedup
    );
    let mc_path = root.join("BENCH_montecarlo.json");
    if refresh {
        std::fs::write(&mc_path, montecarlo_json(&mc))
            .unwrap_or_else(|e| panic!("write {}: {e}", mc_path.display()));
        println!("refreshed {}", mc_path.display());
    } else {
        let baseline = std::fs::read_to_string(&mc_path)
            .unwrap_or_else(|e| panic!("read {}: {e} (run --refresh once)", mc_path.display()));
        let recorded = parse_workloads(&baseline)
            .ok()
            .and_then(|ws| ws.into_iter().find(|w| w.name == "e1_quick_parallel"))
            .expect("BENCH_montecarlo.json has an e1_quick_parallel workload");
        let limit = recorded.median_ms * (1.0 + slack);
        if mc.parallel_ms > limit {
            failures.push(format!(
                "e1_quick_parallel: {:.2} ms exceeds {:.2} ms baseline by more than {:.0}%",
                mc.parallel_ms,
                recorded.median_ms,
                slack * 100.0
            ));
        }
        let target = number_field(&baseline, "target_speedup").unwrap_or(2.0);
        let applies_from =
            number_field(&baseline, "target_applies_from_cores").unwrap_or(4.0) as usize;
        if mc.cores >= applies_from && mc.speedup < target {
            failures.push(format!(
                "parallel speedup {:.2}x below the {target:.1}x target on {} cores",
                mc.speedup, mc.cores
            ));
        } else if mc.cores < applies_from {
            println!("  (speedup target {target:.1}x not enforced below {applies_from} cores)");
        }
    }

    if failures.is_empty() {
        println!("perf gate passed");
    } else {
        eprintln!("perf gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "if the slowdown is intentional, refresh the baselines \
             (see BENCH_*.json descriptions) or raise DUT_BENCH_SLACK"
        );
        std::process::exit(1);
    }
}
