//! Planning CLI: given `(n, k, ε, p)`, print the derived parameters for
//! every model's tester — what a deployment would need to configure.
//!
//! ```text
//! plan --n 262144 --k 120000 --eps 0.5 [--p 0.3333] [--cost-ratio 4]
//! ```

use dut_congest::CongestUniformityTester;
use dut_core::asymmetric::{theory_max_cost_threshold, AsymmetricThresholdTester, CostVector};
use dut_core::baselines::centralized_sample_complexity;
use dut_core::params::{plan_and_rule, plan_threshold, WindowMethod};
use dut_local::LocalUniformityTester;

struct Args {
    n: usize,
    k: usize,
    eps: f64,
    p: f64,
    cost_ratio: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 1 << 18,
        k: 120_000,
        eps: 0.5,
        p: 1.0 / 3.0,
        cost_ratio: 0.0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        let val = argv
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {key}"))?;
        match key {
            "--n" => args.n = val.parse().map_err(|e| format!("--n: {e}"))?,
            "--k" => args.k = val.parse().map_err(|e| format!("--k: {e}"))?,
            "--eps" => args.eps = val.parse().map_err(|e| format!("--eps: {e}"))?,
            "--p" => args.p = val.parse().map_err(|e| format!("--p: {e}"))?,
            "--cost-ratio" => {
                args.cost_ratio = val.parse().map_err(|e| format!("--cost-ratio: {e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: plan --n <domain> --k <nodes> --eps <distance> [--p <error>] [--cost-ratio <r>]"
            );
            std::process::exit(2);
        }
    };
    let Args {
        n,
        k,
        eps,
        p,
        cost_ratio,
    } = args;

    println!("distributed uniformity testing plans");
    println!("  domain n = {n}, network k = {k}, distance eps = {eps}, error p = {p:.4}");
    println!(
        "  centralized baseline: one node would need ~{:.0} samples\n",
        centralized_sample_complexity(n, eps)
    );

    println!("0-round, threshold rule (Theorem 1.2):");
    match plan_threshold(n, k, eps, p, WindowMethod::Exact) {
        Ok(plan) => {
            println!("  samples per node  : {}", plan.samples_per_node);
            println!("  alarm threshold T : {}", plan.threshold);
            println!(
                "  predicted errors  : {:.4} (uniform) / {:.4} (far)",
                plan.predicted_completeness_error, plan.predicted_soundness_error
            );
            println!(
                "  expected alarms   : {:.1} (uniform) vs >= {:.1} (far)",
                plan.eta_uniform, plan.eta_far
            );
        }
        Err(e) => println!("  infeasible: {e}"),
    }

    println!("\n0-round, AND rule (Theorem 1.1):");
    match plan_and_rule(n, k, eps, p) {
        Ok(plan) => {
            println!(
                "  samples per node  : {} ({} repetitions x {} samples)",
                plan.samples_per_node, plan.m, plan.samples_per_run
            );
            println!(
                "  provable gap      : {:.3} achieved vs {:.3} required -> feasible: {}",
                plan.achieved_gap, plan.required_gap, plan.feasible
            );
            println!(
                "  predicted errors  : {:.4} (uniform) / {:.4} (far)",
                plan.predicted_completeness_error, plan.predicted_soundness_error
            );
        }
        Err(e) => println!("  infeasible: {e}"),
    }

    println!("\nCONGEST (Theorem 1.4, one sample per node):");
    match CongestUniformityTester::plan(n, k, eps, p, 1) {
        Ok(t) => {
            println!("  package size tau  : {}", t.tau());
            println!(
                "  virtual nodes     : ~{} packages, threshold {}",
                k / t.tau(),
                t.virtual_plan().threshold
            );
            println!("  rounds            : O(D + {}) per run", t.tau());
        }
        Err(e) => println!("  infeasible: {e}"),
    }

    println!("\nLOCAL (section 6, one sample per node):");
    match LocalUniformityTester::plan(n, k, eps, p) {
        Ok(t) => {
            println!("  gathering radius r: {}", t.radius());
            println!(
                "  centers           : <= {} MIS nodes, {} samples used each",
                2 * k / t.radius(),
                t.plan_details().samples_per_node
            );
            println!(
                "  theory rounds     : ~{:.0}",
                LocalUniformityTester::theory_rounds(n, k, eps, p)
            );
        }
        Err(e) => println!("  infeasible: {e}"),
    }

    if cost_ratio > 1.0 {
        println!("\nasymmetric costs (section 4.2, half the nodes {cost_ratio}x per-sample cost):");
        let costs: Vec<f64> = (0..k)
            .map(|i| if i < k / 2 { cost_ratio } else { 1.0 })
            .collect();
        match CostVector::new(costs) {
            Ok(costs) => match AsymmetricThresholdTester::plan(n, &costs, eps, p) {
                Ok(t) => {
                    let s = t.sample_counts();
                    println!("  expensive nodes   : {} samples", s[0]);
                    println!("  cheap nodes       : {} samples", s[k - 1]);
                    println!(
                        "  max cost          : {:.1} (theory {:.1})",
                        t.max_cost(),
                        theory_max_cost_threshold(n, &costs, eps)
                    );
                }
                Err(e) => println!("  infeasible: {e}"),
            },
            Err(e) => println!("  invalid costs: {e}"),
        }
    }
}
