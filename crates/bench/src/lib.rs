//! Experiment harness for the *Distributed Uniformity Testing*
//! reproduction.
//!
//! The paper has no tables or figures — its quantitative claims are
//! theorems. Each module here regenerates one claim as a table:
//! measured error probabilities / sample counts / round counts /
//! communication bits next to the theorem's prediction. The
//! `experiments` binary prints any subset:
//!
//! ```text
//! cargo run -p dut-bench --release --bin experiments -- all
//! cargo run -p dut-bench --release --bin experiments -- e4 e6
//! cargo run -p dut-bench --release --bin experiments -- --quick all
//! ```
//!
//! See `DESIGN.md` §4 for the experiment-to-theorem index and
//! `EXPERIMENTS.md` for recorded outputs.

#![warn(missing_docs)]

pub mod baseline;
pub mod e01_gap;
pub mod e02_scaling;
pub mod e03_and_rule;
pub mod e04_threshold;
pub mod e05_asymmetric;
pub mod e06_congest;
pub mod e07_local;
pub mod e08_smp;
pub mod e09_lemma21;
pub mod e10_baselines;
pub mod e11_identity;
pub mod e12_lowerbound;
pub mod e13_faults;
pub mod e14_streaming;
pub mod e15_soak;
pub mod e16_conductance;
pub mod metrics;
pub mod table;
pub mod verdict;

pub use metrics::MetricsLog;
pub use table::{tables_to_json, Table};

/// Global scale knob: `Quick` shrinks trial counts and sweep ranges so
/// the full suite finishes in a couple of minutes; `Full` is the
/// EXPERIMENTS.md configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced trials/sweeps for smoke runs.
    Quick,
    /// The recorded-results configuration.
    Full,
}

impl Scale {
    /// Picks `quick` or `full` by variant.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// All experiment ids, in order.
pub const ALL_EXPERIMENTS: [&str; 16] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16",
];

/// Canonicalizes a user-typed experiment id: strips leading zeros
/// after the `e`, so `e06` and `E6` both name `e6`. Ids that don't
/// look like `e<number>` pass through unchanged (and fail lookup).
pub fn normalize_id(id: &str) -> String {
    let lower = id.to_ascii_lowercase();
    match lower.strip_prefix('e').and_then(|d| d.parse::<u64>().ok()) {
        Some(n) => format!("e{n}"),
        None => lower,
    }
}

/// Everything an experiment run can be handed besides its id: the
/// scale, the optional metrics log, and an optional Monte-Carlo
/// checkpoint file (threaded into the executor-driven experiments so
/// long sweeps survive interruption and resume bit-identically).
#[derive(Debug)]
pub struct ExperimentCtx<'a> {
    /// Quick/Full scale knob.
    pub scale: Scale,
    /// Per-run `dut-metrics/1` records for experiments that emit them.
    pub log: &'a mut MetricsLog,
    /// Chunk-level Monte-Carlo checkpoint (`--checkpoint`); currently
    /// consumed by E1, whose 400k-trial grids dominate full-scale
    /// wall-clock time.
    pub checkpoint: Option<&'a mut dut_core::Checkpoint>,
    /// Confidence-sequence early stopping (`--adaptive`): the interval
    /// half-width tolerance handed to
    /// [`dut_core::executor::MonteCarloConfig::adaptive`]. `None` keeps
    /// the fixed-budget runs whose outputs EXPERIMENTS.md records
    /// bit-for-bit; `Some(tol)` lets the Monte-Carlo experiments (E1,
    /// E2, E5) stop each cell as soon as its decision is resolved,
    /// trading interval tightness for wall-clock time without changing
    /// any verdict.
    pub adaptive: Option<f64>,
    /// Wall-clock soak horizon (`--soak SECS`): `Some(d)` keeps the E15
    /// soak loop ticking until `d` elapses instead of running the fixed
    /// per-scale tick budget. Tick contents are seed-pure either way;
    /// every other experiment ignores it.
    pub soak: Option<std::time::Duration>,
}

/// Runs one experiment by (canonical) id, returning its rendered
/// tables. Experiments that support `--metrics` append one
/// `dut-metrics/1` record per tester run to `ctx.log`; the rest ignore
/// it.
///
/// # Panics
///
/// Panics on an unknown id, or if `ctx.checkpoint` names an unusable
/// checkpoint file (plan mismatch against a stale file — delete it).
pub fn run_experiment_ctx(id: &str, ctx: ExperimentCtx<'_>) -> Vec<Table> {
    match id {
        "e1" => e01_gap::run_ctx(ctx.scale, ctx.checkpoint, ctx.adaptive, ctx.log),
        "e2" => e02_scaling::run_ctx(ctx.scale, ctx.adaptive),
        "e3" => e03_and_rule::run(ctx.scale),
        "e4" => e04_threshold::run(ctx.scale),
        "e5" => e05_asymmetric::run_ctx(ctx.scale, ctx.adaptive),
        "e6" => e06_congest::run(ctx.scale, ctx.log),
        "e7" => e07_local::run(ctx.scale),
        "e8" => e08_smp::run(ctx.scale),
        "e9" => e09_lemma21::run(ctx.scale),
        "e10" => e10_baselines::run(ctx.scale),
        "e11" => e11_identity::run(ctx.scale),
        "e12" => e12_lowerbound::run(ctx.scale),
        "e13" => e13_faults::run(ctx.scale, ctx.log),
        "e14" => e14_streaming::run(ctx.scale, ctx.log),
        "e15" => e15_soak::run_soak(ctx.scale, ctx.log, ctx.soak),
        "e16" => e16_conductance::run(ctx.scale, ctx.log),
        other => panic!("unknown experiment id: {other}"),
    }
}

/// [`run_experiment_ctx`] without a checkpoint — the stable entry
/// point tests and examples use.
///
/// # Panics
///
/// Panics on an unknown id.
pub fn run_experiment(id: &str, scale: Scale, log: &mut MetricsLog) -> Vec<Table> {
    run_experiment_ctx(
        id,
        ExperimentCtx {
            scale,
            log,
            checkpoint: None,
            adaptive: None,
            soak: None,
        },
    )
}
