//! Optional `dut-metrics/1` JSONL logging for experiment runners.
//!
//! The `experiments` binary constructs a [`MetricsLog`] from the
//! `--metrics out.jsonl` flag and threads it into instrumented
//! experiments; each tester run then appends one JSON object pairing
//! the run's parameters with its [`dut_obs::MemorySink`] snapshot.
//! The record layout is documented in `docs/METRICS.md`.

use dut_obs::{JsonlWriter, MemorySink, RunRecord};
use std::io;
use std::path::Path;

#[derive(Debug)]
enum Out {
    /// Drop records; `enabled()` is false so runners can skip work.
    Disabled,
    /// Append records to a `.jsonl` file.
    File(JsonlWriter),
    /// Keep serialized lines in memory (tests).
    Buffer(Vec<String>),
}

/// A destination for per-run metric records, threaded through the
/// experiment runners that support `--metrics`.
#[derive(Debug)]
pub struct MetricsLog {
    out: Out,
    records: usize,
}

impl MetricsLog {
    /// A log that drops everything; [`MetricsLog::enabled`] is false.
    pub fn disabled() -> Self {
        MetricsLog {
            out: Out::Disabled,
            records: 0,
        }
    }

    /// A log appending to `path` (truncated on open).
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be created.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(MetricsLog {
            out: Out::File(JsonlWriter::create(path)?),
            records: 0,
        })
    }

    /// An in-memory log for tests; read back with [`MetricsLog::lines`].
    pub fn buffer() -> Self {
        MetricsLog {
            out: Out::Buffer(Vec::new()),
            records: 0,
        }
    }

    /// Whether records are kept. Runners may skip building records
    /// (but must not change their RNG usage) when this is false.
    pub fn enabled(&self) -> bool {
        !matches!(self.out, Out::Disabled)
    }

    /// Appends one record line pairing `record` with `sink`'s
    /// accumulated metrics. A disabled log ignores the call.
    ///
    /// # Errors
    ///
    /// Fails only in file mode, on an I/O error.
    pub fn write(&mut self, record: &RunRecord, sink: &MemorySink) -> io::Result<()> {
        match &mut self.out {
            Out::Disabled => return Ok(()),
            Out::File(w) => w.write(record, sink)?,
            Out::Buffer(lines) => lines.push(record.to_jsonl(sink)),
        }
        self.records += 1;
        Ok(())
    }

    /// Flushes buffered file output.
    ///
    /// # Errors
    ///
    /// Fails only in file mode, on an I/O error.
    pub fn flush(&mut self) -> io::Result<()> {
        match &mut self.out {
            Out::File(w) => w.flush(),
            _ => Ok(()),
        }
    }

    /// Records written so far.
    pub fn records(&self) -> usize {
        self.records
    }

    /// The serialized lines of a [`MetricsLog::buffer`] log (empty for
    /// the other modes).
    pub fn lines(&self) -> &[String] {
        match &self.out {
            Out::Buffer(lines) => lines,
            _ => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_obs::Sink;

    #[test]
    fn disabled_log_drops_records() {
        let mut log = MetricsLog::disabled();
        assert!(!log.enabled());
        log.write(&RunRecord::new("e0", "x"), &MemorySink::new())
            .unwrap();
        assert_eq!(log.records(), 0);
        assert!(log.lines().is_empty());
    }

    #[test]
    fn buffer_log_keeps_lines() {
        let mut log = MetricsLog::buffer();
        assert!(log.enabled());
        let mut sink = MemorySink::new();
        sink.add("congest.rounds", 7);
        log.write(&RunRecord::new("e6", "star/uniform"), &sink)
            .unwrap();
        assert_eq!(log.records(), 1);
        assert!(log.lines()[0].contains("\"congest.rounds\":7"));
    }
}
