//! E14 — streaming service: mergeable-sketch throughput and
//! shard-count invariance.
//!
//! The `dut-stream` service turns the batch collision tester into an
//! anytime streaming one: per-stream sliding windows over mergeable
//! sketches, shard-local state, coordinator verdicts. Two claims are
//! measured. First, throughput: ingest is O(1) per sample (a stateless
//! shard hash, a window rotation, and an integer pair-count update), so
//! samples/sec/core should be flat in the shard count — sharding is a
//! concurrency knob, not a work knob. Second, exactness: because the
//! sketch merge law is exact integer arithmetic and shard placement is
//! a pure function of the stream label, verdicts must be bit-identical
//! at every shard count, and uniform/far traffic must separate exactly
//! as the batch tester separates it (the merge-differential suite
//! proves the per-sketch law; this experiment exercises it end to end).

use std::time::Instant;

use crate::metrics::MetricsLog;
use crate::table::{fmt_f, Table};
use crate::Scale;
use dut_distributions::families::paninski_far;
use dut_distributions::DiscreteDistribution;
use dut_obs::{MemorySink, RunRecord};
use dut_stream::{StreamConfig, StreamService, Verdict};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn verdict_name(v: Verdict) -> &'static str {
    match v {
        Verdict::Uniform => "Uniform",
        Verdict::Far => "Far",
        Verdict::Pending => "Pending",
    }
}

/// Generates `per_stream` samples for each of `streams` labeled
/// streams, round-robin interleaved, each stream drawing from `dist`
/// with its own RNG seeded by `derive_trial_seed(base_seed, label)` —
/// the PR 5 stateless-seed discipline, so traffic is reproducible per
/// stream regardless of interleaving.
fn traffic(
    dist: &DiscreteDistribution,
    streams: u64,
    per_stream: usize,
    base_seed: u64,
) -> Vec<(u64, usize)> {
    let mut rngs: Vec<StdRng> = (0..streams)
        .map(|label| StdRng::seed_from_u64(dut_core::executor::derive_trial_seed(base_seed, label)))
        .collect();
    let mut out = Vec::with_capacity(streams as usize * per_stream);
    for _ in 0..per_stream {
        for (label, rng) in rngs.iter_mut().enumerate() {
            out.push((label as u64, dist.sample(rng)));
        }
    }
    out
}

/// Runs E14, appending one `dut-metrics/1` record per correctness-table
/// service run to `log` (params: input, shards, streams; the `stream.*`
/// counters carry ingest/window/coordinator totals).
pub fn run(scale: Scale, log: &mut MetricsLog) -> Vec<Table> {
    let n = 4096usize;
    let eps = 1.0;
    let streams = 24u64;
    let window = 512usize;
    let reject_threshold = streams as usize / 2;
    let base_seed = 0xE14;

    // ---------------------------------------------------- throughput
    let per_stream = scale.pick(2_000usize, 40_000);
    let uniform = DiscreteDistribution::uniform(n);
    let feed = traffic(&uniform, streams, per_stream, base_seed);

    let mut t_perf = Table::new(
        "E14: streaming ingest throughput (single core)",
        format!(
            "n = 2^12, ε = 1, {streams} streams x {per_stream} samples round-robin, \
             window = {window}. One thread drives every shard, so samples/sec/core is \
             the raw per-sample cost: shard hash + window rotation + O(1) pair-count \
             update. Sharding only partitions state — the rate must be flat in the \
             shard count.",
        ),
        &["shards", "samples", "wall ms", "samples/sec/core"],
    );
    for shards in [1usize, 4, 8] {
        let mut svc = StreamService::new(StreamConfig {
            domain: n,
            epsilon: eps,
            window,
            shards,
            reject_threshold,
            base_seed,
        })
        .expect("valid config");
        let start = Instant::now();
        for &(label, sample) in &feed {
            svc.ingest(label, sample).expect("in-domain sample");
        }
        let elapsed = start.elapsed();
        let secs = elapsed.as_secs_f64();
        let rate = feed.len() as f64 / secs;
        t_perf.push_row(vec![
            shards.to_string(),
            feed.len().to_string(),
            fmt_f(secs * 1e3),
            format!("{:.0}", rate),
        ]);
    }

    // --------------------------------- correctness + shard invariance
    let far = paninski_far(n, eps).expect("valid far instance");
    let mut t_sep = Table::new(
        "E14: verdict separation and shard-count invariance",
        format!(
            "Same service, window-filling traffic ({window} samples per stream). The \
             coordinator verdict (threshold rule, T = {reject_threshold} of {streams} \
             streams) must accept uniform traffic, reject Paninski-far traffic, and be \
             bit-identical at 1 vs 4 shards — shard placement is a pure function of \
             the stream label and sketch merging is exact integer arithmetic.",
        ),
        &[
            "input",
            "streams",
            "verdict (1 shard)",
            "verdict (4 shards)",
            "identical",
            "pooled pairs",
        ],
    );
    for (input, dist) in [("uniform", &uniform), ("far", &far)] {
        let feed = traffic(dist, streams, window, base_seed ^ 0x5EED);
        let mut results = Vec::new();
        for shards in [1usize, 4] {
            let mut svc = StreamService::new(StreamConfig {
                domain: n,
                epsilon: eps,
                window,
                shards,
                reject_threshold,
                base_seed,
            })
            .expect("valid config");
            let mut sink = MemorySink::new();
            for &(label, sample) in &feed {
                svc.ingest_observed(label, sample, &mut sink)
                    .expect("in-domain sample");
            }
            let verdict = svc.verdict_observed(&mut sink);
            let pooled = svc.global_verdict_observed(&mut sink);
            let pairs = svc.merged_sketch().pairs();
            if log.enabled() {
                let rec = RunRecord::new("e14", &format!("{input}/shards{shards}"))
                    .param("n", n)
                    .param("input", input)
                    .param("shards", shards)
                    .param("streams", streams)
                    .param("outcome", verdict_name(verdict.value));
                log.write(&rec, &sink).expect("metrics write");
            }
            results.push((verdict, pooled, pairs));
        }
        let identical = results[0] == results[1];
        t_sep.push_row(vec![
            input.to_string(),
            streams.to_string(),
            verdict_name(results[0].0.value).to_string(),
            verdict_name(results[1].0.value).to_string(),
            identical.to_string(),
            results[0].2.to_string(),
        ]);
    }

    vec![t_perf, t_sep]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_separates_and_is_shard_invariant() {
        let tables = run(Scale::Quick, &mut MetricsLog::disabled());
        assert_eq!(tables.len(), 2);
        crate::verdict::check("e14", &tables).unwrap();
    }

    #[test]
    fn metrics_log_one_record_per_service_run() {
        let mut log = MetricsLog::buffer();
        let tables = run(Scale::Quick, &mut log);
        // 2 inputs x 2 shard counts.
        assert_eq!(log.records(), 4);
        for line in log.lines() {
            assert!(line.starts_with("{\"schema\":\"dut-metrics/1\""));
            assert!(line.contains("\"experiment\":\"e14\""));
            assert!(line.contains("stream.pushes"));
        }
        // Logging must not perturb the run (timing column excluded).
        let plain = run(Scale::Quick, &mut MetricsLog::disabled());
        assert_eq!(plain[1], tables[1]);
    }
}
