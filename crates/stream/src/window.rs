//! Per-stream sliding windows over retire-capable sketches.

use std::collections::VecDeque;

use crate::collision::CollisionSketch;
use crate::singleton::SingletonSketch;
use crate::sketch::{Anytime, Sketch, Verdict};

/// How often (in evictions) a window re-compacts its sketch's support
/// list. Compaction is O(touched symbols) and only affects iteration
/// cost, so the cadence is a constant-factor knob, not a correctness one.
const COMPACT_EVERY: u64 = 4096;

/// A sketch that can *retire* a previously pushed sample — the
/// capability sliding-window eviction needs.
///
/// Retiring must be the exact inverse of pushing: after any interleaving
/// of pushes and retires, the sketch state equals pushing only the
/// still-live samples. The counting sketches ([`CollisionSketch`],
/// [`SingletonSketch`]) support this in O(1); the single-collision
/// [`crate::GapSketch`] deliberately does not (its collided bit is not
/// invertible), so it cannot be windowed.
pub trait Retire: Sketch {
    /// Removes one previously pushed occurrence of `sample`.
    ///
    /// # Panics
    ///
    /// Panics if `sample` was never pushed (callers own the
    /// window bookkeeping, so this is always a bug).
    fn retire(&mut self, sample: usize);

    /// Optional housekeeping after eviction churn; must never change
    /// observable state.
    fn compact(&mut self) {}
}

impl Retire for CollisionSketch {
    fn retire(&mut self, sample: usize) {
        CollisionSketch::retire(self, sample);
    }

    fn compact(&mut self) {
        CollisionSketch::compact(self);
    }
}

impl Retire for SingletonSketch {
    fn retire(&mut self, sample: usize) {
        SingletonSketch::retire(self, sample);
    }

    fn compact(&mut self) {
        SingletonSketch::compact(self);
    }
}

/// A fixed-capacity sliding window over a [`Retire`]-capable sketch.
///
/// Pushing into a full window evicts the oldest sample and retires it
/// from the sketch, so the sketch always reflects exactly the last
/// `capacity` samples — its verdict equals the batch tester run on the
/// window's current contents (enforced by the merge-differential
/// suite). Windows are a *per-stream* construct: two windows' sketches
/// can be merged for a cross-stream aggregate, but the windows
/// themselves are not mergeable (eviction order is stream-local).
#[derive(Debug, Clone)]
pub struct SlidingWindow<S> {
    capacity: usize,
    buf: VecDeque<usize>,
    sketch: S,
    evictions: u64,
}

impl<S: Retire> SlidingWindow<S> {
    /// Wraps an empty sketch in a window of `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or the sketch is not empty (a window
    /// must own every sample its sketch has seen, or eviction
    /// bookkeeping is wrong from the start).
    pub fn new(capacity: usize, sketch: S) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        assert!(
            sketch.samples() == 0,
            "window sketch must start empty (it owns its sample lifecycle)"
        );
        SlidingWindow {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            sketch,
            evictions: 0,
        }
    }

    /// Pushes one sample, evicting the oldest if the window is full.
    pub fn push(&mut self, sample: usize) {
        if self.buf.len() == self.capacity {
            let oldest = self.buf.pop_front().expect("full window is nonempty");
            self.sketch.retire(oldest);
            self.evictions += 1;
            if self.evictions.is_multiple_of(COMPACT_EVERY) {
                self.sketch.compact();
            }
        }
        self.buf.push_back(sample);
        self.sketch.push(sample);
    }

    /// The verdict on the window's current contents.
    pub fn verdict(&self) -> Anytime<Verdict> {
        self.sketch.verdict()
    }

    /// The underlying sketch (for cross-stream merging at a
    /// coordinator).
    pub fn sketch(&self) -> &S {
        &self.sketch
    }

    /// Samples currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples evicted over the window's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_evicts_oldest_and_tracks_suffix() {
        let mut w = SlidingWindow::new(3, CollisionSketch::new(16, 1.0));
        for &x in &[1usize, 1, 2, 3] {
            w.push(x);
        }
        // Window is now [1, 2, 3]: the colliding 1 was evicted.
        assert_eq!(w.len(), 3);
        assert_eq!(w.evictions(), 1);
        assert_eq!(w.sketch().pairs(), 0);
        // Re-introduce a collision within the window.
        w.push(2);
        assert_eq!(w.sketch().pairs(), 1);
    }

    #[test]
    fn window_sketch_equals_fresh_sketch_on_window_contents() {
        let samples: Vec<usize> = (0..200).map(|i| (i * 7 + i / 3) % 16).collect();
        let cap = 32;
        let mut w = SlidingWindow::new(cap, CollisionSketch::new(16, 1.0));
        for (i, &x) in samples.iter().enumerate() {
            w.push(x);
            let start = (i + 1).saturating_sub(cap);
            let mut fresh = CollisionSketch::new(16, 1.0);
            for &y in &samples[start..=i] {
                fresh.push(y);
            }
            assert_eq!(w.sketch().pairs(), fresh.pairs(), "at push {i}");
            assert_eq!(w.verdict(), fresh.verdict(), "at push {i}");
        }
    }

    #[test]
    fn singleton_window_matches_fresh_sketch() {
        let samples: Vec<usize> = (0..100).map(|i| (i * 5 + 3) % 8).collect();
        let cap = 16;
        let mut w = SlidingWindow::new(cap, SingletonSketch::new(8, 1.0));
        for (i, &x) in samples.iter().enumerate() {
            w.push(x);
            let start = (i + 1).saturating_sub(cap);
            let mut fresh = SingletonSketch::new(8, 1.0);
            for &y in &samples[start..=i] {
                fresh.push(y);
            }
            assert_eq!(w.sketch().singletons(), fresh.singletons(), "at push {i}");
        }
    }

    #[test]
    #[should_panic(expected = "must start empty")]
    fn window_rejects_prefilled_sketch() {
        let mut sk = CollisionSketch::new(8, 1.0);
        sk.push(1);
        let _ = SlidingWindow::new(4, sk);
    }
}
