//! The mergeable singleton-count (Paninski) sketch.

use dut_distributions::counts::SymbolCounts;

use crate::sketch::{Anytime, Sketch, Verdict};

/// Mergeable singleton counting: the streaming form of
/// [`dut_core::baselines::SingletonCountTester`].
///
/// State is the per-symbol occupancy table plus the running count of
/// symbols seen *exactly once* (Paninski's K₁ statistic). A push moves
/// one symbol's count from `c` to `c + 1`, which changes K₁ by
/// `[c+1 = 1] − [c = 1]`; a merge folds the other table symbol by
/// symbol with the same adjustment against the combined count. The
/// verdict recomputes the batch tester's midpoint threshold at the
/// current sample count, so it equals
/// `SingletonCountTester::with_samples(n, samples_so_far, ε)` run on
/// the full multiset — bit-identically.
#[derive(Debug, Clone)]
pub struct SingletonSketch {
    counts: SymbolCounts,
    singletons: u64,
    epsilon: f64,
}

impl SingletonSketch {
    /// Creates an empty sketch over the domain `{0, .., n-1}` testing
    /// ε-farness.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or ε is not in `(0, 1]`.
    pub fn new(n: usize, epsilon: f64) -> Self {
        assert!(n > 0, "domain must be nonempty");
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        SingletonSketch {
            counts: SymbolCounts::new(n),
            singletons: 0,
            epsilon,
        }
    }

    /// The domain size `n`.
    pub fn domain_size(&self) -> usize {
        self.counts.domain_size()
    }

    /// The ε the verdict threshold is computed for.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The number of symbols currently seen exactly once (K₁).
    pub fn singletons(&self) -> u64 {
        self.singletons
    }

    /// Removes one previously pushed occurrence of `sample` (sliding
    /// window eviction): a symbol dropping from count 2 to 1 *becomes* a
    /// singleton, from 1 to 0 *stops* being one.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is outside the domain or was never pushed.
    pub fn retire(&mut self, sample: usize) {
        match self.counts.decrement(sample) {
            0 => self.singletons -= 1,
            1 => self.singletons += 1,
            _ => {}
        }
    }

    /// Re-compacts the internal support list after eviction churn; never
    /// changes observable state.
    pub fn compact(&mut self) {
        self.counts.compact();
    }
}

impl Sketch for SingletonSketch {
    fn push(&mut self, sample: usize) {
        match self.counts.increment(sample) {
            0 => self.singletons += 1,
            1 => self.singletons -= 1,
            _ => {}
        }
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.counts.domain_size(),
            other.counts.domain_size(),
            "merging singleton sketches over different domains"
        );
        assert!(
            self.epsilon.to_bits() == other.epsilon.to_bits(),
            "merging singleton sketches with different epsilon"
        );
        self.singletons += other.singletons;
        for (x, cb) in other.counts.iter_nonzero() {
            let ca = self.counts.add(x, cb);
            let before = u64::from(ca == 1) + u64::from(cb == 1);
            let after = u64::from(ca + cb == 1);
            // `singletons` already includes both sides' `before`
            // contributions for x; replace them with the combined one.
            self.singletons = self.singletons + after - before;
        }
    }

    fn verdict(&self) -> Anytime<Verdict> {
        let total = self.counts.total();
        if total < 2 {
            return Anytime::exact(Verdict::Pending, total);
        }
        // Verbatim SingletonCountTester::with_samples threshold math at
        // the current sample count — the bit-identity contract.
        let s = total as usize;
        let nf = self.counts.domain_size() as f64;
        let sf = s as f64;
        let e_uniform = sf * (1.0 - 1.0 / nf).powi(s as i32 - 1);
        let e_far = sf * (1.0 - (1.0 + self.epsilon * self.epsilon) / nf).powi(s as i32 - 1);
        let threshold = (e_uniform + e_far) / 2.0;
        let accept = self.singletons as f64 > threshold;
        let value = if accept {
            Verdict::Uniform
        } else {
            Verdict::Far
        };
        Anytime::exact(value, total)
    }

    fn samples(&self) -> u64 {
        self.counts.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_core::baselines::SingletonCountTester;

    fn batch_verdict(n: usize, eps: f64, samples: &[usize]) -> Verdict {
        let tester = SingletonCountTester::with_samples(n, samples.len(), eps).unwrap();
        Verdict::from_decision(tester.run_on_samples(samples))
    }

    #[test]
    fn singleton_count_tracks_pushes_and_retires() {
        let mut sk = SingletonSketch::new(16, 1.0);
        sk.push(3);
        assert_eq!(sk.singletons(), 1);
        sk.push(3);
        assert_eq!(sk.singletons(), 0);
        sk.push(5);
        assert_eq!(sk.singletons(), 1);
        sk.retire(3);
        assert_eq!(sk.singletons(), 2);
        sk.retire(3);
        assert_eq!(sk.singletons(), 1);
    }

    #[test]
    fn streaming_verdict_matches_batch_tester() {
        let n = 32;
        let eps = 1.0;
        let samples = [3usize, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 11, 12, 0];
        let mut sk = SingletonSketch::new(n, eps);
        for (i, &x) in samples.iter().enumerate() {
            sk.push(x);
            if i >= 1 {
                assert_eq!(
                    sk.verdict().value,
                    batch_verdict(n, eps, &samples[..=i]),
                    "diverged at prefix {}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn merge_matches_single_sketch_state() {
        let n = 64;
        let a = [1usize, 2, 2, 3, 7, 7, 7, 10];
        let b = [2usize, 3, 3, 7, 9, 10, 11];
        let mut left = SingletonSketch::new(n, 1.0);
        let mut right = SingletonSketch::new(n, 1.0);
        for &x in &a {
            left.push(x);
        }
        for &x in &b {
            right.push(x);
        }
        left.merge(&right);
        let mut both = SingletonSketch::new(n, 1.0);
        for &x in a.iter().chain(&b) {
            both.push(x);
        }
        assert_eq!(left.singletons(), both.singletons());
        assert_eq!(left.verdict(), both.verdict());
    }

    #[test]
    #[should_panic(expected = "different domains")]
    fn merge_rejects_mismatched_domains() {
        let mut a = SingletonSketch::new(16, 1.0);
        let b = SingletonSketch::new(32, 1.0);
        a.merge(&b);
    }
}
