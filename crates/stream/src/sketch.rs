//! The mergeable-sketch contract: incremental push, associative merge,
//! anytime verdicts.

use dut_core::executor::sequence_z;
use dut_core::Decision;

/// A three-way streaming verdict.
///
/// Unlike the batch [`Decision`], a streaming tester can be asked before
/// it has seen enough data to decide at all; `Pending` is that state
/// (e.g. fewer than two samples, where no collision statistic exists).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The data is consistent with the uniform distribution.
    Uniform,
    /// The data is ε-far from uniform.
    Far,
    /// Not enough data to decide yet.
    Pending,
}

impl Verdict {
    /// The batch [`Decision`] this verdict corresponds to, or `None`
    /// while pending.
    pub fn decision(self) -> Option<Decision> {
        match self {
            Verdict::Uniform => Some(Decision::Accept),
            Verdict::Far => Some(Decision::Reject),
            Verdict::Pending => None,
        }
    }

    /// Builds a verdict from a batch decision.
    pub fn from_decision(decision: Decision) -> Self {
        match decision {
            Decision::Accept => Verdict::Uniform,
            Decision::Reject => Verdict::Far,
        }
    }
}

/// A value read *at some point mid-stream*, annotated with how much
/// evidence backs it and where the read sits in the union-bound peeking
/// schedule.
///
/// Two kinds of producers use this wrapper:
///
/// * Exact sketches ([`Anytime::exact`]): the value is a deterministic
///   function of every sample seen, so it is `certified` as soon as it
///   is decidable — there is no statistical risk in peeking.
/// * The coordinator's anytime verdicts ([`Anytime::at_look`]): each
///   peek is a `look` into the `sequence_z` union-bound Wilson schedule
///   (the same schedule adaptive Monte-Carlo stopping uses), so the
///   recorded `z` prices all previous peeks into the confidence level
///   and `certified` reports whether the vote interval cleared the
///   decision threshold at this look.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anytime<T> {
    /// The value at this read.
    pub value: T,
    /// Samples the value is based on.
    pub samples: u64,
    /// Index of this read in the union-bound peeking schedule
    /// (0 for exact sketch reads, which are not schedule-priced).
    pub look: usize,
    /// The Wilson width multiplier `sequence_z(look)` in effect.
    pub z: f64,
    /// Whether the value is certified at this read (always true for
    /// exact sketches once the verdict is decidable).
    pub certified: bool,
}

impl Anytime<Verdict> {
    /// Wraps an exact sketch verdict: look 0, certified iff decidable.
    pub fn exact(value: Verdict, samples: u64) -> Self {
        Anytime {
            value,
            samples,
            look: 0,
            z: sequence_z(0),
            certified: value != Verdict::Pending,
        }
    }

    /// Wraps a coordinator verdict taken at `look` in the union-bound
    /// schedule, with the caller's certification result.
    pub fn at_look(value: Verdict, samples: u64, look: usize, certified: bool) -> Self {
        Anytime {
            value,
            samples,
            look,
            z: sequence_z(look),
            certified: certified && value != Verdict::Pending,
        }
    }
}

/// An incremental, mergeable uniformity tester.
///
/// # Contract
///
/// For any sample multiset, any way of partitioning it into sketches,
/// pushing each part in any order, and merging the parts in any order
/// (associativity *and* commutativity) must produce a sketch whose
/// [`verdict`](Sketch::verdict) is **bit-identical** to pushing the
/// whole multiset into one sketch — and equal to the corresponding
/// batch tester in `dut_core` run on the multiset. This holds exactly,
/// not approximately: the sketch states are integer counts and the
/// verdict thresholds replicate the batch testers' float expressions
/// verbatim. The merge-differential suite
/// (`crates/stream/tests/merge_differential.rs`) enforces the contract
/// on proptest-generated splits and merge orders.
///
/// The one exception is [`crate::ThresholdSketch`], whose virtual-node
/// blocks make it order-sensitive; its merge contract is documented (and
/// tested) on the type.
pub trait Sketch {
    /// Feeds one sample into the sketch.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is outside the sketch's domain. Streams fed
    /// from untrusted sources should validate through
    /// [`crate::StreamService::ingest`], which returns a typed error
    /// instead.
    fn push(&mut self, sample: usize);

    /// Folds another sketch of the same configuration into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two sketches were built with different
    /// configurations (domain, ε, …) — merging those is a caller bug
    /// with no meaningful result.
    fn merge(&mut self, other: &Self);

    /// The verdict on everything pushed or merged so far.
    fn verdict(&self) -> Anytime<Verdict>;

    /// Number of samples pushed or merged so far.
    fn samples(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_decision_round_trip() {
        assert_eq!(Verdict::Uniform.decision(), Some(Decision::Accept));
        assert_eq!(Verdict::Far.decision(), Some(Decision::Reject));
        assert_eq!(Verdict::Pending.decision(), None);
        assert_eq!(Verdict::from_decision(Decision::Accept), Verdict::Uniform);
        assert_eq!(Verdict::from_decision(Decision::Reject), Verdict::Far);
    }

    #[test]
    fn exact_wrapper_certifies_decidable_verdicts_only() {
        let pending = Anytime::exact(Verdict::Pending, 1);
        assert!(!pending.certified);
        let decided = Anytime::exact(Verdict::Uniform, 10);
        assert!(decided.certified);
        assert_eq!(decided.look, 0);
        assert_eq!(decided.z, sequence_z(0));
    }

    #[test]
    fn at_look_prices_the_schedule() {
        let v = Anytime::at_look(Verdict::Far, 100, 3, true);
        assert_eq!(v.z, sequence_z(3));
        assert!(v.certified);
        // A pending verdict is never certified, whatever the caller says.
        let p = Anytime::at_look(Verdict::Pending, 1, 0, true);
        assert!(!p.certified);
    }
}
