//! Typed errors for the streaming layer.

use std::fmt;

/// Errors surfaced by the streaming service and sketch constructors.
///
/// Hostile *data* (out-of-domain samples arriving on a live stream) is
/// always a typed error, never a panic; mismatched sketch *configurations*
/// (merging sketches built over different domains) are caller bugs and
/// panic, as documented on each `merge`.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A sample outside the configured domain `{0, .., domain-1}`.
    OutOfDomain {
        /// The offending sample value.
        sample: usize,
        /// The configured domain size.
        domain: usize,
    },
    /// A configuration parameter outside its valid range.
    InvalidConfig {
        /// The parameter's name.
        name: &'static str,
        /// The supplied value, as f64 for uniform display.
        value: f64,
        /// What the parameter must satisfy.
        expected: &'static str,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::OutOfDomain { sample, domain } => {
                write!(f, "sample {sample} outside domain of size {domain}")
            }
            StreamError::InvalidConfig {
                name,
                value,
                expected,
            } => {
                write!(f, "invalid config: {name} = {value}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StreamError::OutOfDomain {
            sample: 10,
            domain: 4,
        };
        assert!(e.to_string().contains("sample 10"));
        let e = StreamError::InvalidConfig {
            name: "shards",
            value: 0.0,
            expected: "shards >= 1",
        };
        assert!(e.to_string().contains("shards"));
    }
}
