//! The sharded streaming service: many concurrent labeled streams,
//! per-stream sliding windows, shard-local state, coordinator verdicts.

use std::collections::BTreeMap;

use dut_core::executor::{derive_trial_seed, sequence_z};
use dut_core::montecarlo::ErrorEstimate;
use dut_obs::keys;
use dut_obs::Sink;

use crate::collision::CollisionSketch;
use crate::error::StreamError;
use crate::sketch::{Anytime, Sketch, Verdict};
use crate::window::SlidingWindow;

/// Configuration for a [`StreamService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Domain size `n` of the tested distributions.
    pub domain: usize,
    /// Distance parameter ε each per-stream tester uses.
    pub epsilon: f64,
    /// Per-stream sliding-window capacity (each stream's verdict is on
    /// its last `window` samples).
    pub window: usize,
    /// Number of shards stream state is partitioned across. A pure
    /// performance knob: every verdict is bit-identical at any value.
    pub shards: usize,
    /// Coordinator threshold `T`: the service verdict is `Far` iff at
    /// least `T` decided streams currently reject.
    pub reject_threshold: usize,
    /// Base seed of the stateless shard-placement function.
    pub base_seed: u64,
}

/// Per-stream state: a windowed collision sketch.
type StreamState = SlidingWindow<CollisionSketch>;

/// One shard's slice of the stream table, keyed by stream label.
/// `BTreeMap` so coordinator iteration is deterministic.
#[derive(Debug, Default)]
struct Shard {
    streams: BTreeMap<u64, StreamState>,
}

/// A sharded streaming uniformity-testing service.
///
/// Samples arrive tagged with a `u64` stream label; each stream gets a
/// sliding-window [`CollisionSketch`] living on the shard selected by
/// the stateless placement function
/// `derive_trial_seed(base_seed, label) % shards` — a pure function of
/// the label, never of arrival order or shard load. Per-stream state
/// depends only on that stream's own sample order, and every
/// coordinator aggregate is a sum over streams in deterministic
/// (shard, label) order, so **all verdicts are bit-identical at any
/// shard count** (enforced by the merge-differential suite).
///
/// Two verdict surfaces:
///
/// * [`verdict`](StreamService::verdict) — the threshold rule over
///   per-stream votes (a stream votes once its window verdict is
///   decidable; `Far` iff at least `reject_threshold` reject). Each
///   call is one *look* in the `sequence_z` union-bound Wilson
///   schedule; the returned [`Anytime`] carries the schedule-priced
///   interval check, so callers may poll as often as they like without
///   silently spending their confidence budget.
/// * [`global_verdict`](StreamService::global_verdict) — merges every
///   stream's window sketch into one collision sketch (the mergeable
///   decomposition at coordinator scale) and reads the pooled verdict.
#[derive(Debug)]
pub struct StreamService {
    cfg: StreamConfig,
    shards: Vec<Shard>,
    looks: usize,
    pushes: u64,
    evictions_recorded: u64,
}

impl StreamService {
    /// Creates an empty service.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::InvalidConfig`] if any of `domain`,
    /// `window`, `shards`, or `reject_threshold` is zero, or ε is not
    /// in `(0, 1]`.
    pub fn new(cfg: StreamConfig) -> Result<Self, StreamError> {
        fn invalid(name: &'static str, value: f64, expected: &'static str) -> StreamError {
            StreamError::InvalidConfig {
                name,
                value,
                expected,
            }
        }
        if cfg.domain == 0 {
            return Err(invalid("domain", 0.0, "domain >= 1"));
        }
        if !(cfg.epsilon > 0.0 && cfg.epsilon <= 1.0) {
            return Err(invalid("epsilon", cfg.epsilon, "0 < epsilon <= 1"));
        }
        if cfg.window == 0 {
            return Err(invalid("window", 0.0, "window >= 1"));
        }
        if cfg.shards == 0 {
            return Err(invalid("shards", 0.0, "shards >= 1"));
        }
        if cfg.reject_threshold == 0 {
            return Err(invalid("reject_threshold", 0.0, "reject_threshold >= 1"));
        }
        let mut shards = Vec::with_capacity(cfg.shards);
        shards.resize_with(cfg.shards, Shard::default);
        Ok(StreamService {
            cfg,
            shards,
            looks: 0,
            pushes: 0,
            evictions_recorded: 0,
        })
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// The shard that owns `label`: a pure function of
    /// `(base_seed, label)`, independent of arrival order and shard
    /// count changes elsewhere in the config.
    pub fn shard_of(&self, label: u64) -> usize {
        (derive_trial_seed(self.cfg.base_seed, label) % self.cfg.shards as u64) as usize
    }

    /// Total samples ingested across all streams.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Number of distinct streams seen so far.
    pub fn stream_count(&self) -> usize {
        self.shards.iter().map(|s| s.streams.len()).sum()
    }

    /// Ingests one sample on stream `label`.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::OutOfDomain`] if `sample` is outside the
    /// configured domain; the service state is unchanged.
    pub fn ingest(&mut self, label: u64, sample: usize) -> Result<(), StreamError> {
        if sample >= self.cfg.domain {
            return Err(StreamError::OutOfDomain {
                sample,
                domain: self.cfg.domain,
            });
        }
        let shard = self.shard_of(label);
        let cfg = self.cfg;
        let window = self.shards[shard].streams.entry(label).or_insert_with(|| {
            SlidingWindow::new(cfg.window, CollisionSketch::new(cfg.domain, cfg.epsilon))
        });
        window.push(sample);
        self.pushes += 1;
        Ok(())
    }

    /// [`ingest`](Self::ingest) with `stream.*` metrics recorded to
    /// `sink`. Sinks never touch sketch state, so an observed ingest is
    /// bit-identical to the plain one.
    pub fn ingest_observed(
        &mut self,
        label: u64,
        sample: usize,
        sink: &mut dyn Sink,
    ) -> Result<(), StreamError> {
        if !sink.enabled() {
            return self.ingest(label, sample);
        }
        let known = self.shards[self.shard_of(label)]
            .streams
            .contains_key(&label);
        self.ingest(label, sample)?;
        sink.add(keys::STREAM_PUSHES, 1);
        if !known {
            sink.add(keys::STREAM_STREAMS, 1);
        }
        let evictions = self.total_evictions();
        if evictions > self.evictions_recorded {
            sink.add(
                keys::STREAM_WINDOW_EVICTIONS,
                evictions - self.evictions_recorded,
            );
            self.evictions_recorded = evictions;
        }
        Ok(())
    }

    fn total_evictions(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.streams.values())
            .map(|w| w.evictions())
            .sum()
    }

    /// The coordinator's anytime threshold-rule verdict.
    ///
    /// Streams whose window verdict is decidable (≥ 2 samples) each
    /// cast one vote; the verdict is `Far` iff at least
    /// `reject_threshold` votes reject, `Pending` while no stream has
    /// voted. Each call advances the look counter of the union-bound
    /// Wilson schedule; `certified` reports whether the vote-rate
    /// interval at this look clears `reject_threshold / votes`.
    pub fn verdict(&mut self) -> Anytime<Verdict> {
        let (votes, rejecting) = self.tally();
        let look = self.looks;
        self.looks += 1;
        if votes == 0 {
            return Anytime::at_look(Verdict::Pending, self.pushes, look, false);
        }
        let value = if rejecting >= self.cfg.reject_threshold {
            Verdict::Far
        } else {
            Verdict::Uniform
        };
        let est = ErrorEstimate::from_counts(votes, rejecting, sequence_z(look));
        let frac = self.cfg.reject_threshold as f64 / votes as f64;
        let certified = match value {
            Verdict::Far => est.certified_above(frac) || rejecting == votes,
            Verdict::Uniform => est.certified_below(frac),
            Verdict::Pending => false,
        };
        Anytime::at_look(value, self.pushes, look, certified)
    }

    /// [`verdict`](Self::verdict) with `stream.*` metrics recorded to
    /// `sink`.
    pub fn verdict_observed(&mut self, sink: &mut dyn Sink) -> Anytime<Verdict> {
        let (_, rejecting) = self.tally();
        let result = self.verdict();
        if sink.enabled() {
            sink.add(keys::STREAM_COORDINATOR_LOOKS, 1);
            sink.add(keys::STREAM_COORDINATOR_REJECTING_VOTES, rejecting as u64);
        }
        result
    }

    /// Counts (decided votes, rejecting votes) over every stream in
    /// deterministic (shard, label) order. Integer sums, so the result
    /// is independent of the iteration order — and of the shard count.
    fn tally(&self) -> (usize, usize) {
        let mut votes = 0usize;
        let mut rejecting = 0usize;
        for shard in &self.shards {
            for window in shard.streams.values() {
                match window.verdict().value {
                    Verdict::Far => {
                        votes += 1;
                        rejecting += 1;
                    }
                    Verdict::Uniform => votes += 1,
                    Verdict::Pending => {}
                }
            }
        }
        (votes, rejecting)
    }

    /// Merges every stream's window sketch into one pooled
    /// [`CollisionSketch`], folding shards in index order and streams
    /// in label order. Sketch merging is exact integer arithmetic, so
    /// the result is identical at any shard count.
    pub fn merged_sketch(&self) -> CollisionSketch {
        let mut pooled = CollisionSketch::new(self.cfg.domain, self.cfg.epsilon);
        for shard in &self.shards {
            for window in shard.streams.values() {
                pooled.merge(window.sketch());
            }
        }
        pooled
    }

    /// The pooled verdict: the collision tester over the union of every
    /// stream's current window contents.
    pub fn global_verdict(&self) -> Anytime<Verdict> {
        self.merged_sketch().verdict()
    }

    /// [`global_verdict`](Self::global_verdict) with the coordinator
    /// merge count recorded to `sink`.
    pub fn global_verdict_observed(&mut self, sink: &mut dyn Sink) -> Anytime<Verdict> {
        if sink.enabled() {
            let merges = self.stream_count() as u64;
            sink.add(keys::STREAM_COORDINATOR_MERGES, merges);
        }
        self.global_verdict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_obs::{MemorySink, NoopSink};

    fn cfg(shards: usize) -> StreamConfig {
        StreamConfig {
            domain: 64,
            epsilon: 1.0,
            window: 32,
            shards,
            reject_threshold: 2,
            base_seed: 7,
        }
    }

    #[test]
    fn config_validation_is_typed() {
        let mut bad = cfg(1);
        bad.shards = 0;
        assert!(matches!(
            StreamService::new(bad),
            Err(StreamError::InvalidConfig { name: "shards", .. })
        ));
        let mut bad = cfg(1);
        bad.epsilon = 0.0;
        assert!(StreamService::new(bad).is_err());
    }

    #[test]
    fn out_of_domain_sample_is_a_typed_error() {
        let mut svc = StreamService::new(cfg(2)).unwrap();
        let err = svc.ingest(1, 64).unwrap_err();
        assert_eq!(
            err,
            StreamError::OutOfDomain {
                sample: 64,
                domain: 64
            }
        );
        assert_eq!(svc.pushes(), 0);
    }

    #[test]
    fn shard_placement_is_stateless() {
        let svc = StreamService::new(cfg(4)).unwrap();
        for label in 0..100 {
            assert_eq!(svc.shard_of(label), svc.shard_of(label));
            assert!(svc.shard_of(label) < 4);
        }
    }

    #[test]
    fn verdicts_are_shard_count_invariant() {
        // Mixed traffic: even streams uniform-ish, odd streams constant.
        let feed = |svc: &mut StreamService| {
            for i in 0..600u64 {
                let label = i % 6;
                let sample = if label % 2 == 0 {
                    ((i * 37 + 11) % 64) as usize
                } else {
                    5
                };
                svc.ingest(label, sample).unwrap();
            }
        };
        let mut one = StreamService::new(cfg(1)).unwrap();
        let mut many = StreamService::new(cfg(5)).unwrap();
        feed(&mut one);
        feed(&mut many);
        assert_eq!(one.verdict(), many.verdict());
        assert_eq!(one.global_verdict(), many.global_verdict());
        assert_eq!(one.merged_sketch().pairs(), many.merged_sketch().pairs());
    }

    #[test]
    fn threshold_rule_fires_on_enough_rejecting_streams() {
        let mut svc = StreamService::new(cfg(3)).unwrap();
        // Three constant streams: each window fills with one symbol.
        for label in 0..3u64 {
            for _ in 0..32 {
                svc.ingest(label, label as usize).unwrap();
            }
        }
        let v = svc.verdict();
        assert_eq!(v.value, Verdict::Far);
        assert_eq!(v.look, 0);
        // The look counter advances per call.
        assert_eq!(svc.verdict().look, 1);
    }

    #[test]
    fn observed_paths_record_and_do_not_perturb() {
        let mut plain = StreamService::new(cfg(2)).unwrap();
        let mut observed = StreamService::new(cfg(2)).unwrap();
        let mut sink = MemorySink::new();
        let mut noop = NoopSink;
        for i in 0..200u64 {
            let label = i % 4;
            let sample = ((i * 13 + 1) % 64) as usize;
            plain.ingest_observed(label, sample, &mut noop).unwrap();
            observed.ingest_observed(label, sample, &mut sink).unwrap();
        }
        assert_eq!(plain.verdict(), observed.verdict_observed(&mut sink));
        assert_eq!(sink.counter(keys::STREAM_PUSHES), 200);
        assert_eq!(sink.counter(keys::STREAM_STREAMS), 4);
        // 4 streams x 50 samples into 32-capacity windows -> evictions.
        assert_eq!(sink.counter(keys::STREAM_WINDOW_EVICTIONS), 4 * 18);
        assert_eq!(sink.counter(keys::STREAM_COORDINATOR_LOOKS), 1);
        observed.global_verdict_observed(&mut sink);
        assert_eq!(sink.counter(keys::STREAM_COORDINATOR_MERGES), 4);
    }
}
