//! Streaming uniformity testing: mergeable sketches and a sharded
//! ingest service.
//!
//! The paper's distributed rules work because per-node collision and
//! singleton statistics are *mergeable* — the coordinator only ever sees
//! associative combinations of local counts. This crate makes that
//! structure first-class:
//!
//! * [`Sketch`] — the incremental tester contract: `push` one sample,
//!   `merge` another sketch associatively, read an anytime [`Verdict`]
//!   at any point. Implementations are *exact*: a sketch fed any
//!   interleaving, split, or merge order of a sample multiset reaches
//!   bit-identical state, and its verdict equals the corresponding batch
//!   tester in `dut_core` run on the full multiset (enforced by the
//!   merge-differential suite in `tests/`).
//! * [`CollisionSketch`] — collision pair counting via the pairwise
//!   decomposition `C(a∪b) = C(a) + C(b) + Σ_x c_a(x)·c_b(x)`; verdicts
//!   match [`dut_core::baselines::CollisionCountTester`].
//! * [`SingletonSketch`] — Paninski's singleton count with O(1)
//!   per-symbol occupancy updates; verdicts match
//!   [`dut_core::baselines::SingletonCountTester`].
//! * [`GapSketch`] / [`ThresholdSketch`] — the paper's single-collision
//!   bit and the Theorem 1.2 threshold rule over virtual per-node
//!   blocks; verdicts match [`dut_core::gap::GapTester`] votes combined
//!   by [`dut_core::zero_round::ThresholdNetworkTester::outcome_from_votes`].
//! * [`SlidingWindow`] — per-stream windowing over any [`Retire`]-capable
//!   sketch: the verdict always equals the batch tester on the window's
//!   current contents.
//! * [`StreamService`] — many concurrent labeled streams, sharded by the
//!   stateless seed discipline of `dut_core::executor::derive_trial_seed`
//!   so placement (and therefore every verdict) is bit-identical at any
//!   shard count, with anytime verdicts priced by the union-bound Wilson
//!   schedule (`sequence_z`) and `stream.*` observability keys.
//! * `DgkSketch` (feature `dgk`) — a Diakonikolas–Gouleakis–Kane-style
//!   domain-compressed collision sketch whose memory is O(√n) instead of
//!   O(n), for shards that cannot afford a full count table.
//!
//! # Example
//!
//! ```rust
//! use dut_stream::{CollisionSketch, Sketch, Verdict};
//!
//! let n = 256;
//! let mut left = CollisionSketch::new(n, 1.0);
//! let mut right = CollisionSketch::new(n, 1.0);
//! // A heavily repeated symbol lands in both halves of the stream.
//! for x in 0..64 {
//!     left.push(x % 8);
//!     right.push(x % 8);
//! }
//! left.merge(&right);
//! assert_eq!(left.verdict().value, Verdict::Far);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collision;
pub mod error;
pub mod gap;
pub mod service;
pub mod singleton;
pub mod sketch;
pub mod window;

#[cfg(feature = "dgk")]
pub mod dgk;

pub use collision::CollisionSketch;
pub use error::StreamError;
pub use gap::{GapSketch, ThresholdSketch};
pub use service::{StreamConfig, StreamService};
pub use singleton::SingletonSketch;
pub use sketch::{Anytime, Sketch, Verdict};
pub use window::{Retire, SlidingWindow};

#[cfg(feature = "dgk")]
pub use dgk::DgkSketch;
