//! DGK-style domain compression: a sublinear-memory collision sketch.
//!
//! Diakonikolas–Gouleakis–Kane (*Communication and Memory Efficient
//! Testing of Discrete Distributions*) show that uniformity testing
//! survives hashing the domain `[n]` down to `m ≪ n` buckets: hashing
//! can only *increase* collision probability (uniform stays lowest),
//! and a random hash preserves an ε-far distribution's excess collision
//! mass up to constant factors. This module implements the
//! domain-compressed collision sketch: per-shard memory is O(m) with
//! `m = Θ(√n)` instead of the O(n) count table of
//! [`crate::CollisionSketch`].
//!
//! Honesty note: the bucket count and the conservative ε/2 threshold
//! below follow the DGK recipe's *shape* with Θ-constants set to 1, the
//! same convention as every theory column in EXPERIMENTS.md. The sketch
//! keeps the exact merge law (it *is* a collision sketch over the
//! hashed domain) but trades the bit-identical-to-batch contract for
//! the memory bound — which is why it lives behind the `dgk` feature
//! rather than in the default build.

use dut_core::executor::derive_trial_seed;
use dut_distributions::counts::SymbolCounts;

use crate::sketch::{Anytime, Sketch, Verdict};

/// A collision sketch over a hashed domain of `m = Θ(√n)` buckets.
///
/// Pushes hash each sample with a seeded splitmix64 stream and feed the
/// bucket index into an ordinary pair-count sketch, so all the
/// mergeability of [`crate::CollisionSketch`] carries over exactly —
/// any split of the stream, merged in any order, reaches bit-identical
/// sketch state. Two sketches merge only if they agree on `(m, seed,
/// ε)`; the seed *is* the hash function, so mixing seeds would count
/// collisions between unrelated bucketings.
#[derive(Debug, Clone)]
pub struct DgkSketch {
    buckets: SymbolCounts,
    pairs: u64,
    epsilon: f64,
    seed: u64,
}

impl DgkSketch {
    /// Creates a sketch for domain size `n` at distance ε, hashing into
    /// `max(64, ⌈√n⌉)` buckets with the hash family member selected by
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or ε is not in `(0, 1]`.
    pub fn new(n: usize, epsilon: f64, seed: u64) -> Self {
        assert!(n > 0, "domain must be nonempty");
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        let m = ((n as f64).sqrt().ceil() as usize).max(64);
        DgkSketch {
            buckets: SymbolCounts::new(m),
            pairs: 0,
            epsilon,
            seed,
        }
    }

    /// The compressed domain size `m` (the sketch's memory footprint).
    pub fn buckets(&self) -> usize {
        self.buckets.domain_size()
    }

    /// The colliding-pair count over the hashed domain.
    pub fn pairs(&self) -> u64 {
        self.pairs
    }

    /// The hash-family seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn bucket_of(&self, sample: usize) -> usize {
        (derive_trial_seed(self.seed, sample as u64) % self.buckets.domain_size() as u64) as usize
    }
}

impl Sketch for DgkSketch {
    fn push(&mut self, sample: usize) {
        let bucket = self.bucket_of(sample);
        let prior = self.buckets.increment(bucket);
        self.pairs += u64::from(prior);
    }

    fn merge(&mut self, other: &Self) {
        assert!(
            self.buckets.domain_size() == other.buckets.domain_size()
                && self.seed == other.seed
                && self.epsilon.to_bits() == other.epsilon.to_bits(),
            "merging DGK sketches with different (buckets, seed, epsilon)"
        );
        for (x, cb) in other.buckets.iter_nonzero() {
            let prior = self.buckets.add(x, cb);
            self.pairs += u64::from(prior) * u64::from(cb);
        }
        self.pairs += other.pairs;
    }

    fn verdict(&self) -> Anytime<Verdict> {
        let total = self.buckets.total();
        if total < 2 {
            return Anytime::exact(Verdict::Pending, total);
        }
        // The collision threshold on the hashed domain, at the
        // conservative post-hash distance ε/2 (hashing can shrink L1
        // distance; DGK bound the loss by a constant, here taken as 2).
        let s = total as usize;
        let eps = self.epsilon / 2.0;
        let pairs_possible = s as f64 * (s as f64 - 1.0) / 2.0;
        let threshold =
            pairs_possible / self.buckets.domain_size() as f64 * (1.0 + eps * eps / 2.0);
        let accept = (self.pairs as f64) <= threshold;
        let value = if accept {
            Verdict::Uniform
        } else {
            Verdict::Far
        };
        Anytime::exact(value, total)
    }

    fn samples(&self) -> u64 {
        self.buckets.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_is_sublinear() {
        let sk = DgkSketch::new(1 << 20, 1.0, 3);
        assert_eq!(sk.buckets(), 1 << 10);
        let sk = DgkSketch::new(100, 1.0, 3);
        assert_eq!(sk.buckets(), 64); // floor at 64 buckets
    }

    #[test]
    fn merge_law_is_exact_on_any_split() {
        let n = 4096;
        let samples: Vec<usize> = (0..300).map(|i| (i * 131 + 7) % n).collect();
        let mut whole = DgkSketch::new(n, 1.0, 42);
        for &x in &samples {
            whole.push(x);
        }
        for split in [1usize, 77, 150, 299] {
            let mut a = DgkSketch::new(n, 1.0, 42);
            let mut b = DgkSketch::new(n, 1.0, 42);
            for &x in &samples[..split] {
                a.push(x);
            }
            for &x in &samples[split..] {
                b.push(x);
            }
            a.merge(&b);
            assert_eq!(a.pairs(), whole.pairs(), "split at {split}");
            assert_eq!(a.verdict(), whole.verdict(), "split at {split}");
        }
    }

    #[test]
    fn separates_uniform_from_point_mass_traffic() {
        let n = 1 << 16;
        // "Uniform" traffic: a full sweep of distinct values hashes to
        // near-uniform bucket load.
        let mut uniform = DgkSketch::new(n, 1.0, 9);
        for i in 0..2048 {
            uniform.push((i * 17) % n);
        }
        assert_eq!(uniform.verdict().value, Verdict::Uniform);
        // Concentrated traffic: one symbol repeats.
        let mut far = DgkSketch::new(n, 1.0, 9);
        for i in 0..2048 {
            far.push(if i % 2 == 0 { 5 } else { (i * 17) % n });
        }
        assert_eq!(far.verdict().value, Verdict::Far);
    }

    #[test]
    #[should_panic(expected = "different (buckets, seed, epsilon)")]
    fn merge_rejects_mismatched_seed() {
        let mut a = DgkSketch::new(256, 1.0, 1);
        let b = DgkSketch::new(256, 1.0, 2);
        a.merge(&b);
    }
}
