//! The single-collision gap sketch and the virtual-node threshold
//! sketch built from it.

use dut_core::decision::DecisionRule;
use dut_core::params::ThresholdPlan;
use dut_distributions::counts::SymbolCounts;

use crate::sketch::{Anytime, Sketch, Verdict};

/// Mergeable form of the paper's single-collision gap tester `A_δ`
/// (§3.1): the only statistic is *whether any collision has occurred*.
///
/// Merging is exact: the union of two sample sets collides iff either
/// side collided internally or their supports intersect, and the
/// occupancy table makes the intersection check O(|support of other|).
/// The verdict equals `Decision::from_accept(!has_collision(samples))`
/// on the full multiset — the same statistic
/// [`dut_core::gap::GapTester::run_on_samples`] computes.
#[derive(Debug, Clone)]
pub struct GapSketch {
    counts: SymbolCounts,
    collided: bool,
}

impl GapSketch {
    /// Creates an empty sketch over the domain `{0, .., n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "domain must be nonempty");
        GapSketch {
            counts: SymbolCounts::new(n),
            collided: false,
        }
    }

    /// The domain size `n`.
    pub fn domain_size(&self) -> usize {
        self.counts.domain_size()
    }

    /// Whether any collision has been observed so far.
    pub fn has_collision(&self) -> bool {
        self.collided
    }

    /// Resets the sketch to empty, keeping its table allocation (used
    /// by [`ThresholdSketch`] between virtual-node blocks).
    fn reset(&mut self) {
        self.counts.clear();
        self.collided = false;
    }
}

impl Sketch for GapSketch {
    fn push(&mut self, sample: usize) {
        let prior = self.counts.increment(sample);
        self.collided |= prior > 0;
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.counts.domain_size(),
            other.counts.domain_size(),
            "merging gap sketches over different domains"
        );
        self.collided |= other.collided;
        for (x, cb) in other.counts.iter_nonzero() {
            let prior = self.counts.add(x, cb);
            self.collided |= prior > 0;
        }
    }

    fn verdict(&self) -> Anytime<Verdict> {
        let total = self.counts.total();
        if total < 2 {
            return Anytime::exact(Verdict::Pending, total);
        }
        let value = if self.collided {
            Verdict::Far
        } else {
            Verdict::Uniform
        };
        Anytime::exact(value, total)
    }

    fn samples(&self) -> u64 {
        self.counts.total()
    }
}

/// The streaming form of the Theorem 1.2 threshold network tester:
/// consecutive pushes fill *virtual nodes* of `node_samples` samples
/// each, every completed block casts one gap-tester vote (reject iff
/// the block collided internally), and the network-level verdict
/// applies the threshold rule `reject iff rejecting ≥ T` to the votes.
///
/// Fed the concatenation of the per-node sample vectors, the completed
/// votes and the final verdict are bit-identical to
/// [`dut_core::zero_round::ThresholdNetworkTester::outcome_from_votes`]
/// with each node's vote computed by the batch gap tester on its block.
///
/// # Merge contract
///
/// Unlike the counting sketches, this sketch is *order-sensitive* —
/// samples are attributed to virtual nodes positionally. `merge`
/// therefore appends the other sketch's completed votes and requires
/// `other` to be **block-aligned** (no partially filled node): merging
/// an unaligned sketch would silently attribute its partial block to
/// the wrong node, so it panics instead. Splitting a stream at
/// block-boundary positions and merging the pieces in order is exact.
#[derive(Debug, Clone)]
pub struct ThresholdSketch {
    node_samples: usize,
    nodes: usize,
    threshold: usize,
    current: GapSketch,
    filled: usize,
    votes: usize,
    rejecting: usize,
}

impl ThresholdSketch {
    /// Creates an empty sketch: `nodes` virtual nodes of `node_samples`
    /// samples each over the domain `{0, .., n-1}`, rejecting when at
    /// least `threshold` node votes reject.
    ///
    /// # Panics
    ///
    /// Panics if any of `n`, `node_samples`, `nodes`, or `threshold`
    /// is zero, or `threshold > nodes`.
    pub fn new(n: usize, node_samples: usize, nodes: usize, threshold: usize) -> Self {
        assert!(n > 0, "domain must be nonempty");
        assert!(node_samples > 0, "node_samples must be positive");
        assert!(nodes > 0, "nodes must be positive");
        assert!(
            (1..=nodes).contains(&threshold),
            "threshold must be in 1..=nodes"
        );
        ThresholdSketch {
            node_samples,
            nodes,
            threshold,
            current: GapSketch::new(n),
            filled: 0,
            votes: 0,
            rejecting: 0,
        }
    }

    /// Builds the sketch from a planned Theorem 1.2 configuration.
    pub fn from_plan(plan: &ThresholdPlan) -> Self {
        ThresholdSketch::new(plan.n, plan.samples_per_node, plan.k, plan.threshold)
    }

    /// Completed node votes so far.
    pub fn votes(&self) -> usize {
        self.votes
    }

    /// Rejecting votes among the completed ones.
    pub fn rejecting(&self) -> usize {
        self.rejecting
    }

    /// The rejection-count threshold `T`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Whether every sample of a completed virtual node has been
    /// consumed — the precondition for being the `other` of a merge.
    pub fn is_block_aligned(&self) -> bool {
        self.filled == 0
    }
}

impl Sketch for ThresholdSketch {
    fn push(&mut self, sample: usize) {
        assert!(
            self.votes < self.nodes,
            "all {} virtual nodes already voted",
            self.nodes
        );
        self.current.push(sample);
        self.filled += 1;
        if self.filled == self.node_samples {
            if self.current.has_collision() {
                self.rejecting += 1;
            }
            self.votes += 1;
            self.filled = 0;
            self.current.reset();
        }
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.current.domain_size(),
            other.current.domain_size(),
            "merging threshold sketches over different domains"
        );
        assert!(
            self.node_samples == other.node_samples
                && self.nodes == other.nodes
                && self.threshold == other.threshold,
            "merging threshold sketches with different plans"
        );
        assert!(
            other.is_block_aligned(),
            "merging a threshold sketch with a partially filled node block"
        );
        assert!(
            self.votes + other.votes <= self.nodes,
            "merged vote count exceeds the planned {} nodes",
            self.nodes
        );
        self.votes += other.votes;
        self.rejecting += other.rejecting;
    }

    fn verdict(&self) -> Anytime<Verdict> {
        let samples = self.samples();
        // The threshold rule's reject side is monotone in the vote
        // count, so `Far` is decidable early; `Uniform` needs every
        // planned node to have voted.
        let value = if self.rejecting >= self.threshold {
            Verdict::Far
        } else if self.votes == self.nodes {
            Verdict::from_decision(DecisionRule::Threshold(self.threshold).decide(self.rejecting))
        } else {
            Verdict::Pending
        };
        Anytime::exact(value, samples)
    }

    fn samples(&self) -> u64 {
        (self.votes * self.node_samples + self.filled) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_distributions::collision::has_collision;

    #[test]
    fn gap_sketch_matches_batch_collision_bit() {
        let n = 32;
        let samples = [3usize, 1, 4, 1, 5];
        let mut sk = GapSketch::new(n);
        for (i, &x) in samples.iter().enumerate() {
            sk.push(x);
            assert_eq!(sk.has_collision(), has_collision(&samples[..=i]));
        }
        assert_eq!(sk.verdict().value, Verdict::Far);
    }

    #[test]
    fn gap_merge_detects_cross_collisions() {
        let n = 32;
        let mut a = GapSketch::new(n);
        let mut b = GapSketch::new(n);
        a.push(1);
        a.push(2);
        b.push(3);
        b.push(2); // collides with a's 2 only across the merge
        assert!(!a.has_collision());
        assert!(!b.has_collision());
        a.merge(&b);
        assert!(a.has_collision());
        assert_eq!(a.samples(), 4);
    }

    #[test]
    fn threshold_sketch_votes_per_block() {
        // 3 nodes x 2 samples, T = 2.
        let mut sk = ThresholdSketch::new(16, 2, 3, 2);
        // Node 0: collision -> reject.
        sk.push(5);
        sk.push(5);
        assert_eq!((sk.votes(), sk.rejecting()), (1, 1));
        assert_eq!(sk.verdict().value, Verdict::Pending);
        // Node 1: distinct -> accept.
        sk.push(1);
        sk.push(2);
        assert_eq!((sk.votes(), sk.rejecting()), (2, 1));
        // Node 2: collision -> reject; T = 2 reached.
        sk.push(7);
        sk.push(7);
        assert_eq!(sk.verdict().value, Verdict::Far);
        assert!(sk.verdict().certified);
    }

    #[test]
    fn threshold_sketch_accepts_when_all_nodes_voted_below_t() {
        let mut sk = ThresholdSketch::new(16, 2, 2, 2);
        sk.push(1);
        sk.push(2);
        sk.push(3);
        sk.push(3);
        assert_eq!(sk.verdict().value, Verdict::Uniform);
    }

    #[test]
    fn threshold_merge_folds_aligned_votes() {
        let mut a = ThresholdSketch::new(16, 2, 4, 3);
        let mut b = ThresholdSketch::new(16, 2, 4, 3);
        a.push(1);
        a.push(1); // reject
        b.push(2);
        b.push(3); // accept
        b.push(4);
        b.push(4); // reject
        a.merge(&b);
        assert_eq!((a.votes(), a.rejecting()), (3, 2));
        assert_eq!(a.verdict().value, Verdict::Pending);
    }

    #[test]
    #[should_panic(expected = "partially filled node block")]
    fn threshold_merge_rejects_unaligned_other() {
        let mut a = ThresholdSketch::new(16, 2, 4, 3);
        let mut b = ThresholdSketch::new(16, 2, 4, 3);
        b.push(2);
        a.merge(&b);
    }
}
