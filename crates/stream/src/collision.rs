//! The mergeable collision-counting sketch.

use dut_distributions::counts::SymbolCounts;

use crate::sketch::{Anytime, Sketch, Verdict};

/// Mergeable collision pair counting: the streaming form of
/// [`dut_core::baselines::CollisionCountTester`].
///
/// State is the per-symbol occupancy table plus the running pair count
/// `M = Σ_x C(count(x), 2)`. Both update in O(1) per push because an
/// occurrence of a symbol with prior count `c` creates exactly `c` new
/// colliding pairs, and merge in O(|support of other|) by the pairwise
/// decomposition
///
/// ```text
/// pairs(a ∪ b) = pairs(a) + pairs(b) + Σ_x c_a(x)·c_b(x)
/// ```
///
/// The verdict recomputes the batch tester's threshold at the *current*
/// sample count, so at every point in the stream it equals
/// `CollisionCountTester::with_samples(n, samples_so_far, ε)` run on the
/// full sample multiset — bit-identically (the float expressions are
/// replicated verbatim).
#[derive(Debug, Clone)]
pub struct CollisionSketch {
    counts: SymbolCounts,
    pairs: u64,
    epsilon: f64,
}

impl CollisionSketch {
    /// Creates an empty sketch over the domain `{0, .., n-1}` testing
    /// ε-farness.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or ε is not in `(0, 1]`.
    pub fn new(n: usize, epsilon: f64) -> Self {
        assert!(n > 0, "domain must be nonempty");
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        CollisionSketch {
            counts: SymbolCounts::new(n),
            pairs: 0,
            epsilon,
        }
    }

    /// The domain size `n`.
    pub fn domain_size(&self) -> usize {
        self.counts.domain_size()
    }

    /// The ε the verdict threshold is computed for.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The colliding-pair count `Σ_x C(count(x), 2)` seen so far —
    /// equal to `dut_distributions::collision::collision_pair_count` on
    /// the pushed multiset.
    pub fn pairs(&self) -> u64 {
        self.pairs
    }

    /// Removes one previously pushed occurrence of `sample` (sliding
    /// window eviction). The symbol's count drops from `c` to `c − 1`,
    /// destroying exactly `c − 1` colliding pairs.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is outside the domain or was never pushed.
    pub fn retire(&mut self, sample: usize) {
        let new = self.counts.decrement(sample);
        self.pairs -= u64::from(new);
    }

    /// Re-compacts the internal support list after eviction churn; never
    /// changes observable state.
    pub fn compact(&mut self) {
        self.counts.compact();
    }
}

impl Sketch for CollisionSketch {
    fn push(&mut self, sample: usize) {
        let prior = self.counts.increment(sample);
        self.pairs += u64::from(prior);
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.counts.domain_size(),
            other.counts.domain_size(),
            "merging collision sketches over different domains"
        );
        assert!(
            self.epsilon.to_bits() == other.epsilon.to_bits(),
            "merging collision sketches with different epsilon"
        );
        for (x, cb) in other.counts.iter_nonzero() {
            let prior = self.counts.add(x, cb);
            self.pairs += u64::from(prior) * u64::from(cb);
        }
        self.pairs += other.pairs;
    }

    fn verdict(&self) -> Anytime<Verdict> {
        let total = self.counts.total();
        if total < 2 {
            return Anytime::exact(Verdict::Pending, total);
        }
        // Verbatim CollisionCountTester::with_samples threshold math at
        // the current sample count — this is the bit-identity contract.
        let s = total as usize;
        let pairs_possible = s as f64 * (s as f64 - 1.0) / 2.0;
        let threshold = pairs_possible / self.counts.domain_size() as f64
            * (1.0 + self.epsilon * self.epsilon / 2.0);
        let accept = (self.pairs as f64) <= threshold;
        let value = if accept {
            Verdict::Uniform
        } else {
            Verdict::Far
        };
        Anytime::exact(value, total)
    }

    fn samples(&self) -> u64 {
        self.counts.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_core::baselines::CollisionCountTester;

    fn batch_verdict(n: usize, eps: f64, samples: &[usize]) -> Verdict {
        let tester = CollisionCountTester::with_samples(n, samples.len(), eps).unwrap();
        Verdict::from_decision(tester.run_on_samples(samples))
    }

    #[test]
    fn pending_below_two_samples() {
        let mut sk = CollisionSketch::new(16, 0.5);
        assert_eq!(sk.verdict().value, Verdict::Pending);
        sk.push(3);
        assert_eq!(sk.verdict().value, Verdict::Pending);
        sk.push(4);
        assert_ne!(sk.verdict().value, Verdict::Pending);
    }

    #[test]
    fn streaming_verdict_matches_batch_tester() {
        let n = 32;
        let eps = 1.0;
        let samples = [3usize, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9];
        let mut sk = CollisionSketch::new(n, eps);
        for (i, &x) in samples.iter().enumerate() {
            sk.push(x);
            if i >= 1 {
                assert_eq!(
                    sk.verdict().value,
                    batch_verdict(n, eps, &samples[..=i]),
                    "diverged at prefix {}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn merge_implements_the_pairwise_decomposition() {
        let n = 64;
        let a = [1usize, 2, 2, 3, 7, 7, 7];
        let b = [2usize, 3, 3, 7, 9];
        let mut left = CollisionSketch::new(n, 1.0);
        let mut right = CollisionSketch::new(n, 1.0);
        for &x in &a {
            left.push(x);
        }
        for &x in &b {
            right.push(x);
        }
        left.merge(&right);
        let mut both = CollisionSketch::new(n, 1.0);
        for &x in a.iter().chain(&b) {
            both.push(x);
        }
        assert_eq!(left.pairs(), both.pairs());
        assert_eq!(left.samples(), both.samples());
        assert_eq!(left.verdict(), both.verdict());
    }

    #[test]
    fn retire_undoes_push_exactly() {
        let mut sk = CollisionSketch::new(16, 1.0);
        for &x in &[5usize, 5, 5, 2] {
            sk.push(x);
        }
        assert_eq!(sk.pairs(), 3);
        sk.retire(5);
        assert_eq!(sk.pairs(), 1);
        sk.retire(5);
        assert_eq!(sk.pairs(), 0);
        assert_eq!(sk.samples(), 2);
    }

    #[test]
    #[should_panic(expected = "different domains")]
    fn merge_rejects_mismatched_domains() {
        let mut a = CollisionSketch::new(16, 1.0);
        let b = CollisionSketch::new(32, 1.0);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "different epsilon")]
    fn merge_rejects_mismatched_epsilon() {
        let mut a = CollisionSketch::new(16, 1.0);
        let b = CollisionSketch::new(16, 0.5);
        a.merge(&b);
    }
}
