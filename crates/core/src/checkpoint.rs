//! Chunk-level checkpointing for Monte-Carlo estimates.
//!
//! Long experiment sweeps (E1's 400k-trial grids, overnight full-scale
//! runs) should survive interruption: the parallel executor
//! ([`crate::executor`]) divides trials into fixed chunks, and a
//! [`Checkpoint`] appends one line per *completed* chunk to a JSONL
//! file in the `dut-metrics/1` schema (the same
//! [`dut_obs::JsonlWriter`] format the `--metrics` flag emits, see
//! `docs/METRICS.md`). Re-running the same estimate against the same
//! file skips every recorded chunk and recomputes only the missing
//! ones — producing a final estimate **bit-identical** to an
//! uninterrupted run, because chunk boundaries, per-trial seeds, and
//! the chunk-ordered reduction are all independent of which run
//! executed a chunk (or on how many threads).
//!
//! # File format
//!
//! One estimate (keyed by a caller-chosen *label*) writes:
//!
//! * a **plan line** — `"experiment":"mc/plan"`, `"case":"<label>"`,
//!   params `trials`, `chunk_size`, `base_seed`, `observed` — written
//!   once, before any chunk of that label;
//! * one **chunk line** per completed chunk —
//!   `"experiment":"mc/chunk"`, params `chunk`, `start`, `len`,
//!   `failures`, plus the chunk sink's counters (in the record's
//!   standard `counters` object) and full-fidelity histograms (bucket
//!   level, in the `hists` param; the record's `histograms` object
//!   holds the usual human-readable summaries).
//!
//! Multiple labels share one file, so a whole experiment (one label
//! per grid cell) checkpoints into a single JSONL. On open, a torn
//! final line (the run died mid-write) is truncated away; that chunk
//! simply reruns. Any other malformed line is a typed
//! [`CheckpointError`] — a checkpoint is either trustworthy or
//! rejected, never silently reinterpreted. Resuming with different
//! parameters (trial count, chunk size, seed, observed mode) under an
//! existing label is a [`CheckpointError::PlanMismatch`]; delete the
//! file to start over.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use dut_obs::hist::BUCKETS;
use dut_obs::{keys, Histogram, JsonlWriter, MemorySink, RunRecord, Sink};

/// Why a checkpoint file could not be used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// An I/O error (message retained; `io::Error` itself is not `Eq`).
    Io(String),
    /// The label contains characters outside the safe set
    /// `[A-Za-z0-9 ._/,:=^()+-]` (kept out of JSON-escape territory so
    /// checkpoint lines parse without a full JSON reader).
    BadLabel(String),
    /// The file records a plan for this label that disagrees with the
    /// requested estimate (different trials / chunk size / seed /
    /// observed mode).
    PlanMismatch {
        /// The estimate's label.
        label: String,
        /// What disagreed.
        detail: String,
    },
    /// A (non-final) line failed to parse, or chunk lines are
    /// inconsistent with their plan.
    Corrupt {
        /// 1-based line number in the checkpoint file.
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// A chunk line recorded a metric key that is not in the
    /// [`dut_obs::keys`] registry (the checkpoint came from a
    /// different build).
    UnknownKey {
        /// 1-based line number in the checkpoint file.
        line: usize,
        /// The unregistered key.
        key: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadLabel(l) => {
                write!(
                    f,
                    "checkpoint label {l:?} has characters outside the safe set"
                )
            }
            CheckpointError::PlanMismatch { label, detail } => {
                write!(f, "checkpoint plan for {label:?} does not match: {detail}")
            }
            CheckpointError::Corrupt { line, detail } => {
                write!(f, "checkpoint line {line} is corrupt: {detail}")
            }
            CheckpointError::UnknownKey { line, key } => {
                write!(
                    f,
                    "checkpoint line {line} records unknown metric key {key:?}"
                )
            }
        }
    }
}

impl Error for CheckpointError {}

fn io_err(e: std::io::Error) -> CheckpointError {
    CheckpointError::Io(e.to_string())
}

/// The stop rule a label's run was planned under, in exactly-comparable
/// form: floats are stored as their IEEE bit patterns so plan equality
/// (and the digits-only line format) stays exact. Plan lines written
/// before adaptive stopping existed carry no stop params and parse as
/// [`PlanStop::FixedBudget`], so old checkpoint files remain valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlanStop {
    FixedBudget,
    Adaptive {
        /// `f64::to_bits` of the interval-width tolerance.
        tolerance_bits: u64,
        /// `f64::to_bits` of the decision threshold, if one was set.
        threshold_bits: Option<u64>,
    },
}

/// The parameters a label's chunks were produced under.
///
/// Deliberately *absent*: the executor's thread count. Chunks are
/// seeded independently of which worker runs them, so resuming a
/// checkpoint on a different `threads` setting (or serially) yields
/// bit-identical results and must not be rejected as a mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Plan {
    pub trials: usize,
    pub chunk_size: usize,
    pub base_seed: u64,
    pub observed: bool,
    pub stop: PlanStop,
}

impl Plan {
    /// Human-readable list of the fields on which `self` (the recorded
    /// plan) and `requested` disagree, e.g.
    /// `trials: recorded 1000, requested 2000; base_seed: recorded 7,
    /// requested 9`.
    fn diff(&self, requested: &Plan) -> String {
        let mut parts = Vec::new();
        if self.trials != requested.trials {
            parts.push(format!(
                "trials: recorded {}, requested {}",
                self.trials, requested.trials
            ));
        }
        if self.chunk_size != requested.chunk_size {
            parts.push(format!(
                "chunk_size: recorded {}, requested {}",
                self.chunk_size, requested.chunk_size
            ));
        }
        if self.base_seed != requested.base_seed {
            parts.push(format!(
                "base_seed: recorded {}, requested {}",
                self.base_seed, requested.base_seed
            ));
        }
        if self.observed != requested.observed {
            parts.push(format!(
                "observed: recorded {}, requested {}",
                self.observed, requested.observed
            ));
        }
        if self.stop != requested.stop {
            parts.push(format!(
                "stop rule: recorded {:?}, requested {:?}",
                self.stop, requested.stop
            ));
        }
        parts.join("; ")
    }
}

/// One completed chunk: its failure count and (for observed runs) the
/// chunk's recorded metrics at full fidelity.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ChunkRecord {
    pub failures: usize,
    pub sink: MemorySink,
}

/// An append-only JSONL checkpoint shared by any number of labeled
/// estimates. See the module docs for the format and guarantees.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    writer: JsonlWriter,
    plans: BTreeMap<String, Plan>,
    chunks: BTreeMap<(String, usize), ChunkRecord>,
}

impl Checkpoint {
    /// Opens (creating if absent) the checkpoint at `path`, loading
    /// every previously recorded chunk. A torn final line is truncated
    /// away and its chunk will rerun.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failure, or a typed parse
    /// error if the file's complete lines are not a valid checkpoint.
    pub fn open(path: &Path) -> Result<Self, CheckpointError> {
        let mut text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(io_err(e)),
        };
        // A torn tail (the writing process died mid-line) is expected;
        // drop it and rerun that chunk. Truncate the file so the next
        // append starts on a clean line boundary.
        if !text.is_empty() && !text.ends_with('\n') {
            let keep = text.rfind('\n').map(|i| i + 1).unwrap_or(0);
            text.truncate(keep);
            fs::write(path, &text).map_err(io_err)?;
        }
        let mut plans = BTreeMap::new();
        let mut chunks = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            parse_line(line, idx + 1, &mut plans, &mut chunks)?;
        }
        Ok(Checkpoint {
            path: path.to_path_buf(),
            writer: JsonlWriter::append(path).map_err(io_err)?,
            plans,
            chunks,
        })
    }

    /// The file this checkpoint appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of chunks recorded as complete under `label`.
    pub fn completed_chunks(&self, label: &str) -> usize {
        self.chunks
            .range((label.to_string(), 0)..=(label.to_string(), usize::MAX))
            .count()
    }

    /// Registers (or validates) the plan for `label` and returns the
    /// already-completed chunks to prefill the executor with.
    pub(crate) fn begin(
        &mut self,
        label: &str,
        plan: Plan,
    ) -> Result<Vec<(usize, ChunkRecord)>, CheckpointError> {
        validate_label(label)?;
        match self.plans.get(label) {
            Some(existing) if *existing != plan => {
                return Err(CheckpointError::PlanMismatch {
                    label: label.to_string(),
                    detail: existing.diff(&plan),
                });
            }
            Some(_) => {}
            None => {
                let mut record = RunRecord::new("mc/plan", label)
                    .param("trials", plan.trials)
                    .param("chunk_size", plan.chunk_size)
                    .param("base_seed", plan.base_seed)
                    .param("observed", u64::from(plan.observed));
                if let PlanStop::Adaptive {
                    tolerance_bits,
                    threshold_bits,
                } = plan.stop
                {
                    record = record
                        .param("adaptive", 1u64)
                        .param("tolerance_bits", tolerance_bits);
                    if let Some(bits) = threshold_bits {
                        record = record.param("threshold_bits", bits);
                    }
                }
                self.writer
                    .write(&record, &MemorySink::new())
                    .and_then(|()| self.writer.flush())
                    .map_err(io_err)?;
                self.plans.insert(label.to_string(), plan);
            }
        }
        Ok(self
            .chunks
            .range((label.to_string(), 0)..=(label.to_string(), usize::MAX))
            .map(|((_, chunk), rec)| (*chunk, rec.clone()))
            .collect())
    }

    /// Appends one completed chunk under `label` and flushes, so a kill
    /// at any later point preserves it.
    pub(crate) fn append_chunk(
        &mut self,
        label: &str,
        chunk: usize,
        start: usize,
        len: usize,
        failures: usize,
        sink: &MemorySink,
    ) -> Result<(), CheckpointError> {
        let record = RunRecord::new("mc/chunk", label)
            .param("chunk", chunk)
            .param("start", start)
            .param("len", len)
            .param("failures", failures)
            .param("hists", encode_hists(sink));
        self.writer
            .write(&record, sink)
            .and_then(|()| self.writer.flush())
            .map_err(io_err)?;
        self.chunks.insert(
            (label.to_string(), chunk),
            ChunkRecord {
                failures,
                sink: sink.clone(),
            },
        );
        Ok(())
    }
}

fn validate_label(label: &str) -> Result<(), CheckpointError> {
    let ok = !label.is_empty()
        && label
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || " ._/,:=^()+-".contains(c));
    if ok {
        Ok(())
    } else {
        Err(CheckpointError::BadLabel(label.to_string()))
    }
}

// --------------------------------------------------------------- parsing
//
// Checkpoint lines are emitted by this module through `RunRecord`, whose
// hand-rolled serializer writes fields in a fixed order with no
// whitespace; labels are restricted to escape-free characters. That
// closed world is what these scanning parsers rely on — they are not a
// general JSON reader and reject anything they did not write.

/// Whether `line` is one *complete* record of the closed world this
/// module writes: a single brace-balanced JSON object. The serializer
/// never puts braces inside strings (labels are restricted to the
/// brace-free safe set, every other value is digits), so a record torn
/// mid-write — by a partial flush, a copy truncated at a block
/// boundary, anything that is not the handled torn-*final*-line case —
/// is exactly a line whose braces do not balance. Without this check a
/// torn plan record whose surviving prefix still contains every param
/// the scanning parser looks for would be silently accepted as a valid
/// plan.
fn line_is_complete(line: &str) -> bool {
    if !line.starts_with('{') {
        return false;
    }
    let mut depth = 0i64;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                // Balanced before the end: trailing garbage after the
                // record object.
                if depth == 0 && i + 1 != line.len() {
                    return false;
                }
            }
            _ => {}
        }
        if depth < 0 {
            return false;
        }
    }
    depth == 0
}

fn parse_line(
    line: &str,
    line_no: usize,
    plans: &mut BTreeMap<String, Plan>,
    chunks: &mut BTreeMap<(String, usize), ChunkRecord>,
) -> Result<(), CheckpointError> {
    let corrupt = |detail: &str| CheckpointError::Corrupt {
        line: line_no,
        detail: detail.to_string(),
    };
    if !line_is_complete(line) {
        return Err(corrupt("truncated or unbalanced record (torn write?)"));
    }
    let experiment = field_str(line, "experiment").ok_or_else(|| corrupt("no experiment field"))?;
    let label = field_str(line, "case").ok_or_else(|| corrupt("no case field"))?;
    match experiment {
        "mc/plan" => {
            // Plan lines from pre-adaptive builds have no "adaptive"
            // param and mean a fixed budget.
            let stop = match field_u64(line, "adaptive") {
                Some(v) if v != 0 => PlanStop::Adaptive {
                    tolerance_bits: field_u64(line, "tolerance_bits")
                        .ok_or_else(|| corrupt("adaptive plan without tolerance_bits"))?,
                    threshold_bits: field_u64(line, "threshold_bits"),
                },
                _ => PlanStop::FixedBudget,
            };
            let plan = Plan {
                trials: field_usize(line, "trials").ok_or_else(|| corrupt("no trials"))?,
                chunk_size: field_usize(line, "chunk_size")
                    .ok_or_else(|| corrupt("no chunk_size"))?,
                base_seed: field_u64(line, "base_seed").ok_or_else(|| corrupt("no base_seed"))?,
                observed: field_u64(line, "observed").ok_or_else(|| corrupt("no observed"))? != 0,
                stop,
            };
            if plan.chunk_size == 0 || plan.trials == 0 {
                return Err(corrupt("plan with zero trials or chunk_size"));
            }
            match plans.get(label) {
                Some(existing) if *existing != plan => {
                    return Err(corrupt("conflicting duplicate plan for label"));
                }
                _ => {
                    plans.insert(label.to_string(), plan);
                }
            }
        }
        "mc/chunk" => {
            let plan = *plans
                .get(label)
                .ok_or_else(|| corrupt("chunk line before its plan line"))?;
            let chunk = field_usize(line, "chunk").ok_or_else(|| corrupt("no chunk"))?;
            let start = field_usize(line, "start").ok_or_else(|| corrupt("no start"))?;
            let len = field_usize(line, "len").ok_or_else(|| corrupt("no len"))?;
            let failures = field_usize(line, "failures").ok_or_else(|| corrupt("no failures"))?;
            let expect_start = chunk.checked_mul(plan.chunk_size);
            if expect_start != Some(start)
                || start >= plan.trials
                || len != plan.chunk_size.min(plan.trials - start)
                || failures > len
            {
                return Err(corrupt("chunk geometry disagrees with its plan"));
            }
            let mut sink = MemorySink::new();
            for (key, value) in parse_counters(line).ok_or_else(|| corrupt("no counters object"))? {
                let key = keys::lookup(key).ok_or_else(|| CheckpointError::UnknownKey {
                    line: line_no,
                    key: key.to_string(),
                })?;
                sink.add(key, value);
            }
            let hists = field_str(line, "hists").ok_or_else(|| corrupt("no hists param"))?;
            for (key, hist) in decode_hists(hists, line_no)? {
                sink.merge_histogram(key, &hist);
            }
            let record = ChunkRecord { failures, sink };
            match chunks.get(&(label.to_string(), chunk)) {
                Some(existing) if *existing != record => {
                    return Err(corrupt("conflicting duplicate chunk record"));
                }
                _ => {
                    chunks.insert((label.to_string(), chunk), record);
                }
            }
        }
        other => {
            return Err(corrupt(&format!("unknown record kind {other:?}")));
        }
    }
    Ok(())
}

/// Extracts the (escape-free by construction) string value of
/// `"key":"value"`.
fn field_str<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Extracts the integer value of `"key":digits`.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn field_usize(line: &str, key: &str) -> Option<usize> {
    field_u64(line, key).and_then(|v| usize::try_from(v).ok())
}

/// Returns the `(key, value)` pairs of the flat `"counters":{...}`
/// object.
fn parse_counters(line: &str) -> Option<Vec<(&str, u64)>> {
    let pat = "\"counters\":{";
    let at = line.find(pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find('}')?;
    let body = &rest[..end];
    let mut out = Vec::new();
    if body.is_empty() {
        return Some(out);
    }
    for pair in body.split(',') {
        let (key, value) = pair.split_once(':')?;
        let key = key.strip_prefix('"')?.strip_suffix('"')?;
        out.push((key, value.parse().ok()?));
    }
    Some(out)
}

/// Serializes every histogram of `sink` at full bucket fidelity:
/// `key=count,sum,min,max[,i:c]*` entries joined by `;`.
fn encode_hists(sink: &MemorySink) -> String {
    let mut entries = Vec::new();
    for (key, h) in sink.histograms() {
        let mut entry = format!("{key}={},{},{},{}", h.count(), h.sum(), h.min(), h.max());
        for (i, c) in h.buckets().iter().enumerate().filter(|(_, c)| **c > 0) {
            entry.push_str(&format!(",{i}:{c}"));
        }
        entries.push(entry);
    }
    entries.join(";")
}

/// The inverse of [`encode_hists`].
fn decode_hists(
    encoded: &str,
    line_no: usize,
) -> Result<Vec<(&'static str, Histogram)>, CheckpointError> {
    let corrupt = |detail: &str| CheckpointError::Corrupt {
        line: line_no,
        detail: detail.to_string(),
    };
    let mut out = Vec::new();
    if encoded.is_empty() {
        return Ok(out);
    }
    for entry in encoded.split(';') {
        let (key, body) = entry
            .split_once('=')
            .ok_or_else(|| corrupt("histogram entry without '='"))?;
        let key = keys::lookup(key).ok_or_else(|| CheckpointError::UnknownKey {
            line: line_no,
            key: key.to_string(),
        })?;
        let mut parts = body.split(',');
        let mut stat = || -> Result<u64, CheckpointError> {
            parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| corrupt("histogram entry missing side stats"))
        };
        let (count, sum, min, max) = (stat()?, stat()?, stat()?, stat()?);
        let mut buckets = [0u64; BUCKETS];
        for pair in parts {
            let (i, c) = pair
                .split_once(':')
                .ok_or_else(|| corrupt("histogram bucket without ':'"))?;
            let i: usize = i.parse().map_err(|_| corrupt("bad bucket index"))?;
            if i >= BUCKETS {
                return Err(corrupt("bucket index out of range"));
            }
            buckets[i] = c.parse().map_err(|_| corrupt("bad bucket count"))?;
        }
        let hist = Histogram::from_parts(count, sum, min, max, buckets)
            .ok_or_else(|| corrupt("histogram side stats disagree with buckets"))?;
        out.push((key, hist));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_obs::keys as k;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dut_core_checkpoint_tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn plan() -> Plan {
        Plan {
            trials: 100,
            chunk_size: 16,
            base_seed: 7,
            observed: true,
            stop: PlanStop::FixedBudget,
        }
    }

    #[test]
    fn fresh_open_begin_append_reload() {
        let path = tmp("fresh.jsonl");
        let _ = fs::remove_file(&path);
        let mut ck = Checkpoint::open(&path).unwrap();
        assert_eq!(ck.begin("a/b", plan()).unwrap(), vec![]);
        let mut sink = MemorySink::new();
        sink.add(k::CORE_GAP_RUNS, 16);
        sink.observe(k::NETSIM_ROUND_BITS, 96);
        sink.observe(k::NETSIM_ROUND_BITS, 5);
        ck.append_chunk("a/b", 2, 32, 16, 3, &sink).unwrap();
        drop(ck);

        let mut re = Checkpoint::open(&path).unwrap();
        assert_eq!(re.completed_chunks("a/b"), 1);
        let done = re.begin("a/b", plan()).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 2);
        assert_eq!(done[0].1.failures, 3);
        // Full fidelity: the restored sink equals the recorded one.
        assert_eq!(done[0].1.sink, sink);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn plan_mismatch_is_typed_and_names_the_field() {
        let path = tmp("mismatch.jsonl");
        let _ = fs::remove_file(&path);
        let mut ck = Checkpoint::open(&path).unwrap();
        ck.begin("x", plan()).unwrap();
        let other = Plan {
            base_seed: 8,
            ..plan()
        };
        match ck.begin("x", other) {
            Err(CheckpointError::PlanMismatch { label, detail }) => {
                assert_eq!(label, "x");
                // The diff names only the field that disagrees, with
                // both values, instead of dumping both whole plans.
                assert!(detail.contains("base_seed"), "detail: {detail}");
                assert!(!detail.contains("trials"), "detail: {detail}");
                assert!(!detail.contains("chunk_size"), "detail: {detail}");
            }
            other => panic!("expected PlanMismatch, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn plan_mismatch_diff_lists_every_disagreeing_field() {
        let path = tmp("mismatch_multi.jsonl");
        let _ = fs::remove_file(&path);
        let mut ck = Checkpoint::open(&path).unwrap();
        ck.begin("x", plan()).unwrap();
        let recorded = plan();
        let other = Plan {
            trials: recorded.trials + 1,
            observed: !recorded.observed,
            ..recorded
        };
        match ck.begin("x", other) {
            Err(CheckpointError::PlanMismatch { detail, .. }) => {
                assert!(detail.contains("trials"), "detail: {detail}");
                assert!(detail.contains("observed"), "detail: {detail}");
                assert!(!detail.contains("base_seed"), "detail: {detail}");
            }
            other => panic!("expected PlanMismatch, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn adaptive_plan_round_trips_and_mismatches_fixed() {
        let path = tmp("adaptive_plan.jsonl");
        let _ = fs::remove_file(&path);
        let adaptive = Plan {
            stop: PlanStop::Adaptive {
                tolerance_bits: 0.002f64.to_bits(),
                threshold_bits: Some(0.05f64.to_bits()),
            },
            ..plan()
        };
        let mut ck = Checkpoint::open(&path).unwrap();
        ck.begin("x", adaptive).unwrap();
        ck.append_chunk("x", 0, 0, 16, 2, &MemorySink::new())
            .unwrap();
        drop(ck);

        let mut re = Checkpoint::open(&path).unwrap();
        // Same adaptive plan: accepted, chunk restored.
        assert_eq!(re.begin("x", adaptive).unwrap().len(), 1);
        // A fixed-budget (or differently tuned) plan is a mismatch.
        assert!(matches!(
            re.begin("x", plan()),
            Err(CheckpointError::PlanMismatch { .. })
        ));
        let other = Plan {
            stop: PlanStop::Adaptive {
                tolerance_bits: 0.004f64.to_bits(),
                threshold_bits: Some(0.05f64.to_bits()),
            },
            ..plan()
        };
        assert!(matches!(
            re.begin("x", other),
            Err(CheckpointError::PlanMismatch { .. })
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn plan_lines_without_stop_params_parse_as_fixed_budget() {
        // Compatibility: checkpoint files written before adaptive
        // stopping existed must keep resuming fixed-budget runs.
        let path = tmp("legacy_plan.jsonl");
        let _ = fs::remove_file(&path);
        let mut ck = Checkpoint::open(&path).unwrap();
        ck.begin("x", plan()).unwrap();
        drop(ck);
        let text = fs::read_to_string(&path).unwrap();
        assert!(!text.contains("adaptive"), "fixed plans stay param-free");
        let mut re = Checkpoint::open(&path).unwrap();
        assert!(re.begin("x", plan()).is_ok());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_rerun() {
        let path = tmp("torn.jsonl");
        let _ = fs::remove_file(&path);
        let mut ck = Checkpoint::open(&path).unwrap();
        ck.begin("x", plan()).unwrap();
        ck.append_chunk("x", 0, 0, 16, 1, &MemorySink::new())
            .unwrap();
        drop(ck);
        // Simulate a kill mid-write of the next chunk line.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"schema\":\"dut-metrics/1\",\"experiment\":\"mc/chu");
        fs::write(&path, &text).unwrap();
        let re = Checkpoint::open(&path).unwrap();
        assert_eq!(re.completed_chunks("x"), 1);
        // The torn bytes are gone from disk.
        assert!(fs::read_to_string(&path).unwrap().ends_with('\n'));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_interior_plan_record_is_rejected_not_reinterpreted() {
        // A plan record torn *mid-file* (a later complete line follows,
        // so torn-final-line truncation cannot rescue it). The torn
        // prefix deliberately keeps every param the scanning parser
        // reads — trials, chunk_size, base_seed, observed — which the
        // pre-fix parser silently accepted as a valid plan.
        let path = tmp("torn_plan.jsonl");
        let _ = fs::remove_file(&path);
        let mut ck = Checkpoint::open(&path).unwrap();
        ck.begin("x", plan()).unwrap();
        ck.append_chunk("x", 0, 0, 16, 1, &MemorySink::new())
            .unwrap();
        drop(ck);
        let text = fs::read_to_string(&path).unwrap();
        let (plan_line, rest) = text.split_once('\n').unwrap();
        let cut = plan_line.find(",\"counters\"").unwrap();
        let torn = format!("{}\n{rest}", &plan_line[..cut]);
        fs::write(&path, torn).unwrap();
        match Checkpoint::open(&path) {
            Err(CheckpointError::Corrupt { line, detail }) => {
                assert_eq!(line, 1);
                assert!(detail.contains("truncated"), "detail: {detail}");
            }
            other => panic!("torn plan must be a typed error, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_interior_chunk_record_is_rejected() {
        let path = tmp("torn_chunk.jsonl");
        let _ = fs::remove_file(&path);
        let mut ck = Checkpoint::open(&path).unwrap();
        ck.begin("x", plan()).unwrap();
        let mut sink = MemorySink::new();
        sink.add(k::CORE_GAP_RUNS, 16);
        ck.append_chunk("x", 0, 0, 16, 1, &sink).unwrap();
        ck.append_chunk("x", 1, 16, 16, 0, &sink).unwrap();
        drop(ck);
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        // Tear chunk 0 (line 2) after its params but keep chunk 1 whole.
        let cut = lines[1].find(",\"counters\"").unwrap();
        let torn_line = &lines[1][..cut];
        lines[1] = torn_line;
        fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        assert!(matches!(
            Checkpoint::open(&path),
            Err(CheckpointError::Corrupt { line: 2, .. })
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_interior_line_is_rejected() {
        let path = tmp("corrupt.jsonl");
        let _ = fs::remove_file(&path);
        fs::write(
            &path,
            "{\"schema\":\"dut-metrics/1\",\"experiment\":\"mc/wat\",\"case\":\"x\"}\n",
        )
        .unwrap();
        assert!(matches!(
            Checkpoint::open(&path),
            Err(CheckpointError::Corrupt { line: 1, .. })
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn unknown_metric_key_is_rejected() {
        let path = tmp("unknown_key.jsonl");
        let _ = fs::remove_file(&path);
        let mut ck = Checkpoint::open(&path).unwrap();
        ck.begin("x", plan()).unwrap();
        ck.append_chunk("x", 0, 0, 16, 0, &MemorySink::new())
            .unwrap();
        drop(ck);
        let text = fs::read_to_string(&path)
            .unwrap()
            .replace("\"counters\":{}", "\"counters\":{\"not.a.key\":1}");
        fs::write(&path, text).unwrap();
        assert!(matches!(
            Checkpoint::open(&path),
            Err(CheckpointError::UnknownKey { .. })
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn bad_labels_are_rejected() {
        let path = tmp("label.jsonl");
        let _ = fs::remove_file(&path);
        let mut ck = Checkpoint::open(&path).unwrap();
        assert!(matches!(
            ck.begin("quo\"te", plan()),
            Err(CheckpointError::BadLabel(_))
        ));
        assert!(matches!(
            ck.begin("", plan()),
            Err(CheckpointError::BadLabel(_))
        ));
        assert!(ck.begin("ok label/n=16,eps=0.5", plan()).is_ok());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn hist_encoding_round_trips() {
        let mut sink = MemorySink::new();
        for v in [0u64, 1, 3, 1 << 40] {
            sink.observe(k::NETSIM_ROUND_NANOS, v);
        }
        sink.observe(k::NETSIM_ROUND_BITS, 12);
        let encoded = encode_hists(&sink);
        let decoded = decode_hists(&encoded, 1).unwrap();
        assert_eq!(decoded.len(), 2);
        let mut rebuilt = MemorySink::new();
        for (key, h) in &decoded {
            rebuilt.merge_histogram(key, h);
        }
        assert_eq!(
            rebuilt.histogram(k::NETSIM_ROUND_NANOS),
            sink.histogram(k::NETSIM_ROUND_NANOS)
        );
        assert_eq!(
            rebuilt.histogram(k::NETSIM_ROUND_BITS),
            sink.histogram(k::NETSIM_ROUND_BITS)
        );
    }
}
