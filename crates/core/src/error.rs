//! Error types for tester planning.

use std::error::Error;
use std::fmt;

/// Error returned when a tester's parameters cannot be planned for the
/// requested regime.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A parameter was out of its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable description of the valid range.
        expected: &'static str,
    },
    /// The requested regime is infeasible: the paper's validity conditions
    /// (e.g. γ > 0, δ < ε⁴/64, n > 64/(ε⁴δ)) cannot all be satisfied.
    Infeasible {
        /// Which condition failed.
        condition: &'static str,
        /// Diagnostic detail (e.g. the value that violated the condition).
        detail: String,
    },
    /// Domain too small for the requested (δ, ε): the gap tester needs
    /// `n > 64/(ε⁴ δ)` for its slack term γ to be ≥ 1/2.
    DomainTooSmall {
        /// Actual domain size.
        n: usize,
        /// Minimum domain size required.
        required: usize,
    },
    /// The network has too few nodes to reach the requested error with
    /// the requested rule.
    NetworkTooSmall {
        /// Actual node count.
        k: usize,
        /// Minimum node count required.
        required: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(f, "parameter {name} = {value} out of range ({expected})"),
            PlanError::Infeasible { condition, detail } => {
                write!(f, "plan infeasible: {condition} ({detail})")
            }
            PlanError::DomainTooSmall { n, required } => {
                write!(f, "domain size {n} too small, need at least {required}")
            }
            PlanError::NetworkTooSmall { k, required } => {
                write!(f, "network size {k} too small, need at least {required}")
            }
        }
    }
}

impl Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PlanError::DomainTooSmall {
            n: 10,
            required: 100,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<PlanError>();
    }
}
