//! Asymmetric-cost 0-round testers (§4 of the paper).
//!
//! Each node `i` pays a cost `c_i` per sample; the goal is to minimize
//! the *maximum individual cost* `C = max_i s_i·c_i`. The paper's
//! solution assigns every node the same total cost `C` and hence
//! `s_i = C·T_i` samples, where `T_i = 1/c_i` is the inverse cost. The
//! resulting bounds are governed by norms of the inverse-cost vector `T`:
//!
//! * Threshold rule (§4.2): `C = Θ(√n/ε²) / ‖T‖₂`.
//! * AND rule (§4.1): `C = √2·(ln 1/(1−p))^{1/(2m)}·m·√n / ‖T‖₂ₘ` with
//!   `m = Θ(C_p/ε²)` repetitions per node.
//!
//! Setting all costs to 1 recovers the symmetric testers
//! (`‖T‖₂ = √k`). The module also provides the Lemma 4.1 extremal-point
//! functions, which justify using the *same* gap α for all nodes.

use crate::decision::{Decision, DecisionRule, NetworkOutcome};
use crate::error::PlanError;
use crate::gap::GapTester;
use crate::params::{c_p, gamma_slack, normal_quantile};
use dut_distributions::SampleOracle;
use rand::Rng;

/// A vector of per-sample costs, one per node. All costs must be
/// positive and finite.
#[derive(Debug, Clone, PartialEq)]
pub struct CostVector {
    costs: Vec<f64>,
}

impl CostVector {
    /// Creates a cost vector.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::InvalidParameter`] if empty or any cost is
    /// non-positive / non-finite.
    pub fn new(costs: Vec<f64>) -> Result<Self, PlanError> {
        if costs.is_empty() {
            return Err(PlanError::InvalidParameter {
                name: "costs",
                value: 0.0,
                expected: "at least one node",
            });
        }
        for &c in &costs {
            if !(c > 0.0 && c.is_finite()) {
                return Err(PlanError::InvalidParameter {
                    name: "cost",
                    value: c,
                    expected: "each cost must be positive and finite",
                });
            }
        }
        Ok(CostVector { costs })
    }

    /// The uniform cost vector (all costs 1) — recovers the symmetric
    /// setting.
    pub fn uniform(k: usize) -> Self {
        CostVector {
            costs: vec![1.0; k.max(1)],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether the vector is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Per-sample cost of node `i`.
    pub fn cost(&self, i: usize) -> f64 {
        self.costs[i]
    }

    /// Inverse cost `T_i = 1/c_i` of node `i`.
    pub fn inverse(&self, i: usize) -> f64 {
        1.0 / self.costs[i]
    }

    /// The `L_p` norm of the inverse-cost vector `T`.
    ///
    /// # Panics
    ///
    /// Panics if `p <= 0`.
    pub fn inverse_norm(&self, p: f64) -> f64 {
        assert!(p > 0.0, "norm order must be positive");
        self.costs
            .iter()
            .map(|&c| (1.0 / c).powf(p))
            .sum::<f64>()
            .powf(1.0 / p)
    }

    /// Iterates over the costs.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.costs.iter().copied()
    }
}

/// A planned asymmetric threshold tester: per-node sample counts
/// `s_i = C·T_i`, a shared threshold `T`, and the achieved maximum
/// individual cost.
#[derive(Debug, Clone)]
pub struct AsymmetricThresholdTester {
    /// `None` for nodes whose budget rounds below 2 samples (they never
    /// reject and contribute nothing).
    node_testers: Vec<Option<GapTester>>,
    threshold: usize,
    max_cost: f64,
    expected_alarms_uniform: f64,
    expected_alarms_far: f64,
}

impl AsymmetricThresholdTester {
    /// Plans the asymmetric threshold tester (§4.2): finds the smallest
    /// maximum-cost budget `C` such that the per-node budgets
    /// `s_i = C/c_i` produce an alarm-count window wide enough to
    /// separate uniform from ε-far with error `p` (normal window).
    ///
    /// # Errors
    ///
    /// Fails when no budget admits a valid window (network too
    /// small/expensive relative to `1/ε⁴`).
    pub fn plan(n: usize, costs: &CostVector, epsilon: f64, p: f64) -> Result<Self, PlanError> {
        if !(epsilon > 0.0 && epsilon <= 1.0) {
            return Err(PlanError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                expected: "0 < epsilon <= 1",
            });
        }
        if !(p > 0.0 && p < 0.5) {
            return Err(PlanError::InvalidParameter {
                name: "p",
                value: p,
                expected: "0 < p < 1/2",
            });
        }
        let z = normal_quantile(1.0 - p);
        let norm2 = costs.inverse_norm(2.0);

        // Scan the expected alarm count x = Σδ_i upward; C = √(2nx)/‖T‖₂.
        let mut x = 1.0f64;
        let mut best: Option<AsymmetricThresholdTester> = None;
        while x < 1e7 {
            let c_budget = (2.0 * n as f64 * x).sqrt() / norm2;
            if let Some(t) = Self::try_budget(n, costs, epsilon, z, c_budget) {
                best = Some(t);
                break;
            }
            x *= 1.1;
        }
        best.ok_or(PlanError::Infeasible {
            condition: "no max-cost budget yields a valid threshold window",
            detail: format!("n={n}, k={}, epsilon={epsilon}", costs.len()),
        })
    }

    fn try_budget(
        n: usize,
        costs: &CostVector,
        epsilon: f64,
        z: f64,
        c_budget: f64,
    ) -> Option<AsymmetricThresholdTester> {
        let mut node_testers = Vec::with_capacity(costs.len());
        let mut eta_u = 0.0f64;
        let mut eta_f = 0.0f64;
        let mut max_cost = 0.0f64;
        let mut var_u = 0.0f64;
        let mut var_f = 0.0f64;
        for i in 0..costs.len() {
            let s = (c_budget * costs.inverse(i)).floor() as usize;
            if s < 2 {
                node_testers.push(None);
                continue;
            }
            let tester = GapTester::with_samples(n, s).ok()?;
            let delta = tester.delta();
            let gamma = gamma_slack(n, s, epsilon);
            if gamma <= 0.0 {
                // This node's budget is too large for the gap regime;
                // cap it rather than fail the whole plan.
                node_testers.push(None);
                continue;
            }
            let reject_far = (1.0 + gamma * epsilon * epsilon) * delta;
            eta_u += delta;
            eta_f += reject_far;
            var_u += delta * (1.0 - delta);
            var_f += reject_far * (1.0 - reject_far);
            max_cost = max_cost.max(s as f64 * costs.cost(i));
            node_testers.push(Some(tester));
        }
        if eta_u <= 0.0 {
            return None;
        }
        let lo = eta_u + z * var_u.sqrt();
        let hi = eta_f - z * var_f.sqrt();
        if lo > hi {
            return None;
        }
        let threshold = (lo.ceil() as usize).max(1);
        if (threshold as f64) > hi {
            return None;
        }
        Some(AsymmetricThresholdTester {
            node_testers,
            threshold,
            max_cost,
            expected_alarms_uniform: eta_u,
            expected_alarms_far: eta_f,
        })
    }

    /// The alarm threshold `T`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The maximum individual cost `C = max_i s_i·c_i` actually paid.
    pub fn max_cost(&self) -> f64 {
        self.max_cost
    }

    /// Expected number of alarms on the uniform distribution.
    pub fn expected_alarms_uniform(&self) -> f64 {
        self.expected_alarms_uniform
    }

    /// Lower bound on expected alarms on an ε-far distribution.
    pub fn expected_alarms_far(&self) -> f64 {
        self.expected_alarms_far
    }

    /// Per-node sample counts (0 for nodes priced out of participation).
    pub fn sample_counts(&self) -> Vec<usize> {
        self.node_testers
            .iter()
            .map(|t| t.as_ref().map_or(0, |t| t.samples()))
            .collect()
    }

    /// Simulates one run of the network.
    pub fn run<O, R>(&self, oracle: &O, rng: &mut R) -> NetworkOutcome
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        let mut rejecting = 0usize;
        for t in self.node_testers.iter().flatten() {
            if t.run(oracle, rng) == Decision::Reject {
                rejecting += 1;
            }
        }
        NetworkOutcome {
            decision: DecisionRule::Threshold(self.threshold).decide(rejecting),
            rejecting_nodes: rejecting,
            nodes: self.node_testers.len(),
        }
    }
}

/// A planned asymmetric AND-rule tester (§4.1): node `i` runs `m`
/// repetitions of the gap tester on `sᵢ/m` samples each and rejects iff
/// all `m` repetitions reject; the network rejects iff any node rejects.
///
/// The per-node false-alarm budgets `δᵢ` follow the cost profile
/// (`δᵢ ∝ (C·Tᵢ)^{2m}`), constrained so `Π(1−δᵢ) = 1−p` — the Eq. (6)
/// completeness condition — and Lemma 4.1 guarantees the asymmetric
/// profile only *improves* soundness over the symmetric one.
#[derive(Debug, Clone)]
pub struct AsymmetricAndTester {
    /// `None` for nodes priced out of participation (< 2 samples per
    /// run); they always accept.
    node_testers: Vec<Option<crate::amplify::RepeatedGapTester>>,
    m: usize,
    max_cost: f64,
    predicted_completeness_error: f64,
    predicted_soundness_error: f64,
}

impl AsymmetricAndTester {
    /// Plans the asymmetric AND tester: searches the repetition count
    /// `m` and, for each, binary-searches the cost budget `C` so that
    /// the per-node budgets satisfy the Eq. (6) completeness constraint
    /// `Σ −ln(1−δᵢ) = ln(1/(1−p))`; the cheapest feasible (γ > 0 on all
    /// participants) plan wins, preferring smaller predicted soundness
    /// error on ties.
    ///
    /// # Errors
    ///
    /// Fails when no `(m, C)` yields positive γ on the participating
    /// nodes.
    pub fn plan(n: usize, costs: &CostVector, epsilon: f64, p: f64) -> Result<Self, PlanError> {
        if !(epsilon > 0.0 && epsilon <= 1.0) {
            return Err(PlanError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                expected: "0 < epsilon <= 1",
            });
        }
        if !(p > 0.0 && p < 0.5) {
            return Err(PlanError::InvalidParameter {
                name: "p",
                value: p,
                expected: "0 < p < 1/2",
            });
        }
        let target = (1.0 / (1.0 - p)).ln();
        let mut best: Option<AsymmetricAndTester> = None;
        for m in 1..=8usize {
            // Binary search the per-node-budget scale C: Σ −ln(1−δᵢ(C))
            // is increasing in C.
            let (mut lo, mut hi) = (1.0f64, 1e9f64);
            if Self::completeness_load(n, costs, m, hi) < target {
                continue; // even huge budgets cannot reach the target
            }
            for _ in 0..80 {
                let mid = (lo + hi) / 2.0;
                if Self::completeness_load(n, costs, m, mid) < target {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let c_budget = lo;
            if let Some(plan) = Self::try_budget(n, costs, epsilon, p, m, c_budget) {
                let better = match &best {
                    None => true,
                    Some(b) => plan.predicted_soundness_error < b.predicted_soundness_error,
                };
                if better {
                    best = Some(plan);
                }
            }
        }
        best.ok_or(PlanError::Infeasible {
            condition: "no (m, C) yields positive gamma on participating nodes",
            detail: format!("n={n}, k={}, epsilon={epsilon}", costs.len()),
        })
    }

    /// `Σ −ln(1−δᵢ)` at budget scale `C` (the completeness load that
    /// must equal `ln(1/(1−p))`).
    fn completeness_load(n: usize, costs: &CostVector, m: usize, c_budget: f64) -> f64 {
        let mut load = 0.0;
        for i in 0..costs.len() {
            let s_run = (c_budget * costs.inverse(i) / m as f64).floor() as usize;
            if s_run < 2 {
                continue;
            }
            let delta_run = delta_for_samples_local(n, s_run);
            if delta_run >= 1.0 {
                return f64::INFINITY;
            }
            let delta_node = delta_run.powi(m as i32);
            load += -(1.0 - delta_node).ln();
        }
        load
    }

    fn try_budget(
        n: usize,
        costs: &CostVector,
        epsilon: f64,
        _p: f64,
        m: usize,
        c_budget: f64,
    ) -> Option<AsymmetricAndTester> {
        let mut node_testers = Vec::with_capacity(costs.len());
        let mut max_cost = 0.0f64;
        let mut log_acc_uniform = 0.0f64;
        let mut log_acc_far = 0.0f64;
        let mut participants = 0usize;
        for i in 0..costs.len() {
            let s_run = (c_budget * costs.inverse(i) / m as f64).floor() as usize;
            if s_run < 2 {
                node_testers.push(None);
                continue;
            }
            let inner = GapTester::with_samples(n, s_run).ok()?;
            let gamma = gamma_slack(n, s_run, epsilon);
            if gamma <= 0.0 {
                return None; // a participating node outside the gap regime
            }
            let tester = crate::amplify::RepeatedGapTester::new(inner, m).ok()?;
            let delta_node = tester.delta();
            let reject_far = tester.soundness_rejection_bound(epsilon).min(1.0);
            log_acc_uniform += (1.0 - delta_node).ln();
            log_acc_far += (1.0 - reject_far).ln();
            max_cost = max_cost.max((m * s_run) as f64 * costs.cost(i));
            participants += 1;
            node_testers.push(Some(tester));
        }
        if participants == 0 {
            return None;
        }
        Some(AsymmetricAndTester {
            node_testers,
            m,
            max_cost,
            predicted_completeness_error: 1.0 - log_acc_uniform.exp(),
            predicted_soundness_error: log_acc_far.exp(),
        })
    }

    /// Repetitions per node.
    pub fn repetitions(&self) -> usize {
        self.m
    }

    /// The maximum individual cost `max_i sᵢ·cᵢ` actually paid.
    pub fn max_cost(&self) -> f64 {
        self.max_cost
    }

    /// Predicted probability of a false alarm on the uniform
    /// distribution (`1 − Π(1−δᵢ)`; equals `p` by construction up to
    /// rounding).
    pub fn predicted_completeness_error(&self) -> f64 {
        self.predicted_completeness_error
    }

    /// Predicted probability of missing an ε-far distribution
    /// (`Π(1−(1+γᵢε²)^m δᵢ)` — honest: close to 1−p·C_p-ish only at
    /// asymptotic scale, per Theorem 1.1's regime).
    pub fn predicted_soundness_error(&self) -> f64 {
        self.predicted_soundness_error
    }

    /// Per-node total sample counts (0 for non-participants).
    pub fn sample_counts(&self) -> Vec<usize> {
        self.node_testers
            .iter()
            .map(|t| t.as_ref().map_or(0, |t| t.samples()))
            .collect()
    }

    /// Simulates one run of the network under the AND rule.
    pub fn run<O, R>(&self, oracle: &O, rng: &mut R) -> NetworkOutcome
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        let mut rejecting = 0usize;
        for t in self.node_testers.iter().flatten() {
            if t.run(oracle, rng) == Decision::Reject {
                rejecting += 1;
            }
        }
        NetworkOutcome {
            decision: DecisionRule::And.decide(rejecting),
            rejecting_nodes: rejecting,
            nodes: self.node_testers.len(),
        }
    }
}

/// Local copy of the δ(s) formula to keep the budget search free of
/// result plumbing.
fn delta_for_samples_local(n: usize, s: usize) -> f64 {
    (s as f64) * (s as f64 - 1.0) / (2.0 * n as f64)
}

/// The paper's closed-form maximum-cost bound for the asymmetric
/// threshold tester (§4.2): `C = √n/ε² / ‖T‖₂` (Θ-constant set to 1).
pub fn theory_max_cost_threshold(n: usize, costs: &CostVector, epsilon: f64) -> f64 {
    (n as f64).sqrt() / (epsilon * epsilon) / costs.inverse_norm(2.0)
}

/// The paper's closed-form maximum-cost bound for the asymmetric AND
/// tester (§4.1): `C = √2·(ln 1/(1−p))^{1/(2m)}·m·√n / ‖T‖₂ₘ`.
pub fn theory_max_cost_and(n: usize, costs: &CostVector, epsilon: f64, p: f64) -> f64 {
    let m = default_and_repetitions(epsilon, p);
    let ln_term = (1.0 / (1.0 - p)).ln();
    (2.0f64).sqrt() * ln_term.powf(1.0 / (2.0 * m as f64)) * m as f64 * (n as f64).sqrt()
        / costs.inverse_norm(2.0 * m as f64)
}

/// The repetition count `m = ⌈ln(C_p)/ln(1+ε²/2)⌉` used by the
/// asymmetric AND analysis (the paper's `m = Θ(C_p/ε²)`).
pub fn default_and_repetitions(epsilon: f64, p: f64) -> usize {
    let target = c_p(p);
    let per_rep = 1.0 + epsilon * epsilon / 2.0;
    (target.ln() / per_rep.ln()).ceil().max(1.0) as usize
}

/// Lemma 4.1's constrained product `f_k(X) = Π (1 − x_i)`.
pub fn lemma_4_1_f(x: &[f64]) -> f64 {
    x.iter().map(|&v| 1.0 - v).product()
}

/// Lemma 4.1's objective `g_k(X) = Π (1 − a·x_i)`.
pub fn lemma_4_1_g(x: &[f64], a: f64) -> f64 {
    x.iter().map(|&v| 1.0 - a * v).product()
}

/// Checks the Lemma 4.1 inequality for a concrete point: given `X` with
/// `f_k(X) = c`, the symmetric point `Y = (1 − c^{1/k})·(1,…,1)` must
/// satisfy `g_k(X) ≤ g_k(Y)`.
///
/// Returns the pair `(g(X), g(Y))` so tests can verify the inequality.
pub fn lemma_4_1_check(x: &[f64], a: f64) -> (f64, f64) {
    let c = lemma_4_1_f(x);
    let k = x.len();
    let d = 1.0 - c.powf(1.0 / k as f64);
    let y = vec![d; k];
    (lemma_4_1_g(x, a), lemma_4_1_g(&y, a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_distributions::families::paninski_far;
    use dut_distributions::DiscreteDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cost_vector_validation() {
        assert!(CostVector::new(vec![]).is_err());
        assert!(CostVector::new(vec![1.0, 0.0]).is_err());
        assert!(CostVector::new(vec![1.0, -2.0]).is_err());
        assert!(CostVector::new(vec![1.0, f64::INFINITY]).is_err());
        assert!(CostVector::new(vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn uniform_cost_norms() {
        let c = CostVector::uniform(16);
        assert!((c.inverse_norm(2.0) - 4.0).abs() < 1e-12);
        // L_{2m} norm of all-ones is k^{1/(2m)}
        assert!((c.inverse_norm(8.0) - 16.0f64.powf(1.0 / 8.0)).abs() < 1e-12);
    }

    #[test]
    fn symmetric_costs_recover_symmetric_bound() {
        // ‖T‖₂ = √k, so theory cost = √(n/k)/ε² per node.
        let n = 1 << 16;
        let k = 1024;
        let costs = CostVector::uniform(k);
        let c = theory_max_cost_threshold(n, &costs, 0.5);
        let symmetric = (n as f64 / k as f64).sqrt() / 0.25;
        assert!((c - symmetric).abs() < 1e-9);
    }

    #[test]
    fn cheap_nodes_draw_more_samples() {
        let n = 1 << 20;
        let mut costs = vec![1.0; 150_000];
        // half the nodes are 4x more expensive
        for c in costs.iter_mut().take(75_000) {
            *c = 4.0;
        }
        let costs = CostVector::new(costs).unwrap();
        let t = AsymmetricThresholdTester::plan(n, &costs, 0.5, 1.0 / 3.0).unwrap();
        let s = t.sample_counts();
        // Expensive nodes draw ~4x fewer samples than cheap nodes.
        assert!(
            s[0] < s[75_000],
            "expensive node {} should draw fewer than cheap node {}",
            s[0],
            s[75_000]
        );
        // Costs equalize: s_i * c_i roughly constant among participants.
        let cost_exp = s[0] as f64 * 4.0;
        let cost_cheap = s[75_000] as f64;
        assert!(
            (cost_exp - cost_cheap).abs() / cost_cheap < 0.5,
            "per-node costs diverge: {cost_exp} vs {cost_cheap}"
        );
    }

    #[test]
    fn asymmetric_tester_distinguishes() {
        let n = 1 << 20;
        let k = 150_000;
        let mut cost_values = vec![1.0; k];
        for (i, c) in cost_values.iter_mut().enumerate() {
            if i % 2 == 0 {
                *c = 2.0;
            }
        }
        let costs = CostVector::new(cost_values).unwrap();
        let t = AsymmetricThresholdTester::plan(n, &costs, 0.5, 1.0 / 3.0).unwrap();
        let uniform = DiscreteDistribution::uniform(n);
        let far = paninski_far(n, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 20;
        let rejects = |d: &DiscreteDistribution, rng: &mut StdRng| {
            (0..trials)
                .filter(|_| t.run(d, rng).decision == Decision::Reject)
                .count()
        };
        let ru = rejects(&uniform, &mut rng);
        let rf = rejects(&far, &mut rng);
        assert!(ru <= trials / 3 + 2, "false alarms {ru}/{trials}");
        assert!(rf >= trials - trials / 3 - 2, "detections {rf}/{trials}");
    }

    #[test]
    fn theory_and_cost_exceeds_threshold_cost() {
        let n = 1 << 16;
        let costs = CostVector::uniform(4096);
        let and_cost = theory_max_cost_and(n, &costs, 0.5, 1.0 / 3.0);
        let thr_cost = theory_max_cost_threshold(n, &costs, 0.5);
        assert!(
            and_cost > thr_cost,
            "AND cost {and_cost} should exceed threshold cost {thr_cost}"
        );
    }

    #[test]
    fn default_and_repetitions_reasonable() {
        let m = default_and_repetitions(0.5, 1.0 / 3.0);
        // ln(2.7095)/ln(1.125) ≈ 8.46 → 9
        assert_eq!(m, 9);
        assert!(default_and_repetitions(1.0, 1.0 / 3.0) < m);
    }

    #[test]
    fn lemma_4_1_symmetric_point_is_maximum() {
        // Asymmetric δ's must give a smaller g (better soundness).
        let a = 2.0;
        let x = [0.1, 0.3, 0.05];
        let (gx, gy) = lemma_4_1_check(&x, a);
        assert!(gx <= gy + 1e-12, "lemma 4.1 violated: {gx} > {gy}");
    }

    #[test]
    fn lemma_4_1_equality_at_symmetric_point() {
        let a = 1.5;
        let x = [0.2, 0.2, 0.2, 0.2];
        let (gx, gy) = lemma_4_1_check(&x, a);
        assert!((gx - gy).abs() < 1e-12);
    }
}

#[cfg(test)]
mod and_tests {
    use super::*;
    use dut_distributions::families::paninski_far;
    use dut_distributions::DiscreteDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn and_plan_protects_completeness_by_construction() {
        let n = 1 << 20;
        let costs = CostVector::uniform(1024);
        let t = AsymmetricAndTester::plan(n, &costs, 0.75, 1.0 / 3.0).unwrap();
        assert!(
            t.predicted_completeness_error() <= 1.0 / 3.0 + 0.02,
            "completeness {} above target",
            t.predicted_completeness_error()
        );
    }

    #[test]
    fn and_cheap_nodes_draw_more() {
        let n = 1 << 20;
        let mut costs = vec![1.0; 2048];
        for c in costs.iter_mut().take(1024) {
            *c = 4.0;
        }
        let costs = CostVector::new(costs).unwrap();
        let t = AsymmetricAndTester::plan(n, &costs, 0.75, 1.0 / 3.0).unwrap();
        let s = t.sample_counts();
        assert!(
            s[0] < s[2047],
            "expensive node {} should draw fewer than cheap node {}",
            s[0],
            s[2047]
        );
    }

    #[test]
    fn and_empirical_separation() {
        let n = 1 << 20;
        let costs = CostVector::uniform(1024);
        let t = AsymmetricAndTester::plan(n, &costs, 0.75, 1.0 / 3.0).unwrap();
        let uniform = DiscreteDistribution::uniform(n);
        let far = paninski_far(n, 0.75).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let trials = 60;
        let rejects = |d: &DiscreteDistribution, rng: &mut StdRng| {
            (0..trials)
                .filter(|_| t.run(d, rng).decision == Decision::Reject)
                .count()
        };
        let ru = rejects(&uniform, &mut rng);
        let rf = rejects(&far, &mut rng);
        assert!(ru <= trials / 2, "false alarms {ru}/{trials}");
        assert!(rf > ru, "no separation: far {rf} vs uniform {ru}");
    }

    #[test]
    fn and_symmetric_costs_match_symmetric_planner_scale() {
        // With unit costs the asymmetric AND plan should land within a
        // small factor of the symmetric AND plan's per-node samples.
        let n = 1 << 20;
        let k = 1024;
        let costs = CostVector::uniform(k);
        let asym = AsymmetricAndTester::plan(n, &costs, 0.5, 1.0 / 3.0).unwrap();
        let sym = crate::params::plan_and_rule(n, k, 0.5, 1.0 / 3.0).unwrap();
        let s_asym = asym.sample_counts()[0] as f64;
        let s_sym = sym.samples_per_node as f64;
        let ratio = s_asym / s_sym;
        assert!(
            (0.3..3.5).contains(&ratio),
            "asymmetric {s_asym} vs symmetric {s_sym}"
        );
    }
}
