//! The single-collision (δ, 1+Θ(ε²))-gap tester `A_δ` (§3.1 of the paper).
//!
//! The tester draws `s` samples with `s(s−1) ≤ 2δn` and accepts iff all
//! samples are *distinct*. Unlike the optimal centralized tester it does
//! not count collisions — in the regime where each node has far fewer
//! than `√n` samples, the expected number of collisions is below one and
//! a count carries no more information than the single "was there any
//! collision" bit.
//!
//! Guarantees (the paper's Lemma 3.4):
//!
//! * **(1−δ)-completeness** — on the uniform distribution,
//!   `Pr[reject] ≤ C(s,2)/n = δ` (Markov on the collision count).
//! * **(α·δ)-soundness** — on any ε-far distribution,
//!   `Pr[reject] ≥ (1 + γε²)·δ`, with γ the Eq. (1) slack
//!   (via Lemma 3.2 `χ > (1+ε²)/n` and the Wiener bound, Lemma 3.3).

use crate::decision::Decision;
use crate::error::PlanError;
use crate::params::{delta_for_samples, gamma_slack, samples_for_delta};
use crate::scratch::TesterScratch;
use dut_distributions::collision::{has_collision, CollisionScratch};
use dut_distributions::SampleOracle;
use dut_obs::{keys, Sink};
use rand::Rng;

/// The single-collision gap tester `A_δ`.
///
/// # Example
///
/// ```rust
/// use dut_core::gap::GapTester;
/// use dut_core::decision::Decision;
/// use dut_distributions::DiscreteDistribution;
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// # fn main() -> Result<(), dut_core::PlanError> {
/// let n = 1 << 16;
/// let tester = GapTester::new(n, 0.01)?;
/// let uniform = DiscreteDistribution::uniform(n);
/// let mut rng = StdRng::seed_from_u64(7);
///
/// // On the uniform distribution the tester accepts w.p. >= 1 - δ.
/// let accepts = (0..1000)
///     .filter(|_| tester.run(&uniform, &mut rng) == Decision::Accept)
///     .count();
/// assert!(accepts >= 950);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapTester {
    n: usize,
    s: usize,
    delta: f64,
}

impl GapTester {
    /// Plans a gap tester with false-alarm budget `delta` on domain size
    /// `n`. The realized budget ([`GapTester::delta`]) may be slightly
    /// smaller because the sample count is rounded down to an integer.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::DomainTooSmall`] when fewer than two samples
    /// fit the budget, or [`PlanError::InvalidParameter`] for a `delta`
    /// outside `(0, 1)`.
    pub fn new(n: usize, delta: f64) -> Result<Self, PlanError> {
        let s = samples_for_delta(n, delta)?;
        Ok(GapTester {
            n,
            s,
            delta: delta_for_samples(n, s),
        })
    }

    /// Builds a tester that draws exactly `s` samples (the budget δ is
    /// derived as `s(s−1)/(2n)`).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::InvalidParameter`] if `s < 2` or the derived
    /// δ reaches 1.
    pub fn with_samples(n: usize, s: usize) -> Result<Self, PlanError> {
        if s < 2 {
            return Err(PlanError::InvalidParameter {
                name: "s",
                value: s as f64,
                expected: "s >= 2 (a single sample can never collide)",
            });
        }
        let delta = delta_for_samples(n, s);
        if delta >= 1.0 {
            return Err(PlanError::InvalidParameter {
                name: "s",
                value: s as f64,
                expected: "s(s-1)/(2n) must stay below 1",
            });
        }
        Ok(GapTester { n, s, delta })
    }

    /// Domain size `n`.
    #[inline]
    pub fn domain_size(&self) -> usize {
        self.n
    }

    /// Number of samples drawn per run.
    #[inline]
    pub fn samples(&self) -> usize {
        self.s
    }

    /// The realized false-alarm budget `δ = s(s−1)/(2n)`.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The γ slack (Eq. (1)) this tester achieves at distance `epsilon`;
    /// its soundness gap is `1 + γε²`. Negative γ means the tester is
    /// uninformative at this ε.
    pub fn gamma(&self, epsilon: f64) -> f64 {
        gamma_slack(self.n, self.s, epsilon)
    }

    /// The soundness lower bound: on any ε-far distribution,
    /// `Pr[reject] ≥ (1 + γε²)·δ` (meaningful only when γ > 0).
    pub fn soundness_rejection_bound(&self, epsilon: f64) -> f64 {
        (1.0 + self.gamma(epsilon) * epsilon * epsilon) * self.delta
    }

    /// Runs the tester once: draws `s` samples from `oracle` and accepts
    /// iff they are all distinct.
    pub fn run<O, R>(&self, oracle: &O, rng: &mut R) -> Decision
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        debug_assert_eq!(
            oracle.domain_size(),
            self.n,
            "oracle domain does not match tester plan"
        );
        let samples = oracle.draw_many(rng, self.s);
        Decision::from_accept(!has_collision(&samples))
    }

    /// [`GapTester::run`] with caller-owned buffers: draws the same
    /// sample stream into `scratch` and checks collisions with the O(s)
    /// marking table, so steady-state trials allocate nothing. Returns
    /// the same decision as `run` for the same RNG state.
    pub fn run_with_scratch<O, R>(
        &self,
        oracle: &O,
        rng: &mut R,
        scratch: &mut TesterScratch,
    ) -> Decision
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        debug_assert_eq!(
            oracle.domain_size(),
            self.n,
            "oracle domain does not match tester plan"
        );
        let TesterScratch { samples, collision } = scratch;
        samples.clear();
        oracle.draw_into(rng, self.s, samples);
        Decision::from_accept(!collision.has_collision(samples))
    }

    /// [`GapTester::run_with_scratch`] recording `core.gap.*` metrics
    /// into `sink`: one run, the `s` samples it consumed, and whether a
    /// collision was found (Theorem 1.1's per-node sample cost is
    /// exactly the `core.gap.samples / core.gap.runs` ratio).
    pub fn run_with_scratch_observed<O, R>(
        &self,
        oracle: &O,
        rng: &mut R,
        scratch: &mut TesterScratch,
        sink: &mut dyn Sink,
    ) -> Decision
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        let decision = self.run_with_scratch(oracle, rng, scratch);
        record_gap_run(sink, self.s, decision);
        record_batched_draws(sink, oracle.batched(), self.s);
        decision
    }

    /// Runs the tester on pre-drawn samples (used by the CONGEST/LOCAL
    /// protocols, where samples are gathered from other nodes). Only the
    /// first `s` samples are examined; fewer than `s` samples is a
    /// planning bug and panics in debug builds.
    pub fn run_on_samples(&self, samples: &[usize]) -> Decision {
        debug_assert!(
            samples.len() >= self.s,
            "gap tester planned for {} samples, got {}",
            self.s,
            samples.len()
        );
        let take = samples.len().min(self.s);
        Decision::from_accept(!has_collision(&samples[..take]))
    }

    /// [`GapTester::run_on_samples`] with a caller-owned collision
    /// detector (allocation-free in the steady state).
    pub fn run_on_samples_with(
        &self,
        samples: &[usize],
        collision: &mut CollisionScratch,
    ) -> Decision {
        debug_assert!(
            samples.len() >= self.s,
            "gap tester planned for {} samples, got {}",
            self.s,
            samples.len()
        );
        let take = samples.len().min(self.s);
        Decision::from_accept(!collision.has_collision(&samples[..take]))
    }

    /// [`GapTester::run_on_samples_with`] recording `core.gap.*`
    /// metrics into `sink` (samples consumed counts the examined
    /// prefix, which is `s` on a correctly planned call).
    pub fn run_on_samples_observed(
        &self,
        samples: &[usize],
        collision: &mut CollisionScratch,
        sink: &mut dyn Sink,
    ) -> Decision {
        let decision = self.run_on_samples_with(samples, collision);
        record_gap_run(sink, samples.len().min(self.s), decision);
        decision
    }
}

/// Shared `core.gap.*` recording for the observed run variants.
fn record_gap_run(sink: &mut dyn Sink, samples: usize, decision: Decision) {
    if sink.enabled() {
        sink.add(keys::CORE_GAP_RUNS, 1);
        sink.add(keys::CORE_GAP_SAMPLES, samples as u64);
        if decision == Decision::Reject {
            sink.add(keys::CORE_GAP_COLLISIONS, 1);
        }
    }
}

/// `sampling.batch.*` recording: `draws` samples routed through a
/// batched (`SampleOracle::batched`) oracle, processed in
/// `LANES`-wide blocks.
fn record_batched_draws(sink: &mut dyn Sink, batched: bool, draws: usize) {
    if batched && sink.enabled() {
        sink.add(keys::SAMPLING_BATCH_DRAWS, draws as u64);
        sink.add(
            keys::SAMPLING_BATCH_BLOCKS,
            draws.div_ceil(dut_distributions::batch::LANES) as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_distributions::families::paninski_far;
    use dut_distributions::DiscreteDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rejection_rate<O: SampleOracle>(t: &GapTester, oracle: &O, trials: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let rejects = (0..trials)
            .filter(|_| t.run(oracle, &mut rng) == Decision::Reject)
            .count();
        rejects as f64 / trials as f64
    }

    #[test]
    fn planned_sample_count_respects_budget() {
        let t = GapTester::new(1 << 16, 0.01).unwrap();
        assert!(t.delta() <= 0.01 + 1e-12);
        assert!(t.samples() >= 2);
    }

    #[test]
    fn with_samples_round_trip() {
        let t = GapTester::with_samples(1 << 16, 37).unwrap();
        assert_eq!(t.samples(), 37);
        assert!((t.delta() - 37.0 * 36.0 / (2.0 * 65536.0)).abs() < 1e-15);
    }

    #[test]
    fn with_samples_rejects_degenerate() {
        assert!(GapTester::with_samples(100, 1).is_err());
        assert!(GapTester::with_samples(4, 100).is_err());
    }

    #[test]
    fn completeness_holds_empirically() {
        // Lemma 3.4(1): rejection rate on uniform <= delta.
        let n = 1 << 14;
        let t = GapTester::new(n, 0.02).unwrap();
        let uniform = DiscreteDistribution::uniform(n);
        let rate = rejection_rate(&t, &uniform, 100_000, 1);
        // allow 3-sigma Monte-Carlo slack above delta
        let sigma = (t.delta() / 100_000.0f64).sqrt() * 3.0;
        assert!(
            rate <= t.delta() + sigma,
            "rejection rate {rate} exceeds delta {}",
            t.delta()
        );
    }

    #[test]
    fn soundness_gap_holds_empirically() {
        // Lemma 3.4(2): rejection rate on an ε-far distribution is at
        // least (1+γε²)δ. Use a large ε so the gap is resolvable.
        let n = 1 << 14;
        let epsilon = 1.0;
        let t = GapTester::new(n, 0.01).unwrap();
        assert!(t.gamma(epsilon) > 0.0, "gamma = {}", t.gamma(epsilon));
        let far = paninski_far(n, epsilon).unwrap();
        let trials = 300_000;
        let rate = rejection_rate(&t, &far, trials, 2);
        let bound = t.soundness_rejection_bound(epsilon);
        let sigma = (bound / trials as f64).sqrt() * 3.0;
        assert!(
            rate >= bound - sigma,
            "rejection rate {rate} below soundness bound {bound}"
        );
    }

    #[test]
    fn far_rejects_more_often_than_uniform() {
        let n = 1 << 12;
        let t = GapTester::new(n, 0.05).unwrap();
        let uniform = DiscreteDistribution::uniform(n);
        let far = paninski_far(n, 1.0).unwrap();
        let ru = rejection_rate(&t, &uniform, 200_000, 3);
        let rf = rejection_rate(&t, &far, 200_000, 4);
        assert!(
            rf > ru,
            "far rejection {rf} not above uniform rejection {ru}"
        );
    }

    #[test]
    fn run_on_samples_matches_collision_logic() {
        let t = GapTester::with_samples(100, 3).unwrap();
        assert_eq!(t.run_on_samples(&[1, 2, 3]), Decision::Accept);
        assert_eq!(t.run_on_samples(&[1, 2, 1]), Decision::Reject);
    }

    #[test]
    fn scratch_run_matches_allocating_run() {
        let n = 1 << 10;
        let t = GapTester::new(n, 0.3).unwrap();
        let uniform = DiscreteDistribution::uniform(n);
        let far = paninski_far(n, 1.0).unwrap();
        let mut scratch = TesterScratch::new();
        for d in [&uniform, &far] {
            for seed in 0..200 {
                let mut r1 = StdRng::seed_from_u64(seed);
                let mut r2 = StdRng::seed_from_u64(seed);
                assert_eq!(
                    t.run(d, &mut r1),
                    t.run_with_scratch(d, &mut r2, &mut scratch),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn run_on_samples_with_matches_plain() {
        let t = GapTester::with_samples(100, 3).unwrap();
        let mut collision = CollisionScratch::new();
        for case in [&[1usize, 2, 3][..], &[1, 2, 1], &[9, 9, 9], &[0, 99, 50]] {
            assert_eq!(
                t.run_on_samples(case),
                t.run_on_samples_with(case, &mut collision),
                "case {case:?}"
            );
        }
    }

    #[test]
    fn observed_run_matches_and_records() {
        use dut_obs::MemorySink;
        let n = 1 << 10;
        let t = GapTester::new(n, 0.3).unwrap();
        let far = paninski_far(n, 1.0).unwrap();
        let mut scratch = TesterScratch::new();
        let mut sink = MemorySink::new();
        let trials = 50u64;
        let mut rejects = 0u64;
        for seed in 0..trials {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            let plain = t.run_with_scratch(&far, &mut r1, &mut scratch);
            let observed = t.run_with_scratch_observed(&far, &mut r2, &mut scratch, &mut sink);
            assert_eq!(plain, observed, "seed {seed}");
            if plain == Decision::Reject {
                rejects += 1;
            }
        }
        assert_eq!(sink.counter(dut_obs::keys::CORE_GAP_RUNS), trials);
        assert_eq!(
            sink.counter(dut_obs::keys::CORE_GAP_SAMPLES),
            trials * t.samples() as u64
        );
        assert_eq!(sink.counter(dut_obs::keys::CORE_GAP_COLLISIONS), rejects);
        // The distribution oracle is batched, so the batched-draw
        // counters mirror the sample count.
        assert_eq!(
            sink.counter(dut_obs::keys::SAMPLING_BATCH_DRAWS),
            trials * t.samples() as u64
        );
        let blocks = (t.samples() as u64).div_ceil(dut_distributions::batch::LANES as u64);
        assert_eq!(
            sink.counter(dut_obs::keys::SAMPLING_BATCH_BLOCKS),
            trials * blocks
        );
    }

    #[test]
    fn gamma_decreases_with_delta() {
        let n = 1 << 16;
        let t1 = GapTester::new(n, 0.001).unwrap();
        let t2 = GapTester::new(n, 0.05).unwrap();
        assert!(t1.gamma(0.5) > t2.gamma(0.5));
    }
}
