//! Testing identity to a fixed distribution, via reduction to uniformity.
//!
//! The paper (§1) notes that testing equality to any *known* distribution
//! η reduces to uniformity testing [Goldreich 2016; Diakonikolas–Kane
//! 2016], and that the reduction is a *filter* — a randomized mapping
//! each node can apply locally to its own samples using private
//! randomness — so it carries over to the distributed setting unchanged.
//!
//! [`IdentityFilter`] implements the bucketing filter: the reference η is
//! rounded to a grid distribution η′ whose masses are integer multiples
//! of `1/g` (with every element keeping at least one slot), and each
//! sample `x` is mapped to a uniformly random one of the `m_x` slots
//! assigned to `x`. Then:
//!
//! * if μ = η′, the filtered output is **exactly** uniform on `{0,..,g-1}`;
//! * for any μ, the filtered output's L1 distance to uniform **equals**
//!   `‖μ − η′‖₁` — the filter preserves distance exactly (with respect to
//!   the rounded reference).
//!
//! The rounding cost `‖η − η′‖₁ ≤ n/g` is reported by
//! [`IdentityFilter::rounding_l1_error`] so callers can shrink ε
//! accordingly.

use crate::error::PlanError;
use dut_distributions::{DiscreteDistribution, SampleOracle};
use rand::Rng;

/// The bucketing filter reducing identity testing (to a known η) to
/// uniformity testing.
///
/// # Example
///
/// ```rust
/// use dut_core::identity::IdentityFilter;
/// use dut_distributions::DiscreteDistribution;
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let eta = DiscreteDistribution::from_pmf(vec![0.5, 0.25, 0.25])?;
/// let filter = IdentityFilter::new(&eta, 16)?;
/// let mut rng = StdRng::seed_from_u64(1);
///
/// // Samples from η map to (near-)uniform samples on the slot domain.
/// let x = eta.sample(&mut rng);
/// let slot = filter.map(x, &mut rng);
/// assert!(slot < filter.output_domain_size());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IdentityFilter {
    /// `(first_slot, slot_count)` per input element.
    slots: Vec<(usize, usize)>,
    /// Output domain size `g = Σ slot_count`.
    g: usize,
    /// `‖η − η′‖₁`, the rounding cost.
    rounding_error: f64,
}

impl IdentityFilter {
    /// Builds the filter for reference distribution `eta`, allocating on
    /// average `slots_per_element` slots per input element
    /// (`g = slots_per_element · n`). Larger values shrink the rounding
    /// error (`≤ n/g = 1/slots_per_element`) at the cost of a larger
    /// output domain.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::InvalidParameter`] if `slots_per_element < 2`.
    pub fn new(eta: &DiscreteDistribution, slots_per_element: usize) -> Result<Self, PlanError> {
        if slots_per_element < 2 {
            return Err(PlanError::InvalidParameter {
                name: "slots_per_element",
                value: slots_per_element as f64,
                expected: "at least 2 slots per element",
            });
        }
        let n = eta.domain_size();
        let g = n * slots_per_element;

        // Largest-remainder apportionment of g slots, minimum 1 each.
        let mut counts: Vec<usize> = Vec::with_capacity(n);
        let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(n);
        let mut assigned = 0usize;
        for x in 0..n {
            let ideal = eta.pmf(x) * g as f64;
            let base = (ideal.floor() as usize).max(1);
            counts.push(base);
            remainders.push((ideal - ideal.floor(), x));
            assigned += base;
        }
        if assigned < g {
            // Distribute the leftover slots to the largest remainders.
            remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("remainders are finite"));
            let mut left = g - assigned;
            let mut i = 0;
            while left > 0 {
                counts[remainders[i % n].1] += 1;
                left -= 1;
                i += 1;
            }
        } else if assigned > g {
            // The minimum-1 rule over-assigned; trim the largest counts.
            let mut excess = assigned - g;
            while excess > 0 {
                let (idx, _) = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .expect("non-empty");
                if counts[idx] <= 1 {
                    // Cannot trim below 1 slot; give up trimming (g grows).
                    break;
                }
                counts[idx] -= 1;
                excess -= 1;
            }
        }
        let g = counts.iter().sum::<usize>();

        let mut slots = Vec::with_capacity(n);
        let mut next = 0usize;
        let mut rounding_error = 0.0f64;
        for (x, &c) in counts.iter().enumerate() {
            slots.push((next, c));
            next += c;
            rounding_error += (eta.pmf(x) - c as f64 / g as f64).abs();
        }

        Ok(IdentityFilter {
            slots,
            g,
            rounding_error,
        })
    }

    /// The output (slot) domain size `g`.
    pub fn output_domain_size(&self) -> usize {
        self.g
    }

    /// The input domain size `n`.
    pub fn input_domain_size(&self) -> usize {
        self.slots.len()
    }

    /// `‖η − η′‖₁` — the L1 distance between the requested reference and
    /// the rounded grid reference the filter actually encodes. Testers
    /// should test at distance `ε − rounding_l1_error()`.
    pub fn rounding_l1_error(&self) -> f64 {
        self.rounding_error
    }

    /// Number of slots assigned to input element `x`.
    pub fn slot_count(&self, x: usize) -> usize {
        self.slots[x].1
    }

    /// Maps one input sample to a uniformly random one of its slots.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the input domain.
    pub fn map<R: Rng + ?Sized>(&self, x: usize, rng: &mut R) -> usize {
        let (first, count) = self.slots[x];
        first + rng.gen_range(0..count)
    }

    /// Filters a batch of samples.
    pub fn filter_samples<R: Rng + ?Sized>(&self, samples: &[usize], rng: &mut R) -> Vec<usize> {
        samples.iter().map(|&x| self.map(x, rng)).collect()
    }

    /// The exact distribution of the filter's output when the input is
    /// drawn from `mu` (for analysis/tests; O(g) memory).
    ///
    /// # Panics
    ///
    /// Panics if `mu`'s domain does not match the filter's input domain.
    pub fn pushforward(&self, mu: &DiscreteDistribution) -> DiscreteDistribution {
        assert_eq!(
            mu.domain_size(),
            self.slots.len(),
            "filter input domain mismatch"
        );
        let mut pmf = vec![0.0f64; self.g];
        for (x, &(first, count)) in self.slots.iter().enumerate() {
            let share = mu.pmf(x) / count as f64;
            for slot in pmf.iter_mut().skip(first).take(count) {
                *slot = share;
            }
        }
        DiscreteDistribution::from_pmf(pmf).expect("pushforward preserves normalization")
    }
}

/// An oracle adapter: draws from `inner` and pushes each sample through
/// the filter, yielding an oracle over the slot domain. This is exactly
/// what each network node does locally in the distributed identity
/// tester.
#[derive(Debug)]
pub struct FilteredOracle<'a, O: ?Sized> {
    filter: &'a IdentityFilter,
    inner: &'a O,
}

impl<'a, O: SampleOracle + ?Sized> FilteredOracle<'a, O> {
    /// Wraps `inner` with `filter`.
    pub fn new(filter: &'a IdentityFilter, inner: &'a O) -> Self {
        FilteredOracle { filter, inner }
    }
}

impl<O: SampleOracle + ?Sized> SampleOracle for FilteredOracle<'_, O> {
    fn domain_size(&self) -> usize {
        self.filter.output_domain_size()
    }

    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x = self.inner.draw(rng);
        self.filter.map(x, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_distributions::distance::l1_to_uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn skewed_reference(n: usize) -> DiscreteDistribution {
        // Zipf-ish weights.
        let weights: Vec<f64> = (1..=n).map(|i| 1.0 / i as f64).collect();
        DiscreteDistribution::from_weights(weights).unwrap()
    }

    #[test]
    fn filter_on_reference_is_exactly_uniform() {
        let eta = skewed_reference(50);
        let filter = IdentityFilter::new(&eta, 64).unwrap();
        let push = filter.pushforward(&eta);
        // Distance of pushforward(η) from uniform equals the rounding error.
        let d = l1_to_uniform(&push);
        assert!(
            (d - filter.rounding_l1_error()).abs() < 1e-9,
            "pushforward distance {d} != rounding error {}",
            filter.rounding_l1_error()
        );
    }

    #[test]
    fn filter_on_grid_reference_is_perfectly_uniform() {
        // A reference already on the 1/g grid has zero rounding error.
        let eta = DiscreteDistribution::from_pmf(vec![0.5, 0.25, 0.25]).unwrap();
        let filter = IdentityFilter::new(&eta, 4).unwrap();
        assert!(filter.rounding_l1_error() < 1e-12);
        let push = filter.pushforward(&eta);
        assert!(l1_to_uniform(&push) < 1e-12);
    }

    #[test]
    fn filter_preserves_distance_exactly() {
        // ‖filter(μ) − U‖₁ = ‖μ − η′‖₁ for any μ.
        let eta = DiscreteDistribution::from_pmf(vec![0.5, 0.25, 0.25]).unwrap();
        let filter = IdentityFilter::new(&eta, 4).unwrap();
        let mu = DiscreteDistribution::from_pmf(vec![0.25, 0.5, 0.25]).unwrap();
        let push = filter.pushforward(&mu);
        let expected = 0.25 + 0.25; // |0.25-0.5| + |0.5-0.25|
        assert!((l1_to_uniform(&push) - expected).abs() < 1e-12);
    }

    #[test]
    fn rounding_error_shrinks_with_slots() {
        let eta = skewed_reference(100);
        let coarse = IdentityFilter::new(&eta, 4).unwrap();
        let fine = IdentityFilter::new(&eta, 256).unwrap();
        assert!(fine.rounding_l1_error() < coarse.rounding_l1_error());
        assert!(fine.rounding_l1_error() <= 100.0 / fine.output_domain_size() as f64 + 1e-9);
    }

    #[test]
    fn every_element_keeps_a_slot() {
        // Even elements with tiny mass must stay mappable.
        let mut pmf = vec![1e-9; 10];
        pmf[0] = 1.0 - 9e-9;
        let eta = DiscreteDistribution::from_pmf(pmf).unwrap();
        let filter = IdentityFilter::new(&eta, 8).unwrap();
        for x in 0..10 {
            assert!(filter.slot_count(x) >= 1, "element {x} lost its slot");
        }
    }

    #[test]
    fn map_outputs_in_range_and_disjoint() {
        let eta = skewed_reference(20);
        let filter = IdentityFilter::new(&eta, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_owner = vec![None::<usize>; filter.output_domain_size()];
        for x in 0..20 {
            for _ in 0..50 {
                let slot = filter.map(x, &mut rng);
                assert!(slot < filter.output_domain_size());
                match seen_owner[slot] {
                    None => seen_owner[slot] = Some(x),
                    Some(owner) => assert_eq!(owner, x, "slot {slot} shared"),
                }
            }
        }
    }

    #[test]
    fn filtered_oracle_has_slot_domain() {
        let eta = skewed_reference(20);
        let filter = IdentityFilter::new(&eta, 8).unwrap();
        let oracle = FilteredOracle::new(&filter, &eta);
        assert_eq!(oracle.domain_size(), filter.output_domain_size());
        let mut rng = StdRng::seed_from_u64(2);
        let s = oracle.draw(&mut rng);
        assert!(s < filter.output_domain_size());
    }

    #[test]
    fn rejects_too_few_slots() {
        let eta = DiscreteDistribution::uniform(4);
        assert!(IdentityFilter::new(&eta, 1).is_err());
    }
}
