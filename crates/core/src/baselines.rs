//! Centralized baselines: what a single node with all the samples does.
//!
//! The paper's point of departure is that centralized uniformity testing
//! needs `Θ(√n/ε²)` samples [Paninski 2008]. These baselines implement
//! that regime so experiments can report "distributed vs centralized":
//!
//! * [`CollisionCountTester`] — the classic collision-counting tester:
//!   draw `s` samples, count colliding pairs, accept iff the count is
//!   below a threshold placed between the uniform expectation
//!   `C(s,2)/n` and the ε-far lower bound `C(s,2)(1+ε²)/n`.
//! * The single-collision gap tester ([`crate::gap::GapTester`]) run
//!   centrally with `s = √n`-scale samples, for contrast.

use crate::decision::Decision;
use crate::error::PlanError;
use dut_distributions::collision::collision_pair_count;
use dut_distributions::SampleOracle;
use rand::Rng;

/// The classic centralized collision-counting uniformity tester.
///
/// Draws `s` samples, counts colliding pairs `M = Σ_x C(count(x), 2)`,
/// and accepts iff `M ≤ threshold` where the threshold sits at relative
/// height `(1 + ε²/2)` above the uniform expectation `C(s,2)/n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionCountTester {
    n: usize,
    s: usize,
    threshold: f64,
}

impl CollisionCountTester {
    /// Plans the tester with `s = ⌈c·√n/ε²⌉` samples, where the constant
    /// `c` controls the error probability (c ≈ 3 gives error well below
    /// 1/3 on the hard Paninski instances).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::InvalidParameter`] for out-of-range `ε` or
    /// non-positive `c`.
    pub fn plan(n: usize, epsilon: f64, c: f64) -> Result<Self, PlanError> {
        if !(epsilon > 0.0 && epsilon <= 1.0) {
            return Err(PlanError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                expected: "0 < epsilon <= 1",
            });
        }
        if c <= 0.0 {
            return Err(PlanError::InvalidParameter {
                name: "c",
                value: c,
                expected: "c > 0",
            });
        }
        let s = (c * (n as f64).sqrt() / (epsilon * epsilon)).ceil() as usize;
        Self::with_samples(n, s.max(2), epsilon)
    }

    /// Builds the tester with an explicit sample count (used by the
    /// sample-complexity sweeps in Experiment E10).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::InvalidParameter`] if `s < 2`.
    pub fn with_samples(n: usize, s: usize, epsilon: f64) -> Result<Self, PlanError> {
        if s < 2 {
            return Err(PlanError::InvalidParameter {
                name: "s",
                value: s as f64,
                expected: "s >= 2",
            });
        }
        let pairs = s as f64 * (s as f64 - 1.0) / 2.0;
        let threshold = pairs / n as f64 * (1.0 + epsilon * epsilon / 2.0);
        Ok(CollisionCountTester { n, s, threshold })
    }

    /// Domain size.
    pub fn domain_size(&self) -> usize {
        self.n
    }

    /// Samples drawn per run.
    pub fn samples(&self) -> usize {
        self.s
    }

    /// The acceptance threshold on the collision-pair count.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Runs the tester once.
    pub fn run<O, R>(&self, oracle: &O, rng: &mut R) -> Decision
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        let samples = oracle.draw_many(rng, self.s);
        self.run_on_samples(&samples)
    }

    /// Runs the tester on pre-drawn samples.
    pub fn run_on_samples(&self, samples: &[usize]) -> Decision {
        let m = collision_pair_count(&samples[..samples.len().min(self.s)]);
        Decision::from_accept((m as f64) <= self.threshold)
    }
}

/// The textbook centralized sample complexity `√n/ε²` (Θ-constant 1),
/// for reporting theory curves.
pub fn centralized_sample_complexity(n: usize, epsilon: f64) -> f64 {
    (n as f64).sqrt() / (epsilon * epsilon)
}

/// Paninski's singleton-count tester: the statistic of the original
/// `Θ(√n/ε²)` centralized tester [Paninski 2008] is the number of
/// values seen *exactly once* (K₁). Under uniform,
/// `E[K₁] = s(1 − 1/n)^{s−1}`; an ε-far distribution depresses it
/// (mass concentration turns singletons into repeats). Accepts iff K₁
/// is above a threshold placed midway between the uniform expectation
/// and the ε-far bound derived from `χ ≥ (1+ε²)/n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingletonCountTester {
    n: usize,
    s: usize,
    threshold: f64,
}

impl SingletonCountTester {
    /// Plans the tester with `s = ⌈c·√n/ε²⌉` samples (the same scaling
    /// as [`CollisionCountTester::plan`]).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::InvalidParameter`] for out-of-range inputs.
    pub fn plan(n: usize, epsilon: f64, c: f64) -> Result<Self, PlanError> {
        if !(epsilon > 0.0 && epsilon <= 1.0) {
            return Err(PlanError::InvalidParameter {
                name: "epsilon",
                value: epsilon,
                expected: "0 < epsilon <= 1",
            });
        }
        if c <= 0.0 {
            return Err(PlanError::InvalidParameter {
                name: "c",
                value: c,
                expected: "c > 0",
            });
        }
        let s = (c * (n as f64).sqrt() / (epsilon * epsilon)).ceil() as usize;
        Self::with_samples(n, s.max(2), epsilon)
    }

    /// Builds the tester with an explicit sample count.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::InvalidParameter`] if `s < 2`.
    pub fn with_samples(n: usize, s: usize, epsilon: f64) -> Result<Self, PlanError> {
        if s < 2 {
            return Err(PlanError::InvalidParameter {
                name: "s",
                value: s as f64,
                expected: "s >= 2",
            });
        }
        let nf = n as f64;
        let sf = s as f64;
        // E[K1] under a distribution with collision probability χ is
        // approximately s(1 − χ)^{s−1} (exact for uniform with
        // χ = 1/n); place the threshold midway between uniform and the
        // χ = (1+ε²)/n bound.
        let e_uniform = sf * (1.0 - 1.0 / nf).powi(s as i32 - 1);
        let e_far = sf * (1.0 - (1.0 + epsilon * epsilon) / nf).powi(s as i32 - 1);
        let threshold = (e_uniform + e_far) / 2.0;
        Ok(SingletonCountTester { n, s, threshold })
    }

    /// Domain size.
    pub fn domain_size(&self) -> usize {
        self.n
    }

    /// Samples drawn per run.
    pub fn samples(&self) -> usize {
        self.s
    }

    /// The acceptance threshold on the singleton count.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Runs the tester once.
    pub fn run<O, R>(&self, oracle: &O, rng: &mut R) -> Decision
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        let samples = oracle.draw_many(rng, self.s);
        self.run_on_samples(&samples)
    }

    /// Runs the tester on pre-drawn samples: counts values seen exactly
    /// once and accepts iff the count is above the threshold.
    pub fn run_on_samples(&self, samples: &[usize]) -> Decision {
        let mut sorted: Vec<usize> = samples[..samples.len().min(self.s)].to_vec();
        sorted.sort_unstable();
        let mut singletons = 0usize;
        let mut i = 0;
        while i < sorted.len() {
            let mut j = i + 1;
            while j < sorted.len() && sorted[j] == sorted[i] {
                j += 1;
            }
            if j - i == 1 {
                singletons += 1;
            }
            i = j;
        }
        Decision::from_accept(singletons as f64 > self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_distributions::families::{heavy_set_far, paninski_far};
    use dut_distributions::DiscreteDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn error_rate<O: SampleOracle>(
        t: &CollisionCountTester,
        oracle: &O,
        expect: Decision,
        trials: usize,
        seed: u64,
    ) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let errors = (0..trials)
            .filter(|_| t.run(oracle, &mut rng) != expect)
            .count();
        errors as f64 / trials as f64
    }

    #[test]
    fn plan_scales_with_sqrt_n() {
        let t1 = CollisionCountTester::plan(1 << 10, 0.5, 3.0).unwrap();
        let t2 = CollisionCountTester::plan(1 << 14, 0.5, 3.0).unwrap();
        let ratio = t2.samples() as f64 / t1.samples() as f64;
        assert!(
            (ratio - 4.0).abs() < 0.1,
            "16x domain → 4x samples, got {ratio}"
        );
    }

    #[test]
    fn accepts_uniform() {
        let n = 1 << 12;
        let t = CollisionCountTester::plan(n, 0.5, 3.0).unwrap();
        let uniform = DiscreteDistribution::uniform(n);
        let err = error_rate(&t, &uniform, Decision::Accept, 300, 1);
        assert!(err < 1.0 / 3.0, "false-alarm rate {err}");
    }

    #[test]
    fn rejects_paninski_far() {
        let n = 1 << 12;
        let t = CollisionCountTester::plan(n, 0.5, 3.0).unwrap();
        let far = paninski_far(n, 0.5).unwrap();
        let err = error_rate(&t, &far, Decision::Reject, 300, 2);
        assert!(err < 1.0 / 3.0, "missed-detection rate {err}");
    }

    #[test]
    fn rejects_heavy_set_far() {
        let n = 1 << 12;
        let t = CollisionCountTester::plan(n, 0.5, 3.0).unwrap();
        let far = heavy_set_far(n, 0.5).unwrap();
        let err = error_rate(&t, &far, Decision::Reject, 300, 3);
        assert!(err < 0.1, "heavy-set should be easy, error {err}");
    }

    #[test]
    fn undersampled_tester_fails_on_far() {
        // With far fewer than √n samples the tester cannot detect the
        // Paninski family — this is the lower-bound intuition.
        let n = 1 << 14;
        let t = CollisionCountTester::with_samples(n, 8, 0.5).unwrap();
        let far = paninski_far(n, 0.5).unwrap();
        let err = error_rate(&t, &far, Decision::Reject, 300, 4);
        assert!(err > 0.4, "8 samples should be useless, error {err}");
    }

    #[test]
    fn with_samples_validates() {
        assert!(CollisionCountTester::with_samples(100, 1, 0.5).is_err());
        assert!(CollisionCountTester::plan(100, 0.0, 3.0).is_err());
        assert!(CollisionCountTester::plan(100, 0.5, 0.0).is_err());
    }

    #[test]
    fn run_on_samples_threshold_logic() {
        let t = CollisionCountTester::with_samples(100, 4, 1.0).unwrap();
        // threshold = 6/100 * 1.5 = 0.09: any collision rejects
        assert_eq!(t.run_on_samples(&[1, 2, 3, 4]), Decision::Accept);
        assert_eq!(t.run_on_samples(&[1, 1, 3, 4]), Decision::Reject);
    }

    #[test]
    fn singleton_tester_accepts_uniform() {
        let n = 1 << 12;
        let t = SingletonCountTester::plan(n, 0.5, 3.0).unwrap();
        let uniform = DiscreteDistribution::uniform(n);
        let mut rng = StdRng::seed_from_u64(11);
        let errors = (0..300)
            .filter(|_| t.run(&uniform, &mut rng) != Decision::Accept)
            .count();
        assert!(errors < 100, "singleton false alarms {errors}/300");
    }

    #[test]
    fn singleton_tester_rejects_paninski_far() {
        let n = 1 << 12;
        let t = SingletonCountTester::plan(n, 0.5, 3.0).unwrap();
        let far = paninski_far(n, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let errors = (0..300)
            .filter(|_| t.run(&far, &mut rng) != Decision::Reject)
            .count();
        assert!(errors < 100, "singleton missed detections {errors}/300");
    }

    #[test]
    fn singleton_count_logic() {
        let t = SingletonCountTester::with_samples(100, 5, 1.0).unwrap();
        // [1,1,2,3,4]: singletons = {2,3,4} = 3.
        // threshold midway between 5(0.99)^4≈4.80 and 5(0.98)^4≈4.61,
        // i.e. ≈4.7: 3 singletons -> reject, 5 singletons -> accept.
        assert_eq!(t.run_on_samples(&[1, 1, 2, 3, 4]), Decision::Reject);
        assert_eq!(t.run_on_samples(&[1, 2, 3, 4, 5]), Decision::Accept);
    }

    #[test]
    fn singleton_tester_validates() {
        assert!(SingletonCountTester::with_samples(100, 1, 0.5).is_err());
        assert!(SingletonCountTester::plan(100, 0.0, 3.0).is_err());
    }
}
