//! Gap amplification by repetition (the tester `B` of §3.2.1).
//!
//! A single gap tester has soundness gap only `1 + Θ(ε²)`. Running `m`
//! independent copies and rejecting iff **all** `m` reject raises the gap
//! to `(1+γε²)^m` while shrinking the false-alarm probability from `δ'`
//! to `δ'^m` — exactly the trade the AND-rule network tester needs: very
//! high acceptance on uniform, small-but-noticeable rejection on far
//! inputs.

use crate::decision::Decision;
use crate::error::PlanError;
use crate::gap::GapTester;
use crate::scratch::TesterScratch;
use dut_distributions::collision::CollisionScratch;
use dut_distributions::SampleOracle;
use dut_obs::{keys, Sink};
use rand::Rng;

/// `m` independent repetitions of a [`GapTester`], rejecting iff all
/// repetitions reject.
///
/// If the inner tester is a `(δ', 1+γε²)`-gap tester, this is a
/// `(δ'^m, (1+γε²)^m)`-gap tester using `m·s` samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeatedGapTester {
    inner: GapTester,
    m: usize,
}

impl RepeatedGapTester {
    /// Wraps `inner` with `m ≥ 1` repetitions.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::InvalidParameter`] if `m == 0`.
    pub fn new(inner: GapTester, m: usize) -> Result<Self, PlanError> {
        if m == 0 {
            return Err(PlanError::InvalidParameter {
                name: "m",
                value: 0.0,
                expected: "m >= 1",
            });
        }
        Ok(RepeatedGapTester { inner, m })
    }

    /// The inner single-run tester.
    #[inline]
    pub fn inner(&self) -> &GapTester {
        &self.inner
    }

    /// Number of repetitions.
    #[inline]
    pub fn repetitions(&self) -> usize {
        self.m
    }

    /// Total samples drawn per run (`m · s`).
    #[inline]
    pub fn samples(&self) -> usize {
        self.m * self.inner.samples()
    }

    /// False-alarm probability on the uniform distribution: `δ'^m`.
    pub fn delta(&self) -> f64 {
        self.inner.delta().powi(self.m as i32)
    }

    /// Soundness rejection lower bound on ε-far inputs:
    /// `((1+γε²)δ')^m`.
    pub fn soundness_rejection_bound(&self, epsilon: f64) -> f64 {
        self.inner
            .soundness_rejection_bound(epsilon)
            .powi(self.m as i32)
    }

    /// The amplified gap `(1+γε²)^m`.
    pub fn gap(&self, epsilon: f64) -> f64 {
        (1.0 + self.inner.gamma(epsilon) * epsilon * epsilon).powi(self.m as i32)
    }

    /// Runs the tester: `m` independent repetitions, rejecting iff all
    /// `m` repetitions reject. Short-circuits on the first acceptance.
    pub fn run<O, R>(&self, oracle: &O, rng: &mut R) -> Decision
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        for _ in 0..self.m {
            if self.inner.run(oracle, rng) == Decision::Accept {
                return Decision::Accept;
            }
        }
        Decision::Reject
    }

    /// [`RepeatedGapTester::run`] with caller-owned buffers; same
    /// decisions and RNG stream, no steady-state allocation. Note the
    /// short-circuit means fewer RNG draws on early acceptance — exactly
    /// as in `run`.
    pub fn run_with_scratch<O, R>(
        &self,
        oracle: &O,
        rng: &mut R,
        scratch: &mut TesterScratch,
    ) -> Decision
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        for _ in 0..self.m {
            if self.inner.run_with_scratch(oracle, rng, scratch) == Decision::Accept {
                return Decision::Accept;
            }
        }
        Decision::Reject
    }

    /// [`RepeatedGapTester::run_with_scratch`] recording
    /// `core.amplify.*` metrics into `sink`: one run, the repetitions
    /// actually executed (the AND-of-rejects short-circuit stops on the
    /// first accept), and the rejecting repetitions among them. Inner
    /// repetitions record `core.gap.*` as well.
    pub fn run_with_scratch_observed<O, R>(
        &self,
        oracle: &O,
        rng: &mut R,
        scratch: &mut TesterScratch,
        sink: &mut dyn Sink,
    ) -> Decision
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        let mut executed = 0u64;
        let mut decision = Decision::Reject;
        for _ in 0..self.m {
            executed += 1;
            if self
                .inner
                .run_with_scratch_observed(oracle, rng, scratch, sink)
                == Decision::Accept
            {
                decision = Decision::Accept;
                break;
            }
        }
        if sink.enabled() {
            let rejections = if decision == Decision::Accept {
                executed - 1
            } else {
                executed
            };
            sink.add(keys::CORE_AMPLIFY_RUNS, 1);
            sink.add(keys::CORE_AMPLIFY_REPETITIONS, executed);
            sink.add(keys::CORE_AMPLIFY_REJECTIONS, rejections);
        }
        decision
    }

    /// Runs the tester on pre-drawn samples, consuming `m·s` of them in
    /// disjoint chunks of `s` (the CONGEST/LOCAL gathering path).
    ///
    /// # Panics
    ///
    /// Panics if fewer than [`Self::samples`] samples are provided.
    pub fn run_on_samples(&self, samples: &[usize]) -> Decision {
        let s = self.inner.samples();
        assert!(
            samples.len() >= self.samples(),
            "need {} samples, got {}",
            self.samples(),
            samples.len()
        );
        for chunk in samples.chunks_exact(s).take(self.m) {
            if self.inner.run_on_samples(chunk) == Decision::Accept {
                return Decision::Accept;
            }
        }
        Decision::Reject
    }

    /// [`RepeatedGapTester::run_on_samples`] with a caller-owned
    /// collision detector.
    ///
    /// # Panics
    ///
    /// Panics if fewer than [`Self::samples`] samples are provided.
    pub fn run_on_samples_with(
        &self,
        samples: &[usize],
        collision: &mut CollisionScratch,
    ) -> Decision {
        let s = self.inner.samples();
        assert!(
            samples.len() >= self.samples(),
            "need {} samples, got {}",
            self.samples(),
            samples.len()
        );
        for chunk in samples.chunks_exact(s).take(self.m) {
            if self.inner.run_on_samples_with(chunk, collision) == Decision::Accept {
                return Decision::Accept;
            }
        }
        Decision::Reject
    }

    /// [`RepeatedGapTester::run_on_samples_with`] recording
    /// `core.amplify.*` (and inner `core.gap.*`) metrics into `sink`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than [`Self::samples`] samples are provided.
    pub fn run_on_samples_observed(
        &self,
        samples: &[usize],
        collision: &mut CollisionScratch,
        sink: &mut dyn Sink,
    ) -> Decision {
        let s = self.inner.samples();
        assert!(
            samples.len() >= self.samples(),
            "need {} samples, got {}",
            self.samples(),
            samples.len()
        );
        let mut executed = 0u64;
        let mut decision = Decision::Reject;
        for chunk in samples.chunks_exact(s).take(self.m) {
            executed += 1;
            if self.inner.run_on_samples_observed(chunk, collision, sink) == Decision::Accept {
                decision = Decision::Accept;
                break;
            }
        }
        if sink.enabled() {
            let rejections = if decision == Decision::Accept {
                executed - 1
            } else {
                executed
            };
            sink.add(keys::CORE_AMPLIFY_RUNS, 1);
            sink.add(keys::CORE_AMPLIFY_REPETITIONS, executed);
            sink.add(keys::CORE_AMPLIFY_REJECTIONS, rejections);
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_distributions::families::paninski_far;
    use dut_distributions::DiscreteDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_zero_repetitions() {
        let g = GapTester::new(1 << 12, 0.05).unwrap();
        assert!(RepeatedGapTester::new(g, 0).is_err());
    }

    #[test]
    fn single_repetition_equals_inner() {
        let n = 1 << 12;
        let g = GapTester::new(n, 0.05).unwrap();
        let r = RepeatedGapTester::new(g, 1).unwrap();
        assert_eq!(r.samples(), g.samples());
        assert!((r.delta() - g.delta()).abs() < 1e-15);
    }

    #[test]
    fn delta_shrinks_geometrically() {
        let g = GapTester::new(1 << 12, 0.1).unwrap();
        let r3 = RepeatedGapTester::new(g, 3).unwrap();
        assert!((r3.delta() - g.delta().powi(3)).abs() < 1e-15);
    }

    #[test]
    fn gap_amplifies_geometrically() {
        let g = GapTester::new(1 << 16, 0.001).unwrap();
        let r = RepeatedGapTester::new(g, 4).unwrap();
        let single = 1.0 + g.gamma(0.5) * 0.25;
        assert!((r.gap(0.5) - single.powi(4)).abs() < 1e-12);
    }

    #[test]
    fn empirical_false_alarm_rate_matches_delta_power() {
        let n = 1 << 10;
        let g = GapTester::new(n, 0.3).unwrap();
        let r = RepeatedGapTester::new(g, 2).unwrap();
        let uniform = DiscreteDistribution::uniform(n);
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 200_000;
        let rejects = (0..trials)
            .filter(|_| r.run(&uniform, &mut rng) == Decision::Reject)
            .count();
        let rate = rejects as f64 / trials as f64;
        // Rate should be <= delta^2 (plus Monte-Carlo noise); it is in
        // fact ≈ (true single-run rate)², strictly below δ².
        let sigma = 3.0 * (r.delta() / trials as f64).sqrt();
        assert!(
            rate <= r.delta() + sigma,
            "rate {rate} above delta^m {}",
            r.delta()
        );
        assert!(rate > 0.0, "two repetitions at delta=0.3 should still fire");
    }

    #[test]
    fn repeated_tester_still_distinguishes() {
        let n = 1 << 10;
        let g = GapTester::new(n, 0.3).unwrap();
        let r = RepeatedGapTester::new(g, 2).unwrap();
        let uniform = DiscreteDistribution::uniform(n);
        let far = paninski_far(n, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let trials = 200_000;
        let count = |d: &DiscreteDistribution, rng: &mut StdRng| {
            (0..trials)
                .filter(|_| r.run(d, rng) == Decision::Reject)
                .count() as f64
                / trials as f64
        };
        let ru = count(&uniform, &mut rng);
        let rf = count(&far, &mut rng);
        assert!(rf > ru, "far {rf} <= uniform {ru}");
    }

    #[test]
    fn run_on_samples_uses_disjoint_chunks() {
        let g = GapTester::with_samples(1000, 2).unwrap();
        let r = RepeatedGapTester::new(g, 2).unwrap();
        // chunk 1 = [1,1] collides, chunk 2 = [2,2] collides -> reject
        assert_eq!(r.run_on_samples(&[1, 1, 2, 2]), Decision::Reject);
        // chunk 2 = [2,3] clean -> accept
        assert_eq!(r.run_on_samples(&[1, 1, 2, 3]), Decision::Accept);
    }

    #[test]
    fn scratch_variants_match_allocating_variants() {
        let n = 1 << 10;
        let g = GapTester::new(n, 0.3).unwrap();
        let r = RepeatedGapTester::new(g, 3).unwrap();
        let uniform = DiscreteDistribution::uniform(n);
        let far = paninski_far(n, 1.0).unwrap();
        let mut scratch = TesterScratch::new();
        for d in [&uniform, &far] {
            for seed in 0..200 {
                let mut r1 = StdRng::seed_from_u64(seed);
                let mut r2 = StdRng::seed_from_u64(seed);
                assert_eq!(
                    r.run(d, &mut r1),
                    r.run_with_scratch(d, &mut r2, &mut scratch),
                    "seed {seed}"
                );
            }
        }
        let mut collision = CollisionScratch::new();
        let r2 = RepeatedGapTester::new(GapTester::with_samples(1000, 2).unwrap(), 2).unwrap();
        for case in [&[1usize, 1, 2, 2][..], &[1, 1, 2, 3], &[4, 5, 6, 7]] {
            assert_eq!(
                r2.run_on_samples(case),
                r2.run_on_samples_with(case, &mut collision),
                "case {case:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "need 4 samples")]
    fn run_on_samples_panics_when_short() {
        let g = GapTester::with_samples(1000, 2).unwrap();
        let r = RepeatedGapTester::new(g, 2).unwrap();
        let _ = r.run_on_samples(&[1, 2, 3]);
    }
}
