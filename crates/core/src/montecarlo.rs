//! Parallel Monte-Carlo error estimation.
//!
//! The paper's error regimes are delicate — completeness `1−δ` vs
//! soundness `1−(1+Θ(ε²))δ` differ by a Θ(ε²δ) sliver — so every
//! experiment estimates error probabilities with enough trials to
//! resolve the gap, and reports Wilson score intervals rather than bare
//! point estimates. Trials run on the deterministic chunk-parallel
//! executor ([`crate::executor`]): per-trial seeds are a pure function
//! of `(base_seed, trial_index)` and the reduction is chunk-ordered, so
//! failure counts, Wilson intervals, and merged metrics reproduce
//! exactly at any thread count — and runs can checkpoint/resume
//! ([`crate::checkpoint`]) without changing a single bit of the result.
//!
//! Entry points, from simplest to fullest:
//!
//! * [`estimate_failure_rate`] — stateless trials, auto config.
//! * [`estimate_failure_rate_with_state`] — per-worker scratch reuse.
//! * [`MonteCarlo`] — the builder: explicit
//!   [`MonteCarloConfig`], metrics-observing trials
//!   ([`MonteCarlo::run_observed`]), and chunk-level checkpointing.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::fmt;

use dut_obs::{MemorySink, Sink};

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::executor::{run_chunked, sequence_z, MonteCarloConfig, StopRule};

pub use crate::executor::{default_threads, derive_trial_seed, set_default_threads};

/// Why a Monte-Carlo estimate could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonteCarloError {
    /// `trials == 0`: an estimate over no trials has no defined rate or
    /// interval.
    ZeroTrials,
    /// The attached checkpoint file could not be used (plan mismatch,
    /// corruption, or I/O failure).
    Checkpoint(CheckpointError),
}

impl fmt::Display for MonteCarloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonteCarloError::ZeroTrials => {
                write!(f, "monte-carlo estimation needs at least one trial")
            }
            MonteCarloError::Checkpoint(e) => write!(f, "monte-carlo checkpoint failed: {e}"),
        }
    }
}

impl Error for MonteCarloError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MonteCarloError::ZeroTrials => None,
            MonteCarloError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<CheckpointError> for MonteCarloError {
    fn from(e: CheckpointError) -> Self {
        MonteCarloError::Checkpoint(e)
    }
}

/// A Monte-Carlo estimate of a failure probability, with a Wilson score
/// confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorEstimate {
    /// Number of trials run.
    pub trials: usize,
    /// Number of trials that failed.
    pub failures: usize,
    /// Point estimate `failures / trials`.
    pub rate: f64,
    /// Lower end of the Wilson score interval.
    pub lower: f64,
    /// Upper end of the Wilson score interval.
    pub upper: f64,
    /// The z-score the interval was computed at.
    pub z: f64,
}

impl ErrorEstimate {
    /// Computes the estimate from raw counts at confidence z-score `z`
    /// (1.96 ≈ 95%).
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `failures > trials`.
    pub fn from_counts(trials: usize, failures: usize, z: f64) -> Self {
        assert!(trials > 0, "need at least one trial");
        assert!(failures <= trials, "failures cannot exceed trials");
        let n = trials as f64;
        let p = failures as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        // At the degenerate counts the Wilson endpoints are exactly 0
        // and 1 (the sqrt term collapses to z/2n and cancels); pin them
        // so rounding noise cannot make `certified_*` claim a strict
        // bound the data does not support.
        let lower = if failures == 0 {
            0.0
        } else {
            (center - half).max(0.0)
        };
        let upper = if failures == trials {
            1.0
        } else {
            (center + half).min(1.0)
        };
        ErrorEstimate {
            trials,
            failures,
            rate: p,
            lower,
            upper,
            z,
        }
    }

    /// Whether the interval certifies the rate is below `bound`.
    ///
    /// The comparison is **strict** at the endpoint: an interval whose
    /// `upper` equals `bound` exactly is *not* certified below it. In
    /// particular `certified_below(1.0)` is false for an all-failure
    /// estimate (`upper == 1.0`), and `certified_below(0.0)` is always
    /// false. Certification is one-sided: `!certified_below(b)` does
    /// not imply `certified_above(b)` — the interval may straddle `b`.
    pub fn certified_below(&self, bound: f64) -> bool {
        self.upper < bound
    }

    /// Whether the interval certifies the rate is above `bound`.
    ///
    /// Strict at the endpoint, mirroring
    /// [`certified_below`](Self::certified_below): an interval whose
    /// `lower` equals `bound` exactly is *not* certified above it, so
    /// `certified_above(0.0)` is false for a zero-failure estimate
    /// (`lower == 0.0`) and `certified_above(1.0)` is always false.
    pub fn certified_above(&self, bound: f64) -> bool {
        self.lower > bound
    }
}

/// Builder for one Monte-Carlo estimate: trial count and base seed
/// (the identity of the estimate — these determine the result), plus
/// execution knobs (thread count, chunk size, checkpoint — these never
/// change the result).
///
/// ```rust
/// use dut_core::montecarlo::{MonteCarlo, trial_rng};
/// use dut_core::executor::MonteCarloConfig;
/// use rand::Rng;
///
/// let parallel = MonteCarlo::new(10_000, 7)
///     .run(|seed| trial_rng(seed).gen::<f64>() < 0.25)
///     .unwrap();
/// let serial = MonteCarlo::new(10_000, 7)
///     .config(MonteCarloConfig::serial())
///     .run(|seed| trial_rng(seed).gen::<f64>() < 0.25)
///     .unwrap();
/// assert_eq!(parallel, serial); // bit-identical, interval included
/// ```
#[derive(Debug)]
pub struct MonteCarlo<'a> {
    trials: usize,
    base_seed: u64,
    config: MonteCarloConfig,
    checkpoint: Option<(&'a mut Checkpoint, String)>,
}

impl<'a> MonteCarlo<'a> {
    /// Starts an estimate over `trials` trials seeded from `base_seed`,
    /// with auto (thread-count-adaptive, result-invariant) execution.
    pub fn new(trials: usize, base_seed: u64) -> Self {
        MonteCarlo {
            trials,
            base_seed,
            config: MonteCarloConfig::auto(),
            checkpoint: None,
        }
    }

    /// Sets the execution config (threads, chunk size).
    pub fn config(mut self, config: MonteCarloConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a checkpoint: completed chunks append to `ck` under
    /// `label`, and chunks already recorded there are skipped. The
    /// label identifies this estimate within the (shared) file — one
    /// label per grid cell, e.g. `"e1a/n=65536,delta=0.050"`.
    pub fn checkpoint(mut self, ck: &'a mut Checkpoint, label: impl Into<String>) -> Self {
        self.checkpoint = Some((ck, label.into()));
        self
    }

    /// Runs stateless trials: `trial(seed)` returns `true` iff the
    /// trial **failed**.
    ///
    /// # Errors
    ///
    /// [`MonteCarloError::ZeroTrials`] if `trials == 0`;
    /// [`MonteCarloError::Checkpoint`] if an attached checkpoint is
    /// unusable.
    ///
    /// # Panics
    ///
    /// If a trial closure panics, the **original panic payload** is
    /// re-raised on the calling thread (not a generic "worker
    /// panicked" message), so `catch_unwind`-based harnesses and test
    /// assertions see the trial's own message.
    pub fn run<F>(self, trial: F) -> Result<ErrorEstimate, MonteCarloError>
    where
        F: Fn(u64) -> bool + Sync,
    {
        self.run_with_state(|| (), move |seed, ()| trial(seed))
    }

    /// Runs trials with per-worker mutable state: each worker thread
    /// calls `init()` once and passes the resulting value to every
    /// trial it runs. This is how scratch buffers
    /// ([`crate::scratch::TesterScratch`]) thread through the
    /// Monte-Carlo loop — trials reuse their worker's buffers instead
    /// of allocating.
    ///
    /// Trial seeds are assigned by trial *index*, not by worker, so the
    /// estimate is identical to [`MonteCarlo::run`]'s for the same
    /// `base_seed` — state only carries buffers, never statistics.
    ///
    /// # Errors
    ///
    /// As for [`MonteCarlo::run`].
    ///
    /// # Panics
    ///
    /// As for [`MonteCarlo::run`].
    pub fn run_with_state<S, I, F>(
        self,
        init: I,
        trial: F,
    ) -> Result<ErrorEstimate, MonteCarloError>
    where
        I: Fn() -> S + Sync,
        F: Fn(u64, &mut S) -> bool + Sync,
    {
        self.dispatch(false, init, |seed, state, _sink| trial(seed, state))
            .map(|(estimate, _)| estimate)
    }

    /// Runs metrics-observing trials: each trial additionally records
    /// into a [`Sink`], and the per-chunk sinks are merged in chunk
    /// order into one [`MemorySink`] returned beside the estimate. The
    /// merged metrics are bit-identical at any thread count (counter
    /// sums and histogram merges are element-wise), so observed runs
    /// serialize to byte-identical `dut-metrics/1` records.
    ///
    /// # Errors
    ///
    /// As for [`MonteCarlo::run`].
    ///
    /// # Panics
    ///
    /// As for [`MonteCarlo::run`].
    pub fn run_observed<S, I, F>(
        self,
        init: I,
        trial: F,
    ) -> Result<(ErrorEstimate, MemorySink), MonteCarloError>
    where
        I: Fn() -> S + Sync,
        F: Fn(u64, &mut S, &mut dyn Sink) -> bool + Sync,
    {
        self.dispatch(true, init, trial)
    }

    fn dispatch<S, I, F>(
        self,
        observe: bool,
        init: I,
        trial: F,
    ) -> Result<(ErrorEstimate, MemorySink), MonteCarloError>
    where
        I: Fn() -> S + Sync,
        F: Fn(u64, &mut S, &mut dyn Sink) -> bool + Sync,
    {
        let MonteCarlo {
            trials,
            base_seed,
            config,
            checkpoint,
        } = self;
        if trials == 0 {
            return Err(MonteCarloError::ZeroTrials);
        }
        let mut checkpoint = checkpoint;
        let ck = checkpoint
            .as_mut()
            .map(|(ck, label)| (&mut **ck, label.as_str()));
        let reduction = run_chunked(config, trials, base_seed, observe, ck, init, trial)?;
        // Fixed-budget runs keep the historical fixed-z interval (bit
        // identical to pre-adaptive builds). Adaptive runs report the
        // confidence-sequence interval of their final look — wider per
        // look, but simultaneously valid over every stop decision the
        // run peeked at.
        let z = match config.stop {
            StopRule::FixedBudget => 1.96,
            StopRule::Adaptive { .. } => sequence_z(reduction.chunks_counted - 1),
        };
        let estimate = ErrorEstimate::from_counts(reduction.trials, reduction.failures, z);
        let mut sink = reduction.sink;
        if observe && config.is_adaptive() {
            sink.add(
                dut_obs::keys::MC_ADAPTIVE_TRIALS_SPENT,
                reduction.trials as u64,
            );
            sink.add(dut_obs::keys::MC_ADAPTIVE_BUDGET, trials as u64);
        }
        Ok((estimate, sink))
    }
}

/// Runs `trials` independent boolean trials in parallel and estimates
/// the failure rate at 95% confidence.
///
/// `trial(seed)` must return `true` iff the trial **failed**. Each trial
/// receives a distinct deterministic seed derived from `base_seed`, so
/// the estimate is reproducible and independent of the number of worker
/// threads. Equivalent to [`MonteCarlo::new`]`(trials, base_seed).run(trial)`.
///
/// # Errors
///
/// Returns [`MonteCarloError::ZeroTrials`] if `trials == 0`.
///
/// # Panics
///
/// If a trial closure panics, the **original panic payload** is
/// re-raised on the calling thread (not a generic "worker panicked"
/// message), so `catch_unwind`-based harnesses and test assertions see
/// the trial's own message.
pub fn estimate_failure_rate<F>(
    trials: usize,
    base_seed: u64,
    trial: F,
) -> Result<ErrorEstimate, MonteCarloError>
where
    F: Fn(u64) -> bool + Sync,
{
    MonteCarlo::new(trials, base_seed).run(trial)
}

/// [`estimate_failure_rate`] with per-worker mutable state; see
/// [`MonteCarlo::run_with_state`] for the contract.
///
/// # Errors
///
/// Returns [`MonteCarloError::ZeroTrials`] if `trials == 0`.
///
/// # Panics
///
/// Re-raises the original payload of the first observed trial panic,
/// as [`estimate_failure_rate`] does.
pub fn estimate_failure_rate_with_state<S, I, F>(
    trials: usize,
    base_seed: u64,
    init: I,
    trial: F,
) -> Result<ErrorEstimate, MonteCarloError>
where
    I: Fn() -> S + Sync,
    F: Fn(u64, &mut S) -> bool + Sync,
{
    MonteCarlo::new(trials, base_seed).run_with_state(init, trial)
}

/// [`estimate_failure_rate`] with metrics-observing trials; see
/// [`MonteCarlo::run_observed`] for the merge guarantees.
///
/// # Errors
///
/// Returns [`MonteCarloError::ZeroTrials`] if `trials == 0`.
///
/// # Panics
///
/// Re-raises the original payload of the first observed trial panic,
/// as [`estimate_failure_rate`] does.
pub fn estimate_failure_rate_observed<S, I, F>(
    trials: usize,
    base_seed: u64,
    init: I,
    trial: F,
) -> Result<(ErrorEstimate, MemorySink), MonteCarloError>
where
    I: Fn() -> S + Sync,
    F: Fn(u64, &mut S, &mut dyn Sink) -> bool + Sync,
{
    MonteCarlo::new(trials, base_seed).run_observed(init, trial)
}

/// Convenience: a seeded [`StdRng`] for use inside trial closures.
pub fn trial_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The generator [`sampling_rng`] returns: [`StdRng`] on the default
/// path, swapped for the counter-based
/// [`dut_distributions::batch::BatchRng`] under the `fast-sampling`
/// cargo feature.
#[cfg(not(feature = "fast-sampling"))]
pub type SamplingRng = StdRng;

/// The generator [`sampling_rng`] returns under `fast-sampling`: the
/// counter-based [`dut_distributions::batch::BatchRng`], whose batch
/// fills autovectorize.
#[cfg(feature = "fast-sampling")]
pub type SamplingRng = dut_distributions::batch::BatchRng;

/// A seeded generator for the *sampling* hot path of a trial (the
/// draws a tester feeds through `SampleOracle::draw_into`).
///
/// On the default build this is [`trial_rng`] — the documented
/// `StdRng` streams, bit-identical to every recorded experiment. With
/// the `fast-sampling` cargo feature it returns a
/// [`dut_distributions::batch::BatchRng`] instead, which changes the
/// RNG stream: the differential contract for that split is **verdict
/// identity** (same accept/reject decisions, same statistics within
/// exact-oracle checks), enforced by the testkit suites — never bit
/// identity.
pub fn sampling_rng(seed: u64) -> SamplingRng {
    SamplingRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::MonteCarloConfig;
    use rand::Rng;

    #[test]
    fn from_counts_basic() {
        let e = ErrorEstimate::from_counts(1000, 100, 1.96);
        assert!((e.rate - 0.1).abs() < 1e-12);
        assert!(e.lower < 0.1 && 0.1 < e.upper);
        assert!(e.lower > 0.07 && e.upper < 0.13);
    }

    #[test]
    fn zero_failures_interval() {
        let e = ErrorEstimate::from_counts(1000, 0, 1.96);
        assert_eq!(e.rate, 0.0);
        assert_eq!(e.lower, 0.0);
        assert!(e.upper > 0.0 && e.upper < 0.01);
    }

    #[test]
    fn all_failures_interval() {
        let e = ErrorEstimate::from_counts(100, 100, 1.96);
        assert_eq!(e.rate, 1.0);
        assert!(e.upper > 0.999);
        assert!(e.lower < 1.0 && e.lower > 0.95);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let _ = ErrorEstimate::from_counts(0, 0, 1.96);
    }

    #[test]
    fn certification_helpers() {
        let e = ErrorEstimate::from_counts(10_000, 100, 1.96);
        assert!(e.certified_below(0.05));
        assert!(e.certified_above(0.005));
        assert!(!e.certified_below(0.01));
    }

    #[test]
    fn estimate_is_deterministic() {
        let f = |seed: u64| trial_rng(seed).gen::<f64>() < 0.25;
        let a = estimate_failure_rate(10_000, 7, f).unwrap();
        let b = estimate_failure_rate(10_000, 7, f).unwrap();
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn estimate_converges_to_truth() {
        let f = |seed: u64| trial_rng(seed).gen::<f64>() < 0.3;
        let e = estimate_failure_rate(100_000, 11, f).unwrap();
        assert!((e.rate - 0.3).abs() < 0.01, "rate {} far from 0.3", e.rate);
        assert!(e.lower <= 0.3 && 0.3 <= e.upper);
    }

    #[test]
    fn with_state_matches_stateless() {
        let f = |seed: u64| trial_rng(seed).gen::<f64>() < 0.25;
        let a = estimate_failure_rate(10_000, 7, f).unwrap();
        // Per-worker counters must not perturb seeding or counting.
        let b = estimate_failure_rate_with_state(
            10_000,
            7,
            || 0u64,
            |seed, calls| {
                *calls += 1;
                f(seed)
            },
        )
        .unwrap();
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn observed_matches_stateless_and_counts_metrics() {
        let f = |seed: u64| trial_rng(seed).gen::<f64>() < 0.25;
        let a = estimate_failure_rate(10_000, 7, f).unwrap();
        let (b, sink) = estimate_failure_rate_observed(
            10_000,
            7,
            || (),
            |seed, (), sink: &mut dyn Sink| {
                sink.add(dut_obs::keys::CORE_GAP_RUNS, 1);
                sink.observe(dut_obs::keys::NETSIM_ROUND_BITS, seed % 128);
                f(seed)
            },
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(sink.counter(dut_obs::keys::CORE_GAP_RUNS), 10_000);
        assert_eq!(
            sink.histogram(dut_obs::keys::NETSIM_ROUND_BITS)
                .unwrap()
                .count(),
            10_000
        );
    }

    #[test]
    fn builder_configs_are_result_invariant() {
        let f = |seed: u64| trial_rng(seed).gen::<f64>() < 0.25;
        let auto = estimate_failure_rate(4_096, 9, f).unwrap();
        for cfg in [
            MonteCarloConfig::serial(),
            MonteCarloConfig::with_threads(2),
            MonteCarloConfig::with_threads(8).chunk_size(37),
        ] {
            let e = MonteCarlo::new(4_096, 9).config(cfg).run(f).unwrap();
            assert_eq!(e, auto, "config {cfg:?} changed the estimate");
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let f = |seed: u64| trial_rng(seed).gen::<f64>() < 0.5;
        let a = estimate_failure_rate(10_000, 1, f).unwrap();
        let b = estimate_failure_rate(10_000, 2, f).unwrap();
        assert_ne!(a.failures, b.failures);
    }

    #[test]
    fn zero_trials_is_typed_error() {
        // The seed code panicked here via `assert!`.
        let err = estimate_failure_rate(0, 7, |_| false).unwrap_err();
        assert_eq!(err, MonteCarloError::ZeroTrials);
        let err = estimate_failure_rate_with_state(0, 7, || (), |_, ()| false).unwrap_err();
        assert_eq!(err, MonteCarloError::ZeroTrials);
    }

    #[test]
    fn worker_panic_payload_is_propagated() {
        // The seed code joined workers through the scoped-thread shim,
        // which replaces the payload with "a scoped thread panicked".
        let caught = std::panic::catch_unwind(|| {
            let _ = estimate_failure_rate(100, 7, |seed| {
                if seed % 3 == 0 {
                    panic!("distinctive trial failure 0xBEEF");
                }
                false
            });
        })
        .expect_err("a trial panicked");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("distinctive trial failure 0xBEEF"),
            "payload was not preserved: {msg:?}"
        );
    }

    #[test]
    fn certification_is_strict_at_endpoints() {
        let all = ErrorEstimate::from_counts(100, 100, 1.96);
        assert!(!all.certified_below(1.0));
        let none = ErrorEstimate::from_counts(100, 0, 1.96);
        assert!(!none.certified_above(0.0));
        assert!(!none.certified_below(0.0));
    }

    #[test]
    fn checkpointed_run_resumes_bit_identically() {
        let dir = std::env::temp_dir().join("dut_core_mc_ck_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.jsonl");
        let _ = std::fs::remove_file(&path);
        let f = |seed: u64| trial_rng(seed).gen::<f64>() < 0.25;
        let plain = estimate_failure_rate(2_000, 5, f).unwrap();

        let mut ck = Checkpoint::open(&path).unwrap();
        let first = MonteCarlo::new(2_000, 5)
            .config(MonteCarloConfig::auto().chunk_size(128))
            .checkpoint(&mut ck, "cell")
            .run(f)
            .unwrap();
        assert_eq!(first, plain);
        drop(ck);

        // Truncate the file to the plan + 3 chunk lines ("kill after
        // k chunks"), then resume against it.
        let text = std::fs::read_to_string(&path).unwrap();
        let kept: Vec<&str> = text.lines().take(4).collect();
        std::fs::write(&path, format!("{}\n", kept.join("\n"))).unwrap();
        let mut ck = Checkpoint::open(&path).unwrap();
        assert_eq!(ck.completed_chunks("cell"), 3);
        let resumed = MonteCarlo::new(2_000, 5)
            .config(MonteCarloConfig::auto().chunk_size(128))
            .checkpoint(&mut ck, "cell")
            .run(f)
            .unwrap();
        assert_eq!(resumed, plain);
        assert_eq!(ck.completed_chunks("cell"), 2_000usize.div_ceil(128));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn adaptive_spends_fewer_trials_and_agrees_on_the_decision() {
        let f = |seed: u64| trial_rng(seed).gen::<f64>() < 0.02;
        let fixed = estimate_failure_rate(100_000, 7, f).unwrap();
        let adaptive = MonteCarlo::new(100_000, 7)
            .config(MonteCarloConfig::adaptive(0.01).stop_threshold(0.5))
            .run(f)
            .unwrap();
        assert!(
            adaptive.trials < 100_000,
            "spent the whole budget: {adaptive:?}"
        );
        // Both certify the same side of the decision threshold, and
        // the adaptive interval still covers the true rate.
        assert!(fixed.certified_below(0.5) && adaptive.certified_below(0.5));
        assert!(adaptive.lower <= 0.02 && 0.02 <= adaptive.upper);
        assert!(adaptive.z > 1.96, "sequence z must price the peeking");
    }

    #[test]
    fn adaptive_estimates_are_thread_invariant() {
        // Threshold close enough to the rate that several looks are
        // needed — the stop lands mid-run, where racing workers could
        // disagree if stopping were not prefix-ordered.
        let f = |seed: u64| trial_rng(seed).gen::<f64>() < 0.25;
        let base = MonteCarloConfig::adaptive(1e-6)
            .stop_threshold(0.3)
            .chunk_size(37);
        let first = MonteCarlo::new(10_000, 3)
            .config(MonteCarloConfig { threads: 1, ..base })
            .run(f)
            .unwrap();
        assert!(first.trials < 10_000 && first.trials > 37, "{first:?}");
        for threads in [2, 8] {
            let est = MonteCarlo::new(10_000, 3)
                .config(MonteCarloConfig { threads, ..base })
                .run(f)
                .unwrap();
            assert_eq!(est, first, "{threads} threads changed the stop");
        }
    }

    #[test]
    fn adaptive_checkpointed_run_resumes_bit_identically() {
        let dir = std::env::temp_dir().join("dut_core_mc_adaptive_ck_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("adaptive_resume.jsonl");
        let _ = std::fs::remove_file(&path);
        let f = |seed: u64| trial_rng(seed).gen::<f64>() < 0.25;
        let cfg = MonteCarloConfig::adaptive(1e-6)
            .stop_threshold(0.3)
            .chunk_size(64);

        let mut ck = Checkpoint::open(&path).unwrap();
        let full = MonteCarlo::new(50_000, 3)
            .config(MonteCarloConfig { threads: 1, ..cfg })
            .checkpoint(&mut ck, "cell")
            .run(f)
            .unwrap();
        assert!(full.trials < 50_000, "must stop early: {full:?}");
        drop(ck);

        // Kill after 2 chunks, resume at a different thread count: the
        // stop decision and the estimate must not move.
        let text = std::fs::read_to_string(&path).unwrap();
        let kept: Vec<&str> = text.lines().take(3).collect();
        std::fs::write(&path, format!("{}\n", kept.join("\n"))).unwrap();
        let mut ck = Checkpoint::open(&path).unwrap();
        let resumed = MonteCarlo::new(50_000, 3)
            .config(MonteCarloConfig { threads: 4, ..cfg })
            .checkpoint(&mut ck, "cell")
            .run(f)
            .unwrap();
        assert_eq!(resumed, full);

        // Resuming a *fully recorded* adaptive run recomputes nothing
        // and reproduces the estimate from the file alone.
        let again = MonteCarlo::new(50_000, 3)
            .config(cfg)
            .checkpoint(&mut ck, "cell")
            .run(f)
            .unwrap();
        assert_eq!(again, full);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn adaptive_observed_records_spend_and_budget() {
        let (est, sink) = MonteCarlo::new(10_000, 5)
            .config(MonteCarloConfig::adaptive(0.5))
            .run_observed(
                || (),
                |seed, (), _sink: &mut dyn Sink| trial_rng(seed).gen::<f64>() < 0.1,
            )
            .unwrap();
        assert_eq!(
            sink.counter(dut_obs::keys::MC_ADAPTIVE_TRIALS_SPENT),
            est.trials as u64
        );
        assert_eq!(sink.counter(dut_obs::keys::MC_ADAPTIVE_BUDGET), 10_000);
    }

    #[test]
    fn checkpoint_plan_mismatch_is_typed() {
        let dir = std::env::temp_dir().join("dut_core_mc_ck_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut ck = Checkpoint::open(&path).unwrap();
        MonteCarlo::new(100, 1)
            .checkpoint(&mut ck, "x")
            .run(|_| false)
            .unwrap();
        let err = MonteCarlo::new(100, 2)
            .checkpoint(&mut ck, "x")
            .run(|_| false)
            .unwrap_err();
        assert!(matches!(
            err,
            MonteCarloError::Checkpoint(CheckpointError::PlanMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }
}
