//! Parallel Monte-Carlo error estimation.
//!
//! The paper's error regimes are delicate — completeness `1−δ` vs
//! soundness `1−(1+Θ(ε²))δ` differ by a Θ(ε²δ) sliver — so every
//! experiment estimates error probabilities with enough trials to
//! resolve the gap, and reports Wilson score intervals rather than bare
//! point estimates. Trials run in parallel across CPU cores with
//! deterministic per-trial seeds, so results reproduce exactly
//! regardless of thread count.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Why a Monte-Carlo estimate could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonteCarloError {
    /// `trials == 0`: an estimate over no trials has no defined rate or
    /// interval.
    ZeroTrials,
}

impl fmt::Display for MonteCarloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonteCarloError::ZeroTrials => {
                write!(f, "monte-carlo estimation needs at least one trial")
            }
        }
    }
}

impl Error for MonteCarloError {}

/// A Monte-Carlo estimate of a failure probability, with a Wilson score
/// confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorEstimate {
    /// Number of trials run.
    pub trials: usize,
    /// Number of trials that failed.
    pub failures: usize,
    /// Point estimate `failures / trials`.
    pub rate: f64,
    /// Lower end of the Wilson score interval.
    pub lower: f64,
    /// Upper end of the Wilson score interval.
    pub upper: f64,
    /// The z-score the interval was computed at.
    pub z: f64,
}

impl ErrorEstimate {
    /// Computes the estimate from raw counts at confidence z-score `z`
    /// (1.96 ≈ 95%).
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `failures > trials`.
    pub fn from_counts(trials: usize, failures: usize, z: f64) -> Self {
        assert!(trials > 0, "need at least one trial");
        assert!(failures <= trials, "failures cannot exceed trials");
        let n = trials as f64;
        let p = failures as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        // At the degenerate counts the Wilson endpoints are exactly 0
        // and 1 (the sqrt term collapses to z/2n and cancels); pin them
        // so rounding noise cannot make `certified_*` claim a strict
        // bound the data does not support.
        let lower = if failures == 0 {
            0.0
        } else {
            (center - half).max(0.0)
        };
        let upper = if failures == trials {
            1.0
        } else {
            (center + half).min(1.0)
        };
        ErrorEstimate {
            trials,
            failures,
            rate: p,
            lower,
            upper,
            z,
        }
    }

    /// Whether the interval certifies the rate is below `bound`.
    ///
    /// The comparison is **strict** at the endpoint: an interval whose
    /// `upper` equals `bound` exactly is *not* certified below it. In
    /// particular `certified_below(1.0)` is false for an all-failure
    /// estimate (`upper == 1.0`), and `certified_below(0.0)` is always
    /// false. Certification is one-sided: `!certified_below(b)` does
    /// not imply `certified_above(b)` — the interval may straddle `b`.
    pub fn certified_below(&self, bound: f64) -> bool {
        self.upper < bound
    }

    /// Whether the interval certifies the rate is above `bound`.
    ///
    /// Strict at the endpoint, mirroring
    /// [`certified_below`](Self::certified_below): an interval whose
    /// `lower` equals `bound` exactly is *not* certified above it, so
    /// `certified_above(0.0)` is false for a zero-failure estimate
    /// (`lower == 0.0`) and `certified_above(1.0)` is always false.
    pub fn certified_above(&self, bound: f64) -> bool {
        self.lower > bound
    }
}

/// Runs `trials` independent boolean trials in parallel and estimates
/// the failure rate at 95% confidence.
///
/// `trial(seed)` must return `true` iff the trial **failed**. Each trial
/// receives a distinct deterministic seed derived from `base_seed`, so
/// the estimate is reproducible and independent of the number of worker
/// threads.
///
/// # Errors
///
/// Returns [`MonteCarloError::ZeroTrials`] if `trials == 0`.
///
/// # Panics
///
/// If a trial closure panics, the **original panic payload** is
/// re-raised on the calling thread (not a generic "worker panicked"
/// message), so `catch_unwind`-based harnesses and test assertions see
/// the trial's own message.
pub fn estimate_failure_rate<F>(
    trials: usize,
    base_seed: u64,
    trial: F,
) -> Result<ErrorEstimate, MonteCarloError>
where
    F: Fn(u64) -> bool + Sync,
{
    estimate_failure_rate_with_state(trials, base_seed, || (), |seed, ()| trial(seed))
}

/// [`estimate_failure_rate`] with per-worker mutable state: each worker
/// thread calls `init()` once and passes the resulting value to every
/// trial it runs. This is how scratch buffers
/// ([`crate::scratch::TesterScratch`]) thread through the Monte-Carlo
/// loop — trials reuse their worker's buffers instead of allocating.
///
/// Trial seeds are assigned by trial *index*, not by worker, so the
/// estimate is identical to `estimate_failure_rate`'s for the same
/// `base_seed` — state only carries buffers, never statistics.
///
/// # Errors
///
/// Returns [`MonteCarloError::ZeroTrials`] if `trials == 0`.
///
/// # Panics
///
/// Re-raises the original payload of the first observed trial panic,
/// as [`estimate_failure_rate`] does.
pub fn estimate_failure_rate_with_state<S, I, F>(
    trials: usize,
    base_seed: u64,
    init: I,
    trial: F,
) -> Result<ErrorEstimate, MonteCarloError>
where
    I: Fn() -> S + Sync,
    F: Fn(u64, &mut S) -> bool + Sync,
{
    if trials == 0 {
        return Err(MonteCarloError::ZeroTrials);
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(trials);
    let failures = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    // First trial-panic payload, carried across the scope join so the
    // caller sees the trial's own panic, not the scope's generic one.
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let scope_result = crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                // `init` and `trial` run under `catch_unwind` so a
                // panicking trial closure stops this worker cleanly;
                // the payload is stashed instead of unwinding through
                // the scope (which would replace it with "a scoped
                // thread panicked").
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    let mut state = init();
                    let mut local = 0usize;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= trials {
                            break;
                        }
                        // Mix the index into the seed (splitmix64-style) so
                        // nearby trials do not share RNG streams.
                        let seed =
                            splitmix64(base_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                        if trial(seed, &mut state) {
                            local += 1;
                        }
                    }
                    local
                }));
                match caught {
                    Ok(local) => {
                        failures.fetch_add(local, Ordering::Relaxed);
                    }
                    Err(payload) => {
                        // Stop the other workers early; the estimate is
                        // void anyway.
                        next.fetch_add(trials, Ordering::Relaxed);
                        let mut slot = panic_payload.lock().unwrap_or_else(|e| e.into_inner());
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                }
            });
        }
    });
    // Workers catch their own panics, so the scope itself cannot fail.
    let () = scope_result.expect("worker panics are caught inside the workers");
    if let Some(payload) = panic_payload
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
    {
        resume_unwind(payload);
    }
    Ok(ErrorEstimate::from_counts(
        trials,
        failures.load(Ordering::Relaxed),
        1.96,
    ))
}

/// Convenience: a seeded [`StdRng`] for use inside trial closures.
pub fn trial_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn from_counts_basic() {
        let e = ErrorEstimate::from_counts(1000, 100, 1.96);
        assert!((e.rate - 0.1).abs() < 1e-12);
        assert!(e.lower < 0.1 && 0.1 < e.upper);
        assert!(e.lower > 0.07 && e.upper < 0.13);
    }

    #[test]
    fn zero_failures_interval() {
        let e = ErrorEstimate::from_counts(1000, 0, 1.96);
        assert_eq!(e.rate, 0.0);
        assert_eq!(e.lower, 0.0);
        assert!(e.upper > 0.0 && e.upper < 0.01);
    }

    #[test]
    fn all_failures_interval() {
        let e = ErrorEstimate::from_counts(100, 100, 1.96);
        assert_eq!(e.rate, 1.0);
        assert!(e.upper > 0.999);
        assert!(e.lower < 1.0 && e.lower > 0.95);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let _ = ErrorEstimate::from_counts(0, 0, 1.96);
    }

    #[test]
    fn certification_helpers() {
        let e = ErrorEstimate::from_counts(10_000, 100, 1.96);
        assert!(e.certified_below(0.05));
        assert!(e.certified_above(0.005));
        assert!(!e.certified_below(0.01));
    }

    #[test]
    fn estimate_is_deterministic() {
        let f = |seed: u64| trial_rng(seed).gen::<f64>() < 0.25;
        let a = estimate_failure_rate(10_000, 7, f).unwrap();
        let b = estimate_failure_rate(10_000, 7, f).unwrap();
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn estimate_converges_to_truth() {
        let f = |seed: u64| trial_rng(seed).gen::<f64>() < 0.3;
        let e = estimate_failure_rate(100_000, 11, f).unwrap();
        assert!((e.rate - 0.3).abs() < 0.01, "rate {} far from 0.3", e.rate);
        assert!(e.lower <= 0.3 && 0.3 <= e.upper);
    }

    #[test]
    fn with_state_matches_stateless() {
        let f = |seed: u64| trial_rng(seed).gen::<f64>() < 0.25;
        let a = estimate_failure_rate(10_000, 7, f).unwrap();
        // Per-worker counters must not perturb seeding or counting.
        let b = estimate_failure_rate_with_state(
            10_000,
            7,
            || 0u64,
            |seed, calls| {
                *calls += 1;
                f(seed)
            },
        )
        .unwrap();
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let f = |seed: u64| trial_rng(seed).gen::<f64>() < 0.5;
        let a = estimate_failure_rate(10_000, 1, f).unwrap();
        let b = estimate_failure_rate(10_000, 2, f).unwrap();
        assert_ne!(a.failures, b.failures);
    }

    #[test]
    fn zero_trials_is_typed_error() {
        // The seed code panicked here via `assert!`.
        let err = estimate_failure_rate(0, 7, |_| false).unwrap_err();
        assert_eq!(err, MonteCarloError::ZeroTrials);
        let err = estimate_failure_rate_with_state(0, 7, || (), |_, ()| false).unwrap_err();
        assert_eq!(err, MonteCarloError::ZeroTrials);
    }

    #[test]
    fn worker_panic_payload_is_propagated() {
        // The seed code joined workers through the scoped-thread shim,
        // which replaces the payload with "a scoped thread panicked".
        let caught = std::panic::catch_unwind(|| {
            let _ = estimate_failure_rate(100, 7, |seed| {
                if seed % 3 == 0 {
                    panic!("distinctive trial failure 0xBEEF");
                }
                false
            });
        })
        .expect_err("a trial panicked");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("distinctive trial failure 0xBEEF"),
            "payload was not preserved: {msg:?}"
        );
    }

    #[test]
    fn certification_is_strict_at_endpoints() {
        let all = ErrorEstimate::from_counts(100, 100, 1.96);
        assert!(!all.certified_below(1.0));
        let none = ErrorEstimate::from_counts(100, 0, 1.96);
        assert!(!none.certified_above(0.0));
        assert!(!none.certified_below(0.0));
    }
}
