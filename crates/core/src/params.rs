//! Parameter formulas from the paper, in one place.
//!
//! Every tester in this crate is *planned* before it runs: given the
//! domain size `n`, network size `k`, distance `ε` and target error `p`,
//! the functions here derive the per-node sample count `s`, the per-run
//! rejection budget `δ`, the repetition count `m`, and (for the threshold
//! rule) the threshold `T` — using the exact formulas and validity
//! conditions of the paper:
//!
//! * `s(s−1) = 2δn` — the gap tester's sample count (§3.1).
//! * Eq. (1) — the γ slack term quantifying how much of the ideal `1+ε²`
//!   gap survives at finite `n`, `s`, `δ`.
//! * `C_p = ln(1/p)/ln(1/(1−p))` — the gap the AND rule needs (§3.2.1).
//! * Eq. (5) — the Chernoff window the threshold `T` must land in
//!   (§3.2.2). We implement both the paper's Chernoff window and a
//!   tighter normal-approximation window usable at simulatable scale.

use crate::error::PlanError;

/// The largest sample count `s ≥ 2` with `s(s−1) ≤ 2δn`, i.e. the number
/// of samples the gap tester may draw while keeping its false-alarm
/// probability on the uniform distribution at most `δ` (Markov:
/// `Pr[collision] ≤ C(s,2)/n`).
///
/// Rounding *down* preserves the completeness guarantee exactly; the
/// soundness analysis absorbs the slack through γ.
///
/// # Errors
///
/// Returns [`PlanError::DomainTooSmall`] when even `s = 2` would exceed
/// the budget (i.e. `δn < 1`).
pub fn samples_for_delta(n: usize, delta: f64) -> Result<usize, PlanError> {
    if !(delta > 0.0 && delta < 1.0) {
        return Err(PlanError::InvalidParameter {
            name: "delta",
            value: delta,
            expected: "0 < delta < 1",
        });
    }
    let budget = 2.0 * delta * n as f64;
    // Largest s with s(s-1) <= budget.
    let s = ((1.0 + (1.0 + 4.0 * budget).sqrt()) / 2.0).floor() as usize;
    if s < 2 {
        return Err(PlanError::DomainTooSmall {
            n,
            required: (1.0 / delta).ceil() as usize,
        });
    }
    Ok(s)
}

/// The effective `δ` realized by an integer sample count:
/// `δ_eff = s(s−1)/(2n)`.
pub fn delta_for_samples(n: usize, s: usize) -> f64 {
    (s as f64) * (s as f64 - 1.0) / (2.0 * n as f64)
}

/// The γ slack term of the paper's Eq. (1):
///
/// `γ = 1 − 1/s − √(2δ(1+ε²)) − (1/s + √(2δ(1+ε²)))/ε²`,
///
/// where `δ = s(s−1)/(2n)`. The gap tester achieves gap `1 + γε²`; γ
/// approaches 1 as `n/k → ∞` and goes negative when δ is too large for
/// the given ε — a negative γ means the tester's soundness advantage
/// vanishes and planning must fail.
pub fn gamma_slack(n: usize, s: usize, epsilon: f64) -> f64 {
    let delta = delta_for_samples(n, s);
    let t0 = (2.0 * delta * (1.0 + epsilon * epsilon)).sqrt();
    let inv_s = 1.0 / s as f64;
    1.0 - inv_s - t0 - (inv_s + t0) / (epsilon * epsilon)
}

/// The paper's strict validity conditions for the (δ, 1+ε²/2)-gap regime:
/// `δ < ε⁴/64` and `n > 64/(ε⁴δ)`. Sufficient (not necessary) for
/// `γ ≥ 1/2`.
pub fn strict_gap_validity(n: usize, delta: f64, epsilon: f64) -> bool {
    let e4 = epsilon.powi(4);
    delta < e4 / 64.0 && (n as f64) > 64.0 / (e4 * delta)
}

/// `C_p = ln(1/p) / ln(1/(1−p))` — the soundness/completeness gap a
/// per-node tester must exhibit for the AND rule to reach network error
/// `p` (§3.2.1). For `p = 1/3` this is ≈ 2.7095.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn c_p(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
    (1.0 / p).ln() / (1.0 / (1.0 - p)).ln()
}

/// Inverse CDF (quantile) of the standard normal distribution, via
/// Acklam's rational approximation (relative error < 1.15e-9). Used by
/// the normal-approximation threshold window.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// A fully derived plan for the 0-round AND-rule tester (Theorem 1.1).
///
/// Each of the `k` nodes runs `m` independent repetitions of the gap
/// tester `A_{δ'}` with `samples_per_run` samples each, and rejects iff
/// *all* `m` repetitions see a collision; the network rejects iff any
/// node rejects.
#[derive(Debug, Clone, PartialEq)]
pub struct AndPlan {
    /// Domain size.
    pub n: usize,
    /// Network size.
    pub k: usize,
    /// Distance parameter.
    pub epsilon: f64,
    /// Target error probability.
    pub p: f64,
    /// Per-node probability of (wrongly) rejecting the uniform
    /// distribution: `δ_node = δ'^m`, chosen so `(1−δ_node)^k ≥ 1−p`.
    pub delta_node: f64,
    /// Repetitions of the gap tester per node.
    pub m: usize,
    /// Per-run rejection budget `δ' = δ_node^{1/m}` (effective value
    /// after integer rounding of the sample count).
    pub delta_run: f64,
    /// Samples drawn per repetition.
    pub samples_per_run: usize,
    /// Total samples per node (`m · samples_per_run`).
    pub samples_per_node: usize,
    /// The γ slack of Eq. (1) at the realized parameters.
    pub gamma: f64,
    /// The per-node soundness amplification achieved: `(1+γε²)^m`.
    pub achieved_gap: f64,
    /// The gap required for network error `p`: `ln(1/p)/(k·δ_node)`.
    pub required_gap: f64,
    /// Whether the plan provably reaches error `p` on both sides
    /// (`achieved_gap ≥ required_gap` with γ > 0).
    pub feasible: bool,
    /// Upper bound on the probability the network *accepts* an ε-far
    /// distribution under this plan: `(1 − (1+γε²)^m δ_node)^k`.
    pub predicted_soundness_error: f64,
    /// Upper bound on the probability the network *rejects* the uniform
    /// distribution: `1 − (1−δ_node)^k`.
    pub predicted_completeness_error: f64,
}

/// Plans the 0-round AND-rule tester (Theorem 1.1).
///
/// Searches over the repetition count `m`, keeping the per-node
/// false-alarm budget at `δ_node = 1 − (1−p)^{1/k}` (so the uniform
/// distribution is accepted by the whole network with probability exactly
/// `1−p`), and returns:
///
/// * the cheapest `m` whose achieved gap `(1+γε²)^m` reaches the required
///   `ln(1/p)/(k·δ_node)` — a *feasible* plan; or, if no `m` does
///   (the common case at simulatable `k`, since feasibility needs
///   `k ≳ (64/ε⁴)^m`),
/// * the plan with the smallest predicted soundness error, marked
///   `feasible: false`. This is the paper's "success probability roughly
///   `1/2 + Θ(ε²)`" regime.
///
/// # Errors
///
/// Returns an error for invalid `ε`/`p`/`k`, or when even one repetition
/// cannot achieve a positive γ (domain too small / δ too large).
pub fn plan_and_rule(n: usize, k: usize, epsilon: f64, p: f64) -> Result<AndPlan, PlanError> {
    validate_common(n, k, epsilon, p)?;
    let delta_node_target = 1.0 - (1.0 - p).powf(1.0 / k as f64);

    let mut best: Option<AndPlan> = None;
    for m in 1..=64usize {
        let delta_run_target = delta_node_target.powf(1.0 / m as f64);
        let s = match samples_for_delta(n, delta_run_target) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let delta_run = delta_for_samples(n, s);
        let gamma = gamma_slack(n, s, epsilon);
        if gamma <= 0.0 {
            continue;
        }
        let delta_node = delta_run.powi(m as i32);
        let achieved_gap = (1.0 + gamma * epsilon * epsilon).powi(m as i32);
        let required_gap = (1.0 / p).ln() / (k as f64 * delta_node_target);
        let reject_far = (achieved_gap * delta_node).min(1.0);
        let soundness_error = (1.0 - reject_far).powi(k as i32);
        let completeness_error = 1.0 - (1.0 - delta_node).powi(k as i32);
        let plan = AndPlan {
            n,
            k,
            epsilon,
            p,
            delta_node,
            m,
            delta_run,
            samples_per_run: s,
            samples_per_node: m * s,
            gamma,
            achieved_gap,
            required_gap,
            feasible: achieved_gap >= required_gap,
            predicted_soundness_error: soundness_error,
            predicted_completeness_error: completeness_error,
        };
        let better = match &best {
            None => true,
            Some(b) => {
                match (plan.feasible, b.feasible) {
                    // Among feasible plans, fewer samples wins.
                    (true, true) => plan.samples_per_node < b.samples_per_node,
                    (true, false) => true,
                    (false, true) => false,
                    // Among infeasible plans, smaller soundness error wins.
                    (false, false) => plan.predicted_soundness_error < b.predicted_soundness_error,
                }
            }
        };
        if better {
            best = Some(plan);
        }
    }
    best.ok_or(PlanError::Infeasible {
        condition: "no repetition count m yields a positive gamma slack",
        detail: format!("n={n}, k={k}, epsilon={epsilon}"),
    })
}

/// Which concentration bound the threshold planner uses to place `T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowMethod {
    /// The paper's Chernoff window (Eq. (5)): provable but loose, needs
    /// large `k·δ`.
    Chernoff,
    /// A normal-approximation window: tighter than Chernoff but brittle
    /// when the expected alarm count is small (integer rounding of `T`
    /// can void a barely-open window).
    Normal,
    /// Exact binomial tail evaluation: for each candidate `(s, T)`,
    /// compute `Pr[Bin(k, δ) ≥ T]` and `Pr[Bin(k, (1+γε²)δ) < T]`
    /// directly and require both ≤ p. The tightest plan a simulation can
    /// honestly run; the default.
    Exact,
}

/// `Pr[Bin(n, p) ≤ m]`, computed by stable iterative summation of the
/// probability mass (exact up to floating point). Intended for the
/// planner's regime: small `p`, `m` up to a few thousand.
pub fn binomial_cdf(n: usize, p: f64, m: usize) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if p == 0.0 {
        return 1.0;
    }
    if p == 1.0 {
        return if m >= n { 1.0 } else { 0.0 };
    }
    // term_0 = (1-p)^n computed in log space to survive large n.
    let mut log_term = n as f64 * (1.0 - p).ln();
    let log_ratio_base = (p / (1.0 - p)).ln();
    let mut acc = 0.0f64;
    // Accumulate in log space only until terms are representable.
    for j in 0..=m.min(n) {
        acc += log_term.exp();
        if j < n {
            log_term += ((n - j) as f64 / (j + 1) as f64).ln() + log_ratio_base;
        }
        if acc >= 1.0 {
            return 1.0;
        }
    }
    acc.min(1.0)
}

/// `Pr[Bin(n, p) ≥ t]`.
pub fn binomial_tail_ge(n: usize, p: f64, t: usize) -> f64 {
    if t == 0 {
        return 1.0;
    }
    (1.0 - binomial_cdf(n, p, t - 1)).max(0.0)
}

/// A fully derived plan for the 0-round threshold-rule tester
/// (Theorem 1.2): every node runs one gap tester `A_δ` with
/// `samples_per_node` samples; the network rejects iff at least
/// `threshold` nodes reject.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdPlan {
    /// Domain size.
    pub n: usize,
    /// Network size.
    pub k: usize,
    /// Distance parameter.
    pub epsilon: f64,
    /// Target error probability.
    pub p: f64,
    /// Per-node rejection budget δ (effective, after rounding).
    pub delta: f64,
    /// Samples per node.
    pub samples_per_node: usize,
    /// The rejection-count threshold `T`.
    pub threshold: usize,
    /// The γ slack of Eq. (1) at the realized parameters.
    pub gamma: f64,
    /// Expected rejecting nodes on the uniform distribution (`k·δ`).
    pub eta_uniform: f64,
    /// Lower bound on expected rejecting nodes on an ε-far distribution
    /// (`(1+γε²)·k·δ`).
    pub eta_far: f64,
    /// Chernoff upper bound on `Pr[R ≥ T]` under uniform.
    pub predicted_completeness_error: f64,
    /// Chernoff upper bound on `Pr[R < T]` under an ε-far distribution.
    pub predicted_soundness_error: f64,
    /// Which window was used to place `T`.
    pub method: WindowMethod,
}

/// Plans the 0-round threshold tester (Theorem 1.2).
///
/// Iterates over per-node sample counts `s` (smallest first); for each
/// `s` with a positive γ slack it looks for a threshold `T` between the
/// two expected alarm counts `η(U) = kδ` and `η(far) = (1+γε²)kδ` that
/// bounds both error sides by `p` under the requested method. The first
/// feasible `s` — i.e. the minimum sample count — wins.
///
/// # Errors
///
/// Fails when no `(s, T)` pair works — typically the network is too
/// small relative to `1/ε⁴` ([`PlanError::NetworkTooSmall`]).
pub fn plan_threshold(
    n: usize,
    k: usize,
    epsilon: f64,
    p: f64,
    method: WindowMethod,
) -> Result<ThresholdPlan, PlanError> {
    validate_common(n, k, epsilon, p)?;
    let ln_inv_p = (1.0 / p).ln();
    let z = normal_quantile(1.0 - p);

    let mut s = 2usize;
    loop {
        let delta = delta_for_samples(n, s);
        if delta >= 0.5 {
            // Far outside the gap regime for any ε; nothing larger helps.
            return Err(PlanError::NetworkTooSmall {
                k,
                required: required_k_for_threshold(epsilon, p, method),
            });
        }
        let gamma = gamma_slack(n, s, epsilon);
        if gamma > 0.0 {
            let eta_u = k as f64 * delta;
            let reject_far = (1.0 + gamma * epsilon * epsilon) * delta;
            let eta_f = k as f64 * reject_far;
            let candidate = match method {
                WindowMethod::Chernoff | WindowMethod::Normal => {
                    let (lo, hi) = match method {
                        WindowMethod::Chernoff => (
                            eta_u + (3.0 * ln_inv_p * eta_u).sqrt(),
                            eta_f - (2.0 * ln_inv_p * eta_f).sqrt(),
                        ),
                        _ => (
                            eta_u + z * (eta_u * (1.0 - delta)).sqrt(),
                            eta_f - z * (eta_f * (1.0 - reject_far)).sqrt(),
                        ),
                    };
                    let threshold = (lo.ceil() as usize).max(1);
                    if lo <= hi && (threshold as f64) <= hi {
                        let comp = (-((threshold as f64 - eta_u).powi(2)) / (3.0 * eta_u)).exp();
                        let sound = (-((eta_f - threshold as f64).powi(2)) / (2.0 * eta_f)).exp();
                        Some((threshold, comp.min(1.0), sound.min(1.0)))
                    } else {
                        None
                    }
                }
                WindowMethod::Exact => {
                    // Scan T across the whole plausible band and keep the
                    // T minimizing the worse error side.
                    let t_lo = (eta_u.floor() as usize).max(1);
                    let t_hi = (eta_f + 6.0 * eta_f.sqrt()).ceil() as usize + 1;
                    let mut best_t: Option<(usize, f64, f64)> = None;
                    for t in t_lo..=t_hi {
                        let comp = binomial_tail_ge(k, delta, t);
                        let sound = binomial_cdf(k, reject_far, t - 1);
                        let worst = comp.max(sound);
                        if best_t.is_none_or(|(_, c, so)| worst < c.max(so)) {
                            best_t = Some((t, comp, sound));
                        }
                    }
                    best_t.filter(|&(_, c, so)| c <= p && so <= p)
                }
            };
            if let Some((threshold, comp, sound)) = candidate {
                return Ok(ThresholdPlan {
                    n,
                    k,
                    epsilon,
                    p,
                    delta,
                    samples_per_node: s,
                    threshold,
                    gamma,
                    eta_uniform: eta_u,
                    eta_far: eta_f,
                    predicted_completeness_error: comp,
                    predicted_soundness_error: sound,
                    method,
                });
            }
        }
        s += 1;
        if s > n {
            return Err(PlanError::NetworkTooSmall {
                k,
                required: required_k_for_threshold(epsilon, p, method),
            });
        }
    }
}

/// Rough lower bound on the network size the threshold planner needs:
/// `k ≳ x_min · 64/ε⁴` where `x_min` is the minimal expected alarm count
/// for the chosen window. Used for diagnostics in error messages.
pub fn required_k_for_threshold(epsilon: f64, p: f64, method: WindowMethod) -> usize {
    let x_min = match method {
        WindowMethod::Chernoff => {
            let l = (1.0 / p).ln();
            let num = (3.0 * l).sqrt() + (2.0 * l * (1.0 + epsilon * epsilon / 2.0)).sqrt();
            (2.0 * num / (epsilon * epsilon)).powi(2)
        }
        WindowMethod::Normal | WindowMethod::Exact => {
            let z = normal_quantile(1.0 - p);
            (4.0 * z / (epsilon * epsilon)).powi(2)
        }
    };
    (x_min * 64.0 / epsilon.powi(4)).ceil() as usize
}

/// The paper's headline sample count for the threshold tester
/// (Theorem 1.2): `√(n/k)/ε²`. Used for reporting the theory curve next
/// to measured values.
pub fn theorem_1_2_samples(n: usize, k: usize, epsilon: f64) -> f64 {
    (n as f64 / k as f64).sqrt() / (epsilon * epsilon)
}

/// The paper's headline per-node sample count for the AND-rule tester
/// (Theorem 1.1): `(C_p/ε²)·√(n/k^{ε²/C_p})`, with the Θ-constants set
/// to 1. Used for reporting the theory curve next to measured values.
pub fn theorem_1_1_samples(n: usize, k: usize, epsilon: f64, p: f64) -> f64 {
    let cp = c_p(p);
    let e2 = epsilon * epsilon;
    (cp / e2) * (n as f64 / (k as f64).powf(e2 / cp)).sqrt()
}

fn validate_common(n: usize, k: usize, epsilon: f64, p: f64) -> Result<(), PlanError> {
    if n == 0 {
        return Err(PlanError::InvalidParameter {
            name: "n",
            value: 0.0,
            expected: "n >= 1",
        });
    }
    if k == 0 {
        return Err(PlanError::InvalidParameter {
            name: "k",
            value: 0.0,
            expected: "k >= 1",
        });
    }
    if !(epsilon > 0.0 && epsilon <= 1.0) {
        return Err(PlanError::InvalidParameter {
            name: "epsilon",
            value: epsilon,
            expected: "0 < epsilon <= 1",
        });
    }
    if !(p > 0.0 && p < 0.5) {
        return Err(PlanError::InvalidParameter {
            name: "p",
            value: p,
            expected: "0 < p < 1/2",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_for_delta_floor_semantics() {
        // s(s-1) <= 2*delta*n must hold, and (s+1)s must exceed it.
        for &(n, delta) in &[(1 << 16, 0.01), (1 << 20, 0.001), (1000, 0.05)] {
            let s = samples_for_delta(n, delta).unwrap();
            let budget = 2.0 * delta * n as f64;
            assert!((s * (s - 1)) as f64 <= budget + 1e-9);
            assert!(((s + 1) * s) as f64 > budget);
        }
    }

    #[test]
    fn samples_for_delta_small_domain_errors() {
        assert!(matches!(
            samples_for_delta(10, 0.01),
            Err(PlanError::DomainTooSmall { .. })
        ));
    }

    #[test]
    fn samples_for_delta_rejects_bad_delta() {
        assert!(samples_for_delta(100, 0.0).is_err());
        assert!(samples_for_delta(100, 1.0).is_err());
    }

    #[test]
    fn delta_for_samples_inverts() {
        let n = 1 << 16;
        let s = samples_for_delta(n, 0.01).unwrap();
        let d = delta_for_samples(n, s);
        assert!(d <= 0.01 + 1e-12);
        assert!(d > 0.005, "effective delta lost too much: {d}");
    }

    #[test]
    fn gamma_approaches_one_for_huge_n() {
        // δ fixed small, n huge so s is large: γ → 1. Both the 1/s and
        // the √(2δ(1+ε²)) penalty terms must vanish.
        let n = 1usize << 40;
        let s = samples_for_delta(n, 1e-4).unwrap();
        let g = gamma_slack(n, s, 1.0);
        assert!(g > 0.95, "gamma = {g}");
        // And monotonicity in n at fixed δ:
        let s_small = samples_for_delta(1 << 20, 1e-4).unwrap();
        assert!(gamma_slack(1 << 20, s_small, 1.0) < g);
    }

    #[test]
    fn gamma_negative_when_delta_large() {
        let n = 1 << 10;
        let s = samples_for_delta(n, 0.4).unwrap();
        assert!(gamma_slack(n, s, 0.25) < 0.0);
    }

    #[test]
    fn strict_validity_implies_gamma_at_least_half() {
        // Paper: δ < ε⁴/64 and n > 64/(ε⁴δ) imply γ ≥ 1/2.
        for &epsilon in &[0.3f64, 0.5, 0.8, 1.0] {
            let e4 = epsilon.powi(4);
            let delta = e4 / 65.0;
            let n = (65.0 / (e4 * delta)).ceil() as usize;
            if let Ok(s) = samples_for_delta(n, delta) {
                if strict_gap_validity(n, delta_for_samples(n, s), epsilon) {
                    let g = gamma_slack(n, s, epsilon);
                    assert!(g >= 0.5, "epsilon={epsilon}: gamma={g}");
                }
            }
        }
    }

    #[test]
    fn c_p_at_one_third() {
        // ln(3)/ln(3/2) ≈ 2.7095
        assert!((c_p(1.0 / 3.0) - 2.7095).abs() < 1e-3);
    }

    #[test]
    fn c_p_grows_as_p_shrinks() {
        assert!(c_p(0.1) > c_p(0.2));
        assert!(c_p(0.2) > c_p(0.4));
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn c_p_rejects_out_of_range() {
        let _ = c_p(1.5);
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-8);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.8413447) - 1.0).abs() < 1e-4);
        // extreme tails stay finite and monotone
        assert!(normal_quantile(1e-10) < normal_quantile(1e-5));
    }

    #[test]
    fn binomial_cdf_small_cases() {
        // Bin(2, 0.5): P[X<=0]=0.25, P[X<=1]=0.75, P[X<=2]=1.
        assert!((binomial_cdf(2, 0.5, 0) - 0.25).abs() < 1e-12);
        assert!((binomial_cdf(2, 0.5, 1) - 0.75).abs() < 1e-12);
        assert!((binomial_cdf(2, 0.5, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn binomial_cdf_edge_probabilities() {
        assert_eq!(binomial_cdf(10, 0.0, 0), 1.0);
        assert_eq!(binomial_cdf(10, 1.0, 9), 0.0);
        assert_eq!(binomial_cdf(10, 1.0, 10), 1.0);
    }

    #[test]
    fn binomial_cdf_large_n_small_p_matches_poisson() {
        // Bin(100000, 1e-4) ≈ Poisson(10).
        let lambda = 10.0f64;
        let mut pois_cdf = 0.0;
        let mut term = (-lambda).exp();
        for j in 0..=15usize {
            pois_cdf += term;
            term *= lambda / (j as f64 + 1.0);
        }
        let b = binomial_cdf(100_000, 1e-4, 15);
        assert!(
            (b - pois_cdf).abs() < 1e-3,
            "binomial {b} vs poisson {pois_cdf}"
        );
    }

    #[test]
    fn binomial_tail_ge_complements_cdf() {
        for t in 1..10 {
            let a = binomial_tail_ge(50, 0.2, t);
            let b = 1.0 - binomial_cdf(50, 0.2, t - 1);
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(binomial_tail_ge(50, 0.2, 0), 1.0);
    }

    #[test]
    fn exact_plan_finds_feasible_small_networks() {
        // The regime the Normal window cannot handle: small expected
        // alarm counts where integer rounding matters.
        let plan = plan_threshold(4096, 750, 1.0, 1.0 / 3.0, WindowMethod::Exact).unwrap();
        assert!(plan.predicted_completeness_error <= 1.0 / 3.0);
        assert!(plan.predicted_soundness_error <= 1.0 / 3.0);
        assert!(plan.threshold >= 1);
    }

    #[test]
    fn exact_plan_never_needs_more_samples_than_normal() {
        let n = 1 << 20;
        let k = 150_000;
        let exact = plan_threshold(n, k, 0.5, 1.0 / 3.0, WindowMethod::Exact).unwrap();
        let normal = plan_threshold(n, k, 0.5, 1.0 / 3.0, WindowMethod::Normal).unwrap();
        assert!(exact.samples_per_node <= normal.samples_per_node);
    }

    #[test]
    fn and_plan_basic_structure() {
        let plan = plan_and_rule(1 << 20, 1024, 0.5, 1.0 / 3.0).unwrap();
        assert_eq!(plan.samples_per_node, plan.m * plan.samples_per_run);
        assert!(plan.gamma > 0.0);
        assert!(plan.delta_node <= 1.0 - (2.0f64 / 3.0).powf(1.0 / 1024.0) + 1e-9);
        // completeness must be protected by construction
        assert!(plan.predicted_completeness_error <= 1.0 / 3.0 + 1e-9);
    }

    #[test]
    fn and_plan_uses_fewer_samples_than_centralized() {
        let n = 1 << 20;
        let plan = plan_and_rule(n, 4096, 0.5, 1.0 / 3.0).unwrap();
        let centralized = (n as f64).sqrt() / 0.25;
        assert!(
            (plan.samples_per_node as f64) < centralized,
            "AND plan {} not below centralized {centralized}",
            plan.samples_per_node
        );
    }

    #[test]
    fn and_plan_infeasible_at_small_k_is_flagged() {
        // At simulatable k the required gap C_p ≈ 2.7 is out of reach;
        // the planner must say so rather than overpromise.
        let plan = plan_and_rule(1 << 20, 256, 0.5, 1.0 / 3.0).unwrap();
        if !plan.feasible {
            assert!(plan.achieved_gap < plan.required_gap);
            assert!(plan.predicted_soundness_error > 1.0 / 3.0);
        }
    }

    #[test]
    fn threshold_plan_normal_window() {
        let plan = plan_threshold(1 << 20, 150_000, 0.5, 1.0 / 3.0, WindowMethod::Normal).unwrap();
        assert!(plan.gamma > 0.0);
        assert!(plan.threshold >= 1);
        assert!(plan.eta_far > plan.eta_uniform);
        // T must lie between the two expectations
        assert!((plan.threshold as f64) > plan.eta_uniform);
        assert!((plan.threshold as f64) < plan.eta_far);
    }

    #[test]
    fn threshold_plan_chernoff_needs_bigger_k() {
        let k_normal = required_k_for_threshold(0.5, 1.0 / 3.0, WindowMethod::Normal);
        let k_chernoff = required_k_for_threshold(0.5, 1.0 / 3.0, WindowMethod::Chernoff);
        assert!(k_chernoff > k_normal);
    }

    #[test]
    fn threshold_plan_fails_for_tiny_network() {
        let err = plan_threshold(1 << 14, 4, 0.5, 1.0 / 3.0, WindowMethod::Normal).unwrap_err();
        assert!(matches!(err, PlanError::NetworkTooSmall { .. }));
    }

    #[test]
    fn threshold_samples_scale_like_theorem_1_2() {
        // Doubling k should reduce samples per node by ~√2.
        let n = 1 << 18;
        let p1 = plan_threshold(n, 60_000, 0.5, 1.0 / 3.0, WindowMethod::Normal).unwrap();
        let p2 = plan_threshold(n, 240_000, 0.5, 1.0 / 3.0, WindowMethod::Normal).unwrap();
        let ratio = p1.samples_per_node as f64 / p2.samples_per_node as f64;
        assert!(
            ratio > 1.5 && ratio < 2.5,
            "4x nodes should halve samples, ratio = {ratio}"
        );
    }

    #[test]
    fn theorem_formulas_are_positive_and_monotone() {
        assert!(theorem_1_2_samples(1 << 16, 100, 0.5) > theorem_1_2_samples(1 << 16, 400, 0.5));
        assert!(
            theorem_1_1_samples(1 << 16, 100, 0.5, 1.0 / 3.0)
                > theorem_1_2_samples(1 << 16, 100, 0.5),
            "AND rule must cost more than threshold rule"
        );
    }

    #[test]
    fn validate_rejects_bad_inputs() {
        assert!(plan_and_rule(0, 10, 0.5, 0.3).is_err());
        assert!(plan_and_rule(100, 0, 0.5, 0.3).is_err());
        assert!(plan_and_rule(100, 10, 1.5, 0.3).is_err());
        assert!(plan_and_rule(100, 10, 0.5, 0.6).is_err());
    }
}
