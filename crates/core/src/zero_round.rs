//! The 0-round distributed uniformity testers (Theorems 1.1 and 1.2).
//!
//! In the 0-round model each of the `k` nodes examines its own samples
//! and outputs accept/reject without any communication. The network's
//! verdict is computed by a decision rule:
//!
//! * [`AndNetworkTester`] — the standard "AND" rule (reject iff some node
//!   rejects), Theorem 1.1. Not amplification-friendly: reaching constant
//!   error costs a significant blow-up in samples, and at realistic `k`
//!   the planner honestly reports when the provable gap is out of reach.
//! * [`ThresholdNetworkTester`] — the threshold rule (reject iff at least
//!   `T` nodes reject), Theorem 1.2: `T = Θ(1/ε⁴)` and
//!   `s = Θ(√(n/k)/ε²)` samples per node suffice.

use crate::amplify::RepeatedGapTester;
use crate::decision::{Decision, DecisionRule, NetworkOutcome};
use crate::error::PlanError;
use crate::gap::GapTester;
use crate::params::{plan_and_rule, plan_threshold, AndPlan, ThresholdPlan, WindowMethod};
use crate::scratch::TesterScratch;
use dut_distributions::SampleOracle;
use dut_obs::{keys, Sink};
use rand::Rng;

/// Shared `core.zero_round.*` recording for the network testers.
fn record_zero_round(sink: &mut dyn Sink, outcome: &NetworkOutcome) {
    if sink.enabled() {
        sink.add(keys::CORE_ZERO_ROUND_RUNS, 1);
        sink.add(keys::CORE_ZERO_ROUND_VOTES, outcome.nodes as u64);
        sink.add(
            keys::CORE_ZERO_ROUND_REJECTIONS,
            outcome.rejecting_nodes as u64,
        );
    }
}

/// The 0-round AND-rule network tester (Theorem 1.1).
///
/// Every node runs `m` repetitions of the gap tester `A_{δ'}` and rejects
/// iff all repetitions reject; the network rejects iff any node rejects.
#[derive(Debug, Clone)]
pub struct AndNetworkTester {
    plan: AndPlan,
    node_tester: RepeatedGapTester,
}

impl AndNetworkTester {
    /// Plans the tester for `k` nodes on domain size `n` at distance
    /// `epsilon` with target error `p`.
    ///
    /// # Errors
    ///
    /// Propagates planning failures from
    /// [`plan_and_rule`].
    pub fn plan(n: usize, k: usize, epsilon: f64, p: f64) -> Result<Self, PlanError> {
        Self::from_plan(plan_and_rule(n, k, epsilon, p)?)
    }

    /// Builds the tester from an explicit plan (e.g. one computed with
    /// modified parameters for an ablation).
    ///
    /// # Errors
    ///
    /// Returns an error if the plan's sample counts are degenerate.
    pub fn from_plan(plan: AndPlan) -> Result<Self, PlanError> {
        let inner = GapTester::with_samples(plan.n, plan.samples_per_run)?;
        let node_tester = RepeatedGapTester::new(inner, plan.m)?;
        Ok(AndNetworkTester { plan, node_tester })
    }

    /// The derived plan (sample counts, predicted errors, feasibility).
    pub fn plan_details(&self) -> &AndPlan {
        &self.plan
    }

    /// The per-node tester.
    pub fn node_tester(&self) -> &RepeatedGapTester {
        &self.node_tester
    }

    /// Samples each node draws.
    pub fn samples_per_node(&self) -> usize {
        self.plan.samples_per_node
    }

    /// Simulates one full run: all `k` nodes independently draw their
    /// samples from `oracle` and vote; the AND rule aggregates.
    pub fn run<O, R>(&self, oracle: &O, rng: &mut R) -> NetworkOutcome
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        let mut rejecting = 0usize;
        for _ in 0..self.plan.k {
            if self.node_tester.run(oracle, rng) == Decision::Reject {
                rejecting += 1;
            }
        }
        NetworkOutcome {
            decision: DecisionRule::And.decide(rejecting),
            rejecting_nodes: rejecting,
            nodes: self.plan.k,
        }
    }

    /// [`AndNetworkTester::run`] with caller-owned buffers: same
    /// decisions and RNG stream, no per-node allocation.
    pub fn run_with_scratch<O, R>(
        &self,
        oracle: &O,
        rng: &mut R,
        scratch: &mut TesterScratch,
    ) -> NetworkOutcome
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        let mut rejecting = 0usize;
        for _ in 0..self.plan.k {
            if self.node_tester.run_with_scratch(oracle, rng, scratch) == Decision::Reject {
                rejecting += 1;
            }
        }
        NetworkOutcome {
            decision: DecisionRule::And.decide(rejecting),
            rejecting_nodes: rejecting,
            nodes: self.plan.k,
        }
    }

    /// [`AndNetworkTester::run_with_scratch`] recording
    /// `core.zero_round.*` metrics into `sink` (one run, `k` votes, the
    /// rejecting votes); each node's tester records `core.amplify.*`
    /// and `core.gap.*` as well. The protocol itself sends no messages
    /// — Theorem 1.1's entire cost is samples, which is what these
    /// counters surface.
    pub fn run_with_scratch_observed<O, R>(
        &self,
        oracle: &O,
        rng: &mut R,
        scratch: &mut TesterScratch,
        sink: &mut dyn Sink,
    ) -> NetworkOutcome
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        let mut rejecting = 0usize;
        for _ in 0..self.plan.k {
            if self
                .node_tester
                .run_with_scratch_observed(oracle, rng, scratch, sink)
                == Decision::Reject
            {
                rejecting += 1;
            }
        }
        let outcome = NetworkOutcome {
            decision: DecisionRule::And.decide(rejecting),
            rejecting_nodes: rejecting,
            nodes: self.plan.k,
        };
        record_zero_round(sink, &outcome);
        outcome
    }
}

/// The 0-round threshold-rule network tester (Theorem 1.2).
///
/// Every node runs one gap tester `A_δ`; the network rejects iff at
/// least `T` nodes reject.
#[derive(Debug, Clone)]
pub struct ThresholdNetworkTester {
    plan: ThresholdPlan,
    node_tester: GapTester,
}

impl ThresholdNetworkTester {
    /// Plans the tester using exact binomial tail evaluation (see
    /// [`WindowMethod`]) — the tightest
    /// honest plan; the paper's Chernoff window is available through
    /// [`ThresholdNetworkTester::plan_with_method`].
    ///
    /// # Errors
    ///
    /// Propagates planning failures from
    /// [`plan_threshold`].
    pub fn plan(n: usize, k: usize, epsilon: f64, p: f64) -> Result<Self, PlanError> {
        Self::plan_with_method(n, k, epsilon, p, WindowMethod::Exact)
    }

    /// Plans the tester with an explicit window method (the paper's
    /// Chernoff window needs `k` roughly 64/ε⁴ times larger).
    ///
    /// # Errors
    ///
    /// Propagates planning failures from
    /// [`plan_threshold`].
    pub fn plan_with_method(
        n: usize,
        k: usize,
        epsilon: f64,
        p: f64,
        method: WindowMethod,
    ) -> Result<Self, PlanError> {
        Self::from_plan(plan_threshold(n, k, epsilon, p, method)?)
    }

    /// Builds the tester from an explicit plan.
    ///
    /// # Errors
    ///
    /// Returns an error if the plan's sample count is degenerate.
    pub fn from_plan(plan: ThresholdPlan) -> Result<Self, PlanError> {
        let node_tester = GapTester::with_samples(plan.n, plan.samples_per_node)?;
        Ok(ThresholdNetworkTester { plan, node_tester })
    }

    /// The derived plan.
    pub fn plan_details(&self) -> &ThresholdPlan {
        &self.plan
    }

    /// The per-node tester.
    pub fn node_tester(&self) -> &GapTester {
        &self.node_tester
    }

    /// Samples each node draws.
    pub fn samples_per_node(&self) -> usize {
        self.plan.samples_per_node
    }

    /// The rejection-count threshold `T`.
    pub fn threshold(&self) -> usize {
        self.plan.threshold
    }

    /// Simulates one full run of the `k`-node network.
    pub fn run<O, R>(&self, oracle: &O, rng: &mut R) -> NetworkOutcome
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        let mut rejecting = 0usize;
        for _ in 0..self.plan.k {
            if self.node_tester.run(oracle, rng) == Decision::Reject {
                rejecting += 1;
            }
        }
        self.outcome_from_votes(rejecting)
    }

    /// [`ThresholdNetworkTester::run`] with caller-owned buffers: same
    /// decisions and RNG stream, no per-node allocation.
    pub fn run_with_scratch<O, R>(
        &self,
        oracle: &O,
        rng: &mut R,
        scratch: &mut TesterScratch,
    ) -> NetworkOutcome
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        let mut rejecting = 0usize;
        for _ in 0..self.plan.k {
            if self.node_tester.run_with_scratch(oracle, rng, scratch) == Decision::Reject {
                rejecting += 1;
            }
        }
        self.outcome_from_votes(rejecting)
    }

    /// [`ThresholdNetworkTester::run_with_scratch`] recording
    /// `core.zero_round.*` metrics into `sink`; each node's gap tester
    /// records `core.gap.*` as well, so `core.gap.samples` across a run
    /// is the network's total sample cost (`k · s`, Theorem 1.2).
    pub fn run_with_scratch_observed<O, R>(
        &self,
        oracle: &O,
        rng: &mut R,
        scratch: &mut TesterScratch,
        sink: &mut dyn Sink,
    ) -> NetworkOutcome
    where
        O: SampleOracle + ?Sized,
        R: Rng + ?Sized,
    {
        let mut rejecting = 0usize;
        for _ in 0..self.plan.k {
            if self
                .node_tester
                .run_with_scratch_observed(oracle, rng, scratch, sink)
                == Decision::Reject
            {
                rejecting += 1;
            }
        }
        let outcome = self.outcome_from_votes(rejecting);
        record_zero_round(sink, &outcome);
        outcome
    }

    /// Applies the threshold rule to an externally computed rejection
    /// count (used when the nodes are *virtual* — e.g. token packages in
    /// the CONGEST protocol).
    pub fn outcome_from_votes(&self, rejecting_nodes: usize) -> NetworkOutcome {
        NetworkOutcome {
            decision: DecisionRule::Threshold(self.plan.threshold).decide(rejecting_nodes),
            rejecting_nodes,
            nodes: self.plan.k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dut_distributions::families::paninski_far;
    use dut_distributions::DiscreteDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn threshold_tester_accepts_uniform_mostly() {
        let n = 1 << 20;
        let k = 150_000;
        let t = ThresholdNetworkTester::plan(n, k, 0.5, 1.0 / 3.0).unwrap();
        let uniform = DiscreteDistribution::uniform(n);
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 30;
        let errors = (0..trials)
            .filter(|_| t.run(&uniform, &mut rng).decision == Decision::Reject)
            .count();
        assert!(
            errors <= trials / 3 + 2,
            "too many false alarms: {errors}/{trials}"
        );
    }

    #[test]
    fn threshold_tester_rejects_far_mostly() {
        let n = 1 << 20;
        let k = 150_000;
        let t = ThresholdNetworkTester::plan(n, k, 0.5, 1.0 / 3.0).unwrap();
        let far = paninski_far(n, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 30;
        let errors = (0..trials)
            .filter(|_| t.run(&far, &mut rng).decision == Decision::Accept)
            .count();
        assert!(
            errors <= trials / 3 + 2,
            "too many missed detections: {errors}/{trials}"
        );
    }

    #[test]
    fn threshold_tester_uses_sublinear_samples() {
        let n = 1 << 20;
        let k = 150_000;
        let t = ThresholdNetworkTester::plan(n, k, 0.5, 1.0 / 3.0).unwrap();
        let centralized = (n as f64).sqrt() / 0.25; // √n/ε²
        assert!(
            (t.samples_per_node() as f64) < centralized / 4.0,
            "samples per node {} not far below centralized {centralized}",
            t.samples_per_node()
        );
    }

    #[test]
    fn outcome_from_votes_applies_threshold() {
        let n = 1 << 20;
        let t = ThresholdNetworkTester::plan(n, 150_000, 0.5, 1.0 / 3.0).unwrap();
        let t_val = t.threshold();
        assert_eq!(t.outcome_from_votes(t_val - 1).decision, Decision::Accept);
        assert_eq!(t.outcome_from_votes(t_val).decision, Decision::Reject);
    }

    #[test]
    fn and_tester_protects_completeness() {
        // Whatever else happens, uniform must be accepted w.p. >= 1-p.
        let n = 1 << 20;
        let k = 512;
        let t = AndNetworkTester::plan(n, k, 0.5, 1.0 / 3.0).unwrap();
        let uniform = DiscreteDistribution::uniform(n);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 60;
        let false_alarms = (0..trials)
            .filter(|_| t.run(&uniform, &mut rng).decision == Decision::Reject)
            .count();
        assert!(
            false_alarms <= trials / 2,
            "AND tester false-alarms too often: {false_alarms}/{trials}"
        );
    }

    #[test]
    fn and_tester_detects_far_with_weak_signal() {
        // At small k the AND tester is only guaranteed a weak advantage;
        // verify rejections on far inputs exceed those on uniform.
        let n = 1 << 20;
        let k = 512;
        let t = AndNetworkTester::plan(n, k, 0.75, 1.0 / 3.0).unwrap();
        let uniform = DiscreteDistribution::uniform(n);
        let far = paninski_far(n, 0.75).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 120;
        let rejects = |d: &DiscreteDistribution, rng: &mut StdRng| {
            (0..trials)
                .filter(|_| t.run(d, rng).decision == Decision::Reject)
                .count()
        };
        let ru = rejects(&uniform, &mut rng);
        let rf = rejects(&far, &mut rng);
        assert!(rf > ru, "far rejections {rf} <= uniform rejections {ru}");
    }

    #[test]
    fn scratch_runs_match_allocating_runs() {
        let n = 1 << 14;
        let uniform = DiscreteDistribution::uniform(n);
        let far = paninski_far(n, 0.75).unwrap();
        let mut scratch = TesterScratch::new();

        // The threshold rule needs a large network; the AND rule doesn't.
        let and_t = AndNetworkTester::plan(n, 64, 0.75, 1.0 / 3.0).unwrap();
        let thr_t = ThresholdNetworkTester::plan(n, 4096, 0.75, 1.0 / 3.0).unwrap();
        for d in [&uniform, &far] {
            for seed in 0..10 {
                let mut r1 = StdRng::seed_from_u64(seed);
                let mut r2 = StdRng::seed_from_u64(seed);
                assert_eq!(
                    and_t.run(d, &mut r1),
                    and_t.run_with_scratch(d, &mut r2, &mut scratch),
                    "AND seed {seed}"
                );
                let mut r1 = StdRng::seed_from_u64(seed);
                let mut r2 = StdRng::seed_from_u64(seed);
                assert_eq!(
                    thr_t.run(d, &mut r1),
                    thr_t.run_with_scratch(d, &mut r2, &mut scratch),
                    "threshold seed {seed}"
                );
            }
        }
    }

    #[test]
    fn observed_runs_match_and_record_votes() {
        use dut_obs::{keys, MemorySink};
        let n = 1 << 14;
        let far = paninski_far(n, 0.75).unwrap();
        let mut scratch = TesterScratch::new();
        let thr_t = ThresholdNetworkTester::plan(n, 4096, 0.75, 1.0 / 3.0).unwrap();
        let mut sink = MemorySink::new();
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        let plain = thr_t.run_with_scratch(&far, &mut r1, &mut scratch);
        let observed = thr_t.run_with_scratch_observed(&far, &mut r2, &mut scratch, &mut sink);
        assert_eq!(plain, observed);
        assert_eq!(sink.counter(keys::CORE_ZERO_ROUND_RUNS), 1);
        assert_eq!(sink.counter(keys::CORE_ZERO_ROUND_VOTES), 4096);
        assert_eq!(
            sink.counter(keys::CORE_ZERO_ROUND_REJECTIONS),
            observed.rejecting_nodes as u64
        );
        // Theorem 1.2's sample cost: every node drew exactly s samples.
        assert_eq!(
            sink.counter(keys::CORE_GAP_SAMPLES),
            (4096 * thr_t.samples_per_node()) as u64
        );

        let and_t = AndNetworkTester::plan(n, 64, 0.75, 1.0 / 3.0).unwrap();
        let mut and_sink = MemorySink::new();
        let mut r1 = StdRng::seed_from_u64(12);
        let mut r2 = StdRng::seed_from_u64(12);
        let plain = and_t.run_with_scratch(&far, &mut r1, &mut scratch);
        let observed = and_t.run_with_scratch_observed(&far, &mut r2, &mut scratch, &mut and_sink);
        assert_eq!(plain, observed);
        assert_eq!(sink.counter(keys::CORE_ZERO_ROUND_RUNS), 1);
        assert_eq!(and_sink.counter(keys::CORE_AMPLIFY_RUNS), 64);
        // Short-circuiting: executed repetitions never exceed m per node.
        assert!(
            and_sink.counter(keys::CORE_AMPLIFY_REPETITIONS)
                <= (64 * and_t.node_tester().repetitions()) as u64
        );
    }

    #[test]
    fn and_tester_reports_plan_honestly() {
        let t = AndNetworkTester::plan(1 << 20, 512, 0.5, 1.0 / 3.0).unwrap();
        let plan = t.plan_details();
        assert_eq!(t.samples_per_node(), plan.samples_per_node);
        // completeness is protected by construction
        assert!(plan.predicted_completeness_error <= 1.0 / 3.0 + 1e-9);
    }
}
